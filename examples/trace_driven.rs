//! Trace-driven prediction: run the real distributed kernel once on
//! this machine, record its communication and *measured* compute
//! segments, and replay the recorded programs through the cluster
//! simulator under the paper's 2001 machine model.
//!
//! ```sh
//! cargo run --release --example trace_driven
//! ```
//!
//! This answers "what would *my actual code* cost on that cluster?"
//! without owning the cluster: computation comes from measurement,
//! communication from the calibrated model. The same recording replays
//! under any `MachineParams` — swap in a faster network and re-predict.

use overlap_tiling::prelude::*;
use stencil::dist3d::run_rank3d;

fn main() {
    let d = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 2048,
        pi: 2,
        pj: 2,
        v: 128,
        boundary: 1.0,
    };
    println!(
        "recording real execution: {}×{}×{} on {}×{} ranks, V = {}\n",
        d.nx, d.ny, d.nz, d.pi, d.pj, d.v
    );

    // Record both schedules by running the *actual* executors
    // sequentially (rank order is a topological order of the wavefront).
    let (blocks_b, progs_blocking) = record_sequential::<f32, _, _>(d.pi * d.pj, |comm| {
        run_rank3d(comm, Paper3D, d, ExecMode::Blocking)
    });
    let (blocks_o, progs_overlap) = record_sequential::<f32, _, _>(d.pi * d.pj, |comm| {
        run_rank3d(comm, Paper3D, d, ExecMode::Overlapping)
    });

    // The recorded runs produced real, correct data.
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    let correct = blocks_b.iter().zip(&blocks_o).all(|(a, b)| a == b)
        && blocks_b.concat().iter().all(|x| x.is_finite());
    println!("recorded executions agree with each other: {correct}");
    let ops: usize = progs_overlap.iter().map(|p| p.len()).sum();
    println!(
        "recorded {} simulator ops across {} ranks\n",
        ops,
        d.pi * d.pj
    );
    let _ = seq;

    // Replay under the paper's cluster and under a 10× faster network.
    for (label, machine) in [
        ("paper 2001 cluster", MachineParams::paper_cluster()),
        (
            "10× faster network",
            MachineParams::paper_cluster().scale_communication(0.1),
        ),
    ] {
        let cfg = SimConfig::new(machine).with_trace(false);
        let b = simulate(cfg, progs_blocking.clone()).expect("no deadlock");
        let o = simulate(cfg, progs_overlap.clone()).expect("no deadlock");
        println!(
            "{label:>20}: blocking {:.4} s, overlapping {:.4} s → overlap wins {:.0}%",
            b.makespan.as_secs(),
            o.makespan.as_secs(),
            (1.0 - o.makespan.as_us() / b.makespan.as_us()) * 100.0
        );
    }
    println!(
        "\n(compute segments are measured on this machine; communication is the model.\n\
         With a modern CPU's tiny t_c the 2001 network dominates — the overlap run is\n\
         communication-bound — so the *faster* network moves the balance back towards\n\
         the regime where overlapping hides a larger fraction: §4's case analysis, live.)"
    );
}
