//! The one-call compiler driver: paste a loop nest, get a parallel
//! execution plan with predicted and simulated completion times.
//!
//! ```sh
//! cargo run --release --example compiler_driver
//! ```

use overlap_tiling::prelude::*;

fn main() {
    let machine = MachineParams::paper_cluster();

    println!("=== the paper's 3-D kernel, 4×4 processors ===\n");
    let src3d = "
        FOR i = 0 TO 15 DO
          FOR j = 0 TO 15 DO
            FOR k = 0 TO 16383 DO
              A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
            ENDFOR
          ENDFOR
        ENDFOR";
    match plan(src3d, &machine, &[4, 4]) {
        Ok(report) => println!("{report}\n"),
        Err(e) => println!("planning failed: {e}\n"),
    }

    println!("=== a time-stepped 1-D Jacobi (needs skewing), 8 processors ===\n");
    let jacobi = "
        FOR t = 0 TO 511 DO
          FOR x = 0 TO 4095 DO
            A(t, x) = A(t-1, x-1) + A(t-1, x) + A(t-1, x+1)
          ENDFOR
        ENDFOR";
    match plan(jacobi, &machine, &[8]) {
        Ok(report) => println!("{report}\n"),
        Err(e) => println!("planning failed: {e}\n"),
    }

    println!("=== an invalid nest is rejected with a useful error ===\n");
    let bad = "FOR i = 0 TO 9\n A(i) = A(i+1)\nENDFOR";
    match plan(bad, &machine, &[]) {
        Ok(_) => println!("unexpectedly planned"),
        Err(e) => println!("{e}"),
    }
}
