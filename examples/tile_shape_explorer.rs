//! Explore tile shapes and sizes: communication volume per shape at a
//! fixed volume (the Boulet/Xue question, §2.4), and the completion-time
//! landscape over the tile height V for both schedules.
//!
//! ```sh
//! cargo run --release --example tile_shape_explorer
//! ```

use overlap_tiling::prelude::*;
use tiling_core::optimize::{height_ladder, min_comm_rectangular_shape, rectangular_shapes};
use tiling_core::schedule::OverlapMode as Mode;

fn main() {
    // Part 1: shape vs communication at fixed volume g = 64, for the
    // paper's 3-D unit dependences, mapped along dimension 2.
    let deps = DependenceSet::paper_3d();
    println!("shapes of volume 64 and their mapped communication (formula 2):");
    println!("{:>14} | V_comm", "shape");
    for shape in rectangular_shapes(64, 3) {
        // Only show a readable subset: shapes with no 1-sides except k.
        if shape[0] > 1 && shape[1] > 1 {
            let t = Tiling::rectangular(&shape);
            let c = v_comm_mapped(&t, &deps, 2);
            println!("{:>14} | {}", format!("{shape:?}"), c);
        }
    }
    let (best, comm) = min_comm_rectangular_shape(64, &deps, 2).expect("some legal shape");
    println!("minimum-communication shape: {best:?} with V_comm = {comm}\n");

    // Part 2: the V landscape of experiment i under the analytic models.
    let machine = MachineParams::paper_cluster();
    let space = IterationSpace::from_extents(&[16, 16, 16384]);
    let heights = height_ladder(4, 4096, 16);
    let points = sweep_tile_height(
        &space,
        &deps,
        &machine,
        &[4, 4],
        2,
        &heights,
        OverlapMode::Serialized,
    );
    println!("analytic completion time vs tile height (experiment i):");
    println!(
        "{:>6} {:>8} {:>14} {:>14}",
        "V", "g", "non-overlap(s)", "overlap(s)"
    );
    for p in &points {
        println!(
            "{:>6} {:>8} {:>14.4} {:>14.4}",
            p.v,
            p.g,
            p.nonoverlap_us * 1e-6,
            p.overlap_us * 1e-6
        );
    }
    let bo = best_overlap(&points).expect("non-empty");
    let bn = best_nonoverlap(&points).expect("non-empty");
    println!(
        "\nbest overlap:     V = {:>4}, T = {:.4} s",
        bo.v,
        bo.overlap_us * 1e-6
    );
    println!(
        "best non-overlap: V = {:>4}, T = {:.4} s",
        bn.v,
        bn.nonoverlap_us * 1e-6
    );
    println!(
        "predicted improvement: {:.0}%",
        (1.0 - bo.overlap_us / bn.nonoverlap_us) * 100.0
    );

    // Part 3: full shape search at fixed volume on Example 1 — the
    // total-time optimum beats the paper's square heuristic.
    let machine1 = MachineParams::example_1();
    let deps1 = DependenceSet::example_1();
    let space1 = IterationSpace::from_extents(&[10_000, 1_000]);
    let plan = best_rectangular_plan(&space1, &deps1, &machine1, 100, 0, Mode::DuplexDma)
        .expect("feasible shapes");
    println!(
        "\nExample 1 shape search at g = 100: best shape {:?} → {:.4} s non-overlap \
         (the paper's 10×10 square gives 0.4000 s)",
        plan.sides,
        plan.nonoverlap_us * 1e-6
    );
}
