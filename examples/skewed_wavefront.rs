//! Skewing a time-stepped stencil so the paper's machinery applies.
//!
//! ```sh
//! cargo run --release --example skewed_wavefront
//! ```
//!
//! A 1-D Jacobi-style stencil iterated over time,
//! `A(t, x) = f(A(t−1, x−1), A(t−1, x), A(t−1, x+1))`, has dependences
//! `{(1,−1), (1,0), (1,1)}` — lexicographically positive, but the
//! negative component makes axis-aligned rectangular tiling **illegal**
//! (`HD ≥ 0` fails). The classical fix, implemented in
//! `tiling_core::transform`, is a unimodular skew `x' = x + t`, after
//! which all dependences are non-negative and the whole §3/§4 pipeline
//! (tiling → mapping → overlapping schedule) applies unchanged.

use overlap_tiling::prelude::*;

fn main() {
    // Parse the nest from the paper's textual notation. The `x+1` read
    // is the forward neighbor of the *previous* time step.
    let src = "
        FOR t = 0 TO 1023 DO
          FOR x = 0 TO 8191 DO
            A(t, x) = A(t-1, x-1) + A(t-1, x) + A(t-1, x+1)
          ENDFOR
        ENDFOR";
    // `A(t-1, x+1)` gives dependence (1, −1): the parser's uniform-access
    // model accepts it; extraction checks lexicographic positivity only.
    let nest = parse_loop_nest(src).expect("well-formed nest");
    let deps = nest.dependences().expect("lex-positive");
    println!("original dependences: {deps:?}");

    // Rectangular tiling is illegal as-is.
    let tile = Tiling::rectangular(&[16, 64]);
    println!(
        "rectangular 16×64 tiling legal before skewing? {}",
        tile.is_legal(&deps)
    );

    // Legalize with an automatic skew.
    let skew = legalizing_skew(&deps).expect("lex-positive sets are skewable");
    println!("\nlegalizing transform T = {:?}", skew.matrix());
    let skewed_deps = skew.apply_deps(&deps);
    println!("skewed dependences:   {skewed_deps:?}");
    println!(
        "rectangular 16×64 tiling legal after skewing?  {}",
        tile.is_legal(&skewed_deps)
    );

    // The skewed iteration domain (bounding box; the set itself is a
    // parallelepiped of identical volume).
    let bounds = skew.apply_space_bounds(nest.space());
    println!("\nskewed space bounds: {bounds:?}");

    // Generate the loops that scan the skewed domain exactly
    // (Fourier–Motzkin bounds — what a tiling compiler would emit).
    let gen = transformed_domain(nest.space(), &skew, &["t", "x"]);
    println!("\ngenerated loops for the skewed domain:\n{}", gen.render());

    // Schedule analysis on the skewed program: sweep tile shapes (the
    // paper's grain-tuning methodology), mapping along the longest
    // tiled dimension each time.
    let machine = MachineParams::paper_cluster();
    println!(
        "\n{:>10} | {:>24} | {:>24} | gain",
        "tile", "non-overlap (P, T)", "overlap (P, T)"
    );
    let mut best: Option<(Vec<i64>, f64, f64)> = None;
    for shape in [
        vec![8i64, 16],
        vec![16, 16],
        vec![16, 64],
        vec![32, 32],
        vec![64, 64],
    ] {
        let t = Tiling::rectangular(&shape);
        if !t.is_legal(&skewed_deps) {
            continue;
        }
        let tiled = t.tiled_space(&bounds);
        let mdim = tiled.longest_dimension();
        let no =
            NonOverlapSchedule::with_mapping(2, mdim).analyze(&t, &skewed_deps, &bounds, &machine);
        let ov = OverlapSchedule::with_mapping(2, mdim).analyze(
            &t,
            &skewed_deps,
            &bounds,
            &machine,
            OverlapMode::Serialized,
        );
        println!(
            "{:>10} | P = {:>4}, T = {:>8.4} s | P = {:>4}, T = {:>8.4} s | {:+.0}%",
            format!("{}×{}", shape[0], shape[1]),
            no.schedule_length,
            no.total_secs(),
            ov.schedule_length,
            ov.total_secs(),
            (1.0 - ov.total_us / no.total_us) * 100.0
        );
        if best
            .as_ref()
            .is_none_or(|(_, _, b_ov)| ov.total_secs() < *b_ov)
        {
            best = Some((shape.clone(), no.total_secs(), ov.total_secs()));
        }
    }
    let (shape, no_t, ov_t) = best.expect("at least one legal shape");
    println!(
        "\nbest overlapping grain: {}×{} — {:.4} s vs {:.4} s non-overlapping at the same shape",
        shape[0], shape[1], ov_t, no_t
    );
    println!(
        "(the win appears once the grain balances comm against compute — the paper's §4 tuning)"
    );
}
