//! What the compiler would emit: generated loop nests for the paper's
//! transformations, verified by construction.
//!
//! ```sh
//! cargo run --release --example codegen_tour
//! ```

use overlap_tiling::prelude::*;

fn main() {
    // 1. The §2.3 supernode scan of Example 1: tile loops + clamped
    //    point loops for 10×10 tiles over the 10000×1000 space.
    let tiling = Tiling::rectangular(&[10, 10]);
    let space = IterationSpace::from_extents(&[10_000, 1_000]);
    let nest = tiled_rectangular(&tiling, &space, &["i1", "i2"]);
    println!("— tiled scan of Example 1 (P = diag(10,10)) —\n");
    println!("{}", nest.render());

    // 2. A skewed wavefront domain: Fourier–Motzkin bounds.
    let t = Unimodular::skew(2, 1, 0, 1);
    let small = IterationSpace::from_extents(&[8, 6]);
    let skewed = transformed_domain(&small, &t, &["t", "x"]);
    println!("— skewed domain (x' = x + t) of an 8×6 box —\n");
    println!("{}", skewed.render());

    // 3. The generated bounds are executable: prove the scans are exact.
    let visited = nest.enumerate().len() as u64;
    println!(
        "tiled scan visits {} (tile, point) pairs = {} points ✓",
        visited,
        space.volume()
    );
    let skew_visited = skewed.enumerate().len() as u64;
    println!(
        "skewed scan visits {} points = {} original points ✓",
        skew_visited,
        small.volume()
    );

    // 4. Composed transformation in 3-D.
    let t3 = Unimodular::skew(3, 2, 0, 1).compose(&Unimodular::skew(3, 1, 0, 1));
    let box3 = IterationSpace::from_extents(&[4, 4, 4]);
    let nest3 = transformed_domain(&box3, &t3, &["a", "b", "c"]);
    println!("\n— doubly skewed 3-D domain —\n");
    println!("{}", nest3.render());
}
