//! The paper's §5 experiment on the simulated cluster.
//!
//! ```sh
//! cargo run --release --example stencil3d_cluster [V]
//! ```
//!
//! Builds the complete blocking (`ProcB`) and non-blocking (`ProcNB`)
//! MPI programs for the 16×16×16384 space on a 4×4 processor grid,
//! interprets them on the discrete-event cluster model calibrated to the
//! paper's measured constants, and prints both completion times plus a
//! Gantt chart of a small instance so the two schedules' structure
//! (Fig. 1 vs Fig. 2) is visible.

use overlap_tiling::prelude::*;

fn main() {
    let v: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(444); // the paper's V_optimal for experiment i

    let machine = MachineParams::paper_cluster();
    let problem = ClusterProblem::new(
        Tiling::rectangular(&[4, 4, v]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[16, 16, 16384]),
        2,
    )
    .expect("paper layout");
    println!(
        "experiment i: 16×16×16384 on 4×4 processors, tile 4×4×{v} (g = {})",
        4 * 4 * v
    );
    println!("pipeline steps per rank: {}\n", problem.steps());

    let cfg = SimConfig::new(machine).with_trace(false);
    let blocking = simulate(cfg, problem.blocking_programs(&machine)).expect("no deadlock");
    let overlap = simulate(cfg, problem.overlapping_programs(&machine)).expect("no deadlock");
    println!("blocking    (ProcB):  {}", blocking.makespan);
    println!("overlapping (ProcNB): {}", overlap.makespan);
    println!(
        "improvement: {:.0}% (paper measured 38% at its optimum)\n",
        (1.0 - overlap.makespan.as_us() / blocking.makespan.as_us()) * 100.0
    );

    // A small instance with traces, to *see* the schedules.
    let small = ClusterProblem::new(
        Tiling::rectangular(&[4, 4, 64]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[8, 8, 512]),
        2,
    )
    .expect("small layout");
    let cfg_t = SimConfig::new(machine);
    let b = simulate(cfg_t, small.blocking_programs(&machine)).expect("no deadlock");
    let o = simulate(cfg_t, small.overlapping_programs(&machine)).expect("no deadlock");
    let ranks: Vec<usize> = (0..4).collect();
    let horizon = b.makespan.max(o.makespan);
    println!("blocking schedule, 4 ranks (R recv, # compute, S send):");
    println!("{}", b.trace.gantt(&ranks, horizon, 90));
    println!("overlapping schedule (r/s posts, # compute):");
    println!("{}", o.trace.gantt(&ranks, horizon, 90));
}
