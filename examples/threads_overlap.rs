//! Real overlap, measured: run the paper's 3-D kernel on OS threads
//! with injected wire latency, both schedules, and verify the results
//! bit-for-bit against the sequential sweep.
//!
//! ```sh
//! cargo run --release --example threads_overlap
//! ```
//!
//! The threaded `msgpass` backend stamps every message at send time and
//! releases it to the receiver only after `t_s + b·t_t` has elapsed —
//! so a rank that computes while its neighbors' faces are "on the wire"
//! genuinely hides that latency in wall-clock time, which is the
//! physical effect the paper exploits.

use overlap_tiling::prelude::*;

fn main() {
    let d = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 4096,
        pi: 2,
        pj: 2,
        v: 256,
        boundary: 1.0,
    };
    let lat = LatencyModel {
        startup_us: 400.0,
        per_byte_us: 0.05,
    };
    println!(
        "space {}×{}×{} on {}×{} threads, tile height V = {}, {} steps",
        d.nx,
        d.ny,
        d.nz,
        d.pi,
        d.pj,
        d.v,
        d.steps()
    );
    println!(
        "injected wire latency: {} µs + {} µs/B\n",
        lat.startup_us, lat.per_byte_us
    );

    let seq_start = std::time::Instant::now();
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    println!(
        "sequential reference: {:.3} s",
        seq_start.elapsed().as_secs_f64()
    );

    let (g_block, t_block) =
        run_paper3d_dist(d, lat, ExecMode::Blocking).expect("valid decomposition");
    println!(
        "blocking  (ProcB):    {:.3} s   bitwise-correct: {}",
        t_block.as_secs_f64(),
        g_block.max_abs_diff(&seq) == 0.0
    );

    let (g_over, t_over) =
        run_paper3d_dist(d, lat, ExecMode::Overlapping).expect("valid decomposition");
    println!(
        "overlap   (ProcNB):   {:.3} s   bitwise-correct: {}",
        t_over.as_secs_f64(),
        g_over.max_abs_diff(&seq) == 0.0
    );
    println!(
        "\nmeasured improvement: {:.0}%",
        (1.0 - t_over.as_secs_f64() / t_block.as_secs_f64()) * 100.0
    );
}
