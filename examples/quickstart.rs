//! Quickstart: tile a 2-D loop nest and compare the two schedules.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline of the paper on its own Example 1: model the
//! loop, extract dependences, pick a tiling, check legality, price the
//! communication, and predict completion time under the classical
//! non-overlapping schedule (§3) and the overlapping schedule (§4).

use overlap_tiling::prelude::*;

fn main() {
    // The loop of §3 Example 1:
    //   for i1 = 0..9999, i2 = 0..999:
    //     A[i1][i2] = A[i1-1][i2-1] + A[i1-1][i2] + A[i1][i2-1]
    let nest = LoopNest::example_1();
    let deps = nest.dependences().expect("lexicographically positive");
    println!("iteration space: {:?}", nest.space());
    println!("dependences:     {deps:?}\n");

    // Square 10×10 tiles (the paper's optimal choice for this machine).
    let tiling = Tiling::rectangular(&[10, 10]);
    println!(
        "tiling P = diag(10,10), g = {} points/tile",
        tiling.volume()
    );
    println!("legal (HD ≥ 0):          {}", tiling.is_legal(&deps));
    println!(
        "deps fit in one tile:    {}",
        tiling.contains_dependences(&deps)
    );

    // Communication pricing (§2.4).
    println!("V_comm all surfaces (1): {}", v_comm_total(&tiling, &deps));
    println!(
        "V_comm mapped on i1 (2): {}\n",
        v_comm_mapped(&tiling, &deps, 0)
    );

    // The machine of Example 1: t_c = 1 µs, t_s = 100 t_c, Ethernet.
    let machine = MachineParams::example_1();

    let no = NonOverlapSchedule::with_mapping(2, 0).analyze(&tiling, &deps, nest.space(), &machine);
    println!("non-overlapping schedule Π = (1,1):");
    println!("  P(g) = {} hyperplanes", no.schedule_length);
    println!(
        "  step = {:.0} µs = T_comp {:.0} + T_startup {:.0} + T_transmit {:.0}",
        no.step_us, no.t_comp_us, no.t_startup_us, no.t_transmit_us
    );
    println!("  T    = {:.4} s\n", no.total_secs());

    let ov = OverlapSchedule::with_mapping(2, 0).analyze(
        &tiling,
        &deps,
        nest.space(),
        &machine,
        OverlapMode::DuplexDma,
    );
    println!("overlapping schedule Π = (1,2):");
    println!("  P(g) = {} hyperplanes", ov.schedule_length);
    println!(
        "  step = {:.0} µs = max(CPU lane {:.0}, comm lane {:.0})",
        ov.step_us, ov.cpu_lane_us, ov.comm_lane_us
    );
    println!("  T    = {:.4} s", ov.total_secs());
    println!(
        "\noverlap wins by {:.0}% — the paper's 0.4 s → 0.24 s result.",
        (1.0 - ov.total_us / no.total_us) * 100.0
    );
}
