#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repository root.
set -eu

cargo build --release --workspace
cargo build --workspace --examples
cargo test -q --workspace

# Chaos suite under a fixed seed (0xC0FFEE in decimal), so the fault
# schedule exercised by CI is reproducible at a desk.
CHAOS_SEED=12648430 cargo test -q --test chaos_faults

# Clippy is part of the gate when the component is installed; degrade
# gracefully on minimal toolchains.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci.sh: cargo-clippy not installed, skipping lint" >&2
fi

echo "ci.sh: all checks passed"
