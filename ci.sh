#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repository root.
set -eu

cargo build --release --workspace
cargo build --workspace --examples
cargo test -q --workspace

# Chaos suite under a fixed seed (0xC0FFEE in decimal), so the fault
# schedule exercised by CI is reproducible at a desk.
CHAOS_SEED=12648430 cargo test -q --test chaos_faults

# Clippy is part of the gate when the component is installed; degrade
# gracefully on minimal toolchains.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci.sh: cargo-clippy not installed, skipping lint" >&2
fi

# Perf gate. The committed BENCH_stencil.json is the reference: it must
# carry the transport-ablation rows (mpsc vs shared-slots). A quick
# benchmark run (shorter pipeline, separate output file) then re-measures
# on this machine: the shared-slot rows must show a zero steady-state
# allocation slope, and the headline speedup must not regress more than
# 10% below the committed reference.
grep -q '"transport": "shared-slots"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the shared-slots transport-ablation rows" >&2
    exit 1
}
ref_speedup=$(sed -n 's/^    "speedup": \([0-9.]*\).*/\1/p' BENCH_stencil.json | head -n 1)
[ -n "$ref_speedup" ] || {
    echo "ci.sh: could not read the headline speedup from BENCH_stencil.json" >&2
    exit 1
}

cargo run --release -q -p bench --bin paper -- perf --quick

quick_json=results/BENCH_quick.json
grep -q '"transport": "shared-slots"' "$quick_json" || {
    echo "ci.sh: quick perf run produced no shared-slots transport rows" >&2
    exit 1
}
awk -F'"steady_allocs_per_step": ' '
    /"transport": "shared-slots"/ && /"steady_allocs_per_step"/ {
        split($2, a, "}"); slope = a[1] + 0
        if (slope >= 0.5 || slope <= -0.5) {
            printf "ci.sh: shared-slots steady-state allocation slope is %s allocs/step, expected 0\n", slope
            bad = 1
        }
    }
    END { exit bad }
' "$quick_json" || exit 1
quick_speedup=$(sed -n 's/^    "speedup": \([0-9.]*\).*/\1/p' "$quick_json" | head -n 1)
awk -v q="$quick_speedup" -v r="$ref_speedup" 'BEGIN {
    if (q + 0 < 0.9 * r) {
        printf "ci.sh: headline speedup regressed: quick run %.3fx vs committed %.3fx (floor %.3fx)\n", q, r, 0.9 * r
        exit 1
    }
    printf "ci.sh: perf gate ok — quick headline %.2fx vs committed %.2fx\n", q, r
}' || exit 1

echo "ci.sh: all checks passed"
