#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repository root.
set -eu

# Formatting is a hard gate: rustfmt ships with every toolchain the
# project supports, so there is no missing-component escape hatch.
cargo fmt --all -- --check || {
    echo "ci.sh: formatting gate failed — run 'cargo fmt --all' and re-commit" >&2
    exit 1
}

cargo build --release --workspace
cargo build --workspace --examples
cargo test -q --workspace

# Chaos suite under a fixed seed (0xC0FFEE in decimal), so the fault
# schedule exercised by CI is reproducible at a desk.
CHAOS_SEED=12648430 cargo test -q --test chaos_faults

# Clippy is part of the gate when the component is installed. A
# CI-tagged run (CI=1) must not silently lose the lint coverage, so a
# missing clippy is a hard failure there; local minimal toolchains
# still degrade gracefully.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
elif [ "${CI:-0}" = "1" ]; then
    echo "ci.sh: CI=1 but cargo-clippy is not installed — the lint gate cannot run" >&2
    exit 1
else
    echo "ci.sh: cargo-clippy not installed, skipping lint (local dev only)" >&2
fi

# SAFETY lint: every line using the `unsafe` keyword in library, bin or
# test sources must carry a `// SAFETY:` comment within the three lines
# above it (or on the line itself). Attribute mentions like
# `forbid(unsafe_code)` don't use the bare token and are not matched;
# comment lines are skipped.
#
# LINT lint, same shape: every `#[allow(clippy::...)]` or
# `#[allow(unsafe_code)]` attribute must carry a `// LINT:`
# justification on the line or within the three lines above it, so a
# silenced lint always says why it was silenced.
find crates src tests -name '*.rs' -print | sort | xargs awk '
    FNR == 1 { ctx[0] = ctx[1] = ctx[2] = ctx[3] = "" }
    {
        stripped = $0
        sub(/^[ \t]+/, "", stripped)
        is_comment = (stripped ~ /^\/\//)
        if (!is_comment && $0 ~ /(^|[^_[:alnum:]])unsafe([^_[:alnum:]]|$)/) {
            ok = ($0 ~ /SAFETY:/)
            for (i = 1; i <= 3 && !ok; i++)
                if (FNR > i && ctx[(FNR - i) % 4] ~ /SAFETY:/) ok = 1
            if (!ok) {
                printf "%s:%d: unsafe without a SAFETY: comment\n", FILENAME, FNR
                bad = 1
            }
        }
        if (!is_comment && $0 ~ /#\[allow\((clippy::|unsafe_code)/) {
            ok = ($0 ~ /LINT:/)
            for (i = 1; i <= 3 && !ok; i++)
                if (FNR > i && ctx[(FNR - i) % 4] ~ /LINT:/) ok = 1
            if (!ok) {
                printf "%s:%d: #[allow(...)] without a LINT: justification\n", FILENAME, FNR
                bad = 1
            }
        }
        ctx[FNR % 4] = $0
    }
    END { exit bad }
' || {
    echo "ci.sh: SAFETY/LINT lint failed — annotate every unsafe and allow() site" >&2
    exit 1
}

# Static analysis gate: pre-flight every shipped configuration, prove
# the seeded-bad chaos plans are rejected with their typed errors, and
# exhaustively model-check the SPSC slot ring (the command exits
# nonzero on any violation).
cargo run --release -q -p bench --bin paper -- analyze

# Model-check gate: the DPOR sweep over the shipped concurrency
# protocols (pool handoff, single-flight compiler, world pool, tuned
# cache, slot transport) must come back clean, every seeded-bug
# variant must be caught with a concrete schedule prefix, and the
# partial-order reduction must demonstrably prune: at least one
# 3-thread model explored strictly fewer schedules than the unreduced
# interleaving count. The command exits nonzero on any miss; the gate
# re-checks the PASS line and the reduction claim so a silently
# truncated sweep can't pass.
mc_sweep=$(cargo run --release -q -p bench --bin paper -- modelcheck) || {
    echo "$mc_sweep"
    echo "ci.sh: paper modelcheck sweep failed" >&2
    exit 1
}
echo "$mc_sweep" | grep -q \
    "PASS: all shipped protocols clean, all seeded bugs caught" || {
    echo "$mc_sweep"
    echo "ci.sh: modelcheck sweep did not report the full PASS line" >&2
    exit 1
}
echo "$mc_sweep" | grep -q "DPOR reduction ratio > 1 on a 3-thread model" || {
    echo "$mc_sweep"
    echo "ci.sh: modelcheck sweep did not assert the DPOR reduction claim" >&2
    exit 1
}
echo "ci.sh: modelcheck gate ok — DPOR sweep clean, seeded bugs caught"

# The mini-loom interleaving suite must run (and pass) explicitly, so a
# filtered-out or renamed suite can't silently drop the coverage.
mc_out=$(cargo test -q -p msgpass modelcheck 2>&1) || {
    echo "$mc_out"
    echo "ci.sh: msgpass modelcheck suite failed" >&2
    exit 1
}
echo "$mc_out" | grep -q "0 failed" || {
    echo "$mc_out"
    echo "ci.sh: msgpass modelcheck suite did not report a clean pass" >&2
    exit 1
}

# Sweep gate: a fixed-seed quick design-space sweep must cover the CI
# floor of 500 configs with zero worker panics, emit the stable column
# schema, and — because the generator, the simulator and the formatter
# are all deterministic — reproduce byte-identical output on a re-run.
sweep_csv=results/sweep.csv
sweep_json=results/sweep_summary.json
cargo run --release -q -p bench --bin paper -- sweep --quick --seed 2026
head -n 1 "$sweep_csv" | grep -q \
    '^id,slice,preset,comm_scale,measured_curve,hetero_spread,grid_i,grid_j,side_i,side_j,nx,ny,nz,v,schedule,duplex,topology,seed,status,ranks,steps,makespan_us,mean_util,min_util,max_util,compute_fraction,predicted_us,pred_err_rel,pred_in_model$' || {
    echo "ci.sh: sweep CSV schema changed — update the gate and the docs together" >&2
    exit 1
}
sweep_rows=$(($(wc -l < "$sweep_csv") - 1))
[ "$sweep_rows" -ge 500 ] || {
    echo "ci.sh: quick sweep covered $sweep_rows configs, CI floor is 500" >&2
    exit 1
}
grep -q '"panics": 0' "$sweep_json" || {
    echo "ci.sh: sweep workers panicked — a config escaped the panic isolation contract" >&2
    exit 1
}
grep -q '"fig9"' "$sweep_json" && grep -q '"fig10"' "$sweep_json" && grep -q '"fig11"' "$sweep_json" || {
    echo "ci.sh: sweep summary is missing the figure slices" >&2
    exit 1
}
cp "$sweep_csv" "$sweep_csv.first"
cp "$sweep_json" "$sweep_json.first"
cargo run --release -q -p bench --bin paper -- sweep --quick --seed 2026 >/dev/null
cmp -s "$sweep_csv" "$sweep_csv.first" && cmp -s "$sweep_json" "$sweep_json.first" || {
    echo "ci.sh: sweep re-run with the same seed was not byte-identical" >&2
    exit 1
}
rm -f "$sweep_csv.first" "$sweep_json.first"
echo "ci.sh: sweep gate ok — $sweep_rows configs, zero panics, byte-identical re-run"

# Miri hunts UB in the unsafe slot-transport paths when the component
# is installed; degrade gracefully on minimal toolchains.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p msgpass
else
    echo "ci.sh: cargo-miri not installed, skipping UB check" >&2
fi

# Perf gate. The committed BENCH_stencil.json is the reference: it must
# carry the transport-ablation rows (mpsc vs shared-slots), the
# kernel-tier ablation rows and the weak/strong scaling rows. A quick
# benchmark run (shorter pipeline, separate output file) then re-measures
# on this machine: the shared-slot rows must show a zero steady-state
# allocation slope, and neither the headline speedup nor any per-rank-
# count scaling row may regress more than 10% below the committed
# reference. Wall-clock gates on a shared, oversubscribed box are noisy
# even with best-of-N rows, so a failed comparison re-measures once
# before being declared a regression, and the committed reference rows
# record the most conservative sustained measurement observed on the
# reference box (host-level contention swings single runs well past
# 10%; a floor pinned to a lucky run would reject healthy builds).
grep -q '"transport": "shared-slots"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the shared-slots transport-ablation rows" >&2
    exit 1
}
grep -q '"kernel": "paper3d"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the kernel-tier ablation rows" >&2
    exit 1
}
grep -q '"kind": "weak"' BENCH_stencil.json && grep -q '"kind": "strong"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the weak/strong scaling rows" >&2
    exit 1
}
grep -q '"jobs_per_sec"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the plan-service smoke row" >&2
    exit 1
}
ref_jobs_per_sec=$(sed -n 's/^    "jobs_per_sec": \([0-9.]*\).*/\1/p' BENCH_stencil.json | head -n 1)
[ -n "$ref_jobs_per_sec" ] || {
    echo "ci.sh: could not read the service jobs/sec from BENCH_stencil.json" >&2
    exit 1
}
ref_speedup=$(sed -n 's/^    "speedup": \([0-9.]*\).*/\1/p' BENCH_stencil.json | head -n 1)
[ -n "$ref_speedup" ] || {
    echo "ci.sh: could not read the headline speedup from BENCH_stencil.json" >&2
    exit 1
}

quick_json=results/BENCH_quick.json

# One quick measurement pass plus every comparison against the committed
# reference. Returns nonzero on any miss; the caller decides whether to
# re-measure or fail.
perf_quick_gates() {
    cargo run --release -q -p bench --bin paper -- perf --quick || return 1

    grep -q '"transport": "shared-slots"' "$quick_json" || {
        echo "ci.sh: quick perf run produced no shared-slots transport rows" >&2
        return 1
    }
    grep -q '"kernel": "paper3d"' "$quick_json" || {
        echo "ci.sh: quick perf run produced no kernel-tier ablation rows" >&2
        return 1
    }
    awk -F'"steady_allocs_per_step": ' '
        /"transport": "shared-slots"/ && /"steady_allocs_per_step"/ {
            split($2, a, "}"); slope = a[1] + 0
            if (slope >= 0.5 || slope <= -0.5) {
                printf "ci.sh: shared-slots steady-state allocation slope is %s allocs/step, expected 0\n", slope
                bad = 1
            }
        }
        END { exit bad }
    ' "$quick_json" || return 1
    quick_speedup=$(sed -n 's/^    "speedup": \([0-9.]*\).*/\1/p' "$quick_json" | head -n 1)
    awk -v q="$quick_speedup" -v r="$ref_speedup" 'BEGIN {
        if (q + 0 < 0.9 * r) {
            printf "ci.sh: headline speedup regressed: quick run %.3fx vs committed %.3fx (floor %.3fx)\n", q, r, 0.9 * r
            exit 1
        }
        printf "ci.sh: perf gate ok — quick headline %.2fx vs committed %.2fx\n", q, r
    }' || return 1

    # Scaling regression gate: every per-rank-count throughput row of
    # the quick run (best-of-N, identical configuration to the
    # reference) must hold within 10% of the committed value.
    awk '
        FNR == 1 { file++ }
        /"kind": / {
            split($0, k, /"kind": "/);          split(k[2], kk, /"/)
            split($0, w, /"world": "/);         split(w[2], ww, /"/)
            split($0, c, /"cells_per_sec": /);  split(c[2], cc, /[,}]/)
            key = kk[1] "/" ww[1]
            if (file == 1) ref[key] = cc[1] + 0
            else {
                seen++
                if (!(key in ref)) {
                    printf "ci.sh: scaling row %s missing from the committed reference\n", key
                    bad = 1
                } else if (cc[1] + 0 < 0.9 * ref[key]) {
                    printf "ci.sh: scaling row %s regressed: %.1f Mcells/s vs committed %.1f (floor %.1f)\n", \
                        key, cc[1] / 1e6, ref[key] / 1e6, 0.9 * ref[key] / 1e6
                    bad = 1
                }
            }
        }
        END {
            if (seen < 6) {
                printf "ci.sh: quick run produced %d scaling rows, expected 6\n", seen
                bad = 1
            }
            exit bad
        }
    ' BENCH_stencil.json "$quick_json" || return 1

    # Plan-service gate: the quick run's smoke (same clients, jobs and
    # shapes as the reference) must hit the plan cache and sustain
    # within 10% of the committed jobs/sec.
    quick_hit=$(sed -n 's/^    "cache_hit_ratio": \([0-9.]*\).*/\1/p' "$quick_json" | head -n 1)
    quick_jps=$(sed -n 's/^    "jobs_per_sec": \([0-9.]*\).*/\1/p' "$quick_json" | head -n 1)
    awk -v hit="$quick_hit" -v q="$quick_jps" -v r="$ref_jobs_per_sec" 'BEGIN {
        if (hit + 0 <= 0) {
            printf "ci.sh: plan-service smoke never hit the cache (hit ratio %s)\n", hit
            exit 1
        }
        if (q + 0 < 0.9 * r) {
            printf "ci.sh: plan-service throughput regressed: %.0f jobs/s vs committed %.0f (floor %.0f)\n", q, r, 0.9 * r
            exit 1
        }
        printf "ci.sh: service gate ok — %.0f jobs/s (committed %.0f), cache hit ratio %.2f\n", q, r, hit
    }' || return 1
}

if ! perf_quick_gates; then
    echo "ci.sh: perf gate missed once, re-measuring (noisy box tolerance)" >&2
    perf_quick_gates || exit 1
fi

# Autotune gate. The committed BENCH_stencil.json must carry the tuner's
# out-of-model acceptance rows. A quick tuning run on the fixed seed
# then re-executes the closed loop on this machine (the sweep gate above
# already wrote the deterministic results/tune_train.csv surrogate
# slice): `paper tune` itself asserts the tuned config is never slower
# than the closed-form seed and that the two deterministic simulator
# rows beat it by >=5%; the gate re-checks the byte-stable row schema
# and holds the prediction-error metrics below the committed thresholds.
# The thread row rides real wall-clock, so a miss re-measures once
# before failing.
grep -q '"tune": {' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the tune section" >&2
    exit 1
}
grep -q '"name": "partial-tile"' BENCH_stencil.json &&
    grep -q '"name": "hetero-4x4"' BENCH_stencil.json || {
    echo "ci.sh: BENCH_stencil.json is missing the out-of-model tune rows" >&2
    exit 1
}

tune_json=results/BENCH_tune_quick.json
tune_quick_gates() {
    cargo run --release -q -p bench --bin paper -- tune --quick --seed 7 || return 1

    grep -q '"name": "thread-quick", "backend": "thread", "grid": \[8, 8, 1024\], "procs": \[2, 2\], "schedule": "overlap", "seed_v": ' "$tune_json" || {
        echo "ci.sh: tune row schema changed — update the gate and the docs together" >&2
        return 1
    }
    awk '
        /"name": / {
            split($0, n, /"name": "/);           split(n[2], nn, /"/)
            split($0, s, /"tuned_speedup": /);   split(s[2], ss, /[,}]/)
            split($0, e, /"pred_err_rel": /);    split(e[2], ee, /[,}]/)
            split($0, g, /"pred_err_norm": /);   split(g[2], gg, /[,}]/)
            name = nn[1]; speedup = ss[1] + 0; raw = ee[1] + 0; norm = gg[1] + 0
            rows++
            if (speedup < 1.0) {
                printf "ci.sh: tune row %s: tuned config measured slower than the closed-form seed (%.3fx)\n", name, speedup
                bad = 1
            }
            if (name != "thread-quick") {
                if (speedup < 1.05) {
                    printf "ci.sh: tune row %s: out-of-model speedup %.3fx is under the 5%% acceptance bar\n", name, speedup
                    bad = 1
                }
                if (raw > 0.6 || raw < -0.6 || norm > 0.5 || norm < -0.5) {
                    printf "ci.sh: tune row %s: prediction error over threshold (rel %.3f, norm %.3f)\n", name, raw, norm
                    bad = 1
                }
            }
        }
        END {
            if (rows != 3) {
                printf "ci.sh: quick tune produced %d rows, expected 3\n", rows
                bad = 1
            }
            exit bad
        }
    ' "$tune_json" || return 1
    echo "ci.sh: tune gate ok — tuned >= closed-form seed, out-of-model rows beat it by >=5%"
}

if ! tune_quick_gates; then
    echo "ci.sh: tune gate missed once, re-measuring (noisy box tolerance)" >&2
    tune_quick_gates || exit 1
fi

# Many-rank smoke: a 4×4 thread world with pooled tiles runs under the
# full analyzer pre-flight (the one path `paper perf` does not disable)
# and must verify bitwise against the sequential sweep.
smoke_out=$(cargo run --release -q -p bench --bin paper -- \
    perf --procs 4x4 --grid 16x16x256 --workers 2) || {
    echo "$smoke_out"
    echo "ci.sh: 4x4 pooled smoke run failed" >&2
    exit 1
}
echo "$smoke_out" | grep -q "PASS" || {
    echo "$smoke_out"
    echo "ci.sh: 4x4 pooled smoke run did not report PASS" >&2
    exit 1
}

# Plan-service TCP smoke: an ephemeral `paper serve` instance under
# concurrent mixed compile/execute clients over localhost. PASS
# requires every reply ok and a nonzero plan-cache hit ratio.
serve_out=$(cargo run --release -q -p bench --bin paper -- serve --smoke) || {
    echo "$serve_out"
    echo "ci.sh: plan-service TCP smoke failed" >&2
    exit 1
}
echo "$serve_out" | grep -q "PASS" || {
    echo "$serve_out"
    echo "ci.sh: plan-service TCP smoke did not report PASS" >&2
    exit 1
}

echo "ci.sh: all checks passed"
