//! Property tests for the sweep harness.
//!
//! The sweep's contract is *reproducibility*: the CSV is a pure
//! function of the seed — not of the worker count, not of thread
//! scheduling, not of which run it is. These properties drive that over
//! randomized seeds, plus the row-level sanity bounds every consumer
//! (the CI gate, the future autotuner) relies on.

use proptest::prelude::*;
use sweep::config::{generate, SweepSpec};
use sweep::output::{csv_header, summary_json, to_csv};
use sweep::run::{run_sweep, RowStatus};

fn small_spec(seed: u64) -> SweepSpec {
    SweepSpec {
        seed,
        random_configs: 10,
        quick: true,
        figures: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed ⇒ byte-identical CSV, across runs and worker counts.
    #[test]
    fn same_seed_same_csv_bytes(seed in 0u64..10_000) {
        let configs = generate(&small_spec(seed));
        let first = to_csv(&run_sweep(&configs, 1).rows);
        let second = to_csv(&run_sweep(&configs, 7).rows);
        prop_assert_eq!(&first, &second);
        // And regeneration from the seed gives the same configs too.
        let regen = to_csv(&run_sweep(&generate(&small_spec(seed)), 3).rows);
        prop_assert_eq!(&first, &regen);
    }

    /// Every simulated row satisfies the summary-stat bounds.
    #[test]
    fn row_stats_are_bounded(seed in 0u64..10_000) {
        let out = run_sweep(&generate(&small_spec(seed)), 4);
        prop_assert_eq!(out.panics, 0);
        for r in &out.rows {
            match r.status {
                RowStatus::Ok => {
                    let m = r.metrics.expect("ok row has metrics");
                    prop_assert!(m.makespan_us > 0.0, "{:?}", r);
                    prop_assert!(m.ranks > 0 && m.steps > 0, "{:?}", r);
                    prop_assert!(0.0 <= m.min_util, "{:?}", r);
                    prop_assert!(m.min_util <= m.mean_util + 1e-12, "{:?}", r);
                    prop_assert!(m.mean_util <= m.max_util + 1e-12, "{:?}", r);
                    prop_assert!(m.max_util <= 1.0 + 1e-9, "{:?}", r);
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&m.compute_fraction), "{:?}", r);
                    prop_assert!(m.predicted_us > 0.0, "{:?}", r);
                    prop_assert!(m.pred_err_rel.is_finite(), "{:?}", r);
                }
                _ => prop_assert!(r.metrics.is_none(), "{:?}", r),
            }
        }
    }

    /// The CSV schema is stable: header arity equals every row's arity,
    /// and the summary JSON never reports panics for these spaces.
    #[test]
    fn csv_schema_holds(seed in 0u64..10_000) {
        let out = run_sweep(&generate(&small_spec(seed)), 4);
        let csv = to_csv(&out.rows);
        let cols = csv_header().split(',').count();
        for line in csv.lines() {
            prop_assert_eq!(line.split(',').count(), cols, "{}", line);
        }
        let json = summary_json(seed, &out);
        prop_assert!(json.contains("\"panics\": 0"), "{}", json);
    }
}
