//! # sweep
//!
//! A Monte-Carlo design-space sweep harness over [`cluster_sim`].
//!
//! The paper (§5) tunes the tile height `V` experimentally, one curve at
//! a time, on one machine, one grid and one iteration space. This crate
//! industrialises that methodology: a **seeded generator** enumerates
//! points of the configuration space
//!
//! ```text
//! machine preset × communication scale × measured transfer curve
//!   × heterogeneous node speeds × processor grid × iteration space
//!   (divisible and boundary-clipped) × tile height V × schedule
//!   (blocking / overlapping) × duplex × topology
//! ```
//!
//! a **worker pool** runs one full cluster simulation per point (each
//! point isolated behind `catch_unwind`, so one degenerate config cannot
//! abort a batch), and the results land in a **columnar CSV** plus a
//! **JSON summary** with percentile aggregates per named slice.
//!
//! Every row also carries the [`tiling_core::closed_form`] prediction
//! for its point and the relative error against the simulated makespan —
//! the sweep is exactly the instrument that measures where the paper's
//! affine model stops being faithful (measured piecewise transfer
//! curves, heterogeneous fleets, shared buses).
//!
//! Determinism is load-bearing: the same sweep seed produces the same
//! configs, the same per-config seeds, and — because the simulator is
//! deterministic — byte-identical CSV output regardless of worker count
//! or thread scheduling. CI gates on an exact re-run comparison.
//!
//! * [`config`] — axes, seeded generation, the Figs. 9–12 named slices.
//! * [`run`] — the panic-isolating parallel executor.
//! * [`output`] — CSV schema and the JSON percentile summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod output;
pub mod run;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::config::{generate, MachinePreset, Mix64, Schedule, SweepConfig, SweepSpec};
    pub use crate::output::{csv_header, summary_json, to_csv, training_csv};
    pub use crate::run::{run_sweep, RowStatus, SweepOutcome, SweepRow};
}
