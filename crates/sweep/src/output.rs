//! Columnar CSV output and the JSON percentile summary.
//!
//! Formatting is part of the determinism contract: every float is
//! printed at a fixed precision, rows are emitted in config order, and
//! slices appear in first-seen order — so the same seed yields
//! byte-identical files, which CI verifies with a literal re-run `cmp`.

use crate::run::{RowStatus, SweepOutcome, SweepRow};
use std::fmt::Write as _;

/// The CSV column list, in order. The header line is this joined with
/// commas; CI gates on it verbatim.
pub const CSV_COLUMNS: [&str; 29] = [
    "id",
    "slice",
    "preset",
    "comm_scale",
    "measured_curve",
    "hetero_spread",
    "grid_i",
    "grid_j",
    "side_i",
    "side_j",
    "nx",
    "ny",
    "nz",
    "v",
    "schedule",
    "duplex",
    "topology",
    "seed",
    "status",
    "ranks",
    "steps",
    "makespan_us",
    "mean_util",
    "min_util",
    "max_util",
    "compute_fraction",
    "predicted_us",
    "pred_err_rel",
    "pred_in_model",
];

/// The CSV header line (no trailing newline).
pub fn csv_header() -> String {
    CSV_COLUMNS.join(",")
}

/// Render rows as a CSV document (header + one line per row).
pub fn to_csv(rows: &[SweepRow]) -> String {
    let mut out = csv_header();
    out.push('\n');
    for r in rows {
        let c = &r.config;
        let _ = write!(
            out,
            "{},{},{},{:.2},{},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            c.id,
            c.slice,
            c.preset.name(),
            c.comm_scale,
            c.measured_curve,
            c.hetero_spread,
            c.grid[0],
            c.grid[1],
            c.cross_sides[0],
            c.cross_sides[1],
            c.extents[0],
            c.extents[1],
            c.extents[2],
            c.v,
            c.schedule.name(),
            c.duplex,
            if c.shared_bus {
                "shared_bus"
            } else {
                "switched"
            },
            c.seed,
            r.status.name(),
        );
        match &r.metrics {
            Some(m) => {
                let _ = write!(
                    out,
                    ",{},{},{:.3},{:.6},{:.6},{:.6},{:.6},{:.3},{:.6},{}",
                    m.ranks,
                    m.steps,
                    m.makespan_us,
                    m.mean_util,
                    m.min_util,
                    m.max_util,
                    m.compute_fraction,
                    m.predicted_us,
                    m.pred_err_rel,
                    m.pred_in_model,
                );
            }
            None => out.push_str(",,,,,,,,,,"),
        }
        out.push('\n');
    }
    out
}

/// Render the training slice the autotune surrogate consumes: one line
/// per `Ok` row with the schedule, height, closed-form prediction and
/// simulated makespan, plus the in-model flag. Same determinism
/// contract as [`to_csv`].
pub fn training_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("schedule,v,predicted_us,makespan_us,pred_in_model\n");
    for r in rows {
        if let Some(m) = &r.metrics {
            let _ = writeln!(
                out,
                "{},{},{:.3},{:.3},{}",
                r.config.schedule.name(),
                r.config.v,
                m.predicted_us,
                m.makespan_us,
                m.pred_in_model,
            );
        }
    }
    out
}

/// Nearest-rank percentile of a non-empty sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregates of one named slice.
struct SliceAgg {
    name: &'static str,
    count: usize,
    ok: usize,
    makespans: Vec<f64>,
    mean_utils: Vec<f64>,
    abs_errs: Vec<f64>,
    /// For figure slices: (min overlap makespan, its V, min blocking).
    best_overlap: Option<(f64, i64)>,
    best_blocking: Option<f64>,
}

fn aggregate(rows: &[SweepRow]) -> Vec<SliceAgg> {
    let mut slices: Vec<SliceAgg> = Vec::new();
    for r in rows {
        let name = r.config.slice;
        if !slices.iter().any(|s| s.name == name) {
            slices.push(SliceAgg {
                name,
                count: 0,
                ok: 0,
                makespans: Vec::new(),
                mean_utils: Vec::new(),
                abs_errs: Vec::new(),
                best_overlap: None,
                best_blocking: None,
            });
        }
        let s = slices
            .iter_mut()
            .find(|s| s.name == name)
            .expect("just inserted");
        s.count += 1;
        if r.status == RowStatus::Ok {
            s.ok += 1;
        }
        if let Some(m) = &r.metrics {
            s.makespans.push(m.makespan_us);
            s.mean_utils.push(m.mean_util);
            // Only in-model rows speak to the closed form's fidelity;
            // curves and heterogeneous fleets are tuner territory.
            if m.pred_err_rel.is_finite() && m.pred_in_model {
                s.abs_errs.push(m.pred_err_rel.abs());
            }
            match r.config.schedule {
                crate::config::Schedule::Overlap => {
                    if s.best_overlap.is_none_or(|(best, _)| m.makespan_us < best) {
                        s.best_overlap = Some((m.makespan_us, r.config.v));
                    }
                }
                crate::config::Schedule::Blocking => {
                    if s.best_blocking.is_none_or(|best| m.makespan_us < best) {
                        s.best_blocking = Some(m.makespan_us);
                    }
                }
            }
        }
    }
    slices
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// JSON number at fixed precision (total order, no exponent) — `null`
/// for non-finite values so the document stays valid JSON.
fn num(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "null".into()
    }
}

/// Render the whole outcome as a JSON summary document.
///
/// Top level: seed, config/ok/error/panic counts. Per slice (in
/// first-seen order): row counts, `p10/p50/p90/mean` of the simulated
/// makespan, mean utilization, mean absolute closed-form error (over
/// in-model rows only — see `RowMetrics::pred_in_model`), and —
/// where both schedules appear — the best overlap point and its
/// improvement over the best blocking point (the Fig. 12 quantities).
pub fn summary_json(seed: u64, outcome: &SweepOutcome) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"configs\": {},", outcome.rows.len());
    let ok = outcome
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok)
        .count();
    let _ = writeln!(out, "  \"ok\": {ok},");
    let _ = writeln!(out, "  \"errors\": {},", outcome.errors);
    let _ = writeln!(out, "  \"panics\": {},", outcome.panics);
    out.push_str("  \"slices\": {\n");
    let slices = aggregate(&outcome.rows);
    for (i, s) in slices.iter().enumerate() {
        let mut mk = s.makespans.clone();
        mk.sort_by(f64::total_cmp);
        let _ = writeln!(out, "    \"{}\": {{", s.name);
        let _ = writeln!(out, "      \"count\": {},", s.count);
        let _ = writeln!(out, "      \"ok\": {},", s.ok);
        if mk.is_empty() {
            out.push_str("      \"makespan_us\": null,\n");
        } else {
            let _ = writeln!(
                out,
                "      \"makespan_us\": {{\"p10\": {}, \"p50\": {}, \"p90\": {}, \"mean\": {}}},",
                num(percentile(&mk, 0.10), 3),
                num(percentile(&mk, 0.50), 3),
                num(percentile(&mk, 0.90), 3),
                num(mean(&mk), 3),
            );
        }
        let _ = writeln!(
            out,
            "      \"mean_utilization\": {},",
            num(mean(&s.mean_utils), 6)
        );
        let _ = writeln!(
            out,
            "      \"mean_abs_pred_err\": {},",
            num(mean(&s.abs_errs), 6)
        );
        match (s.best_overlap, s.best_blocking) {
            (Some((ov, v)), Some(bl)) => {
                let _ = writeln!(out, "      \"best_overlap_us\": {},", num(ov, 3));
                let _ = writeln!(out, "      \"best_overlap_v\": {v},");
                let _ = writeln!(out, "      \"best_blocking_us\": {},", num(bl, 3));
                let _ = writeln!(out, "      \"improvement\": {}", num(1.0 - ov / bl, 6));
            }
            _ => {
                out.push_str("      \"best_overlap_us\": null,\n");
                out.push_str("      \"best_overlap_v\": null,\n");
                out.push_str("      \"best_blocking_us\": null,\n");
                out.push_str("      \"improvement\": null\n");
            }
        }
        out.push_str(if i + 1 == slices.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{generate, SweepSpec};
    use crate::run::run_sweep;

    fn small_outcome(seed: u64) -> SweepOutcome {
        let spec = SweepSpec {
            seed,
            random_configs: 12,
            quick: true,
            figures: false,
        };
        run_sweep(&generate(&spec), 4)
    }

    #[test]
    fn header_matches_row_arity() {
        let out = small_outcome(5);
        let csv = to_csv(&out.rows);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(header, csv_header());
        let n = header.split(',').count();
        assert_eq!(n, CSV_COLUMNS.len());
        for line in lines {
            assert_eq!(line.split(',').count(), n, "bad row: {line}");
        }
    }

    #[test]
    fn csv_is_reproducible() {
        let a = to_csv(&small_outcome(6).rows);
        let b = to_csv(&small_outcome(6).rows);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_is_valid_enough_json() {
        // No serde in the container: check structure mechanically —
        // balanced braces, expected keys, no trailing commas.
        let out = small_outcome(7);
        let json = summary_json(7, &out);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"panics\": 0"), "{json}");
        assert!(json.contains("\"slices\""));
        assert!(json.contains("\"random\""));
        assert!(!json.contains(",\n  }"), "trailing comma:\n{json}");
        assert!(!json.contains(",\n    }"), "trailing comma:\n{json}");
    }

    #[test]
    fn training_csv_has_fixed_schema_and_ok_rows_only() {
        let out = small_outcome(8);
        let csv = training_csv(&out.rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "schedule,v,predicted_us,makespan_us,pred_in_model"
        );
        let ok = out.rows.iter().filter(|r| r.metrics.is_some()).count();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), ok);
        for line in body {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
    }

    #[test]
    fn out_of_model_rows_are_excluded_from_error_percentiles() {
        use crate::config::{MachinePreset, Schedule, SweepConfig};
        use crate::run::run_sweep;
        let mk = |id: usize, spread: f64| SweepConfig {
            id,
            slice: "test",
            preset: MachinePreset::Paper,
            comm_scale: 1.0,
            measured_curve: false,
            hetero_spread: spread,
            grid: [4, 4],
            cross_sides: [4, 4],
            extents: [16, 16, 1024],
            v: 64,
            schedule: Schedule::Overlap,
            duplex: false,
            shared_bus: false,
            seed: 11,
        };
        // One in-model row, one heterogeneous row with a different
        // error: the summary's mean must reflect only the former (a
        // mixed-in hetero row would shift it).
        let out = run_sweep(&[mk(0, 0.0), mk(1, 0.6)], 2);
        let in_model_err = out.rows[0].metrics.unwrap().pred_err_rel.abs();
        let hetero_err = out.rows[1].metrics.unwrap().pred_err_rel.abs();
        assert!(
            (hetero_err - in_model_err).abs() > 1e-3,
            "degenerate test point"
        );
        let json = summary_json(11, &out);
        let line = json
            .lines()
            .find(|l| l.contains("mean_abs_pred_err"))
            .unwrap();
        let val: f64 = line
            .trim()
            .trim_start_matches("\"mean_abs_pred_err\": ")
            .trim_end_matches(',')
            .parse()
            .unwrap();
        assert!((val - in_model_err).abs() < 1e-5, "{val} vs {in_model_err}");
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        assert_eq!(percentile(&xs, 0.5), 6.0); // nearest-rank rounds up
        let one = [42.0];
        assert_eq!(percentile(&one, 0.9), 42.0);
    }
}
