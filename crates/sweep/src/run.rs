//! The sweep executor: one full cluster simulation per config, fanned
//! out over a worker pool, each point isolated behind `catch_unwind`.
//!
//! Determinism contract: results are written into a slot-per-config
//! vector, so the output order is the config order regardless of worker
//! count or OS scheduling, and every simulation is itself deterministic.
//! `run_sweep(configs, 1)` and `run_sweep(configs, 16)` produce the
//! same rows.

use crate::config::{Schedule, SweepConfig};
use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate_heterogeneous, NetworkTopology, SimConfig};
use cluster_sim::stats::summarize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tiling_core::closed_form::{nonoverlap_optimal_v, overlap_optimal_v};
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::{MachineParams, PiecewiseCost};
use tiling_core::space::IterationSpace;
use tiling_core::tiling::Tiling;

/// How a config's evaluation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowStatus {
    /// Simulated and summarized.
    Ok,
    /// The problem could not be laid out (bad tiling/arity).
    BuildError,
    /// The simulator rejected or deadlocked the programs.
    SimError,
    /// The evaluation panicked (isolated; the batch continued).
    Panic,
}

impl RowStatus {
    /// Stable display name (a CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::BuildError => "build_error",
            RowStatus::SimError => "sim_error",
            RowStatus::Panic => "panic",
        }
    }
}

/// Measured quantities of one successful evaluation.
#[derive(Clone, Copy, Debug)]
pub struct RowMetrics {
    /// Processors in the fleet (boundary clipping can shrink it).
    pub ranks: usize,
    /// Pipeline steps per rank.
    pub steps: i64,
    /// Simulated makespan, µs.
    pub makespan_us: f64,
    /// Mean per-rank CPU utilization.
    pub mean_util: f64,
    /// Minimum per-rank CPU utilization.
    pub min_util: f64,
    /// Maximum per-rank CPU utilization.
    pub max_util: f64,
    /// Mean fraction of busy time spent computing.
    pub compute_fraction: f64,
    /// Closed-form model prediction at this config's `V`, µs.
    pub predicted_us: f64,
    /// `(simulated − predicted) / predicted` — where the affine model
    /// stops being faithful (curves, heterogeneity, buses), this grows.
    pub pred_err_rel: f64,
    /// Whether the closed form actually models this config: false when
    /// the machine carries a measured transfer curve or the fleet has
    /// heterogeneous node speeds. Out-of-model rows keep their
    /// `pred_err_rel` (the tuner trains on it) but are excluded from
    /// the model-fidelity percentiles.
    pub pred_in_model: bool,
}

/// One output row: the config plus what happened to it.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The evaluated config.
    pub config: SweepConfig,
    /// Outcome class.
    pub status: RowStatus,
    /// Error detail (empty for `Ok`).
    pub detail: String,
    /// Metrics (present iff `Ok`).
    pub metrics: Option<RowMetrics>,
}

/// The whole batch's result.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One row per config, in config order.
    pub rows: Vec<SweepRow>,
    /// Rows that panicked (CI gates this to zero).
    pub panics: usize,
    /// Rows with build/sim errors.
    pub errors: usize,
}

enum EvalError {
    Build(String),
    Sim(String),
}

/// A measured-style transfer curve synthesized from a machine's wire
/// rate: a small-message floor (eager protocol), the affine region, and
/// a 25% super-linear penalty past the rendezvous threshold. Monotone
/// by construction.
fn measured_curve(m: &MachineParams) -> PiecewiseCost {
    let t = m.t_t_us_per_byte;
    PiecewiseCost::from_knots(&[
        (0.0, 96.0 * t),
        (1024.0, 1024.0 * t),
        (8192.0, 8192.0 * t),
        (65536.0, 1.25 * 65536.0 * t),
    ])
    .expect("static knots are valid")
}

/// The machine a config runs on.
fn machine_of(c: &SweepConfig) -> MachineParams {
    let mut m = c.preset.params().scale_communication(c.comm_scale);
    if c.measured_curve {
        m = m.with_transfer_curve(measured_curve(&m));
    }
    m
}

/// Evaluate one config: build, simulate, summarize, compare to the
/// closed form.
fn evaluate(c: &SweepConfig) -> Result<RowMetrics, EvalError> {
    let machine = machine_of(c);
    let space = IterationSpace::from_extents(&c.extents);
    let tiling = Tiling::rectangular(&[c.cross_sides[0], c.cross_sides[1], c.v]);
    let problem = ClusterProblem::new(tiling, DependenceSet::paper_3d(), space, 2)
        .map_err(|e| EvalError::Build(e.to_string()))?;
    let programs = match c.schedule {
        Schedule::Blocking => problem.blocking_programs(&machine),
        Schedule::Overlap => problem.overlapping_programs(&machine),
    };
    let topology = if c.shared_bus {
        NetworkTopology::SharedBus
    } else {
        NetworkTopology::Switched
    };
    let cfg = SimConfig::new(machine)
        .with_duplex(c.duplex)
        .with_topology(topology);
    let speeds = problem.node_speeds(c.seed, c.hetero_spread);
    let result =
        simulate_heterogeneous(cfg, programs, speeds).map_err(|e| EvalError::Sim(e.to_string()))?;
    let summary = summarize(&result).ok_or_else(|| EvalError::Sim("zero-rank fleet".into()))?;
    let space = IterationSpace::from_extents(&c.extents);
    let cf = match c.schedule {
        Schedule::Overlap => overlap_optimal_v(
            &space,
            &DependenceSet::paper_3d(),
            &machine,
            &c.cross_sides,
            2,
        ),
        Schedule::Blocking => nonoverlap_optimal_v(
            &space,
            &DependenceSet::paper_3d(),
            &machine,
            &c.cross_sides,
            2,
        ),
    };
    let predicted_us = cf.predict_us(c.v as f64);
    let pred_err_rel = if predicted_us > 0.0 {
        (summary.makespan_us - predicted_us) / predicted_us
    } else {
        f64::NAN
    };
    Ok(RowMetrics {
        ranks: problem.ranks(),
        steps: problem.steps(),
        makespan_us: summary.makespan_us,
        mean_util: summary.mean_utilization,
        min_util: summary.min_utilization,
        max_util: summary.max_utilization,
        compute_fraction: summary.mean_compute_fraction,
        predicted_us,
        pred_err_rel,
        pred_in_model: !(c.hetero_spread > 0.0 || c.measured_curve),
    })
}

/// Evaluate one config with panic isolation.
fn run_one(c: &SweepConfig) -> SweepRow {
    match catch_unwind(AssertUnwindSafe(|| evaluate(c))) {
        Ok(Ok(metrics)) => SweepRow {
            config: c.clone(),
            status: RowStatus::Ok,
            detail: String::new(),
            metrics: Some(metrics),
        },
        Ok(Err(EvalError::Build(detail))) => SweepRow {
            config: c.clone(),
            status: RowStatus::BuildError,
            detail,
            metrics: None,
        },
        Ok(Err(EvalError::Sim(detail))) => SweepRow {
            config: c.clone(),
            status: RowStatus::SimError,
            detail,
            metrics: None,
        },
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            SweepRow {
                config: c.clone(),
                status: RowStatus::Panic,
                detail,
                metrics: None,
            }
        }
    }
}

/// Run every config on a pool of `workers` threads.
///
/// Work distribution is a single atomic cursor (the planc service's
/// queue shape, minus the persistent threads); each result lands in its
/// config's slot, so row order — and therefore the CSV — is independent
/// of scheduling.
pub fn run_sweep(configs: &[SweepConfig], workers: usize) -> SweepOutcome {
    let workers = workers.max(1).min(configs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepRow>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let row = run_one(&configs[i]);
                *slots[i].lock().expect("slot lock") = Some(row);
            });
        }
    });
    let rows: Vec<SweepRow> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every slot filled by the pool")
        })
        .collect();
    let panics = rows.iter().filter(|r| r.status == RowStatus::Panic).count();
    let errors = rows
        .iter()
        .filter(|r| matches!(r.status, RowStatus::BuildError | RowStatus::SimError))
        .count();
    SweepOutcome {
        rows,
        panics,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{generate, SweepSpec};

    fn small_spec(seed: u64) -> SweepSpec {
        SweepSpec {
            seed,
            random_configs: 16,
            quick: true,
            figures: false,
        }
    }

    #[test]
    fn pool_fills_every_slot_in_order() {
        let configs = generate(&small_spec(1));
        let out = run_sweep(&configs, 4);
        assert_eq!(out.rows.len(), configs.len());
        for (i, r) in out.rows.iter().enumerate() {
            assert_eq!(r.config.id, i);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let configs = generate(&small_spec(2));
        let a = run_sweep(&configs, 1);
        let b = run_sweep(&configs, 8);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.status, y.status);
            match (&x.metrics, &y.metrics) {
                (Some(mx), Some(my)) => {
                    assert_eq!(mx.makespan_us, my.makespan_us);
                    assert_eq!(mx.mean_util, my.mean_util);
                }
                (None, None) => {}
                other => panic!("metric presence differs: {other:?}"),
            }
        }
    }

    #[test]
    fn ok_rows_have_sane_metrics() {
        let configs = generate(&small_spec(3));
        let out = run_sweep(&configs, 4);
        let ok = out
            .rows
            .iter()
            .filter(|r| r.status == RowStatus::Ok)
            .count();
        assert!(ok > 0, "at least some configs must simulate");
        for r in &out.rows {
            if let Some(m) = &r.metrics {
                assert!(m.makespan_us > 0.0, "{r:?}");
                assert!(m.min_util <= m.mean_util + 1e-12, "{r:?}");
                assert!(m.mean_util <= m.max_util + 1e-12, "{r:?}");
                assert!(m.max_util <= 1.0 + 1e-9, "{r:?}");
                assert!(m.predicted_us > 0.0, "{r:?}");
                assert!(m.pred_err_rel.is_finite(), "{r:?}");
            }
        }
    }

    #[test]
    fn out_of_model_configs_are_marked() {
        let mk = |spread: f64, curve: bool| SweepConfig {
            id: 0,
            slice: "test",
            preset: crate::config::MachinePreset::Paper,
            comm_scale: 1.0,
            measured_curve: curve,
            hetero_spread: spread,
            grid: [4, 4],
            cross_sides: [4, 4],
            extents: [16, 16, 1024],
            v: 64,
            schedule: Schedule::Overlap,
            duplex: false,
            shared_bus: false,
            seed: 5,
        };
        let out = run_sweep(
            &[mk(0.0, false), mk(0.3, false), mk(0.0, true), mk(0.3, true)],
            2,
        );
        let flags: Vec<bool> = out
            .rows
            .iter()
            .map(|r| r.metrics.expect("ok").pred_in_model)
            .collect();
        assert_eq!(flags, [true, false, false, false]);
    }

    #[test]
    fn overlap_beats_blocking_on_the_paper_point() {
        // The paper's central claim, as two sweep configs.
        let mk = |schedule| SweepConfig {
            id: 0,
            slice: "test",
            preset: crate::config::MachinePreset::Paper,
            comm_scale: 1.0,
            measured_curve: false,
            hetero_spread: 0.0,
            grid: [4, 4],
            cross_sides: [4, 4],
            extents: [16, 16, 1024],
            v: 64,
            schedule,
            duplex: false,
            shared_bus: false,
            seed: 9,
        };
        let out = run_sweep(&[mk(Schedule::Blocking), mk(Schedule::Overlap)], 2);
        let b = out.rows[0].metrics.expect("blocking ok");
        let o = out.rows[1].metrics.expect("overlap ok");
        assert!(
            o.makespan_us < b.makespan_us,
            "overlap {o:?} vs blocking {b:?}"
        );
    }

    #[test]
    fn heterogeneous_fleet_slows_the_pipeline_makespan() {
        // The pipeline is paced by its slowest stage: jittered speeds
        // around 1.0 should not beat the homogeneous fleet by much and
        // typically lose.
        let mk = |spread| SweepConfig {
            id: 0,
            slice: "test",
            preset: crate::config::MachinePreset::Paper,
            comm_scale: 1.0,
            measured_curve: false,
            hetero_spread: spread,
            grid: [4, 4],
            cross_sides: [4, 4],
            extents: [16, 16, 1024],
            v: 64,
            schedule: Schedule::Overlap,
            duplex: false,
            shared_bus: false,
            seed: 1234,
        };
        let out = run_sweep(&[mk(0.0), mk(0.4)], 2);
        let homo = out.rows[0].metrics.expect("homogeneous ok").makespan_us;
        let hetero = out.rows[1].metrics.expect("heterogeneous ok").makespan_us;
        assert!(
            hetero > homo * 0.99,
            "hetero fleet {hetero} implausibly faster than homogeneous {homo}"
        );
    }
}
