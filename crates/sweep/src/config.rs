//! The sweep's configuration space: axes, seeded generation, and the
//! named slices that recover the paper's Figs. 9–12.
//!
//! Generation is a pure function of the sweep seed. Config `id`s are
//! assigned in generation order and every config carries its own derived
//! seed (for heterogeneous-fleet jitter), so the whole space — and
//! therefore the whole output — is reproducible from one `u64`.

use tiling_core::machine::MachineParams;

/// SplitMix64 — the standard 64-bit mixer. Dependency-free, passes
/// BigCrush, and (crucially here) trivially reproducible: the sweep's
/// byte-identical re-run guarantee rests on this plus the simulator's
/// own determinism.
#[derive(Clone, Debug)]
pub struct Mix64 {
    state: u64,
}

impl Mix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Mix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        let i = (self.next_u64() % xs.len() as u64) as usize;
        &xs[i]
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range");
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }
}

/// Which calibrated machine the config simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachinePreset {
    /// The paper's Pentium-III / FastEthernet cluster (§5).
    Paper,
    /// Gigabit-class switched network, same CPUs.
    Gigabit,
    /// OS-bypass (Myrinet/SCI-class) interconnect.
    OsBypass,
}

impl MachinePreset {
    /// All presets, in CSV-stable order.
    pub const ALL: [MachinePreset; 3] = [
        MachinePreset::Paper,
        MachinePreset::Gigabit,
        MachinePreset::OsBypass,
    ];

    /// The machine parameters of this preset.
    pub fn params(self) -> MachineParams {
        match self {
            MachinePreset::Paper => MachineParams::paper_cluster(),
            MachinePreset::Gigabit => MachineParams::gigabit_cluster(),
            MachinePreset::OsBypass => MachineParams::os_bypass_cluster(),
        }
    }

    /// Stable display name (a CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            MachinePreset::Paper => "paper",
            MachinePreset::Gigabit => "gigabit",
            MachinePreset::OsBypass => "os_bypass",
        }
    }
}

/// Which of the paper's two execution styles the config runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// `ProcB` — blocking receive → compute → send (§3).
    Blocking,
    /// `ProcNB` — non-blocking, communication under computation (§4).
    Overlap,
}

impl Schedule {
    /// Stable display name (a CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Blocking => "blocking",
            Schedule::Overlap => "overlap",
        }
    }
}

/// One point of the configuration space — everything needed to build
/// and simulate it, and nothing that has to be recomputed to name it.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Position in generation order; CSV rows are sorted by it.
    pub id: usize,
    /// Named slice this config belongs to (`random`, `fig9`, …).
    pub slice: &'static str,
    /// Machine preset.
    pub preset: MachinePreset,
    /// Factor applied to every communication cost (1.0 = calibrated).
    pub comm_scale: f64,
    /// Install a measured-style piecewise transfer curve instead of the
    /// affine `bytes · t_t` wire model.
    pub measured_curve: bool,
    /// Spread of per-rank compute-speed jitter (0 = homogeneous).
    pub hetero_spread: f64,
    /// Processor grid over the two cross-section dimensions.
    pub grid: [i64; 2],
    /// Tile cross-section sides (one tile column per processor).
    pub cross_sides: [i64; 2],
    /// Iteration-space extents `[nx, ny, nz]`; dimension 2 is pipelined.
    /// `nx`/`ny` need not be divisible by the tile sides — boundary
    /// columns are clipped, exercising the paper's unstated divisibility
    /// assumption.
    pub extents: [i64; 3],
    /// Tile height along the pipelined dimension.
    pub v: i64,
    /// Execution style.
    pub schedule: Schedule,
    /// Full-duplex NIC/DMA lanes.
    pub duplex: bool,
    /// Shared-medium (hub) wire instead of a switched network.
    pub shared_bus: bool,
    /// Per-config seed (heterogeneous-fleet jitter derives from it).
    pub seed: u64,
}

/// What to generate.
#[derive(Clone, Copy, Debug)]
pub struct SweepSpec {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of `random`-slice configs.
    pub random_configs: usize,
    /// Shrink iteration spaces (CI-sized problems, same axes).
    pub quick: bool,
    /// Append the `fig9`/`fig10`/`fig11` named slices.
    pub figures: bool,
}

impl SweepSpec {
    /// The CI profile: small spaces, figure slices on.
    pub fn quick(seed: u64) -> Self {
        SweepSpec {
            seed,
            random_configs: 480,
            quick: true,
            figures: true,
        }
    }

    /// The full profile: paper-sized spaces.
    pub fn full(seed: u64) -> Self {
        SweepSpec {
            seed,
            random_configs: 1500,
            quick: false,
            figures: true,
        }
    }
}

/// Generate the whole config list for a spec — a pure function of it.
pub fn generate(spec: &SweepSpec) -> Vec<SweepConfig> {
    let mut rng = Mix64::new(spec.seed);
    let mut out = Vec::with_capacity(spec.random_configs + 128);
    for _ in 0..spec.random_configs {
        let id = out.len();
        out.push(random_config(id, &mut rng, spec.quick));
    }
    if spec.figures {
        push_figure_slices(&mut out, spec.quick, spec.seed);
    }
    out
}

/// One random-slice config.
fn random_config(id: usize, rng: &mut Mix64, quick: bool) -> SweepConfig {
    let preset = *rng.pick(&[
        MachinePreset::Paper,
        MachinePreset::Paper,
        MachinePreset::Gigabit,
        MachinePreset::OsBypass,
    ]);
    let comm_scale = *rng.pick(&[0.25, 0.5, 1.0, 1.0, 2.0, 4.0]);
    let measured_curve = rng.unit() < 0.3;
    let hetero_spread = *rng.pick(&[0.0, 0.0, 0.0, 0.1, 0.25, 0.4]);
    let grid = *rng.pick(&[[1, 4], [2, 2], [2, 4], [4, 4]]);
    let side = *rng.pick(&[4i64, 8]);
    let cross_sides = [side, side];
    // Boundary axis: with probability ~1/4 per dimension, clip the
    // extent below grid·side so the last tile column is partial.
    let mut extents = [0i64; 3];
    for (d, e) in extents.iter_mut().take(2).enumerate() {
        let full = grid[d] * side;
        let clip = if rng.unit() < 0.25 {
            rng.range_i64(1, side - 1)
        } else {
            0
        };
        *e = full - clip;
    }
    extents[2] = if quick {
        *rng.pick(&[512i64, 1024, 2048])
    } else {
        *rng.pick(&[4096i64, 8192, 16384])
    };
    let v = (*rng.pick(&[8i64, 16, 32, 64, 128, 256])).min(extents[2]);
    let schedule = *rng.pick(&[Schedule::Blocking, Schedule::Overlap]);
    let duplex = rng.unit() < 0.5;
    let shared_bus = rng.unit() < 0.15;
    let seed = rng.next_u64();
    SweepConfig {
        id,
        slice: "random",
        preset,
        comm_scale,
        measured_curve,
        hetero_spread,
        grid,
        cross_sides,
        extents,
        v,
        schedule,
        duplex,
        shared_bus,
        seed,
    }
}

/// A paper experiment's parameters as the sweep sees them.
struct FigExperiment {
    slice: &'static str,
    nx: i64,
    ny: i64,
    nz: i64,
    grid: [i64; 2],
    paper_v: i64,
}

/// The three figure experiments (§5). `quick` divides the pipelined
/// extent by 16, which keeps the curve shape (the `K·α/V` vs `γ·β·V`
/// trade-off) while making the slice CI-sized.
fn fig_experiments(quick: bool) -> [FigExperiment; 3] {
    let shrink = if quick { 16 } else { 1 };
    [
        FigExperiment {
            slice: "fig9",
            nx: 16,
            ny: 16,
            nz: 16384 / shrink,
            grid: [4, 4],
            paper_v: 444,
        },
        FigExperiment {
            slice: "fig10",
            nx: 16,
            ny: 16,
            nz: 32768 / shrink,
            grid: [4, 4],
            paper_v: 538,
        },
        FigExperiment {
            slice: "fig11",
            nx: 32,
            ny: 32,
            nz: 4096 / shrink,
            grid: [4, 4],
            paper_v: 164,
        },
    ]
}

/// The tile heights swept per figure: a geometric ladder over the
/// useful range plus the paper's measured optimum (clamped into range).
fn fig_heights(nz: i64, paper_v: i64) -> Vec<i64> {
    let mut hs = Vec::new();
    let mut v = 8;
    while v <= nz / 2 {
        hs.push(v);
        v *= 2;
    }
    let clamped = paper_v.min(nz);
    if !hs.contains(&clamped) {
        hs.push(clamped);
    }
    hs.sort_unstable();
    hs
}

/// Append the figure slices: both schedules at every ladder height, on
/// the paper machine exactly as the `paper fig9|fig10|fig11` commands
/// run it (calibrated costs, homogeneous fleet, half-duplex, switched).
fn push_figure_slices(out: &mut Vec<SweepConfig>, quick: bool, sweep_seed: u64) {
    for exp in fig_experiments(quick) {
        let cross = [exp.nx / exp.grid[0], exp.ny / exp.grid[1]];
        for v in fig_heights(exp.nz, exp.paper_v) {
            for schedule in [Schedule::Blocking, Schedule::Overlap] {
                let id = out.len();
                out.push(SweepConfig {
                    id,
                    slice: exp.slice,
                    preset: MachinePreset::Paper,
                    comm_scale: 1.0,
                    measured_curve: false,
                    hetero_spread: 0.0,
                    grid: exp.grid,
                    cross_sides: cross,
                    extents: [exp.nx, exp.ny, exp.nz],
                    v,
                    schedule,
                    duplex: false,
                    shared_bus: false,
                    seed: Mix64::new(sweep_seed ^ id as u64).next_u64(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SweepSpec::quick(7);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn quick_spec_meets_ci_floor() {
        let n = generate(&SweepSpec::quick(0)).len();
        assert!(
            n >= 500,
            "quick sweep must cover at least 500 configs, got {n}"
        );
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let configs = generate(&SweepSpec::quick(3));
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn figure_slices_cover_both_schedules_and_paper_optimum() {
        let configs = generate(&SweepSpec {
            seed: 0,
            random_configs: 0,
            quick: false,
            figures: true,
        });
        for slice in ["fig9", "fig10", "fig11"] {
            let rows: Vec<_> = configs.iter().filter(|c| c.slice == slice).collect();
            assert!(!rows.is_empty(), "{slice} missing");
            assert!(rows.iter().any(|c| c.schedule == Schedule::Blocking));
            assert!(rows.iter().any(|c| c.schedule == Schedule::Overlap));
        }
        // Full-size fig9 sweeps the paper's measured optimum itself.
        assert!(configs.iter().any(|c| c.slice == "fig9" && c.v == 444));
    }

    #[test]
    fn extents_stay_positive_and_v_in_range() {
        for c in generate(&SweepSpec::quick(11)) {
            assert!(c.extents.iter().all(|&e| e >= 1), "{c:?}");
            assert!(c.v >= 1 && c.v <= c.extents[2], "{c:?}");
            assert!(c.cross_sides.iter().all(|&s| s >= 1), "{c:?}");
        }
    }
}
