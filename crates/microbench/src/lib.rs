//! # microbench — offline micro-benchmark harness
//!
//! A dependency-free stand-in for the subset of the [`criterion`] API the
//! workspace's `[[bench]]` targets use. The build environment has no network
//! access to a crates registry, so the workspace maps
//! `criterion = { package = "microbench" }` onto this crate; the existing
//! bench files compile unchanged.
//!
//! Supported surface: `Criterion`, `benchmark_group` + `sample_size` +
//! `throughput` + `finish`, `bench_function`, `Bencher::{iter, iter_custom}`,
//! `Throughput::{Elements, Bytes}`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated with a single timed call,
//! then run for `sample_size` samples (each batching enough iterations to be
//! timeable); the median, mean and min per-iteration times are printed along
//! with throughput when configured. Set `MICROBENCH_FAST=1` to clamp every
//! benchmark to one sample of one iteration (smoke mode for CI).
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_sample: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, self.target_sample, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            target_sample: self.target_sample,
            throughput: None,
            _criterion: self,
        }
    }

    /// Print the end-of-run banner (called by `criterion_main!`).
    pub fn final_summary(&self) {
        eprintln!("\nmicrobench: done");
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_sample: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so throughput can be reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &id,
            self.sample_size,
            self.target_sample,
            self.throughput,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, consuming each result with `black_box`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hand full control of timing to the closure: it receives the
    /// iteration count and must return the elapsed time for exactly that
    /// many iterations.
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        self.elapsed = f(self.iters);
    }
}

fn fast_mode() -> bool {
    std::env::var_os("MICROBENCH_FAST").is_some_and(|v| v != "0")
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    target_sample: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibration (doubles as warm-up): one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let calib = b.elapsed.max(Duration::from_nanos(1));

    let (samples, iters_per_sample) = if fast_mode() {
        (1usize, 1u64)
    } else {
        let per = (target_sample.as_nanos() / calib.as_nanos()).clamp(1, 1 << 20) as u64;
        (sample_size.max(1), per)
    };

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns[0];

    let thrpt = throughput.map(|t| match t {
        Throughput::Elements(n) => format_rate(n as f64 / (median * 1e-9), "elem/s"),
        Throughput::Bytes(n) => format_rate(n as f64 / (median * 1e-9), "B/s"),
    });

    eprint!(
        "{id:<52} time: [{} median, {} mean, {} min; {samples}x{iters_per_sample}]",
        format_ns(median),
        format_ns(mean),
        format_ns(min),
    );
    match thrpt {
        Some(t) => eprintln!("  thrpt: {t}"),
        None => eprintln!(),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Bundle benchmark functions into a group runner (mirrors criterion's
/// macro; the generated function takes `&mut Criterion`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main()` running the given groups (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("MICROBENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);

        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(1 + 1);
                }
                t.elapsed()
            })
        });
        g.finish();
    }

    #[test]
    fn formatters_cover_scales() {
        assert!(format_ns(0.5).contains("ns"));
        assert!(format_ns(2.5e3).contains("µs"));
        assert!(format_ns(2.5e6).contains("ms"));
        assert!(format_ns(2.5e9).contains(" s"));
        assert!(format_rate(5e9, "elem/s").starts_with("5.000 G"));
        assert!(format_rate(5e3, "elem/s").starts_with("5.000 K"));
        assert!(format_rate(5.0, "elem/s").starts_with("5.0 "));
    }
}
