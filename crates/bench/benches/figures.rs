//! One Criterion benchmark per paper figure/table: each benchmark runs
//! the simulated experiment at the paper's measured optimal tile height,
//! for both schedules, so `cargo bench` regenerates a timing point of
//! every figure. The full V-sweeps (whole curves) are produced by the
//! `paper` binary (`cargo run --release -p bench --bin paper -- all`).

use bench::ablation::run_ablation;
use bench::experiments::{paper_experiments, simulate_point};
use bench::gantt::{fig1_simulation, fig2_simulation};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiling_core::prelude::*;

fn bench_fig_1_2(c: &mut Criterion) {
    let machine = MachineParams::example_1();
    let mut g = c.benchmark_group("fig1_fig2_gantt");
    g.sample_size(20);
    g.bench_function("fig1_nonoverlap_6procs", |b| {
        b.iter(|| black_box(fig1_simulation(&machine, 6, 8, 16).makespan))
    });
    g.bench_function("fig2_overlap_6procs", |b| {
        b.iter(|| black_box(fig2_simulation(&machine, 6, 8, 16).makespan))
    });
    g.finish();
}

fn bench_figures_9_10_11(c: &mut Criterion) {
    let machine = MachineParams::paper_cluster();
    let mut g = c.benchmark_group("figures_9_10_11");
    g.sample_size(10);
    for (figure, exp) in ["fig9", "fig10", "fig11"].iter().zip(paper_experiments()) {
        g.bench_function(format!("{figure}_at_paper_Vopt"), |b| {
            b.iter(|| black_box(simulate_point(&exp, exp.paper_v_optimal, &machine)))
        });
    }
    g.finish();
}

fn bench_table12_point(c: &mut Criterion) {
    // One representative Fig. 12 cell: experiment i at its optimum,
    // overlap vs non-overlap ratio must hold every run.
    let machine = MachineParams::paper_cluster();
    let exp = paper_experiments()[0];
    c.bench_function("table12_experiment_i_point", |b| {
        b.iter(|| {
            let p = simulate_point(&exp, exp.paper_v_optimal, &machine);
            assert!(p.overlap_us < p.blocking_us);
            black_box(p)
        })
    });
}

fn bench_fig3_ablation(c: &mut Criterion) {
    let machine = MachineParams::paper_cluster();
    let exp = paper_experiments()[0];
    c.bench_function("fig3_ablation_levels", |b| {
        b.iter(|| black_box(run_ablation(&exp, 444, &machine)))
    });
}

criterion_group!(
    benches,
    bench_fig_1_2,
    bench_figures_9_10_11,
    bench_table12_point,
    bench_fig3_ablation
);
criterion_main!(benches);
