//! Micro-benchmark of one halo exchange in isolation:
//! pack → send → recv → unpack, without any tile computation.
//!
//! Runs on a single-rank world sending to itself (the transport path —
//! channel, latency bookkeeping, buffer pool — is identical to the
//! neighbor case), comparing the optimized path (row-chunked
//! `stencil::halo` copies through the persistent-buffer API) against the
//! preserved element-wise baseline (`stencil::legacy` gather/scatter
//! with a fresh `Vec` per message).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use msgpass::comm::Communicator;
use msgpass::thread_backend::{run_threads, LatencyModel};
use std::time::{Duration, Instant};
use stencil::dist3d::Decomp3D;
use stencil::halo::{pack_rows, unpack_rows};
use stencil::legacy;

/// Exchange geometry: the i-face of an 8×16×4096 block at V = 256.
const BX: usize = 8;
const BY: usize = 16;
const NZ: usize = 4096;
const V: usize = 256;

fn decomp() -> Decomp3D {
    Decomp3D {
        nx: BX,
        ny: BY,
        nz: NZ,
        pi: 1,
        pj: 1,
        v: V,
        boundary: 0.0,
    }
}

/// Time `iters` optimized exchanges inside a one-rank world.
fn chunked_exchanges(iters: u64) -> Duration {
    let d = decomp();
    let (mut times, _) =
        run_threads::<f32, Duration, _>(1, LatencyModel::zero(), move |mut comm| {
            let block: Vec<f32> = (0..BX * BY * NZ).map(|x| x as f32).collect();
            let mut halo = vec![0.0f32; BY * NZ];
            let mut face = vec![0.0f32; BY * V];
            let mut recv = vec![0.0f32; BY * V];
            let base = (BX - 1) * BY * NZ;
            let start = Instant::now();
            for it in 0..iters {
                let k = (it as usize) % d.steps();
                let k0 = k * V;
                pack_rows(&block, base, NZ, k0, V, &mut face);
                comm.send_from(0, it, &face);
                comm.recv_into(0, it, &mut recv);
                unpack_rows(&recv, &mut halo, 0, NZ, k0, V);
                black_box(halo[k0]);
            }
            start.elapsed()
        });
    times.pop().expect("one rank")
}

/// Time `iters` element-wise exchanges (fresh `Vec` per message).
fn elementwise_exchanges(iters: u64) -> Duration {
    let d = decomp();
    let (mut times, _) =
        run_threads::<f32, Duration, _>(1, LatencyModel::zero(), move |mut comm| {
            let block: Vec<f32> = (0..BX * BY * NZ).map(|x| x as f32).collect();
            let mut halo = vec![0.0f32; BY * NZ];
            let start = Instant::now();
            for it in 0..iters {
                let k = (it as usize) % d.steps();
                let face = legacy::face_i_elementwise(&block, &d, k);
                comm.send(0, it, face);
                let data = comm.recv(0, it);
                legacy::store_halo_i_elementwise(&mut halo, &d, k, &data);
                black_box(halo[k * V]);
            }
            start.elapsed()
        });
    times.pop().expect("one rank")
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange");
    group.throughput(Throughput::Bytes(
        (BY * V * std::mem::size_of::<f32>()) as u64,
    ));
    group.bench_function("chunked_pooled", |b| b.iter_custom(chunked_exchanges));
    group.bench_function("elementwise_alloc", |b| {
        b.iter_custom(elementwise_exchanges)
    });
    group.finish();
}

criterion_group!(benches, bench_halo_exchange);
criterion_main!(benches);
