//! Criterion benchmarks of the stencil kernels — including the paper's
//! own `t_c` calibration methodology (§5: run the loop body on one node
//! and divide by iteration count).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use stencil::seq::{run_example1_seq, run_paper3d_seq};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_kernels");
    let n3 = 48usize; // 48³ ≈ 110k iterations per run
    g.throughput(Throughput::Elements((n3 * n3 * n3) as u64));
    g.bench_function("paper3d_48cubed", |b| {
        b.iter(|| black_box(run_paper3d_seq(n3, n3, n3, 1.0)))
    });
    let n2 = 512usize;
    g.throughput(Throughput::Elements((n2 * n2) as u64));
    g.bench_function("example1_512sq", |b| {
        b.iter(|| black_box(run_example1_seq(n2, n2, 1.0)))
    });
    g.finish();
}

fn bench_t_c_calibration(c: &mut Criterion) {
    // Prints the measured per-iteration cost in the bench output — the
    // modern analogue of the paper's t_c = 0.441 µs on a 500 MHz P-III.
    c.bench_function("t_c/paper3d_per_iteration", |b| {
        let n = 32usize;
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            for _ in 0..iters {
                black_box(run_paper3d_seq(n, n, n, 1.0));
            }
            start.elapsed() / (n * n * n) as u32
        })
    });
}

criterion_group!(benches, bench_kernels, bench_t_c_calibration);
criterion_main!(benches);
