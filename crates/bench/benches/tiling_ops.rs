//! Criterion micro-benchmarks of the tiling-core primitives: the
//! supernode transform, tiled-space construction, communication-volume
//! formulas and schedule analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiling_core::prelude::*;

fn bench_transform(c: &mut Criterion) {
    let rect = Tiling::rectangular(&[4, 4, 444]);
    let skew =
        Tiling::from_side_matrix(IntMatrix::from_rows(&[&[4, 1, 0], &[0, 4, 1], &[0, 0, 8]]))
            .unwrap();
    c.bench_function("tile_of/rectangular", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 17;
            black_box(rect.tile_of(&[i % 1000, (i * 3) % 1000, (i * 7) % 100_000]))
        })
    });
    c.bench_function("tile_of/skewed", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 17;
            black_box(skew.tile_of(&[i % 1000, (i * 3) % 1000, (i * 7) % 10_000]))
        })
    });
    c.bench_function("transform_roundtrip", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 13;
            let j = vec![i % 500, (i * 5) % 500, i % 4096];
            let (tile, off) = rect.transform(&j);
            black_box(rect.reconstruct(&tile, &off))
        })
    });
}

fn bench_spaces_and_costs(c: &mut Criterion) {
    let deps = DependenceSet::paper_3d();
    let space = IterationSpace::from_extents(&[16, 16, 16384]);
    c.bench_function("tiled_space/16x16x16384", |b| {
        let t = Tiling::rectangular(&[4, 4, 444]);
        b.iter(|| black_box(t.tiled_space(&space)))
    });
    c.bench_function("v_comm_total/3d", |b| {
        let t = Tiling::rectangular(&[4, 4, 444]);
        b.iter(|| black_box(tiling_core::cost::v_comm_total(&t, &deps)))
    });
    c.bench_function("tile_dependences/3d", |b| {
        let t = Tiling::rectangular(&[4, 4, 444]);
        b.iter(|| black_box(t.tile_dependences(&deps)))
    });
    c.bench_function("neighbor_messages/3d", |b| {
        let t = Tiling::rectangular(&[4, 4, 444]);
        let m = ProcessorMapping::along(3, 2);
        b.iter(|| black_box(neighbor_messages(&t, &deps, &m)))
    });
}

fn bench_schedule_analysis(c: &mut Criterion) {
    let deps = DependenceSet::paper_3d();
    let space = IterationSpace::from_extents(&[16, 16, 16384]);
    let machine = MachineParams::paper_cluster();
    let tiling = Tiling::rectangular(&[4, 4, 444]);
    c.bench_function("analyze/nonoverlap", |b| {
        let s = NonOverlapSchedule::with_mapping(3, 2);
        b.iter(|| black_box(s.analyze(&tiling, &deps, &space, &machine)))
    });
    c.bench_function("analyze/overlap", |b| {
        let s = OverlapSchedule::with_mapping(3, 2);
        b.iter(|| black_box(s.analyze(&tiling, &deps, &space, &machine, OverlapMode::Serialized)))
    });
    c.bench_function("sweep_tile_height/analytic_40pts", |b| {
        let heights = tiling_core::optimize::height_ladder(4, 4096, 40);
        b.iter(|| {
            black_box(sweep_tile_height(
                &space,
                &deps,
                &machine,
                &[4, 4],
                2,
                &heights,
                OverlapMode::Serialized,
            ))
        })
    });
}

fn bench_closed_form_and_codegen(c: &mut Criterion) {
    let deps = DependenceSet::paper_3d();
    let space = IterationSpace::from_extents(&[16, 16, 16384]);
    let machine = MachineParams::paper_cluster();
    c.bench_function("closed_form/overlap_v_star", |b| {
        b.iter(|| black_box(overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2)))
    });
    c.bench_function("codegen/tiled_rectangular", |b| {
        let tiling = Tiling::rectangular(&[4, 4, 444]);
        b.iter(|| black_box(tiled_rectangular(&tiling, &space, &["i", "j", "k"]).render()))
    });
    c.bench_function("codegen/fourier_motzkin_skewed_3d", |b| {
        let t = tiling_core::transform::Unimodular::skew(3, 2, 0, 1)
            .compose(&tiling_core::transform::Unimodular::skew(3, 1, 0, 1));
        let small = IterationSpace::from_extents(&[16, 16, 64]);
        b.iter(|| black_box(transformed_domain(&small, &t, &["a", "b", "c"]).render()))
    });
    c.bench_function("parse/example_1_source", |b| {
        let src = "
            FOR i1 = 0 TO 9999 DO
              FOR i2 = 0 TO 999 DO
                A(i1, i2) = A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1)
              ENDFOR
            ENDFOR";
        b.iter(|| black_box(parse_loop_nest(src).unwrap()))
    });
}

fn bench_matrices(c: &mut Criterion) {
    c.bench_function("det/4x4", |b| {
        let m = IntMatrix::from_rows(&[&[3, 1, 0, 2], &[1, 4, 1, 0], &[0, 1, 5, 1], &[2, 0, 1, 6]]);
        b.iter(|| black_box(m.det()))
    });
    c.bench_function("inverse/3x3", |b| {
        let m = IntMatrix::from_rows(&[&[4, 1, 0], &[0, 4, 1], &[0, 0, 8]]);
        b.iter(|| black_box(m.inverse()))
    });
}

criterion_group!(
    benches,
    bench_transform,
    bench_spaces_and_costs,
    bench_schedule_analysis,
    bench_closed_form_and_codegen,
    bench_matrices
);
criterion_main!(benches);
