//! Criterion benchmarks of the real threaded executors: blocking vs
//! overlapping wall-clock time on scaled-down instances of the paper's
//! workload, with injected wire latency.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msgpass::thread_backend::LatencyModel;
use stencil::dist2d::{run_example1_dist, Decomp2D};
use stencil::dist3d::{run_paper3d_dist, Decomp3D, ExecMode};

fn bench_dist3d(c: &mut Criterion) {
    let d = Decomp3D {
        nx: 8,
        ny: 8,
        nz: 1024,
        pi: 2,
        pj: 2,
        v: 64,
        boundary: 1.0,
    };
    let lat = LatencyModel {
        startup_us: 200.0,
        per_byte_us: 0.02,
    };
    let mut g = c.benchmark_group("dist3d_8x8x1024_4ranks");
    g.sample_size(10);
    g.bench_function("blocking", |b| {
        b.iter(|| black_box(run_paper3d_dist(d, lat, ExecMode::Blocking).unwrap().1))
    });
    g.bench_function("overlapping", |b| {
        b.iter(|| black_box(run_paper3d_dist(d, lat, ExecMode::Overlapping).unwrap().1))
    });
    g.finish();
}

fn bench_dist2d(c: &mut Criterion) {
    let d = Decomp2D {
        nx: 2048,
        ny: 16,
        ranks: 4,
        v: 128,
        boundary: 1.0,
    };
    let lat = LatencyModel {
        startup_us: 150.0,
        per_byte_us: 0.02,
    };
    let mut g = c.benchmark_group("dist2d_2048x16_4ranks");
    g.sample_size(10);
    g.bench_function("blocking", |b| {
        b.iter(|| black_box(run_example1_dist(d, lat, ExecMode::Blocking).unwrap().1))
    });
    g.bench_function("overlapping", |b| {
        b.iter(|| black_box(run_example1_dist(d, lat, ExecMode::Overlapping).unwrap().1))
    });
    g.finish();
}

fn bench_recording(c: &mut Criterion) {
    use msgpass::recording::record_sequential;
    use stencil::dist3d::run_rank3d;
    use stencil::kernel::Paper3D;
    let d = Decomp3D {
        nx: 4,
        ny: 4,
        nz: 256,
        pi: 2,
        pj: 2,
        v: 32,
        boundary: 1.0,
    };
    let mut g = c.benchmark_group("trace_driven");
    g.sample_size(10);
    g.bench_function("record_4ranks_8steps", |b| {
        b.iter(|| {
            black_box(record_sequential::<f32, _, _>(4, |comm| {
                run_rank3d(comm, Paper3D, d, ExecMode::Overlapping)
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dist3d, bench_dist2d, bench_recording);
criterion_main!(benches);
