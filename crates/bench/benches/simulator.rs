//! Criterion benchmarks of the discrete-event engine itself: event
//! throughput on pipeline-shaped programs and program construction.

use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiling_core::prelude::*;

fn mini_problem(steps: i64) -> ClusterProblem {
    ClusterProblem::new(
        Tiling::rectangular(&[4, 4, 16]),
        DependenceSet::paper_3d(),
        IterationSpace::from_extents(&[16, 16, 16 * steps]),
        2,
    )
    .expect("valid layout")
}

fn bench_builders(c: &mut Criterion) {
    let machine = MachineParams::paper_cluster();
    let p = mini_problem(64);
    c.bench_function("build/blocking_programs_16r_64steps", |b| {
        b.iter(|| black_box(p.blocking_programs(&machine)))
    });
    c.bench_function("build/overlapping_programs_16r_64steps", |b| {
        b.iter(|| black_box(p.overlapping_programs(&machine)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let machine = MachineParams::paper_cluster();
    let cfg = SimConfig::new(machine).with_trace(false);
    let p = mini_problem(64);
    let blocking = p.blocking_programs(&machine);
    let overlap = p.overlapping_programs(&machine);
    c.bench_function("simulate/blocking_16r_64steps", |b| {
        b.iter(|| black_box(simulate(cfg, blocking.clone()).unwrap().makespan))
    });
    c.bench_function("simulate/overlap_16r_64steps", |b| {
        b.iter(|| black_box(simulate(cfg, overlap.clone()).unwrap().makespan))
    });
    // Trace recording overhead.
    let cfg_tr = SimConfig::new(machine).with_trace(true);
    c.bench_function("simulate/overlap_with_trace", |b| {
        b.iter(|| black_box(simulate(cfg_tr, overlap.clone()).unwrap().makespan))
    });
}

criterion_group!(benches, bench_builders, bench_engine);
criterion_main!(benches);
