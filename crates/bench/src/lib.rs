//! # bench
//!
//! The benchmark harness that regenerates every figure and table of the
//! IPPS 2001 paper from the simulated cluster (see the `paper` binary),
//! plus Criterion micro-benchmarks in `benches/`.
//!
//! * [`experiments`] — the three §5 experiments, the V-sweep driver and
//!   the Fig. 12 table computation.
//! * [`report`] — CSV / markdown / ASCII-plot rendering.
//! * [`gantt`] — the Fig. 1 / Fig. 2 schedule visualizations.
//! * [`ablation`] — the Fig. 3 overlap-level ablation.
//! * [`configs`] — the shipped decompositions, latency models and plan
//!   requests shared by every `paper` subcommand.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod configs;
pub mod experiments;
pub mod gantt;
pub mod report;
pub mod scaling;
pub mod sensitivity;
