//! Regenerating Fig. 3 / Fig. 4: how much each level of overlapping
//! buys, as an ablation over execution styles on the same problem.
//!
//! * level (a): no overlap at all — blocking primitives (Fig. 3a);
//! * level (b): DMA overlap — non-blocking primitives, half-duplex NIC
//!   (the `B₁+B₂+B₃+B₄` serialized lane of Fig. 4b);
//! * level (c): DMA + duplex — non-blocking with independent send and
//!   receive channels (Fig. 3c).

use crate::experiments::{problem_at, Experiment};
use cluster_sim::engine::{simulate, NetworkTopology, SimConfig};
use tiling_core::machine::MachineParams;

/// The three overlap levels of Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OverlapLevel {
    /// Fig. 3a: blocking send/receive, no overlap.
    None,
    /// Fig. 3b: non-blocking with a shared (half-duplex) NIC/DMA lane.
    Dma,
    /// Fig. 3c: non-blocking with duplex DMA channels.
    DuplexDma,
}

impl OverlapLevel {
    /// All levels in presentation order.
    pub fn all() -> [OverlapLevel; 3] {
        [
            OverlapLevel::None,
            OverlapLevel::Dma,
            OverlapLevel::DuplexDma,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            OverlapLevel::None => "no overlap (Fig. 3a)",
            OverlapLevel::Dma => "DMA overlap (Fig. 3b)",
            OverlapLevel::DuplexDma => "DMA + duplex (Fig. 3c)",
        }
    }
}

/// One ablation measurement.
#[derive(Clone, Copy, Debug)]
pub struct AblationPoint {
    /// The overlap level.
    pub level: OverlapLevel,
    /// Simulated completion time (µs).
    pub total_us: f64,
}

/// Run the ablation for one experiment at a fixed tile height.
pub fn run_ablation(exp: &Experiment, v: i64, machine: &MachineParams) -> Vec<AblationPoint> {
    let problem = problem_at(exp, v);
    OverlapLevel::all()
        .into_iter()
        .map(|level| {
            let duplex = level == OverlapLevel::DuplexDma;
            let cfg = SimConfig::new(*machine)
                .with_trace(false)
                .with_duplex(duplex);
            let programs = match level {
                OverlapLevel::None => problem.blocking_programs(machine),
                _ => problem.overlapping_programs(machine),
            };
            let res = simulate(cfg, programs).expect("ablation deadlock-free");
            AblationPoint {
                level,
                total_us: res.makespan.as_us(),
            }
        })
        .collect()
}

/// One row of the hub-vs-switch topology study.
#[derive(Clone, Copy, Debug)]
pub struct TopologyPoint {
    /// The wire-sharing model.
    pub topology: NetworkTopology,
    /// Simulated blocking completion time (µs).
    pub blocking_us: f64,
    /// Simulated overlapping completion time (µs).
    pub overlap_us: f64,
}

/// Beyond the paper: the same experiment on a switched network vs a
/// late-90s shared-medium hub, where every transmission in the cluster
/// serializes. The overlap schedule hides even the extra contention as
/// long as the CPU lane still dominates.
pub fn run_topology_study(exp: &Experiment, v: i64, machine: &MachineParams) -> Vec<TopologyPoint> {
    let problem = problem_at(exp, v);
    [NetworkTopology::Switched, NetworkTopology::SharedBus]
        .into_iter()
        .map(|topology| {
            let cfg = SimConfig::new(*machine)
                .with_trace(false)
                .with_topology(topology);
            let blocking = simulate(cfg, problem.blocking_programs(machine))
                .expect("no deadlock")
                .makespan
                .as_us();
            let overlap = simulate(cfg, problem.overlapping_programs(machine))
                .expect("no deadlock")
                .makespan
                .as_us();
            TopologyPoint {
                topology,
                blocking_us: blocking,
                overlap_us: overlap,
            }
        })
        .collect()
}

/// Markdown for the topology study.
pub fn topology_markdown(points: &[TopologyPoint]) -> String {
    let mut out =
        String::from("| network | blocking (s) | overlap (s) | improvement |\n|---|---|---|---|\n");
    for p in points {
        out += &format!(
            "| {:?} | {:.4} | {:.4} | {:.0}% |\n",
            p.topology,
            p.blocking_us * 1e-6,
            p.overlap_us * 1e-6,
            (1.0 - p.overlap_us / p.blocking_us) * 100.0
        );
    }
    out
}

/// Markdown table of an ablation.
pub fn ablation_markdown(points: &[AblationPoint]) -> String {
    let mut out =
        String::from("| overlap level | completion time (s) | vs no overlap |\n|---|---|---|\n");
    let base = points
        .iter()
        .find(|p| p.level == OverlapLevel::None)
        .map(|p| p.total_us)
        .unwrap_or(f64::NAN);
    for p in points {
        out += &format!(
            "| {} | {:.4} | {:+.1}% |\n",
            p.level.label(),
            p.total_us * 1e-6,
            (p.total_us / base - 1.0) * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Experiment;

    fn mini() -> Experiment {
        Experiment {
            name: "mini",
            nx: 8,
            ny: 8,
            nz: 512,
            pi: 2,
            pj: 2,
            paper_v_optimal: 64,
            paper_t_overlap_s: 0.0,
            paper_t_nonoverlap_s: 0.0,
            paper_fill_ms: 0.0,
        }
    }

    #[test]
    fn overlap_levels_ordered() {
        let machine = MachineParams::paper_cluster();
        let pts = run_ablation(&mini(), 64, &machine);
        assert_eq!(pts.len(), 3);
        let by_level = |l: OverlapLevel| pts.iter().find(|p| p.level == l).unwrap().total_us;
        // Non-blocking beats blocking; duplex never loses to half-duplex.
        assert!(by_level(OverlapLevel::Dma) < by_level(OverlapLevel::None));
        assert!(by_level(OverlapLevel::DuplexDma) <= by_level(OverlapLevel::Dma) * 1.0001);
    }

    #[test]
    fn shared_bus_never_faster() {
        let machine = MachineParams::paper_cluster();
        let pts = run_topology_study(&mini(), 64, &machine);
        assert_eq!(pts.len(), 2);
        let sw = &pts[0];
        let bus = &pts[1];
        assert!(bus.blocking_us >= sw.blocking_us);
        assert!(bus.overlap_us >= sw.overlap_us);
        let md = topology_markdown(&pts);
        assert!(md.contains("SharedBus"));
    }

    #[test]
    fn markdown_contains_rows() {
        let machine = MachineParams::paper_cluster();
        let pts = run_ablation(&mini(), 32, &machine);
        let md = ablation_markdown(&pts);
        assert!(md.contains("Fig. 3a"));
        assert!(md.contains("Fig. 3b"));
        assert!(md.contains("Fig. 3c"));
        assert!(md.contains("+0.0%"));
    }
}
