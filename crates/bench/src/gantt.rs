//! Regenerating Fig. 1 and Fig. 2: the time-step structure of the two
//! schedules on a small processor pipeline, rendered as ASCII Gantt
//! charts from actual simulator traces.
//!
//! The paper's figures show six processors executing a 1-D tile
//! pipeline: in the non-overlapping schedule every step is a serialized
//! *receive → compute → send* triplet (stripes of distinct phases); in
//! the overlapping schedule the CPU rows are nearly solid computation
//! with communication pushed to the DMA lanes.
//!
//! The same charts can also be rendered from **real execution**: the
//! thread-backend executors record wall-clock activity intervals in the
//! simulator's trace format ([`thread_figure`]), so a measured run draws
//! through the exact same Gantt/SVG paths as a simulated one.

use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig, SimResult};
use cluster_sim::time::SimTime;
use cluster_sim::trace::Trace;
use msgpass::thread_backend::LatencyModel;
use std::time::Duration;
use stencil::dist3d::{run_dist3d_traced, Decomp3D, ExecMode};
use stencil::kernel::Paper3D;
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::MachineParams;
use tiling_core::space::IterationSpace;
use tiling_core::tiling::Tiling;

/// The demo pipeline: `procs` processors, `steps` tiles each, tile side
/// `tile` on a 2-D space with unit dependences, mapped along dimension 1.
pub fn demo_problem(procs: i64, steps: i64, tile: i64) -> ClusterProblem {
    ClusterProblem::new(
        Tiling::rectangular(&[tile, tile]),
        DependenceSet::units(2),
        IterationSpace::from_extents(&[procs * tile, steps * tile]),
        1,
    )
    .expect("demo layout is valid")
}

/// Simulate the non-overlapping (Fig. 1) schedule with traces.
pub fn fig1_simulation(machine: &MachineParams, procs: i64, steps: i64, tile: i64) -> SimResult {
    let p = demo_problem(procs, steps, tile);
    simulate(SimConfig::new(*machine), p.blocking_programs(machine)).expect("fig1 deadlock-free")
}

/// Simulate the overlapping (Fig. 2) schedule with traces.
pub fn fig2_simulation(machine: &MachineParams, procs: i64, steps: i64, tile: i64) -> SimResult {
    let p = demo_problem(procs, steps, tile);
    simulate(SimConfig::new(*machine), p.overlapping_programs(machine)).expect("fig2 deadlock-free")
}

/// Render both figures side by side (returns the combined text).
pub fn render_figures(machine: &MachineParams, procs: i64, steps: i64, tile: i64) -> String {
    let fig1 = fig1_simulation(machine, procs, steps, tile);
    let fig2 = fig2_simulation(machine, procs, steps, tile);
    let ranks: Vec<usize> = (0..procs as usize).collect();
    let width = 100;
    let horizon = fig1.makespan.max(fig2.makespan);
    let mut out = String::new();
    out += "Fig. 1 — non-overlapping schedule (R = blocking recv copy, #: compute, S: blocking send):\n";
    out += &fig1.trace.gantt(&ranks, horizon, width);
    out += &format!("makespan: {}\n\n", fig1.makespan);
    out += "Fig. 2 — overlapping schedule (r/s: post Irecv/Isend, #: compute, .: idle):\n";
    out += &fig2.trace.gantt(&ranks, horizon, width);
    out += &format!("makespan: {}\n", fig2.makespan);
    out
}

/// A real-execution figure: the wall-clock trace of a thread-backend
/// run, in the same interval format as a [`SimResult`] trace.
pub struct ThreadFigure {
    /// Merged per-rank activity trace (epoch-relative wall time).
    pub trace: Trace,
    /// Wall-clock time of the parallel region.
    pub elapsed: Duration,
}

impl ThreadFigure {
    /// Latest interval end — the Gantt horizon of this run.
    pub fn horizon(&self) -> SimTime {
        self.trace.horizon()
    }
}

/// The default scaled-down workload for real-execution figures: a 2×2
/// processor grid over a deep-enough pipeline that the schedule
/// structure (fill, steady state, drain) is visible at terminal width.
pub fn thread_demo_decomp() -> Decomp3D {
    Decomp3D {
        nx: 8,
        ny: 8,
        nz: 1024,
        pi: 2,
        pj: 2,
        v: 128,
        boundary: 1.0,
    }
}

/// Run the paper's 3-D kernel for real on the thread backend with
/// wall-clock tracing and return the figure.
pub fn thread_figure(d: Decomp3D, latency: LatencyModel, mode: ExecMode) -> ThreadFigure {
    let (_, elapsed, trace) =
        run_dist3d_traced(Paper3D, d, latency, mode).expect("valid demo decomposition");
    ThreadFigure { trace, elapsed }
}

/// Render the Fig. 1 / Fig. 2 pair from **measured** thread-backend
/// runs: same glyphs, same renderer, wall-clock data.
pub fn render_thread_figures(d: Decomp3D, latency: LatencyModel) -> String {
    let fig1 = thread_figure(d, latency, ExecMode::Blocking);
    let fig2 = thread_figure(d, latency, ExecMode::Overlapping);
    let ranks: Vec<usize> = (0..d.pi * d.pj).collect();
    let width = 100;
    let horizon = fig1.horizon().max(fig2.horizon());
    let mut out = String::new();
    out += "Fig. 1 (measured) — blocking executor on the thread backend (R: blocking recv, #: compute, S: blocking send):\n";
    out += &fig1.trace.gantt(&ranks, horizon, width);
    out += &format!("wall time: {:.3} s\n\n", fig1.elapsed.as_secs_f64());
    out += "Fig. 2 (measured) — overlapping executor (r/s: post Irecv/Isend + face copies, #: compute, .: request wait):\n";
    out += &fig2.trace.gantt(&ranks, horizon, width);
    out += &format!("wall time: {:.3} s\n", fig2.elapsed.as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineParams {
        MachineParams::example_1()
    }

    #[test]
    fn fig1_structure_has_triplets() {
        let res = fig1_simulation(&machine(), 4, 6, 10);
        // Rank 1 must show blocking recv, compute and blocking send.
        use cluster_sim::trace::Activity;
        let acts: std::collections::HashSet<_> = res
            .trace
            .for_rank(1)
            .map(|iv| format!("{:?}", iv.activity))
            .collect();
        assert!(acts.contains("BlockingRecv"), "{acts:?}");
        assert!(acts.contains("Compute"));
        assert!(acts.contains("BlockingSend"));
        let _ = Activity::Compute;
    }

    #[test]
    fn fig2_is_faster_than_fig1_at_proper_grain() {
        // Tile big enough that compute dominates the posting costs, and
        // a pipeline deep enough (steps ≫ processors) that the overlap
        // schedule's extra hyperplanes are amortized — the paper's
        // regime (e.g. 37 k-tiles across a 4×4 grid).
        let res1 = fig1_simulation(&machine(), 4, 24, 32);
        let res2 = fig2_simulation(&machine(), 4, 24, 32);
        assert!(
            res2.makespan < res1.makespan,
            "overlap {} vs blocking {}",
            res2.makespan,
            res1.makespan
        );
    }

    #[test]
    fn fig2_cpu_activity_is_mostly_compute() {
        let res = fig2_simulation(&machine(), 4, 6, 32);
        // For a middle rank, compute time dominates CPU busy time.
        let busy = res.trace.cpu_busy(2).as_us();
        let comp = res.trace.compute_time(2).as_us();
        assert!(comp / busy > 0.6, "compute fraction {}", comp / busy);
    }

    #[test]
    fn render_produces_both_charts() {
        let text = render_figures(&machine(), 4, 5, 12);
        assert!(text.contains("Fig. 1"));
        assert!(text.contains("Fig. 2"));
        assert!(text.matches("makespan").count() == 2);
        assert!(text.contains('#'));
    }

    #[test]
    fn thread_backend_figures_render_through_same_path() {
        // Small real run: the measured trace must carry per-rank Compute
        // intervals and render through the simulator's Gantt renderer.
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 64,
            pi: 2,
            pj: 2,
            v: 16,
            boundary: 1.0,
        };
        let text = render_thread_figures(d, LatencyModel::zero());
        assert!(text.contains("Fig. 1 (measured)"));
        assert!(text.contains("Fig. 2 (measured)"));
        assert!(text.contains('#'));
        let fig = thread_figure(d, LatencyModel::zero(), ExecMode::Overlapping);
        use cluster_sim::trace::Activity;
        for rank in 0..4 {
            assert!(
                fig.trace
                    .for_rank(rank)
                    .any(|iv| iv.activity == Activity::Compute),
                "rank {rank} has no compute intervals"
            );
        }
        assert!(fig.horizon() > SimTime::ZERO);
    }

    #[test]
    fn pipeline_stagger_visible_in_start_times() {
        // Later ranks start computing later (pipeline fill).
        let res = fig2_simulation(&machine(), 4, 6, 16);
        use cluster_sim::trace::Activity;
        let first_compute = |rank: usize| {
            res.trace
                .for_rank(rank)
                .find(|iv| iv.activity == Activity::Compute)
                .map(|iv| iv.start)
                .expect("every rank computes")
        };
        assert!(first_compute(0) < first_compute(1));
        assert!(first_compute(1) < first_compute(2));
        assert!(first_compute(2) < first_compute(3));
    }
}
