//! Beyond the paper: how the overlap win depends on the machine.
//!
//! The paper evaluates one cluster (FastEthernet, MPICH 1998-era
//! buffer-copy costs). A natural question — and the premise of its §6
//! future work on DMA/SCI hardware — is how the improvement behaves as
//! the communication-to-computation ratio changes. This module sweeps a
//! scale factor over *all* communication costs (startup, per-byte wire,
//! buffer fills) while holding `t_c` fixed, re-optimizing the tile
//! height for **each schedule at each point** (comparing both at their
//! own optima, as the paper does), and reports the improvement curve.
//!
//! Expected shape: at near-zero communication both schedules converge
//! (nothing to hide); the win grows with communication cost while the
//! CPU can still hide it, then shrinks again once even the overlapped
//! pipeline is communication-bound (`B`-lane dominated, §4 case 2).

use crate::experiments::{simulate_point, Experiment};
use tiling_core::machine::MachineParams;
use tiling_core::optimize::height_ladder;

/// One point of the sensitivity sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensitivityPoint {
    /// Communication scale factor vs the paper cluster.
    pub comm_scale: f64,
    /// Best blocking time over the V ladder (µs).
    pub blocking_us: f64,
    /// V at the blocking optimum.
    pub blocking_v: i64,
    /// Best overlapping time over the V ladder (µs).
    pub overlap_us: f64,
    /// V at the overlapping optimum.
    pub overlap_v: i64,
}

impl SensitivityPoint {
    /// `1 − overlap/blocking` at the respective optima.
    pub fn improvement(&self) -> f64 {
        1.0 - self.overlap_us / self.blocking_us
    }
}

/// Sweep communication scale factors for one experiment; each point
/// re-optimizes V on a geometric ladder for both schedules.
pub fn comm_scale_sweep(
    exp: &Experiment,
    base: &MachineParams,
    scales: &[f64],
    ladder_points: usize,
) -> Vec<SensitivityPoint> {
    let heights = height_ladder(4, exp.nz / 4, ladder_points);
    scales
        .iter()
        .map(|&scale| {
            let machine = base.scale_communication(scale);
            let mut best_b = f64::INFINITY;
            let mut best_bv = 0;
            let mut best_o = f64::INFINITY;
            let mut best_ov = 0;
            for &v in &heights {
                let p = simulate_point(exp, v, &machine);
                if p.blocking_us < best_b {
                    best_b = p.blocking_us;
                    best_bv = v;
                }
                if p.overlap_us < best_o {
                    best_o = p.overlap_us;
                    best_ov = v;
                }
            }
            SensitivityPoint {
                comm_scale: scale,
                blocking_us: best_b,
                blocking_v: best_bv,
                overlap_us: best_o,
                overlap_v: best_ov,
            }
        })
        .collect()
}

/// Run one experiment across named machine presets (network
/// generations), re-optimizing V per schedule per machine.
pub fn network_generations(
    exp: &Experiment,
    machines: &[(&'static str, MachineParams)],
    ladder_points: usize,
) -> Vec<(&'static str, SensitivityPoint)> {
    let heights = height_ladder(4, exp.nz / 4, ladder_points);
    machines
        .iter()
        .map(|&(name, machine)| {
            let mut best_b = f64::INFINITY;
            let mut best_bv = 0;
            let mut best_o = f64::INFINITY;
            let mut best_ov = 0;
            for &v in &heights {
                let p = simulate_point(exp, v, &machine);
                if p.blocking_us < best_b {
                    best_b = p.blocking_us;
                    best_bv = v;
                }
                if p.overlap_us < best_o {
                    best_o = p.overlap_us;
                    best_ov = v;
                }
            }
            (
                name,
                SensitivityPoint {
                    comm_scale: f64::NAN,
                    blocking_us: best_b,
                    blocking_v: best_bv,
                    overlap_us: best_o,
                    overlap_v: best_ov,
                },
            )
        })
        .collect()
}

/// Markdown for a network-generation comparison.
pub fn generations_markdown(rows: &[(&'static str, SensitivityPoint)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| network | blocking t_opt (s) @ V | overlap t_opt (s) @ V | improvement |\n|---|---|---|---|\n",
    );
    for (name, p) in rows {
        let _ = writeln!(
            out,
            "| {} | {:.4} @ {} | {:.4} @ {} | {:.0}% |",
            name,
            p.blocking_us * 1e-6,
            p.blocking_v,
            p.overlap_us * 1e-6,
            p.overlap_v,
            p.improvement() * 100.0
        );
    }
    out
}

/// Markdown rendering of a sensitivity sweep.
pub fn sensitivity_markdown(points: &[SensitivityPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| comm scale | blocking t_opt (s) @ V | overlap t_opt (s) @ V | improvement |\n|---|---|---|---|\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "| {:.2}× | {:.4} @ {} | {:.4} @ {} | {:.0}% |",
            p.comm_scale,
            p.blocking_us * 1e-6,
            p.blocking_v,
            p.overlap_us * 1e-6,
            p.overlap_v,
            p.improvement() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Experiment;

    fn mini() -> Experiment {
        Experiment {
            name: "mini",
            nx: 8,
            ny: 8,
            nz: 512,
            pi: 2,
            pj: 2,
            paper_v_optimal: 64,
            paper_t_overlap_s: 0.0,
            paper_t_nonoverlap_s: 0.0,
            paper_fill_ms: 0.0,
        }
    }

    #[test]
    fn zero_scale_equalizes() {
        let pts = comm_scale_sweep(&mini(), &MachineParams::paper_cluster(), &[0.0], 6);
        // Free communication: improvement collapses to ~0.
        assert!(pts[0].improvement().abs() < 0.02, "{:?}", pts[0]);
    }

    #[test]
    fn paper_scale_shows_win() {
        let pts = comm_scale_sweep(&mini(), &MachineParams::paper_cluster(), &[1.0], 8);
        assert!(pts[0].improvement() > 0.10, "{:?}", pts[0]);
    }

    #[test]
    fn optimal_v_grows_with_comm_cost() {
        // Costlier communication pushes both schedules to coarser grain.
        let pts = comm_scale_sweep(&mini(), &MachineParams::paper_cluster(), &[0.25, 4.0], 10);
        assert!(pts[1].overlap_v >= pts[0].overlap_v, "{pts:?}");
        assert!(pts[1].blocking_v >= pts[0].blocking_v, "{pts:?}");
    }

    #[test]
    fn markdown_renders() {
        let pts = comm_scale_sweep(&mini(), &MachineParams::paper_cluster(), &[1.0], 5);
        let md = sensitivity_markdown(&pts);
        assert!(md.contains("1.00×"));
    }

    #[test]
    fn generations_faster_networks_run_faster() {
        let rows = network_generations(
            &mini(),
            &[
                ("FastEthernet (paper)", MachineParams::paper_cluster()),
                ("Gigabit-class", MachineParams::gigabit_cluster()),
                ("OS-bypass", MachineParams::os_bypass_cluster()),
            ],
            8,
        );
        assert_eq!(rows.len(), 3);
        assert!(rows[1].1.overlap_us < rows[0].1.overlap_us);
        assert!(rows[2].1.overlap_us < rows[1].1.overlap_us);
        let md = generations_markdown(&rows);
        assert!(md.contains("OS-bypass"));
    }
}
