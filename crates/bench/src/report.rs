//! Plain-text reporting: CSV series and markdown tables for the
//! regenerated figures, written without any serialization dependency.

use crate::experiments::{SimSweepPoint, Table12Row};
use std::fmt::Write as _;

/// CSV of a figure sweep: `v,g,nonoverlap_us,overlap_us`.
pub fn sweep_csv(points: &[SimSweepPoint]) -> String {
    let mut out = String::from("v,g,nonoverlap_us,overlap_us\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.1},{:.1}",
            p.v, p.g, p.blocking_us, p.overlap_us
        );
    }
    out
}

/// A small ASCII plot of a sweep (time vs V, log-x), mirroring the shape
/// of the paper's Fig. 9–11.
pub fn sweep_ascii_plot(points: &[SimSweepPoint], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot too small");
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let tmax = points
        .iter()
        .map(|p| p.blocking_us.max(p.overlap_us))
        .fold(0.0f64, f64::max);
    let tmin = points
        .iter()
        .map(|p| p.blocking_us.min(p.overlap_us))
        .fold(f64::INFINITY, f64::min);
    let span = (tmax - tmin).max(1e-9);
    let vmin = (points.first().unwrap().v as f64).ln();
    let vmax = (points.last().unwrap().v as f64).ln().max(vmin + 1e-9);
    let mut rows = vec![vec![' '; width]; height];
    let mut place = |v: i64, t: f64, c: char| {
        let x = (((v as f64).ln() - vmin) / (vmax - vmin) * (width - 1) as f64).round() as usize;
        let y = ((tmax - t) / span * (height - 1) as f64).round() as usize;
        let cell = &mut rows[y.min(height - 1)][x.min(width - 1)];
        // Overlapping marks become '*'.
        *cell = if *cell == ' ' || *cell == c { c } else { '*' };
    };
    for p in points {
        place(p.v, p.blocking_us, 'N');
        place(p.v, p.overlap_us, 'O');
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "time {:.3}s (top) … {:.3}s (bottom); x = tile height V (log), N = non-overlap, O = overlap",
        tmax * 1e-6,
        tmin * 1e-6
    );
    for r in rows {
        let _ = writeln!(out, "|{}|", r.iter().collect::<String>());
    }
    out
}

/// Markdown rendering of the Fig. 12 table, paper columns included.
pub fn table12_markdown(rows: &[Table12Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| quantity | {} |",
        rows.iter()
            .map(|r| r.exp.name.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(
        out,
        "|---|{}|",
        rows.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    let row = |label: &str, f: &dyn Fn(&Table12Row) -> String| {
        let cells = rows.iter().map(f).collect::<Vec<_>>().join(" | ");
        format!("| {label} | {cells} |\n")
    };
    out += &row("index set size", &|r| {
        format!("{}×{}×{}", r.exp.nx, r.exp.ny, r.exp.nz)
    });
    out += &row("V_optimal (sim)", &|r| r.v_optimal.to_string());
    out += &row("V_optimal (paper)", &|r| r.exp.paper_v_optimal.to_string());
    out += &row("g_optimal (sim)", &|r| r.g_optimal.to_string());
    out += &row("t_optimal overlap sim (s)", &|r| {
        format!("{:.4}", r.t_overlap_s)
    });
    out += &row("t_optimal overlap paper (s)", &|r| {
        format!("{:.4}", r.exp.paper_t_overlap_s)
    });
    out += &row("T_fill_MPI_buf model (ms)", &|r| {
        format!("{:.3}", r.fill_ms)
    });
    out += &row("T_fill_MPI_buf paper (ms)", &|r| {
        format!("{:.3}", r.exp.paper_fill_ms)
    });
    out += &row("P(g) (exact UET-UCT)", &|r| r.planes.to_string());
    out += &row("t_optimal overlap theory (s)", &|r| {
        format!("{:.4}", r.t_theory_s)
    });
    out += &row("theory vs sim difference", &|r| {
        format!("{:.1}%", r.theory_diff * 100.0)
    });
    out += &row("t_optimal non-overlap sim (s)", &|r| {
        format!("{:.4}", r.t_nonoverlap_s)
    });
    out += &row("t_optimal non-overlap paper (s)", &|r| {
        format!("{:.4}", r.exp.paper_t_nonoverlap_s)
    });
    out += &row("improvement overlap vs non-overlap", &|r| {
        format!("{:.0}%", r.improvement * 100.0)
    });
    out += &row("improvement (paper)", &|r| {
        format!(
            "{:.0}%",
            (1.0 - r.exp.paper_t_overlap_s / r.exp.paper_t_nonoverlap_s) * 100.0
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{paper_experiments, Experiment};

    fn pts() -> Vec<SimSweepPoint> {
        vec![
            SimSweepPoint {
                v: 4,
                g: 64,
                blocking_us: 900_000.0,
                overlap_us: 700_000.0,
            },
            SimSweepPoint {
                v: 64,
                g: 1024,
                blocking_us: 400_000.0,
                overlap_us: 250_000.0,
            },
            SimSweepPoint {
                v: 1024,
                g: 16384,
                blocking_us: 600_000.0,
                overlap_us: 500_000.0,
            },
        ]
    }

    #[test]
    fn csv_format() {
        let csv = sweep_csv(&pts());
        assert!(csv.starts_with("v,g,nonoverlap_us,overlap_us\n"));
        assert!(csv.contains("64,1024,400000.0,250000.0"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn ascii_plot_contains_series_markers() {
        let plot = sweep_ascii_plot(&pts(), 40, 10);
        assert!(plot.contains('N'));
        assert!(plot.contains('O'));
        assert!(plot.lines().count() >= 10);
    }

    #[test]
    fn ascii_plot_empty() {
        assert_eq!(sweep_ascii_plot(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn table12_markdown_structure() {
        let exp: Experiment = paper_experiments()[0];
        let row = Table12Row {
            exp,
            v_optimal: 400,
            g_optimal: 6400,
            t_overlap_s: 0.25,
            fill_ms: 0.6,
            planes: 49,
            t_theory_s: 0.27,
            theory_diff: 0.08,
            t_nonoverlap_s: 0.35,
            improvement: 0.29,
        };
        let md = table12_markdown(&[row]);
        assert!(md.contains("| V_optimal (sim) | 400 |"));
        assert!(md.contains("16×16×16384"));
        assert!(md.contains("29%"));
        assert!(md.contains("| improvement (paper) | 38% |"));
    }
}
