//! Beyond the paper: strong-scaling behaviour of the two schedules.
//!
//! The paper fixes 16 processors. A natural companion study is to hold
//! the iteration space fixed and grow the processor grid — the blocking
//! schedule's serialized `receive → compute → send` steps shrink with
//! the per-processor tile, but the startup costs per step do not, so
//! its scaling stalls earlier than the overlapping schedule's, whose
//! per-step cost approaches the posting floor instead.
//!
//! For each grid the tile cross-section is chosen as in §5 (one tile
//! column per processor) and the tile height is re-optimized per
//! schedule over a ladder, so each point is each schedule's best
//! configuration at that processor count.

use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig};
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::MachineParams;
use tiling_core::optimize::height_ladder;
use tiling_core::space::IterationSpace;

/// One strong-scaling measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Processors per cross-section side (total = side²).
    pub grid_side: i64,
    /// Best blocking time (µs) and its V.
    pub blocking_us: f64,
    /// V at the blocking optimum.
    pub blocking_v: i64,
    /// Best overlapping time (µs) and its V.
    pub overlap_us: f64,
    /// V at the overlapping optimum.
    pub overlap_v: i64,
}

impl ScalingPoint {
    /// Parallel speedup of the overlapping run vs a given serial time.
    pub fn overlap_speedup(&self, serial_us: f64) -> f64 {
        serial_us / self.overlap_us
    }

    /// Parallel speedup of the blocking run vs a given serial time.
    pub fn blocking_speedup(&self, serial_us: f64) -> f64 {
        serial_us / self.blocking_us
    }
}

/// Serial execution time of the whole space (µs): `volume · t_c`.
pub fn serial_time_us(space: &IterationSpace, machine: &MachineParams) -> f64 {
    space.volume() as f64 * machine.t_c_us
}

/// Run the strong-scaling study on square grids `side × side`.
///
/// # Panics
/// Panics if a side does not divide the space's cross-section extents.
pub fn strong_scaling(
    space: &IterationSpace,
    machine: &MachineParams,
    sides: &[i64],
    ladder_points: usize,
) -> Vec<ScalingPoint> {
    let deps = DependenceSet::paper_3d();
    let mapping_dim = 2;
    sides
        .iter()
        .map(|&side| {
            let heights = height_ladder(4, space.extent(mapping_dim) / 4, ladder_points);
            let mut best_b = f64::INFINITY;
            let mut best_bv = 0;
            let mut best_o = f64::INFINITY;
            let mut best_ov = 0;
            for &v in &heights {
                let problem = ClusterProblem::for_processor_grid(
                    deps.clone(),
                    space.clone(),
                    mapping_dim,
                    &[side, side],
                    v,
                )
                .expect("divisible grid");
                let cfg = SimConfig::new(*machine).with_trace(false);
                let b = simulate(cfg, problem.blocking_programs(machine))
                    .expect("no deadlock")
                    .makespan
                    .as_us();
                let o = simulate(cfg, problem.overlapping_programs(machine))
                    .expect("no deadlock")
                    .makespan
                    .as_us();
                if b < best_b {
                    best_b = b;
                    best_bv = v;
                }
                if o < best_o {
                    best_o = o;
                    best_ov = v;
                }
            }
            ScalingPoint {
                grid_side: side,
                blocking_us: best_b,
                blocking_v: best_bv,
                overlap_us: best_o,
                overlap_v: best_ov,
            }
        })
        .collect()
}

/// Markdown table of a scaling study.
pub fn scaling_markdown(points: &[ScalingPoint], serial_us: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| processors | blocking t (s) | speedup | overlap t (s) | speedup | overlap gain |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "| {}×{} | {:.4} | {:.1}× | {:.4} | {:.1}× | {:.0}% |",
            p.grid_side,
            p.grid_side,
            p.blocking_us * 1e-6,
            p.blocking_speedup(serial_us),
            p.overlap_us * 1e-6,
            p.overlap_speedup(serial_us),
            (1.0 - p.overlap_us / p.blocking_us) * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_processors() {
        let space = IterationSpace::from_extents(&[16, 16, 2048]);
        let machine = MachineParams::paper_cluster();
        let pts = strong_scaling(&space, &machine, &[1, 2, 4], 8);
        assert_eq!(pts.len(), 3);
        // More processors, less time (for both schedules, at this scale).
        assert!(pts[1].overlap_us < pts[0].overlap_us);
        assert!(pts[2].overlap_us < pts[1].overlap_us);
        assert!(pts[2].blocking_us < pts[0].blocking_us);
    }

    #[test]
    fn single_processor_near_serial() {
        // On a 1×1 grid there is no communication at all: both
        // schedules equal the serial time.
        let space = IterationSpace::from_extents(&[8, 8, 512]);
        let machine = MachineParams::paper_cluster();
        let pts = strong_scaling(&space, &machine, &[1], 4);
        let serial = serial_time_us(&space, &machine);
        assert!((pts[0].overlap_us - serial).abs() / serial < 0.01);
        assert!((pts[0].blocking_us - serial).abs() / serial < 0.01);
    }

    #[test]
    fn overlap_scales_at_least_as_well() {
        let space = IterationSpace::from_extents(&[16, 16, 2048]);
        let machine = MachineParams::paper_cluster();
        let pts = strong_scaling(&space, &machine, &[2, 4], 8);
        for p in &pts[1..] {
            assert!(p.overlap_us <= p.blocking_us, "{p:?}");
        }
    }

    #[test]
    fn markdown_renders() {
        let pts = vec![ScalingPoint {
            grid_side: 4,
            blocking_us: 2e6,
            blocking_v: 64,
            overlap_us: 1.5e6,
            overlap_v: 32,
        }];
        let md = scaling_markdown(&pts, 16e6);
        assert!(md.contains("4×4"));
        assert!(md.contains("8.0×")); // blocking speedup
        assert!(md.contains("10.7×")); // overlap speedup
    }
}
