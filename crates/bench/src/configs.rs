//! The shipped configurations: every decomposition, latency model and
//! plan request the `paper` harness runs, defined once.
//!
//! Before this module each subcommand hand-built its own `Decomp3D`
//! and `WorldConfig`, so `paper analyze`'s "every shipped
//! configuration" sweep had to mirror those literals by hand. Now the
//! subcommands and the analyzer sweep draw from the same builders, and
//! the thread-backed subcommands compile their [`planc::PlanRequest`]s
//! from the same source of truth.

use autotune::TuneProblem;
use msgpass::thread_backend::{LatencyModel, WorldConfig};
use msgpass::transport::TransportKind;
use planc::PlanRequest;
use stencil::dist2d::Decomp2D;
use stencil::dist3d::{Decomp3D, ExecMode};
use tiling_core::machine::{MachineParams, PiecewiseCost};

/// `paper threads`: experiment i scaled to a 2×2 world.
pub fn threads_decomp() -> Decomp3D {
    Decomp3D {
        nx: 8,
        ny: 8,
        nz: 4096,
        pi: 2,
        pj: 2,
        v: 128,
        boundary: 1.0,
    }
}

/// `paper chaos`: the fault-injection workload.
pub fn chaos_decomp() -> Decomp3D {
    Decomp3D {
        nz: 2048,
        ..threads_decomp()
    }
}

/// `paper chaos`: the shallower traced run behind the stall Gantt.
pub fn chaos_gantt_decomp() -> Decomp3D {
    Decomp3D {
        nz: 512,
        v: 64,
        ..threads_decomp()
    }
}

/// `paper perf`: the deep zero-latency pipeline the executor
/// comparisons run on (quick mode shortens it, same shape).
pub fn perf_deep_decomp(quick: bool) -> Decomp3D {
    Decomp3D {
        nz: if quick { 16_384 } else { 65_536 },
        v: 256,
        ..threads_decomp()
    }
}

/// `paper example1` as a real 2-D strip decomposition (also the
/// analyzer sweep's 2-D row).
pub fn example1_strip() -> Decomp2D {
    Decomp2D {
        nx: 10_000,
        ny: 1_000,
        ranks: 10,
        v: 10,
        boundary: 1.0,
    }
}

/// `paper threads`: injected wire latency.
pub fn threads_latency() -> LatencyModel {
    LatencyModel {
        startup_us: 500.0,
        per_byte_us: 0.08,
    }
}

/// The demo-scale wire latency used by the thread-backend Gantt charts
/// and the chaos stall trace: visible against the compute without
/// swamping it.
pub fn demo_wire_latency() -> LatencyModel {
    LatencyModel {
        startup_us: 300.0,
        per_byte_us: 0.05,
    }
}

/// Zero-latency world: wall-clock equals executor work.
pub fn zero_world() -> WorldConfig {
    WorldConfig::new(LatencyModel::zero())
}

/// Benchmark world: zero latency, per-run pre-flight off (the timed
/// sections measure the executor alone; `paper analyze` and the
/// compiled-plan pipeline cover these layouts).
pub fn bench_world() -> WorldConfig {
    zero_world().without_preflight()
}

/// The plan request for a shipped 3-D decomposition, on the mpsc
/// transport the thread demos have always used.
pub fn plan_request(d: Decomp3D, mode: ExecMode) -> PlanRequest {
    PlanRequest::grid3(d.nx, d.ny, d.nz, d.pi, d.pj)
        .with_v(d.v)
        .with_mode(mode)
        .with_transport(TransportKind::Mpsc)
        .with_boundary(d.boundary)
}

/// `paper tune`: a measured wire-transfer curve with a rendezvous knee
/// — linear to the eager limit (~1 KiB), a protocol-switch cliff to
/// 1.5 KiB, then fragmented-transfer slope. The closed form keeps
/// predicting with the affine `t_t` wire model, which is exactly what
/// makes machines carrying this curve out-of-model.
pub fn tune_transfer_curve() -> PiecewiseCost {
    PiecewiseCost::from_knots(&[
        (0.0, 15.0),
        (1024.0, 100.0),
        (1536.0, 700.0),
        (8192.0, 1800.0),
    ])
    .expect("static knots are valid")
}

/// `paper tune`: the machine the out-of-model acceptance rows simulate
/// — the paper cluster with [`tune_transfer_curve`] installed.
pub fn tune_machine() -> MachineParams {
    MachineParams::paper_cluster().with_transfer_curve(tune_transfer_curve())
}

/// `paper tune`: the thread-backend calibration workload (quick mode
/// shortens the pipeline, same shape). Gated by ci.sh: the tuned plan
/// must never measure slower than the closed-form seed.
pub fn tune_thread_problem(quick: bool) -> TuneProblem {
    TuneProblem {
        nx: 8,
        ny: 8,
        nz: if quick { 1024 } else { 4096 },
        pi: 2,
        pj: 2,
    }
}

/// `paper tune`: the partial-tile acceptance grid. 2100 planes do not
/// divide by the closed form's pick (V* = 98 ⇒ 21 full tiles plus a
/// 42-plane remainder), and at V* the 1568-byte faces sit past the
/// transfer curve's rendezvous knee — the tuner must find a
/// step-aligned height below the knee.
pub fn tune_partial_tile_problem() -> TuneProblem {
    TuneProblem {
        nx: 8,
        ny: 8,
        nz: 2100,
        pi: 2,
        pj: 2,
    }
}

/// `paper tune`: the heterogeneous 4×4-world acceptance grid
/// (node-speed spread [`TUNE_HETERO_SPREAD`], seeded per `--seed`).
pub fn tune_hetero_problem() -> TuneProblem {
    TuneProblem {
        nx: 16,
        ny: 16,
        nz: 4096,
        pi: 4,
        pj: 4,
    }
}

/// `paper tune`: node-speed spread of the heterogeneous acceptance row.
pub const TUNE_HETERO_SPREAD: f64 = 0.35;

/// `paper tune`: default node-speed seed of the heterogeneous row.
pub const TUNE_HETERO_SEED: u64 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_decomps_compile() {
        for d in [threads_decomp(), chaos_decomp(), chaos_gantt_decomp()] {
            for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
                let a = planc::compile(&plan_request(d, mode)).expect("shipped decomp compiles");
                assert_eq!(a.v(), d.v);
                assert_eq!(a.ranks(), d.pi * d.pj);
            }
        }
    }
}
