//! The paper-reproduction harness: one subcommand per figure/table of
//! Goumas, Sotiropoulos & Koziris, IPPS 2001.
//!
//! ```text
//! paper example1   §3 Example 1 + §4 Example 3 analytic reproduction
//! paper gantt      Fig. 1 / Fig. 2 schedule Gantt charts (simulated);
//!                  `paper gantt --backend thread` renders the same
//!                  charts from a measured thread-backend run
//! paper fig9       Fig. 9  — 16×16×16384 V-sweep (CSV + plot + optima)
//! paper fig10      Fig. 10 — 16×16×32768 V-sweep
//! paper fig11      Fig. 11 — 32×32×4096 V-sweep
//! paper table12    Fig. 12 — the summary table, paper vs reproduction
//! paper ablation   Fig. 3  — overlap-level ablation
//! paper threads    real multi-threaded run (msgpass backend)
//! paper chaos      fault-injection demo: seeded drops/duplicates/
//!                  reorders/delay-spikes under the reliability layer,
//!                  a typed unrecoverable failure, and a stall-annotated
//!                  Gantt chart (results/chaos_gantt.svg)
//! paper perf       hot-path benchmark: optimized vs legacy executors
//!                  (writes BENCH_stencil.json at the repo root)
//! paper sweep      Monte-Carlo design-space sweep over the simulator
//!                  (seeded, parallel, panic-isolated; writes
//!                  results/sweep.csv + results/sweep_summary.json with
//!                  Figs. 9-11 embedded as named slices, plus the
//!                  results/tune_train.csv surrogate training slice)
//! paper tune       closed-loop autotuner: closed-form seed, surrogate
//!                  pre-rank, measured calibration, commit to planc's
//!                  tuned-plan cache (appends the "tune" section to
//!                  BENCH_stencil.json)
//! paper all        everything above
//! ```
//!
//! CSV series are also written to `results/`.

use bench::ablation::{ablation_markdown, run_ablation, run_topology_study, topology_markdown};
use bench::experiments::{
    figure_heights, paper_experiments, problem_at, sweep, table12_row, Experiment,
};
use bench::gantt::render_figures;
use bench::report::{sweep_ascii_plot, sweep_csv, table12_markdown};
use bench::scaling::{scaling_markdown, serial_time_us, strong_scaling};
use bench::sensitivity::{comm_scale_sweep, sensitivity_markdown};
use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig};
use std::path::Path;
use sweep::config::{generate as sweep_generate, Schedule as SweepSchedule, SweepSpec};
use sweep::output::{summary_json, to_csv, training_csv};
use sweep::run::{run_sweep, RowStatus};
use tiling_core::prelude::*;

fn out_dir() -> &'static Path {
    let p = Path::new("results");
    std::fs::create_dir_all(p).expect("create results dir");
    p
}

fn cmd_example1() {
    println!("== §3 Example 1 / §4 Example 3: the 10000×1000 2-D loop ==\n");
    let machine = MachineParams::example_1();
    let nest = LoopNest::example_1();
    let deps = nest.dependences().expect("example 1 is valid");
    let tiling = Tiling::rectangular(&[10, 10]);
    println!("dependences:        {deps:?}");
    println!(
        "tiling:             10×10 rectangular, g = {}",
        tiling.volume()
    );
    println!("legal (HD ≥ 0):     {}", tiling.is_legal(&deps));
    println!(
        "V_comm (formula 2): {} points (paper: 20)",
        v_comm_mapped(&tiling, &deps, 0)
    );

    let no = NonOverlapSchedule::with_mapping(2, 0).analyze(&tiling, &deps, nest.space(), &machine);
    println!("\n-- non-overlapping schedule (Π = (1,1)) --");
    println!("P(g)      = {} planes (paper: 1099)", no.schedule_length);
    println!(
        "step      = {:.0} t_c  (paper: 364 t_c = 100 comp + 200 startup + 64 transmit)",
        no.step_us
    );
    println!("T         = {:.4} s  (paper: 0.4 s)", no.total_secs());

    let ov = OverlapSchedule::with_mapping(2, 0).analyze(
        &tiling,
        &deps,
        nest.space(),
        &machine,
        OverlapMode::DuplexDma,
    );
    println!("\n-- overlapping schedule (Π = (1,2)) --");
    println!("P(g)      = {} planes (paper: 1198)", ov.schedule_length);
    println!(
        "CPU lane  = {:.0} t_c (A1 {:.0} + A2 {:.0} + A3 {:.0}; paper: 200 t_c)",
        ov.cpu_lane_us, ov.a1_us, ov.a2_us, ov.a3_us
    );
    println!("comm lane = {:.0} t_c", ov.comm_lane_us);
    println!(
        "T         = {:.4} s  (paper: 0.24 s)  → improvement {:.0}%",
        ov.total_secs(),
        (1.0 - ov.total_us / no.total_us) * 100.0
    );

    // The paper worked Examples 1/3 out by hand; here the complete MPI
    // programs run through the simulator as a check on that arithmetic
    // (100 ranks — one per tile column along i2 — 1000 pipeline steps).
    println!("\n-- the same layout, fully simulated (100 ranks × 1000 steps) --");
    let problem =
        ClusterProblem::new(tiling, deps, nest.space().clone(), 0).expect("example 1 layout");
    let cfg = SimConfig::new(machine).with_trace(false).with_duplex(true);
    let blocking = simulate(cfg, problem.blocking_programs(&machine)).expect("no deadlock");
    let overlap = simulate(cfg, problem.overlapping_programs(&machine)).expect("no deadlock");
    println!(
        "simulated blocking:    {:.4} s (hand calculation: 0.4000 s)",
        blocking.makespan.as_secs()
    );
    println!(
        "simulated overlapping: {:.4} s (hand calculation: 0.2396 s)",
        overlap.makespan.as_secs()
    );
}

fn cmd_gantt(backend: &str) {
    match backend {
        "sim" => cmd_gantt_sim(),
        "thread" => cmd_gantt_thread(),
        other => {
            eprintln!("unknown gantt backend '{other}' (expected 'sim' or 'thread')");
            std::process::exit(2);
        }
    }
}

fn cmd_gantt_sim() {
    println!("== Fig. 1 / Fig. 2: schedule structure on a 6-processor pipeline ==\n");
    let machine = MachineParams::example_1();
    print!("{}", render_figures(&machine, 6, 8, 16));
    // SVG versions for documentation.
    use bench::gantt::{fig1_simulation, fig2_simulation};
    let ranks: Vec<usize> = (0..6).collect();
    let f1 = fig1_simulation(&machine, 6, 8, 16);
    let f2 = fig2_simulation(&machine, 6, 8, 16);
    let horizon = f1.makespan.max(f2.makespan);
    std::fs::write(
        out_dir().join("fig1.svg"),
        f1.trace.to_svg(&ranks, horizon, 900),
    )
    .expect("write fig1.svg");
    std::fs::write(
        out_dir().join("fig2.svg"),
        f2.trace.to_svg(&ranks, horizon, 900),
    )
    .expect("write fig2.svg");
    println!("SVG charts written to results/fig1.svg and results/fig2.svg");
}

fn cmd_gantt_thread() {
    use bench::gantt::{render_thread_figures, thread_demo_decomp, thread_figure};
    use msgpass::thread_backend::LatencyModel;
    use stencil::dist3d::ExecMode;
    println!("== Fig. 1 / Fig. 2 from real execution (thread backend, wall-clock trace) ==\n");
    let d = thread_demo_decomp();
    // Visible wire time at this grain without swamping the compute.
    let lat = LatencyModel {
        startup_us: 300.0,
        per_byte_us: 0.05,
    };
    print!("{}", render_thread_figures(d, lat));
    // SVG versions on a shared horizon, next to the simulated pair.
    let ranks: Vec<usize> = (0..d.pi * d.pj).collect();
    let f1 = thread_figure(d, lat, ExecMode::Blocking);
    let f2 = thread_figure(d, lat, ExecMode::Overlapping);
    let horizon = f1.horizon().max(f2.horizon());
    std::fs::write(
        out_dir().join("fig1_thread.svg"),
        f1.trace.to_svg(&ranks, horizon, 900),
    )
    .expect("write fig1_thread.svg");
    std::fs::write(
        out_dir().join("fig2_thread.svg"),
        f2.trace.to_svg(&ranks, horizon, 900),
    )
    .expect("write fig2_thread.svg");
    println!("SVG charts written to results/fig1_thread.svg and results/fig2_thread.svg");
}

fn run_figure(exp: &Experiment, figure: &str) {
    println!(
        "== {figure}: {}×{}×{} space, {}×{} processors, tile {}×{}×V ==\n",
        exp.nx,
        exp.ny,
        exp.nz,
        exp.pi,
        exp.pj,
        exp.bx(),
        exp.by()
    );
    let machine = MachineParams::paper_cluster();
    let heights = figure_heights(exp);
    let points = sweep(exp, &machine, &heights);
    let csv = sweep_csv(&points);
    let path = out_dir().join(format!("{figure}.csv"));
    std::fs::write(&path, &csv).expect("write csv");
    println!("{}", sweep_ascii_plot(&points, 90, 18));
    let best_ov = points
        .iter()
        .min_by(|a, b| a.overlap_us.total_cmp(&b.overlap_us))
        .expect("sweep non-empty");
    let best_no = points
        .iter()
        .min_by(|a, b| a.blocking_us.total_cmp(&b.blocking_us))
        .expect("sweep non-empty");
    println!(
        "overlap:     V_opt = {} (paper {}), t_opt = {:.4} s (paper {:.4} s)",
        best_ov.v,
        exp.paper_v_optimal,
        best_ov.overlap_us * 1e-6,
        exp.paper_t_overlap_s
    );
    println!(
        "non-overlap: V_opt = {}, t_opt = {:.4} s (paper {:.4} s)",
        best_no.v,
        best_no.blocking_us * 1e-6,
        exp.paper_t_nonoverlap_s
    );
    println!(
        "improvement at optima: {:.0}% (paper {:.0}%)",
        (1.0 - best_ov.overlap_us / best_no.blocking_us) * 100.0,
        (1.0 - exp.paper_t_overlap_s / exp.paper_t_nonoverlap_s) * 100.0
    );
    println!("series written to {}", path.display());
}

fn cmd_table12() {
    println!("== Fig. 12: summary table (simulated cluster vs paper) ==\n");
    let machine = MachineParams::paper_cluster();
    let rows: Vec<_> = paper_experiments()
        .iter()
        .map(|e| table12_row(e, &machine))
        .collect();
    let md = table12_markdown(&rows);
    println!("{md}");
    std::fs::write(out_dir().join("table12.md"), &md).expect("write table");
    println!("table written to results/table12.md");
}

fn cmd_ablation() {
    println!("== Fig. 3 ablation: overlap levels on experiment i (V = 444) ==\n");
    let machine = MachineParams::paper_cluster();
    let exp = paper_experiments()[0];
    let pts = run_ablation(&exp, exp.paper_v_optimal, &machine);
    println!("{}", ablation_markdown(&pts));
    println!("\n-- switched network vs shared-medium hub (beyond the paper) --\n");
    let topo = run_topology_study(&exp, exp.paper_v_optimal, &machine);
    println!("{}", topology_markdown(&topo));
}

fn cmd_listings() {
    use cluster_sim::pseudocode::render_rank_listings;
    println!("== §5 listings, generated from the actual programs (experiment i, V = 444) ==\n");
    let machine = MachineParams::paper_cluster();
    let exp = paper_experiments()[0];
    let problem = problem_at(&exp, exp.paper_v_optimal);
    // Rank 5 = grid (1,1): has both in- and out-neighbors.
    println!("{}", render_rank_listings(&problem, &machine, 5, 18));
}

fn cmd_sensitivity() {
    println!("== beyond the paper: improvement vs communication cost ==\n");
    println!("(experiment i layout at reduced depth; each point re-optimizes V per schedule)\n");
    let exp = Experiment {
        name: "i-reduced",
        nx: 16,
        ny: 16,
        nz: 4096,
        pi: 4,
        pj: 4,
        paper_v_optimal: 444,
        paper_t_overlap_s: 0.0,
        paper_t_nonoverlap_s: 0.0,
        paper_fill_ms: 0.0,
    };
    let scales = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let pts = comm_scale_sweep(&exp, &MachineParams::paper_cluster(), &scales, 16);
    let md = sensitivity_markdown(&pts);
    println!("{md}");
    std::fs::write(out_dir().join("sensitivity.md"), &md).expect("write sensitivity");

    println!("\n-- named network generations (same CPU, same workload) --\n");
    use bench::sensitivity::{generations_markdown, network_generations};
    let rows = network_generations(
        &exp,
        &[
            ("FastEthernet (paper)", MachineParams::paper_cluster()),
            ("Gigabit-class", MachineParams::gigabit_cluster()),
            (
                "OS-bypass (the paper's §6 future work)",
                MachineParams::os_bypass_cluster(),
            ),
        ],
        16,
    );
    println!("{}", generations_markdown(&rows));
}

fn cmd_scaling() {
    println!("== beyond the paper: strong scaling on the simulated cluster ==\n");
    let machine = MachineParams::paper_cluster();
    // 32×32 cross-section so even the 16×16 grid keeps 2×2 tile columns
    // (tiles must still contain the unit dependences).
    let space = IterationSpace::from_extents(&[32, 32, 8192]);
    let serial = serial_time_us(&space, &machine);
    println!(
        "space 32×32×8192, serial time {:.3} s; per-point best V per schedule\n",
        serial * 1e-6
    );
    let pts = strong_scaling(&space, &machine, &[1, 2, 4, 8, 16], 14);
    let md = scaling_markdown(&pts, serial);
    println!("{md}");
    std::fs::write(out_dir().join("scaling.md"), &md).expect("write scaling");
}

fn cmd_utilization() {
    use cluster_sim::engine::{simulate, SimConfig};
    use cluster_sim::stats::{rank_stats, stats_markdown, summarize};
    println!("== processor utilization (§4's '100% utilization' claim) ==\n");
    let machine = MachineParams::paper_cluster();
    let exp = paper_experiments()[0];
    let problem = problem_at(&exp, exp.paper_v_optimal);
    let cfg = SimConfig::new(machine);
    let b = simulate(cfg, problem.blocking_programs(&machine)).expect("no deadlock");
    let o = simulate(cfg, problem.overlapping_programs(&machine)).expect("no deadlock");
    let sb = summarize(&b).expect("paper experiment has ranks");
    let so = summarize(&o).expect("paper experiment has ranks");
    println!(
        "blocking   : mean utilization {:.0}%, compute share of busy {:.0}%",
        sb.mean_utilization * 100.0,
        sb.mean_compute_fraction * 100.0
    );
    println!(
        "overlapping: mean utilization {:.0}%, compute share of busy {:.0}%\n",
        so.mean_utilization * 100.0,
        so.mean_compute_fraction * 100.0
    );
    println!("per-rank breakdown (overlapping):");
    println!("{}", stats_markdown(&rank_stats(&o)[..4]));
    println!("(first 4 of {} ranks shown)", problem.ranks());
}

fn cmd_threads() {
    use bench::configs::{plan_request, threads_decomp, threads_latency};
    use msgpass::thread_backend::WorldConfig;
    use stencil::dist3d::ExecMode;
    println!("== real threaded run (msgpass backend, scaled-down experiment i) ==\n");
    // Scaled to 2×2 ranks so the run is meaningful on small machines;
    // the wire latency is injected per message. Each schedule is
    // compiled to an analyzer-approved artifact before a single thread
    // spawns; execution then verifies against the sequential sweep.
    let d = threads_decomp();
    let block =
        planc::compile(&plan_request(d, ExecMode::Blocking)).expect("shipped plan compiles");
    let over =
        planc::compile(&plan_request(d, ExecMode::Overlapping)).expect("shipped plan compiles");
    println!(
        "compiled: {} ranks × {} steps, logical makespan {} (blocking) / {} (overlapping)",
        block.ranks(),
        block.steps(),
        block.logical_makespan(),
        over.logical_makespan()
    );
    let base = WorldConfig::new(threads_latency());
    let opts = planc::ExecOptions { verify: true };
    let b = block.execute_with(&base, opts).expect("valid plan");
    let o = over.execute_with(&base, opts).expect("valid plan");
    println!(
        "blocking:     {:.3} s (verified: {})",
        b.elapsed.as_secs_f64(),
        b.verified == Some(true)
    );
    println!(
        "overlapping:  {:.3} s (verified: {})",
        o.elapsed.as_secs_f64(),
        o.verified == Some(true)
    );
    println!(
        "improvement:  {:.0}%",
        (1.0 - o.elapsed.as_secs_f64() / b.elapsed.as_secs_f64()) * 100.0
    );
}

fn cmd_chaos() {
    use bench::configs::{chaos_decomp, chaos_gantt_decomp, demo_wire_latency, plan_request};
    use msgpass::prelude::*;
    use std::time::Duration;
    use stencil::dist3d::{run_dist3d_observed_with, ExecMode};
    use stencil::engine::TraceObserver;
    use stencil::kernel::Paper3D;

    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE_u64);
    println!("== chaos: the executors under a seeded fault plan (seed {seed:#x}) ==\n");
    let d = chaos_decomp();
    let rel = ReliabilityConfig {
        recv_timeout: Duration::from_millis(50),
        max_retries: 6,
        backoff: Duration::from_millis(2),
    };
    let plan = FaultPlan::seeded(seed)
        .with_drops(0.10)
        .with_duplicates(0.05)
        .with_reorders(0.05)
        .with_delay_spikes(0.15, Duration::from_micros(800));
    let cfg = WorldConfig::new(LatencyModel::zero())
        .with_reliability(rel)
        .with_faults(plan);
    // One compiled artifact per schedule; the fault plan and the
    // reliability layer ride in through the caller's base config — the
    // plan itself is immutable and analyzer-approved.
    let seq = stencil::seq::run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        let art = planc::compile(&plan_request(d, mode)).expect("shipped plan compiles");
        let out = art
            .execute_with(&cfg, planc::ExecOptions::default())
            .expect("recoverable plan completes");
        let mut total = FaultStats::default();
        for s in &out.faults {
            total.merge(s);
        }
        println!(
            "{mode:?}: {:.3} s, bitwise-exact: {} | injected {} faults \
             (drops {}, dups {}, reorders {}, delays {}), recovered {}, dups discarded {}",
            out.elapsed.as_secs_f64(),
            out.grid.dim3().expect("3-D plan").max_abs_diff(&seq) == 0.0,
            total.total_injected(),
            total.dropped,
            total.duplicated,
            total.reordered,
            total.delayed,
            total.recovered,
            total.duplicates_discarded,
        );
    }

    // Unrecoverable: lose a face permanently — the run fails with a
    // typed error inside the retry schedule instead of hanging.
    println!("\n-- unrecoverable loss (rank 0's step-1 i-face to rank 2) --");
    let lossy = WorldConfig::new(LatencyModel::zero())
        .with_reliability(ReliabilityConfig {
            recv_timeout: Duration::from_millis(10),
            max_retries: 2,
            backoff: Duration::from_millis(1),
        })
        .with_faults(FaultPlan::seeded(seed).lose_at(
            0,
            2,
            stencil::proto::tag(1, stencil::proto::DIR_I),
        ));
    let art =
        planc::compile(&plan_request(d, ExecMode::Overlapping)).expect("shipped plan compiles");
    match art.execute_with(&lossy, planc::ExecOptions::default()) {
        Err(e) => println!("typed failure (as expected): {e}"),
        Ok(_) => println!("UNEXPECTED: lossy run completed"),
    }

    // Stall-annotated Gantt: drive the same faulty world with tracing
    // observers so fault-inflated waits render as red Stall bars.
    println!("\n-- stall-annotated Gantt (wire latency + delay spikes) --");
    let spiky = WorldConfig::new(demo_wire_latency())
        .with_reliability(rel)
        .with_faults(
            FaultPlan::seeded(seed)
                .with_drops(0.10)
                .with_delay_spikes(0.25, Duration::from_millis(2)),
        );
    let gantt_d = chaos_gantt_decomp();
    let stall_after = Duration::from_millis(1);
    let (grid, _, observers, _) =
        run_dist3d_observed_with(Paper3D, gantt_d, &spiky, ExecMode::Overlapping, |comm| {
            TraceObserver::new(comm.rank(), comm.epoch()).with_stall_threshold(stall_after)
        })
        .expect("recoverable plan completes");
    let seq = stencil::seq::run_paper3d_seq(gantt_d.nx, gantt_d.ny, gantt_d.nz, gantt_d.boundary);
    assert_eq!(
        grid.max_abs_diff(&seq),
        0.0,
        "traced chaos run must stay exact"
    );
    let mut trace = msgpass::trace::Trace::enabled();
    for obs in observers {
        trace.extend(obs.into_trace());
    }
    let ranks: Vec<usize> = (0..gantt_d.pi * gantt_d.pj).collect();
    let horizon = trace.horizon();
    let stalls = trace
        .intervals()
        .iter()
        .filter(|iv| iv.activity == msgpass::trace::Activity::Stall)
        .count();
    print!("{}", trace.gantt(&ranks, horizon, 90));
    std::fs::write(
        out_dir().join("chaos_gantt.svg"),
        trace.to_svg(&ranks, horizon, 900),
    )
    .expect("write chaos_gantt.svg");
    println!(
        "{stalls} stall intervals (waits over {stall_after:?}); SVG written to results/chaos_gantt.svg"
    );
}

// ---- `paper analyze`: the static-analysis gate -------------------------

/// Sweep every decomposition the harness ships through the pre-flight
/// plan analyzer, prove the known-bad chaos plans are rejected with
/// their specific typed errors, and exhaustively model-check the SPSC
/// slot ring. Exits nonzero on any failure, so `ci.sh` can gate on it.
fn cmd_analyze() {
    use analyzer::{check_comm_plan, check_schedule, AnalysisError, CommPlan, PlanOp, RankProgram};
    use bench::configs::{
        chaos_decomp, chaos_gantt_decomp, example1_strip, perf_deep_decomp, threads_decomp,
    };
    use bench::gantt::thread_demo_decomp;
    use stencil::dist3d::ExecMode;
    use stencil::preflight::{check_plan2d, check_plan3d};
    use tiling_core::schedule::{StepPlan, StepStrategy};

    let mut failures = 0usize;
    println!("== pre-flight plan analysis: every shipped configuration ==\n");
    println!(
        "{:<26} {:<12} {:>5} {:>6} {:>9} {:>9}  result",
        "config", "mode", "ranks", "steps", "messages", "makespan"
    );

    let d3 = [
        ("threads (scaled exp. i)", threads_decomp()),
        ("chaos", chaos_decomp()),
        ("chaos gantt", chaos_gantt_decomp()),
        ("gantt thread demo", thread_demo_decomp()),
        ("perf deep", perf_deep_decomp(false)),
    ];
    let d2 = [("example 1 (strip)", example1_strip())];
    for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
        for (name, d) in &d3 {
            match check_plan3d(d, mode) {
                Ok(r) => println!(
                    "{name:<26} {:<12} {:>5} {:>6} {:>9} {:>9}  ok",
                    format!("{mode:?}"),
                    r.ranks,
                    r.steps,
                    r.messages,
                    r.logical_makespan
                ),
                Err(e) => {
                    failures += 1;
                    println!("{name:<26} {:<12} REJECTED: {e}", format!("{mode:?}"));
                }
            }
        }
        for (name, d) in &d2 {
            match check_plan2d(d, mode) {
                Ok(r) => println!(
                    "{name:<26} {:<12} {:>5} {:>6} {:>9} {:>9}  ok",
                    format!("{mode:?}"),
                    r.ranks,
                    r.steps,
                    r.messages,
                    r.logical_makespan
                ),
                Err(e) => {
                    failures += 1;
                    println!("{name:<26} {:<12} REJECTED: {e}", format!("{mode:?}"));
                }
            }
        }
    }

    println!("\n== chaos plans: each must be rejected with its typed error ==\n");
    let world = |programs: Vec<Vec<PlanOp>>| CommPlan {
        programs: programs
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| RankProgram { rank, ops })
            .collect(),
    };
    let send = |to, tag, len, step| PlanOp::Send { to, tag, len, step };
    let recv = |from, tag, len, step| PlanOp::Recv {
        from,
        tag,
        len,
        step,
    };
    type ErrorPredicate = fn(&AnalysisError) -> bool;
    let bad: [(&str, CommPlan, ErrorPredicate); 4] = [
        (
            "mismatched tag",
            world(vec![vec![send(1, 5, 8, 0)], vec![recv(0, 7, 8, 0)]]),
            |e| matches!(e, AnalysisError::TagMismatch { .. }),
        ),
        (
            "send without receive",
            world(vec![
                vec![send(1, 0, 4, 0)],
                vec![PlanOp::Compute { step: 0 }],
            ]),
            |e| matches!(e, AnalysisError::UnmatchedSend { .. }),
        ),
        (
            "cyclic wait-for",
            world(vec![
                vec![recv(1, 0, 4, 0), send(1, 1, 4, 0)],
                vec![recv(0, 1, 4, 0), send(0, 0, 4, 0)],
            ]),
            |e| matches!(e, AnalysisError::Deadlock { .. }),
        ),
        (
            "reused tag, diverging sizes",
            world(vec![
                vec![send(1, 0, 4, 0), send(1, 0, 6, 1)],
                vec![recv(0, 0, 4, 0), recv(0, 0, 4, 1)],
            ]),
            |e| matches!(e, AnalysisError::SizeMismatch { .. }),
        ),
    ];
    for (name, plan, expected) in &bad {
        match check_comm_plan(plan) {
            Err(e) if expected(&e) => println!("{name:<30} rejected: {e}"),
            Err(e) => {
                failures += 1;
                println!("{name:<30} WRONG ERROR: {e}");
            }
            Ok(_) => {
                failures += 1;
                println!("{name:<30} NOT REJECTED");
            }
        }
    }
    // Illegal schedules go through the Π·d check rather than the
    // matcher: Π = [1, −1] zeroes Example 1's diagonal dependence, and
    // a too-tight overlap Π advances a cross-rank dependence by only 1.
    let sched_bad = [
        (
            "illegal schedule (dot 0)",
            check_schedule(
                &StepPlan::new(StepStrategy::Blocking, 4),
                &[1, -1],
                0,
                &tiling_core::dependence::DependenceSet::example_1(),
            ),
            AnalysisError::IllegalSchedule {
                pi: vec![1, -1],
                dep: vec![1, 1],
                dot: 0,
            },
        ),
        (
            "overlap ordering (eq. 4)",
            check_schedule(
                &StepPlan::new(StepStrategy::Overlap, 4),
                &[1, 2],
                1,
                &tiling_core::dependence::DependenceSet::example_1(),
            ),
            AnalysisError::OverlapOrderingViolation {
                pi: vec![1, 2],
                dep: vec![1, 0],
                dot: 1,
            },
        ),
    ];
    for (name, got, want) in &sched_bad {
        match got {
            Err(e) if e == want => println!("{name:<30} rejected: {e}"),
            Err(e) => {
                failures += 1;
                println!("{name:<30} WRONG ERROR: {e}");
            }
            Ok(_) => {
                failures += 1;
                println!("{name:<30} NOT REJECTED");
            }
        }
    }

    println!("\n== SPSC slot ring: exhaustive interleaving exploration ==\n");
    for (slots, messages) in [(1usize, 3usize), (2, 3), (2, 4)] {
        match msgpass::modelcheck::check_slot_ring(slots, messages) {
            Ok(r) => println!(
                "slots {slots}, messages {messages}: {} schedules, {} steps — no violation",
                r.schedules, r.steps
            ),
            Err(v) => {
                failures += 1;
                println!(
                    "slots {slots}, messages {messages}: VIOLATION under schedule {:?}: {}",
                    v.schedule, v.message
                );
            }
        }
    }

    if failures > 0 {
        eprintln!("\nanalysis FAILED: {failures} check(s) did not behave as required");
        std::process::exit(1);
    }
    println!("\nall static checks passed");
}

// ---- `paper modelcheck`: DPOR sweep over the concurrency models --------

/// Run every shipped-protocol model under DPOR and every seeded-bug
/// variant against the checker, reporting schedules explored vs. the
/// unreduced interleaving count. Exits non-zero unless the shipped
/// protocols come back clean (no races, violations, deadlocks, or
/// budget overruns), every seeded bug is caught with a concrete
/// schedule prefix, and at least one 3-thread model shows a reduction
/// ratio above 1.
fn cmd_modelcheck() {
    use miniloom::{CheckOptions, ExploreError};
    use planc::modelcheck::{SingleFlightModel, TunedCacheModel, WorldPoolModel};
    use stencil::modelcheck::PoolHandoffModel;

    let mut failures = 0usize;
    let mut reduced_3thread = false;

    println!("== shipped protocols: explored under dynamic partial-order reduction ==\n");
    println!(
        "{:<34} {:>7} {:>10} {:>10} {:>8}  result",
        "model", "threads", "schedules", "unreduced", "ratio"
    );

    type Runner = Box<dyn Fn() -> Result<miniloom::Report, ExploreError>>;
    let opts = CheckOptions::default();
    let good: [(&str, usize, Runner); 6] = [
        (
            "pool mailbox/barrier handoff",
            3,
            Box::new(stencil::modelcheck::check_pool_handoff),
        ),
        (
            "single-flight compile (ok path)",
            3,
            Box::new(|| planc::modelcheck::check_single_flight(false)),
        ),
        (
            "single-flight compile (err path)",
            3,
            Box::new(|| planc::modelcheck::check_single_flight(true)),
        ),
        (
            "world pool checkout vs evictor",
            3,
            Box::new(planc::modelcheck::check_world_pool),
        ),
        (
            "tuned cache commit vs lookup",
            3,
            Box::new(planc::modelcheck::check_tuned_cache),
        ),
        (
            "slot transport + retransmitter",
            3,
            Box::new(|| msgpass::modelcheck::check_slot_retrans(2, 2)),
        ),
    ];
    for (name, threads, run) in &good {
        match run() {
            Ok(r) => {
                let unreduced = r
                    .unreduced
                    .map(|u| u.to_string())
                    .unwrap_or_else(|| "overflow".into());
                let ratio = r.reduction_ratio().unwrap_or(1.0);
                if *threads >= 3 && ratio > 1.0 {
                    reduced_3thread = true;
                }
                println!(
                    "{name:<34} {threads:>7} {:>10} {unreduced:>10} {ratio:>8.1}  clean",
                    r.schedules
                );
            }
            Err(e) => {
                failures += 1;
                println!("{name:<34} {threads:>7} FAILED: {e}");
            }
        }
    }

    println!("\n== seeded bugs: each variant must be caught with a schedule prefix ==\n");
    let buggy: [(&str, &str, Runner); 5] = [
        (
            "pool: publish before halo write",
            "race",
            Box::new(move || {
                miniloom::check(&PoolHandoffModel::seeded_publish_before_halo(), &opts)
            }),
        ),
        (
            "pool: lost barrier arrival",
            "deadlock",
            Box::new(move || {
                miniloom::check(&PoolHandoffModel::seeded_lost_barrier_arrival(), &opts)
            }),
        ),
        (
            "single-flight: split check/act",
            "violation",
            Box::new(move || miniloom::check(&SingleFlightModel::seeded_split_probe(false), &opts)),
        ),
        (
            "world pool: park while held",
            "violation",
            Box::new(move || miniloom::check(&WorldPoolModel::seeded_park_while_held(), &opts)),
        ),
        (
            "tuned cache: torn commit",
            "violation",
            Box::new(move || miniloom::check(&TunedCacheModel::seeded_torn_commit(), &opts)),
        ),
    ];
    let retrans_bug: (&str, &str, Runner) = (
        "slot transport: blind retransmit",
        "violation",
        Box::new(|| {
            miniloom::check(
                &msgpass::modelcheck::SlotRetransModel::seeded_blind_retransmit(2, 2),
                &CheckOptions::default(),
            )
        }),
    );
    for (name, want, run) in buggy.iter().chain(std::iter::once(&retrans_bug)) {
        let (kind, prefix) = match run() {
            Ok(r) => {
                failures += 1;
                println!("{name:<34} NOT CAUGHT ({} schedules clean)", r.schedules);
                continue;
            }
            Err(ExploreError::Violation(v)) => ("violation", v.schedule),
            Err(ExploreError::Race(r)) => ("race", r.prefix),
            Err(ExploreError::Deadlock { schedule, .. }) => ("deadlock", schedule),
            Err(e) => {
                failures += 1;
                println!("{name:<34} WRONG FAILURE CLASS: {e}");
                continue;
            }
        };
        if kind != *want || prefix.is_empty() {
            failures += 1;
            println!("{name:<34} caught as {kind} (wanted {want}), prefix {prefix:?}");
        } else {
            println!("{name:<34} caught: {kind} at schedule prefix {prefix:?}");
        }
    }

    if !reduced_3thread {
        failures += 1;
        eprintln!("\nno 3-thread model achieved a DPOR reduction ratio > 1");
    }
    if failures > 0 {
        eprintln!("\nmodelcheck FAILED: {failures} check(s) did not behave as required");
        std::process::exit(1);
    }
    println!(
        "\nPASS: all shipped protocols clean, all seeded bugs caught, \
         DPOR reduction ratio > 1 on a 3-thread model"
    );
}

// ---- `paper perf`: the hot-path benchmark ------------------------------
//
// Measures the optimized distributed executors against the preserved
// element-wise baseline (`stencil::legacy`) on identical workloads and
// writes the comparison to BENCH_stencil.json at the repository root.
// Latency is zero and the box may have a single core, so wall-clock time
// equals total CPU work: exactly the per-cell/per-face overhead the
// optimization removes.

mod perf {
    use msgpass::thread_backend::{LatencyModel, WorldConfig};
    use msgpass::transport::TransportKind;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;
    use stencil::dist3d::{Decomp3D, ExecMode};
    use stencil::grid::Grid3D;
    use stencil::kernel::{Fused3D, KernelTier, Paper3D, Relax3D};

    struct CountingAlloc;

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    // SAFETY: every method delegates to the `System` allocator, which
    // upholds the `GlobalAlloc` contract; the counter bump is a Relaxed
    // atomic with no effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `layout` is the caller's valid layout.
            unsafe { System.alloc(layout) }
        }
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr` was allocated by `System` with `layout`.
            unsafe { System.dealloc(ptr, layout) }
        }
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `ptr`/`layout` come from a prior `System` allocation.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// One timed run: median wall time over `trials`, plus the
    /// allocation count of a single run.
    struct Measurement {
        secs: f64,
        cells_per_sec: f64,
        step_us: f64,
        allocs: u64,
    }

    fn measure(trials: usize, d: Decomp3D, run: impl Fn() -> Grid3D) -> Measurement {
        let mut times = Vec::with_capacity(trials);
        let mut allocs = u64::MAX;
        let mut sink = 0.0f32;
        for _ in 0..trials {
            let a0 = ALLOCS.load(Ordering::Relaxed);
            let t0 = Instant::now();
            let grid = run();
            let secs = t0.elapsed().as_secs_f64();
            let a1 = ALLOCS.load(Ordering::Relaxed);
            sink += grid.data()[grid.data().len() / 2];
            times.push(secs);
            allocs = allocs.min(a1 - a0);
        }
        assert!(sink.is_finite());
        times.sort_by(f64::total_cmp);
        let secs = times[times.len() / 2];
        let cells = (d.nx * d.ny * d.nz) as f64;
        Measurement {
            secs,
            cells_per_sec: cells / secs,
            step_us: secs * 1e6 / d.steps() as f64,
            allocs,
        }
    }

    struct Comparison {
        name: &'static str,
        kernel: &'static str,
        mode: ExecMode,
        d: Decomp3D,
        baseline: Measurement,
        optimized: Measurement,
    }

    impl Comparison {
        fn speedup(&self) -> f64 {
            self.baseline.secs / self.optimized.secs
        }
    }

    fn compare(
        name: &'static str,
        kernel: &'static str,
        d: Decomp3D,
        mode: ExecMode,
        trials: usize,
    ) -> Comparison {
        let lat = LatencyModel::zero();
        // Benchmarks opt out of the pre-flight analyzer: `paper analyze`
        // covers these exact layouts, and the measurement should time
        // the executor alone.
        let cfg = WorldConfig::new(lat).without_preflight();
        let (baseline, optimized) = match kernel {
            "relax3d" => (
                measure(trials, d, || {
                    stencil::legacy::run_dist3d(Relax3D::default(), d, lat, mode)
                        .expect("valid decomposition")
                        .0
                }),
                measure(trials, d, || {
                    stencil::dist3d::run_dist3d_with(Relax3D::default(), d, &cfg, mode)
                        .expect("valid decomposition")
                        .0
                }),
            ),
            "paper3d" => (
                measure(trials, d, || {
                    stencil::legacy::run_dist3d(Paper3D, d, lat, mode)
                        .expect("valid decomposition")
                        .0
                }),
                measure(trials, d, || {
                    stencil::dist3d::run_dist3d_with(Paper3D, d, &cfg, mode)
                        .expect("valid decomposition")
                        .0
                }),
            ),
            other => unreachable!("unknown kernel {other}"),
        };
        Comparison {
            name,
            kernel,
            mode,
            d,
            baseline,
            optimized,
        }
    }

    /// One transport-ablation row: the optimized executor on a given
    /// transport, plus its steady-state allocation rate (the slope of
    /// allocation count over pipeline steps between a short and a deep
    /// run — zero when warm steps allocate nothing).
    struct TransportRow {
        name: &'static str,
        mode: ExecMode,
        transport: &'static str,
        m: Measurement,
        steady_allocs_per_step: f64,
    }

    fn transport_label(kind: TransportKind) -> &'static str {
        match kind {
            TransportKind::Mpsc => "mpsc",
            TransportKind::SharedSlots { .. } => "shared-slots",
        }
    }

    fn measure_transport(
        trials: usize,
        d: Decomp3D,
        kind: TransportKind,
        mode: ExecMode,
    ) -> Measurement {
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_transport(kind)
            .without_preflight();
        measure(trials, d, || {
            stencil::dist3d::run_dist3d_with(Relax3D::default(), d, &cfg, mode)
                .expect("valid decomposition")
                .0
        })
    }

    fn transport_row(
        name: &'static str,
        trials: usize,
        d: Decomp3D,
        kind: TransportKind,
        mode: ExecMode,
    ) -> TransportRow {
        let deep = measure_transport(trials, d, kind, mode);
        // Same world a quarter as deep: the allocation-count difference
        // divided by the step difference is the per-step allocation
        // rate with all one-time costs (threads, links, buffer growth)
        // subtracted out.
        let shallow_d = Decomp3D { nz: d.nz / 4, ..d };
        let shallow = measure_transport(trials, shallow_d, kind, mode);
        let dsteps = (d.steps() - shallow_d.steps()) as f64;
        let steady_allocs_per_step = (deep.allocs as f64 - shallow.allocs as f64) / dsteps;
        TransportRow {
            name,
            mode,
            transport: transport_label(kind),
            m: deep,
            steady_allocs_per_step,
        }
    }

    /// Per-mode A-lane/B-lane step-time summary from an instrumented
    /// run: the measured counterpart of eq. 4's `max(A, B)` split (A =
    /// compute + face copies + request posts, B = waits on the wire).
    struct LaneSummary {
        mode: ExecMode,
        transport: &'static str,
        a_mean_us: f64,
        a_max_us: f64,
        b_mean_us: f64,
        b_max_us: f64,
        // Best-of-N spread: the across-run minimum and the population
        // stddev of each lane's per-run mean, so a reader (and ci.sh)
        // can tell a stable row from one rescued by a lucky trial.
        a_min_us: f64,
        a_std_us: f64,
        b_min_us: f64,
        b_std_us: f64,
    }

    /// Population stddev of a small sample (the N=3 lane trials).
    fn stddev(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    fn lane_summary(
        d: Decomp3D,
        lat: LatencyModel,
        kind: TransportKind,
        mode: ExecMode,
    ) -> LaneSummary {
        use stencil::dist3d::run_dist3d_observed_with;
        use stencil::engine::LaneStats;
        let steps = d.steps();
        let cfg = WorldConfig::new(lat)
            .with_transport(kind)
            .without_preflight();
        // Best of 3: every rank here is a thread oversubscribed onto
        // the host's cores, so a single run's lane means carry whatever
        // scheduler noise the box had that instant. The minimum over a
        // few runs is the stable "what the code costs" number; the max
        // columns still come from the same (best) run. All three runs'
        // lane means are kept so the row can also report the spread.
        let mut runs: Vec<(f64, f64, f64, f64)> = Vec::with_capacity(3);
        for _ in 0..3 {
            let (_, _, stats, _) =
                run_dist3d_observed_with(Paper3D, d, &cfg, mode, |_| LaneStats::new(steps))
                    .expect("valid decomposition");
            runs.push(LaneStats::summarize(&stats));
        }
        let best = *runs
            .iter()
            .min_by(|a, b| (a.0 + a.2).total_cmp(&(b.0 + b.2)))
            .unwrap();
        let (a_mean_us, a_max_us, b_mean_us, b_max_us) = best;
        let a_means: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let b_means: Vec<f64> = runs.iter().map(|r| r.2).collect();
        LaneSummary {
            mode,
            transport: transport_label(kind),
            a_mean_us,
            a_max_us,
            b_mean_us,
            b_max_us,
            a_min_us: a_means.iter().copied().fold(f64::INFINITY, f64::min),
            a_std_us: stddev(&a_means),
            b_min_us: b_means.iter().copied().fold(f64::INFINITY, f64::min),
            b_std_us: stddev(&b_means),
        }
    }

    fn mode_label(mode: ExecMode) -> &'static str {
        match mode {
            ExecMode::Blocking => "blocking",
            ExecMode::Overlapping => "overlapping",
        }
    }

    /// One many-rank scaling row: the optimized executor on slot
    /// transport with core pinning, at a given world size. `weak` rows
    /// hold the per-rank block fixed while the world grows; `strong`
    /// rows hold the global grid fixed while it is cut finer.
    struct ScalingRow {
        kind: &'static str,
        world: String,
        ranks: usize,
        cells_per_sec: f64,
        a_mean_us: f64,
        b_mean_us: f64,
    }

    fn scaling_row(kind: &'static str, d: Decomp3D, trials: usize) -> ScalingRow {
        use stencil::dist3d::run_dist3d_observed_with;
        use stencil::engine::LaneStats;
        let steps = d.steps();
        // Slot transport with a raised park cap: at 64 ranks on few
        // cores the schedule is pure oversubscription, and longer parks
        // keep the spinning waiters from starving the runnable ranks.
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_transport(TransportKind::shared_slots())
            .with_backoff_cap(std::time::Duration::from_micros(200))
            .with_core_pinning()
            .without_preflight();
        // Best of N: a 64-rank world on a handful of cores is pure
        // oversubscription, and any single run's wall time carries the
        // scheduler's mood. The fastest trial is the row the ci.sh
        // regression gate can actually hold to a tolerance; the lane
        // means come from that same fastest run.
        let mut secs = f64::INFINITY;
        let (mut a_mean_us, mut b_mean_us) = (0.0, 0.0);
        for _ in 0..trials {
            let (grid, elapsed, stats, _) =
                run_dist3d_observed_with(Paper3D, d, &cfg, ExecMode::Overlapping, |_| {
                    LaneStats::new(steps)
                })
                .expect("valid decomposition");
            assert!(grid.data()[grid.data().len() / 2].is_finite());
            if elapsed.as_secs_f64() < secs {
                secs = elapsed.as_secs_f64();
                let (a, _, b, _) = LaneStats::summarize(&stats);
                a_mean_us = a;
                b_mean_us = b;
            }
        }
        ScalingRow {
            kind,
            world: format!("{}x{}", d.pi, d.pj),
            ranks: d.pi * d.pj,
            cells_per_sec: (d.nx * d.ny * d.nz) as f64 / secs,
            a_mean_us,
            b_mean_us,
        }
    }

    /// One kernel-tier ablation row: the same kernel and world on the
    /// bitwise-pinned tier vs the epsilon-verified fast tier.
    struct TierRow {
        kernel: &'static str,
        bitwise_cells_per_sec: f64,
        fast_cells_per_sec: f64,
        fast_vs_bitwise: f64,
        max_abs_diff: f32,
    }

    fn tier_row_for<K: stencil::kernel::Kernel3D>(
        kernel_name: &'static str,
        k: K,
        trials: usize,
        d: Decomp3D,
    ) -> TierRow {
        let bit_cfg = WorldConfig::new(LatencyModel::zero()).without_preflight();
        let fast_cfg = bit_cfg.clone().with_kernel_tier(KernelTier::Fast);
        let mode = ExecMode::Overlapping;
        let run = |cfg: &WorldConfig| {
            stencil::dist3d::run_dist3d_with(k, d, cfg, mode)
                .expect("valid decomposition")
                .0
        };
        let diff = run(&fast_cfg).max_abs_diff(&run(&bit_cfg));
        let bit = measure(trials, d, || run(&bit_cfg));
        let fast = measure(trials, d, || run(&fast_cfg));
        TierRow {
            kernel: kernel_name,
            bitwise_cells_per_sec: bit.cells_per_sec,
            fast_cells_per_sec: fast.cells_per_sec,
            fast_vs_bitwise: bit.secs / fast.secs,
            max_abs_diff: diff,
        }
    }

    fn json_scaling(r: &ScalingRow) -> String {
        format!(
            "    {{\"kind\": \"{}\", \"world\": \"{}\", \"ranks\": {}, \"cells_per_sec\": {:.0}, \"a_mean_us\": {:.3}, \"b_mean_us\": {:.3}}}",
            r.kind, r.world, r.ranks, r.cells_per_sec, r.a_mean_us, r.b_mean_us
        )
    }

    fn json_tier(r: &TierRow) -> String {
        format!(
            "    {{\"kernel\": \"{}\", \"bitwise_cells_per_sec\": {:.0}, \"fast_cells_per_sec\": {:.0}, \"fast_vs_bitwise\": {:.3}, \"max_abs_diff\": {:e}}}",
            r.kernel, r.bitwise_cells_per_sec, r.fast_cells_per_sec, r.fast_vs_bitwise, r.max_abs_diff
        )
    }

    fn tier_label(tier: KernelTier) -> &'static str {
        match tier {
            KernelTier::Bitwise => "bitwise",
            KernelTier::Fast => "fast",
        }
    }

    /// `paper perf --procs PIxPJ --grid NXxNYxNZ [--tier T] [--workers N]`:
    /// the world is compiled to an analyzer-approved plan artifact
    /// (pre-flight runs exactly once, at compile time), then executed
    /// and verified against the sequential reference (bitwise for the
    /// pinned tier, epsilon for fast), with a PASS/FAIL row — the CI
    /// smoke entry point for larger worlds.
    pub fn run_custom(
        procs: (usize, usize),
        grid: (usize, usize, usize),
        tier: KernelTier,
        workers: usize,
    ) -> ! {
        use stencil::engine::LaneStats;
        use stencil::plan::run3d_observed_with;
        let (pi, pj) = procs;
        let (nx, ny, nz) = grid;
        let req = planc::PlanRequest::grid3(nx, ny, nz, pi, pj)
            .with_v((nz / 16).max(1))
            .with_tier(tier);
        let art = planc::compile(&req).unwrap_or_else(|e| {
            eprintln!(
                "custom {pi}x{pj} {nx}x{ny}x{nz}: FAIL at {} stage ({e})",
                e.stage()
            );
            std::process::exit(1);
        });
        // Worker count and pinning are run-time choices; transport,
        // tier and the already-done pre-flight come from the artifact.
        let cfg = art.stamp(WorldConfig::new(LatencyModel::zero()).with_compute_workers(workers));
        let c3 = art.compiled3().expect("grid3 compiles to a 3-D plan");
        let d = c3.decomp();
        let steps = art.steps();
        let (dist, elapsed, stats, _) =
            run3d_observed_with(Paper3D, c3, &cfg, |_| LaneStats::new(steps)).unwrap_or_else(|e| {
                eprintln!("custom {pi}x{pj} {nx}x{ny}x{nz}: FAIL ({e})");
                std::process::exit(1);
            });
        let seq = stencil::seq::run_paper3d_seq(nx, ny, nz, d.boundary);
        let err = dist.max_abs_diff(&seq);
        let ok = match tier {
            KernelTier::Bitwise => err == 0.0,
            KernelTier::Fast => err <= 1e-4,
        };
        let (a_mean, _, b_mean, _) = LaneStats::summarize(&stats);
        println!(
            "custom {pi}x{pj} {nx}x{ny}x{nz} tier={} workers={workers}: {} ({:.1} Mcells/s, a_mean {:.1} µs, b_mean {:.1} µs, max_abs_diff {:e})",
            tier_label(tier),
            if ok { "PASS" } else { "FAIL" },
            (nx * ny * nz) as f64 / elapsed.as_secs_f64() / 1e6,
            a_mean,
            b_mean,
            err
        );
        std::process::exit(if ok { 0 } else { 1 });
    }

    fn json_lane(l: &LaneSummary) -> String {
        format!(
            "    {{\"mode\": \"{}\", \"transport\": \"{}\", \"a_mean_us\": {:.3}, \"a_max_us\": {:.3}, \"b_mean_us\": {:.3}, \"b_max_us\": {:.3}, \"a_min_us\": {:.3}, \"a_std_us\": {:.3}, \"b_min_us\": {:.3}, \"b_std_us\": {:.3}}}",
            mode_label(l.mode),
            l.transport,
            l.a_mean_us,
            l.a_max_us,
            l.b_mean_us,
            l.b_max_us,
            l.a_min_us,
            l.a_std_us,
            l.b_min_us,
            l.b_std_us
        )
    }

    fn json_transport(r: &TransportRow) -> String {
        format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"transport\": \"{}\", \"cells_per_sec\": {:.0}, \"step_us\": {:.3}, \"allocs\": {}, \"steady_allocs_per_step\": {:.3}}}",
            r.name,
            mode_label(r.mode),
            r.transport,
            r.m.cells_per_sec,
            r.m.step_us,
            r.m.allocs,
            r.steady_allocs_per_step
        )
    }

    fn json_measurement(m: &Measurement) -> String {
        format!(
            "{{\"secs\": {:.6}, \"cells_per_sec\": {:.0}, \"step_us\": {:.3}, \"allocs\": {}}}",
            m.secs, m.cells_per_sec, m.step_us, m.allocs
        )
    }

    fn json_comparison(c: &Comparison) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"kernel\": \"{}\",\n      \"mode\": \"{}\",\n      \
             \"grid\": [{}, {}, {}],\n      \"procs\": [{}, {}],\n      \"v\": {},\n      \"steps\": {},\n      \
             \"baseline\": {},\n      \"optimized\": {},\n      \"speedup\": {:.3}\n    }}",
            c.name,
            c.kernel,
            match c.mode {
                ExecMode::Blocking => "blocking",
                ExecMode::Overlapping => "overlapping",
            },
            c.d.nx,
            c.d.ny,
            c.d.nz,
            c.d.pi,
            c.d.pj,
            c.d.v,
            c.d.steps(),
            json_measurement(&c.baseline),
            json_measurement(&c.optimized),
            c.speedup()
        )
    }

    pub fn run(quick: bool) {
        println!(
            "== hot-path benchmark: optimized executors vs element-wise legacy{} ==\n",
            if quick { " (quick mode)" } else { "" }
        );
        // Cheap kernel, small cross-section, deep pipeline: the
        // per-cell/per-face overhead the optimization targets dominates
        // the kernel arithmetic. Zero latency isolates executor cost.
        // Quick mode keeps the per-step shape and only shortens the
        // pipeline and trial count, so speedups stay comparable with a
        // committed full run (it also writes to a separate file —
        // results/BENCH_quick.json — instead of the reference
        // BENCH_stencil.json).
        let deep = bench::configs::perf_deep_decomp(quick);
        let trials = if quick { 3 } else { 5 };
        let comparisons = [
            compare(
                "relax3d-overlap",
                "relax3d",
                deep,
                ExecMode::Overlapping,
                trials,
            ),
            compare(
                "relax3d-blocking",
                "relax3d",
                deep,
                ExecMode::Blocking,
                trials,
            ),
            compare(
                "paper3d-overlap",
                "paper3d",
                deep,
                ExecMode::Overlapping,
                trials,
            ),
        ];
        for c in &comparisons {
            println!(
                "{:18} {:11} baseline {:>7.1} Mcells/s, {:>6} allocs | optimized {:>7.1} Mcells/s, {:>6} allocs | speedup {:.2}x",
                c.name,
                format!("({:?})", c.mode),
                c.baseline.cells_per_sec / 1e6,
                c.baseline.allocs,
                c.optimized.cells_per_sec / 1e6,
                c.optimized.allocs,
                c.speedup()
            );
        }
        // Transport ablation: the same optimized executor over the mpsc
        // channel transport vs the zero-copy shared-slot rings. The
        // steady-state allocation slope must be zero on slots — packing
        // goes straight into the peer-visible slot and the reader hands
        // the slot back, so a warm step touches no allocator at all.
        let transports = [
            transport_row(
                "relax3d-overlap",
                trials,
                deep,
                TransportKind::Mpsc,
                ExecMode::Overlapping,
            ),
            transport_row(
                "relax3d-overlap",
                trials,
                deep,
                TransportKind::shared_slots(),
                ExecMode::Overlapping,
            ),
            transport_row(
                "relax3d-blocking",
                trials,
                deep,
                TransportKind::Mpsc,
                ExecMode::Blocking,
            ),
            transport_row(
                "relax3d-blocking",
                trials,
                deep,
                TransportKind::shared_slots(),
                ExecMode::Blocking,
            ),
        ];
        for r in &transports {
            println!(
                "transport {:18} {:13} {:>7.1} Mcells/s, {:>6} allocs, {:>6.2} allocs/step (steady)",
                r.name,
                r.transport,
                r.m.cells_per_sec / 1e6,
                r.m.allocs,
                r.steady_allocs_per_step
            );
        }
        // Instrumented lane accounting on a shallower pipeline with
        // injected latency: under Blocking the B lane shows up in the
        // step time; under Overlapping it rides beneath the A lane.
        // Both transports are instrumented — the slot rows show the
        // wire-side B-lane without the channel transport's per-message
        // queue-node and pool traffic.
        let lane_d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: if quick { 1024 } else { 4096 },
            pi: 2,
            pj: 2,
            v: 128,
            boundary: 1.0,
        };
        let lane_lat = LatencyModel {
            startup_us: 200.0,
            per_byte_us: 0.02,
        };
        let lanes = [
            lane_summary(lane_d, lane_lat, TransportKind::Mpsc, ExecMode::Blocking),
            lane_summary(lane_d, lane_lat, TransportKind::Mpsc, ExecMode::Overlapping),
            lane_summary(
                lane_d,
                lane_lat,
                TransportKind::shared_slots(),
                ExecMode::Blocking,
            ),
            lane_summary(
                lane_d,
                lane_lat,
                TransportKind::shared_slots(),
                ExecMode::Overlapping,
            ),
        ];
        for l in &lanes {
            println!(
                "lanes {:11} {:13} A (cpu) mean {:>8.1} µs max {:>8.1} µs (min {:>8.1} ± {:>6.1}) | B (comm) mean {:>8.1} µs max {:>8.1} µs (min {:>8.1} ± {:>6.1})",
                format!("({:?})", l.mode),
                l.transport,
                l.a_mean_us,
                l.a_max_us,
                l.a_min_us,
                l.a_std_us,
                l.b_mean_us,
                l.b_max_us,
                l.b_min_us,
                l.b_std_us
            );
        }
        // Kernel-tier ablation: each wave kernel on the bitwise-pinned
        // tier vs the reassociated fast tier, same world, plus the
        // measured divergence between the two results.
        let tier_d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: if quick { 4096 } else { 16_384 },
            pi: 2,
            pj: 2,
            v: 256,
            boundary: 1.0,
        };
        let tiers = [
            tier_row_for("paper3d", Paper3D, trials, tier_d),
            tier_row_for("relax3d", Relax3D::default(), trials, tier_d),
            tier_row_for("fused3d", Fused3D::default(), trials, tier_d),
        ];
        for t in &tiers {
            println!(
                "tier {:8} bitwise {:>7.1} Mcells/s | fast {:>7.1} Mcells/s | fast/bitwise {:.2}x | max |Δ| {:e}",
                t.kernel,
                t.bitwise_cells_per_sec / 1e6,
                t.fast_cells_per_sec / 1e6,
                t.fast_vs_bitwise,
                t.max_abs_diff
            );
        }
        // Many-rank scaling on the slot transport. Weak rows fix the
        // per-rank block (4×4×2048 pencils, v = 128) and grow the
        // world; strong rows fix the global 16×16×2048 grid and cut it
        // finer. The identical configurations and trial count run in
        // quick and full mode so CI can compare a quick run against the
        // committed reference row-for-row under a fixed tolerance.
        let scaling_trials = 5;
        let mut scaling = Vec::new();
        for p in [2usize, 4, 8] {
            scaling.push(scaling_row(
                "weak",
                Decomp3D {
                    nx: 4 * p,
                    ny: 4 * p,
                    nz: 2048,
                    pi: p,
                    pj: p,
                    v: 128,
                    boundary: 1.0,
                },
                scaling_trials,
            ));
        }
        for p in [2usize, 4, 8] {
            scaling.push(scaling_row(
                "strong",
                Decomp3D {
                    nx: 16,
                    ny: 16,
                    nz: 2048,
                    pi: p,
                    pj: p,
                    v: 128,
                    boundary: 1.0,
                },
                scaling_trials,
            ));
        }
        for s in &scaling {
            println!(
                "scaling {:6} {:>3} ranks ({:>3}) {:>7.1} Mcells/s | A mean {:>7.1} µs | B mean {:>7.1} µs",
                s.kind, s.ranks, s.world, s.cells_per_sec / 1e6, s.a_mean_us, s.b_mean_us
            );
        }
        // Plan-compilation service under concurrent mixed load: the
        // same client count, job count and plan shapes in quick and
        // full mode, so ci.sh can hold a quick run's sustained jobs/sec
        // against the committed reference under a fixed tolerance. The
        // cache-hit ratio over the deterministic job mix must be
        // nonzero — repeats of the six shapes land on cached artifacts.
        let svc = planc::smoke(planc::ServiceConfig::default(), 8, 16);
        println!(
            "service 8 clients x 16 jobs: {:>6.0} jobs/s | hit ratio {:.2} | {} coalesced | {} compiles | {} worlds reused | {} verified",
            svc.jobs_per_sec,
            svc.hit_ratio,
            svc.coalesced,
            svc.compiles,
            svc.worlds_reused,
            svc.verified
        );
        assert!(svc.hit_ratio > 0.0, "service smoke must hit the plan cache");
        // Headline: the full zero-copy stack (slot transport + in-place
        // pack/unpack + pencil kernels) against the element-wise legacy
        // executor on the overlap schedule.
        let legacy = &comparisons[0].baseline;
        let slots_overlap = &transports[1].m;
        let headline_speedup = legacy.secs / slots_overlap.secs;
        let json_service = format!(
            "{{\n    \"jobs\": {},\n    \"jobs_per_sec\": {:.0},\n    \"cache_hit_ratio\": {:.4},\n    \
             \"coalesced\": {},\n    \"compiles\": {},\n    \"worlds_reused\": {},\n    \"verified\": {}\n  }}",
            svc.jobs, svc.jobs_per_sec, svc.hit_ratio, svc.coalesced, svc.compiles, svc.worlds_reused, svc.verified
        );
        let json = format!(
            "{{\n  \"bench\": \"stencil-hot-paths\",\n  \"headline\": {{\n    \"name\": \"relax3d-overlap-slots\",\n    \
             \"transport\": \"shared-slots\",\n    \
             \"baseline_cells_per_sec\": {:.0},\n    \"optimized_cells_per_sec\": {:.0},\n    \"speedup\": {:.3}\n  }},\n  \
             \"comparisons\": [\n{}\n  ],\n  \"transports\": [\n{}\n  ],\n  \"lanes\": [\n{}\n  ],\n  \
             \"tiers\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ],\n  \"service\": {}\n}}\n",
            legacy.cells_per_sec,
            slots_overlap.cells_per_sec,
            headline_speedup,
            comparisons
                .iter()
                .map(json_comparison)
                .collect::<Vec<_>>()
                .join(",\n"),
            transports
                .iter()
                .map(json_transport)
                .collect::<Vec<_>>()
                .join(",\n"),
            lanes.iter().map(json_lane).collect::<Vec<_>>().join(",\n"),
            tiers.iter().map(json_tier).collect::<Vec<_>>().join(",\n"),
            scaling.iter().map(json_scaling).collect::<Vec<_>>().join(",\n"),
            json_service
        );
        let path = if quick {
            let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
            std::fs::create_dir_all(dir).expect("create results dir");
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../results/BENCH_quick.json"
            )
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stencil.json")
        };
        std::fs::write(path, &json).expect("write benchmark json");
        println!(
            "\nheadline: relax3d-overlap-slots — {headline_speedup:.2}x cells/sec over the element-wise baseline"
        );
        println!("written to {path}");
    }
}

// ---- `paper serve`: the plan-compilation service over TCP --------------
//
// A line-oriented protocol over the in-process `planc::PlanService`:
// each request is one line, each reply one line.
//
//     compile <key=value ...>      -> ok compiled key=... v=... steps=...
//     execute <key=value ...>      -> ok executed key=... verified=...
//     stats                        -> ok submitted=... hit_ratio=...
//     quit                         -> ok bye (connection closes)
//
// The key=value payload is `planc::PlanRequest::parse_kv`'s wire
// format (workload=grid3 nx=8 ... — see its docs). Execute jobs always
// verify against the sequential reference. `--smoke` spins the
// listener on an ephemeral port, drives it with concurrent localhost
// clients, and exits nonzero unless every job succeeds and the plan
// cache was hit.

mod serve {
    use planc::{
        ExecOptions, JobRequest, JobResponse, PlanRequest, PlanService, ServiceConfig, ServiceError,
    };
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    fn respond(service: &PlanService, line: &str) -> String {
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "quit" => "ok bye".to_string(),
            "stats" => {
                let m = service.metrics();
                format!(
                    "ok submitted={} completed={} rejected={} hits={} misses={} evictions={} hit_ratio={:.4} coalesced={} compiles={} worlds_created={} worlds_reused={}",
                    m.submitted,
                    m.completed,
                    m.rejected,
                    m.cache.hits,
                    m.cache.misses,
                    m.cache.evictions,
                    m.cache.hit_ratio(),
                    m.compiler.coalesced,
                    m.compiler.compiles,
                    m.worlds.created,
                    m.worlds.reused
                )
            }
            "compile" | "execute" => {
                let req = match PlanRequest::parse_kv(rest) {
                    Ok(r) => r,
                    Err(e) => return format!("err parse: {e}"),
                };
                let job = if verb == "compile" {
                    JobRequest::Compile(req)
                } else {
                    JobRequest::Execute(req, ExecOptions { verify: true })
                };
                // A full queue back-pressures the connection rather
                // than failing the request.
                let ticket = loop {
                    match service.try_submit(job.clone()) {
                        Ok(t) => break t,
                        Err(ServiceError::QueueFull) => std::thread::yield_now(),
                        Err(e) => return format!("err {e}"),
                    }
                };
                match ticket.wait() {
                    Ok(JobResponse::Compiled(a)) => format!(
                        "ok compiled key={:016x} v={} ranks={} steps={} makespan={}",
                        a.key().digest(),
                        a.v(),
                        a.ranks(),
                        a.steps(),
                        a.logical_makespan()
                    ),
                    Ok(JobResponse::Executed(a, out)) => format!(
                        "ok executed key={:016x} elapsed_us={:.0} cells_per_sec={:.0} verified={}",
                        a.key().digest(),
                        out.elapsed.as_secs_f64() * 1e6,
                        out.cells_per_sec,
                        out.verified.unwrap_or(false)
                    ),
                    Err(e) => format!("err {e}"),
                }
            }
            other => format!("err unknown verb: {other}"),
        }
    }

    fn handle(service: &PlanService, stream: TcpStream) {
        let reader_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = BufReader::new(reader_stream);
        let mut stream = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let reply = respond(service, line);
            if stream
                .write_all(reply.as_bytes())
                .and_then(|_| stream.write_all(b"\n"))
                .is_err()
            {
                return;
            }
            if line == "quit" {
                return;
            }
        }
    }

    fn listen(listener: TcpListener, service: Arc<PlanService>) {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&service);
            std::thread::spawn(move || handle(&service, stream));
        }
    }

    /// `paper serve [--addr HOST:PORT]`: serve until killed.
    pub fn run(addr: &str) -> ! {
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
        let local = listener.local_addr().expect("bound address");
        println!("serving plan compilation on {local}");
        listen(
            listener,
            Arc::new(PlanService::start(ServiceConfig::default())),
        );
        unreachable!("listener loop only ends by process exit");
    }

    /// `paper serve --smoke`: ephemeral listener + concurrent localhost
    /// clients with a mixed compile/execute load; exits nonzero unless
    /// every reply is `ok` and the plan cache was hit.
    pub fn run_smoke(clients: usize, jobs_per_client: usize) -> ! {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        let service = Arc::new(PlanService::start(ServiceConfig::default()));
        {
            let service = Arc::clone(&service);
            std::thread::spawn(move || listen(listener, service));
        }
        let requests = [
            "compile workload=grid3 nx=8 ny=8 nz=256 pi=2 pj=2 v=64",
            "execute workload=grid3 nx=8 ny=8 nz=256 pi=2 pj=2 v=64",
            "execute workload=grid3 nx=8 ny=8 nz=256 pi=2 pj=2 v=64 mode=blocking",
            "compile workload=strip2 nx=64 ny=16 ranks=4 v=16",
            "execute workload=strip2 nx=64 ny=16 ranks=4 v=16",
            "compile workload=grid3 nx=4 ny=4 nz=512 pi=2 pj=2 v=128 transport=mpsc",
        ];
        let bad = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for c in 0..clients {
                let bad = &bad;
                let requests = &requests;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to smoke server");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut stream = stream;
                    let mut line = String::new();
                    for j in 0..jobs_per_client {
                        let req = requests[(c + j) % requests.len()];
                        stream.write_all(req.as_bytes()).expect("send request");
                        stream.write_all(b"\n").expect("send newline");
                        line.clear();
                        reader.read_line(&mut line).expect("read reply");
                        if !line.starts_with("ok ") {
                            eprintln!("smoke client {c}: bad reply: {}", line.trim());
                            bad.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let m = service.metrics();
        let bad = bad.load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "serve smoke: {} clients x {} jobs on {addr}: {} completed | hit ratio {:.2} | {} coalesced | {} compiles | {} worlds reused | {} bad replies",
            clients,
            jobs_per_client,
            m.completed,
            m.cache.hit_ratio(),
            m.compiler.coalesced,
            m.compiler.compiles,
            m.worlds.reused,
            bad
        );
        let ok = bad == 0
            && m.completed == (clients * jobs_per_client) as u64
            && m.cache.hit_ratio() > 0.0;
        println!("serve smoke: {}", if ok { "PASS" } else { "FAIL" });
        std::process::exit(if ok { 0 } else { 1 });
    }
}

// ---- `paper tune`: the closed-loop autotuner ---------------------------
//
// Seed → surrogate pre-rank → calibrate → commit (DESIGN.md §12). Three
// rows, one per regime:
//
//   thread-quick   real calibration executions on the thread backend
//                  through compiled plans and a warm WorldPool; the
//                  ci.sh gate holds tuned ≥ seed here.
//   partial-tile   deterministic simulator, homogeneous 2×2 world whose
//                  pipeline depth leaves a partial last tile at the
//                  closed form's V* — and whose V* faces sit past the
//                  measured transfer curve's rendezvous knee.
//   hetero-4x4     deterministic simulator, 4×4 world with seeded
//                  node-speed spread on the same out-of-model machine.
//
// The two simulator rows are the ISSUE's out-of-model acceptance rows:
// the tuned (V, shape) must beat the closed-form seed by ≥5%, asserted
// here (bit-reproducible) and re-checked by ci.sh against the committed
// BENCH_stencil.json.

mod tune {
    use autotune::{
        commit, tune, Schedule, SimBackend, Surrogate, ThreadBackend, TrainSet, TuneConfig,
        TuneOutcome, TuneProblem,
    };
    use msgpass::transport::TransportKind;
    use planc::{Compiler, MachineSpec, PlanRequest, TunedCache, WorldPool};
    use stencil::engine::ExecMode;
    use tiling_core::machine::{KernelTier, MachineParams};

    struct Row {
        name: &'static str,
        backend: &'static str,
        problem: TuneProblem,
        schedule: Schedule,
        out: TuneOutcome,
    }

    /// Prediction-shape error at the tuned point after normalizing the
    /// model's scale at the seed point: the raw `pred_err_rel` compares
    /// model-µs against backend-µs (meaningless across backends whose
    /// clocks differ, e.g. host wall time vs. the paper machine), while
    /// this metric cancels the scale and keeps only how well the model
    /// *ranks* the tuned point relative to the seed. Gated by ci.sh.
    fn norm_err(out: &TuneOutcome) -> f64 {
        let scale = out.seed.makespan_us / out.seed.predicted_us;
        out.incumbent.makespan_us / (out.incumbent.predicted_us * scale) - 1.0
    }

    fn tier_name(t: KernelTier) -> &'static str {
        match t {
            KernelTier::Bitwise => "bitwise",
            KernelTier::Fast => "fast",
        }
    }

    fn json_row(r: &Row) -> String {
        let o = &r.out;
        let (s, w) = (&o.seed, &o.incumbent);
        format!(
            "    {{\"name\": \"{}\", \"backend\": \"{}\", \"grid\": [{}, {}, {}], \"procs\": [{}, {}], \
             \"schedule\": \"{}\", \"seed_v\": {}, \"tuned_v\": {}, \"tuned_procs\": [{}, {}], \
             \"tuned_tier\": \"{}\", \"tuned_workers\": {}, \"seed_makespan_us\": {:.3}, \
             \"tuned_makespan_us\": {:.3}, \"tuned_speedup\": {:.4}, \"predicted_us\": {:.3}, \
             \"pred_err_rel\": {:.4}, \"pred_err_norm\": {:.4}, \"evaluated\": {}, \"abandoned\": {}, \
             \"infeasible\": {}, \"enumerated\": {}}}",
            r.name,
            r.backend,
            r.problem.nx,
            r.problem.ny,
            r.problem.nz,
            r.problem.pi,
            r.problem.pj,
            r.schedule.name(),
            s.candidate.v,
            w.candidate.v,
            w.candidate.pi,
            w.candidate.pj,
            tier_name(w.candidate.tier),
            w.candidate.workers,
            s.makespan_us,
            w.makespan_us,
            o.speedup(),
            w.predicted_us,
            w.pred_err_rel,
            norm_err(o),
            o.evaluated.len(),
            o.abandoned,
            o.infeasible,
            o.enumerated
        )
    }

    /// The sweep-exported training slice (`results/tune_train.csv`,
    /// written by `paper sweep`) when present, else the closed form.
    fn load_surrogate() -> (Surrogate, &'static str) {
        let path = super::out_dir().join("tune_train.csv");
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| TrainSet::parse_csv(&s).ok())
        {
            Some(t) if !t.is_empty() => (Surrogate::Trained(t), "trained"),
            _ => (Surrogate::ClosedForm, "closed-form"),
        }
    }

    fn print_row(r: &Row) {
        let o = &r.out;
        println!(
            "{:12} {:6} {:>2}x{:<2}x{:<5} {}x{}: seed V={} ({:.0} µs) -> tuned V={} {}x{} tier={} workers={} ({:.0} µs) | speedup {:.3}x | pred_err_rel {:+.3} norm {:+.3} | {} measured, {} abandoned, {} infeasible of {}",
            r.name,
            r.backend,
            r.problem.nx,
            r.problem.ny,
            r.problem.nz,
            r.problem.pi,
            r.problem.pj,
            o.seed.candidate.v,
            o.seed.makespan_us,
            o.incumbent.candidate.v,
            o.incumbent.candidate.pi,
            o.incumbent.candidate.pj,
            tier_name(o.incumbent.candidate.tier),
            o.incumbent.candidate.workers,
            o.incumbent.makespan_us,
            o.speedup(),
            o.incumbent.pred_err_rel,
            norm_err(o),
            o.evaluated.len(),
            o.abandoned,
            o.infeasible,
            o.enumerated
        );
    }

    pub fn run(quick: bool, hetero_seed: u64) {
        println!(
            "== closed-loop autotune: seed -> surrogate pre-rank -> calibrate -> commit{} ==\n",
            if quick { " (quick mode)" } else { "" }
        );
        let (surrogate, surrogate_name) = load_surrogate();
        println!("surrogate: {surrogate_name}\n");

        // Row 1: real calibration on the thread backend, through the
        // shared compiler (probe re-runs are plan-cache hits) and the
        // warm world pool (calibration never re-spawns worlds).
        let tp = bench::configs::tune_thread_problem(quick);
        let compiler = Compiler::new(64);
        let pool = WorldPool::new(4);
        let thread_backend = ThreadBackend {
            problem: tp,
            machine: MachineSpec::Paper,
            mode: ExecMode::Overlapping,
            transport: TransportKind::shared_slots(),
            compiler: &compiler,
            pool: &pool,
        };
        let model = MachineParams::paper_cluster();
        let thread_cfg = TuneConfig {
            max_candidates: if quick { 4 } else { 8 },
            // A short prefix pays the pipeline-fill cost without the
            // steady state that amortizes it, so the extrapolation
            // overestimates: abandon only what is far over the
            // incumbent, not everything the fill tax inflates.
            abandon_factor: 2.0,
            tiers: vec![KernelTier::Bitwise, KernelTier::Fast],
            workers: vec![1, 2],
            ..TuneConfig::default()
        };
        let thread_out = tune(
            &tp,
            &model,
            Schedule::Overlap,
            &thread_backend,
            &surrogate,
            &thread_cfg,
        )
        .expect("thread-backend tune");

        // Commit the winner into planc's tuned-plan cache under the
        // workload identity, and read it back the way an executor would.
        let cache = TunedCache::new(16);
        let req = PlanRequest::grid3(tp.nx, tp.ny, tp.nz, tp.pi, tp.pj)
            .with_mode(ExecMode::Overlapping)
            .with_machine(MachineSpec::Paper)
            .with_transport(TransportKind::shared_slots());
        let entry = commit(&thread_out, &req, &cache);
        println!(
            "committed: V={} {}x{} tier={} workers={} at {:.1} µs/step under {}\n",
            entry.v,
            entry.pi,
            entry.pj,
            tier_name(entry.tier),
            entry.workers,
            entry.measured_us_per_step,
            planc::tuned_key(&req).canon()
        );

        // Rows 2+3: the deterministic out-of-model acceptance rows.
        let machine = bench::configs::tune_machine();
        let sim_cfg = TuneConfig {
            max_candidates: 16,
            ..TuneConfig::default()
        };
        let pt = bench::configs::tune_partial_tile_problem();
        let pt_out = tune(
            &pt,
            &machine,
            Schedule::Overlap,
            &SimBackend {
                problem: pt,
                machine,
                schedule: Schedule::Overlap,
                duplex: true,
                shared_bus: false,
                hetero_seed: 0,
                hetero_spread: 0.0,
            },
            &surrogate,
            &sim_cfg,
        )
        .expect("partial-tile tune");
        let het = bench::configs::tune_hetero_problem();
        let het_out = tune(
            &het,
            &machine,
            Schedule::Overlap,
            &SimBackend {
                problem: het,
                machine,
                schedule: Schedule::Overlap,
                duplex: true,
                shared_bus: false,
                hetero_seed,
                hetero_spread: bench::configs::TUNE_HETERO_SPREAD,
            },
            &surrogate,
            &sim_cfg,
        )
        .expect("hetero tune");

        let rows = [
            Row {
                name: "thread-quick",
                backend: "thread",
                problem: tp,
                schedule: Schedule::Overlap,
                out: thread_out,
            },
            Row {
                name: "partial-tile",
                backend: "sim",
                problem: pt,
                schedule: Schedule::Overlap,
                out: pt_out,
            },
            Row {
                name: "hetero-4x4",
                backend: "sim",
                problem: het,
                schedule: Schedule::Overlap,
                out: het_out,
            },
        ];
        for r in &rows {
            print_row(r);
        }

        // The invariants the rows ship under. The thread row's tuned
        // plan can never be slower than the seed (same measurement
        // procedure, incumbent is the min); the simulator rows must
        // beat the closed form by the ISSUE's ≥5% — deterministic, so
        // an assertion rather than a tolerance.
        for r in &rows {
            assert!(
                r.out.speedup() >= 1.0,
                "{}: tuned worse than closed-form seed",
                r.name
            );
        }
        for r in &rows[1..] {
            assert!(
                r.out.speedup() >= 1.05,
                "{}: out-of-model speedup {:.3} under the 5% acceptance bar",
                r.name,
                r.out.speedup()
            );
        }

        let json = format!(
            "{{\n    \"seed\": {},\n    \"surrogate\": \"{}\",\n    \"rows\": [\n{}\n    ]\n  }}",
            hetero_seed,
            surrogate_name,
            rows.iter().map(json_row).collect::<Vec<_>>().join(",\n")
        );
        if quick {
            let path = super::out_dir().join("BENCH_tune_quick.json");
            std::fs::write(&path, format!("{{\n  \"tune\": {json}\n}}\n"))
                .expect("write quick tune json");
            println!("\nwritten to {}", path.display());
        } else {
            splice_into_bench(&json);
        }
    }

    /// Splice (or replace) the `"tune"` section into the committed
    /// BENCH_stencil.json, preserving every other section byte-for-byte.
    fn splice_into_bench(tune_json: &str) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stencil.json");
        let mut base = std::fs::read_to_string(path)
            .unwrap_or_else(|_| "{\n  \"bench\": \"stencil-hot-paths\"\n}\n".to_string());
        if let Some(i) = base.find(",\n  \"tune\"") {
            base.truncate(i);
            base.push_str("\n}\n");
        }
        let root = base.rfind('}').expect("malformed BENCH_stencil.json");
        base.truncate(root);
        let trimmed = base.trim_end();
        std::fs::write(path, format!("{trimmed},\n  \"tune\": {tune_json}\n}}\n"))
            .expect("write benchmark json");
        println!("\nwritten to {path}");
    }
}

/// `paper sweep`: the Monte-Carlo design-space sweep over the cluster
/// simulator (machine preset × comm scale × transfer curve × node-speed
/// jitter × grid × space × V × schedule × duplex × topology), with the
/// Figs. 9–11 curves embedded as named slices.
fn cmd_sweep(quick: bool, seed: u64, workers: usize) {
    println!(
        "== Monte-Carlo design-space sweep (seed {seed}{}) ==\n",
        if quick { ", quick profile" } else { "" }
    );
    let spec = if quick {
        SweepSpec::quick(seed)
    } else {
        SweepSpec::full(seed)
    };
    let configs = sweep_generate(&spec);
    let t0 = std::time::Instant::now();
    let outcome = run_sweep(&configs, workers);
    let elapsed = t0.elapsed().as_secs_f64();
    let csv = to_csv(&outcome.rows);
    let json = summary_json(seed, &outcome);
    let train = training_csv(&outcome.rows);
    let dir = out_dir();
    std::fs::write(dir.join("sweep.csv"), &csv).expect("write sweep.csv");
    std::fs::write(dir.join("sweep_summary.json"), &json).expect("write sweep_summary.json");
    std::fs::write(dir.join("tune_train.csv"), &train).expect("write tune_train.csv");
    let ok = outcome
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok)
        .count();
    println!("configs: {}", outcome.rows.len());
    println!("ok:      {ok}");
    println!("errors:  {}", outcome.errors);
    println!("panics:  {}", outcome.panics);
    println!("workers: {workers}");
    println!("elapsed: {elapsed:.2}s\n");
    // The Figs. 9–11 slices, read back as Fig. 12 would summarize them:
    // the best overlapping point, its tile height, and the improvement
    // over the best blocking point.
    for (slice, paper_v) in [("fig9", 444i64), ("fig10", 538), ("fig11", 164)] {
        let best = |schedule: SweepSchedule| {
            outcome
                .rows
                .iter()
                .filter(|r| r.config.slice == slice && r.config.schedule == schedule)
                .filter_map(|r| r.metrics.map(|m| (m.makespan_us, r.config.v)))
                .min_by(|a, b| a.0.total_cmp(&b.0))
        };
        if let (Some((ov_us, ov_v)), Some((bl_us, _))) =
            (best(SweepSchedule::Overlap), best(SweepSchedule::Blocking))
        {
            println!(
                "{slice}: best overlap V = {ov_v} (paper V_opt = {paper_v}{}), \
                 improvement over blocking = {:.1}%",
                if quick { " at full size" } else { "" },
                (1.0 - ov_us / bl_us) * 100.0
            );
            assert!(
                ov_us < bl_us,
                "{slice}: overlap must beat blocking at the optimum"
            );
        }
    }
    println!("\nwrote {}", dir.join("sweep.csv").display());
    println!("wrote {}", dir.join("sweep_summary.json").display());
    println!(
        "wrote {} (surrogate training slice for `paper tune`)",
        dir.join("tune_train.csv").display()
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: paper <example1|gantt|fig9|fig10|fig11|table12|ablation|listings|utilization|sensitivity|scaling|sweep|threads|chaos|analyze|modelcheck|perf|tune|serve|all>\n       paper gantt [--backend sim|thread]\n       paper sweep [--quick] [--seed N] [--workers N]   Monte-Carlo design-space sweep over the simulator; writes results/sweep.csv + results/sweep_summary.json + results/tune_train.csv, embeds Figs. 9-11 as named slices; same seed => byte-identical output\n       paper tune [--quick] [--seed N]   closed-loop autotuner (seed -> surrogate pre-rank -> calibrate -> commit); thread-backend calibration row plus two deterministic out-of-model simulator rows; --quick writes results/BENCH_tune_quick.json, full mode splices the \"tune\" section into BENCH_stencil.json; --seed sets the hetero row's node-speed seed\n       paper chaos   fault-injection demo (CHAOS_SEED=<n> overrides the plan seed)\n       paper analyze static analysis: pre-flight every shipped config, reject the chaos plans, model-check the slot ring\n       paper modelcheck   DPOR model-checking sweep: pool handoff, single-flight compile, world pool, tuned cache, slot retransmission — shipped protocols must be clean, seeded bugs must be caught with schedule prefixes\n       paper perf [--quick]   hot-path benchmark; --quick shortens the pipeline and writes results/BENCH_quick.json instead of BENCH_stencil.json\n       paper perf --procs PIxPJ --grid NXxNYxNZ [--tier bitwise|fast] [--workers N]   one compiled-plan world verified against the sequential reference (PASS/FAIL)\n       paper serve [--addr HOST:PORT]   plan-compilation service over TCP (default 127.0.0.1:7077); line protocol: compile/execute <key=value ...>, stats, quit\n       paper serve --smoke   ephemeral service + concurrent localhost clients; PASS iff every job succeeds and the plan cache is hit"
    );
    std::process::exit(2);
}

/// Worker count for `paper sweep`: the machine's parallelism, capped —
/// the sweep is embarrassingly parallel but each simulation is small,
/// so more threads than cores only adds scheduling noise.
fn default_sweep_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Parse "AxB" (e.g. `--procs 4x4`).
fn parse_pair(s: &str) -> Option<(usize, usize)> {
    let (a, b) = s.split_once('x')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// Parse "AxBxC" (e.g. `--grid 16x16x256`).
fn parse_triple(s: &str) -> Option<(usize, usize, usize)> {
    let (a, rest) = s.split_once('x')?;
    let (b, c) = rest.split_once('x')?;
    Some((a.parse().ok()?, b.parse().ok()?, c.parse().ok()?))
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| usage());
    let [e1, e2, e3] = paper_experiments();
    match cmd.as_str() {
        "example1" => cmd_example1(),
        "gantt" => {
            // `paper gantt [--backend sim|thread]`, defaulting to sim.
            let backend = match std::env::args().nth(2).as_deref() {
                Some("--backend") => std::env::args().nth(3).unwrap_or_else(|| usage()),
                Some(other) => {
                    eprintln!("unknown gantt option '{other}'");
                    usage()
                }
                None => "sim".to_string(),
            };
            cmd_gantt(&backend)
        }
        "fig9" => run_figure(&e1, "fig9"),
        "fig10" => run_figure(&e2, "fig10"),
        "fig11" => run_figure(&e3, "fig11"),
        "table12" => cmd_table12(),
        "ablation" => cmd_ablation(),
        "listings" => cmd_listings(),
        "utilization" => cmd_utilization(),
        "sensitivity" => cmd_sensitivity(),
        "scaling" => cmd_scaling(),
        "sweep" => {
            let mut quick = false;
            let mut seed = 2001u64; // the paper's year
            let mut workers = default_sweep_workers();
            let mut args = std::env::args().skip(2);
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--seed" => {
                        seed = args
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--workers" => {
                        workers = args
                            .next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&w| w >= 1)
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            cmd_sweep(quick, seed, workers)
        }
        "threads" => cmd_threads(),
        "chaos" => cmd_chaos(),
        "analyze" => cmd_analyze(),
        "modelcheck" => cmd_modelcheck(),
        "tune" => {
            let mut quick = false;
            let mut seed = bench::configs::TUNE_HETERO_SEED;
            let mut args = std::env::args().skip(2);
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--seed" => {
                        seed = args
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            tune::run(quick, seed)
        }
        "serve" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut smoke = false;
            let mut args = std::env::args().skip(2);
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--smoke" => smoke = true,
                    "--addr" => addr = args.next().unwrap_or_else(|| usage()),
                    _ => usage(),
                }
            }
            if smoke {
                serve::run_smoke(8, 12)
            } else {
                serve::run(&addr)
            }
        }
        "perf" => {
            let mut quick = false;
            let mut procs: Option<(usize, usize)> = None;
            let mut grid: Option<(usize, usize, usize)> = None;
            let mut tier = stencil::kernel::KernelTier::Bitwise;
            let mut workers = 1usize;
            let mut args = std::env::args().skip(2);
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--procs" => {
                        procs = parse_pair(&args.next().unwrap_or_else(|| usage()));
                        if procs.is_none() {
                            usage();
                        }
                    }
                    "--grid" => {
                        grid = parse_triple(&args.next().unwrap_or_else(|| usage()));
                        if grid.is_none() {
                            usage();
                        }
                    }
                    "--tier" => {
                        tier = match args.next().as_deref() {
                            Some("bitwise") => stencil::kernel::KernelTier::Bitwise,
                            Some("fast") => stencil::kernel::KernelTier::Fast,
                            _ => usage(),
                        }
                    }
                    "--workers" => {
                        workers = args
                            .next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&w| w >= 1)
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            match (procs, grid) {
                (Some(p), Some(g)) => perf::run_custom(p, g, tier, workers),
                (None, None) => perf::run(quick),
                _ => {
                    eprintln!("--procs and --grid must be given together");
                    usage()
                }
            }
        }
        "all" => {
            cmd_example1();
            println!("\n");
            cmd_gantt("sim");
            println!("\n");
            cmd_gantt("thread");
            println!("\n");
            run_figure(&e1, "fig9");
            println!("\n");
            run_figure(&e2, "fig10");
            println!("\n");
            run_figure(&e3, "fig11");
            println!("\n");
            cmd_table12();
            println!("\n");
            cmd_ablation();
            println!("\n");
            cmd_utilization();
            println!("\n");
            cmd_sensitivity();
            println!("\n");
            cmd_scaling();
            println!("\n");
            cmd_sweep(true, 2001, default_sweep_workers());
            println!("\n");
            cmd_threads();
            println!("\n");
            cmd_chaos();
            println!("\n");
            cmd_analyze();
            println!("\n");
            cmd_modelcheck();
            println!("\n");
            perf::run(false);
        }
        _ => usage(),
    }
}
