//! The paper's three experiments (§5) and the machinery that regenerates
//! every figure and table from the simulated cluster.
//!
//! | experiment | space (i×j×k) | processor grid | tile cross-section |
//! |---|---|---|---|
//! | i   | 16×16×16384 | 4×4 | 4×4 |
//! | ii  | 16×16×32768 | 4×4 | 4×4 |
//! | iii | 32×32×4096  | 4×4 | 8×8 |
//!
//! For every tile height `V` the harness runs both complete MPI programs
//! (blocking `ProcB`, overlapping `ProcNB`) through the discrete-event
//! cluster simulator, exactly like the authors ran theirs on the
//! Pentium cluster, and finds `V_optimal` per schedule.

use cluster_sim::builders::ClusterProblem;
use cluster_sim::engine::{simulate, SimConfig};
use tiling_core::dependence::DependenceSet;
use tiling_core::machine::MachineParams;
use tiling_core::optimize::height_ladder;
use tiling_core::schedule::{OverlapMode, OverlapSchedule};
use tiling_core::space::IterationSpace;
use tiling_core::tiling::Tiling;
use tiling_core::uet_uct;

/// One of the paper's experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Experiment {
    /// Display name ("i", "ii", "iii").
    pub name: &'static str,
    /// Iteration-space extents.
    pub nx: i64,
    /// Extent along j.
    pub ny: i64,
    /// Extent along k (pipelined).
    pub nz: i64,
    /// Processor grid (pi × pj = 16 in the paper).
    pub pi: i64,
    /// Processor-grid extent along j.
    pub pj: i64,
    /// The paper's measured optimal tile height.
    pub paper_v_optimal: i64,
    /// The paper's measured optimal overlap completion time (s).
    pub paper_t_overlap_s: f64,
    /// The paper's measured optimal non-overlap completion time (s).
    pub paper_t_nonoverlap_s: f64,
    /// The paper's measured `T_fill_MPI_buffer` at `V_optimal` (ms).
    pub paper_fill_ms: f64,
}

impl Experiment {
    /// Tile cross-section along i (one tile column per processor).
    pub fn bx(&self) -> i64 {
        self.nx / self.pi
    }

    /// Tile cross-section along j.
    pub fn by(&self) -> i64 {
        self.ny / self.pj
    }

    /// The iteration space.
    pub fn space(&self) -> IterationSpace {
        IterationSpace::from_extents(&[self.nx, self.ny, self.nz])
    }

    /// Message payload bytes at tile height `v` (the larger face; both
    /// faces are equal when `bx == by`).
    pub fn message_bytes(&self, v: i64) -> f64 {
        (self.by().max(self.bx()) * v * 4) as f64
    }
}

/// The three experiments of Fig. 9/10/11 and the Fig. 12 table.
pub fn paper_experiments() -> [Experiment; 3] {
    [
        Experiment {
            name: "i",
            nx: 16,
            ny: 16,
            nz: 16384,
            pi: 4,
            pj: 4,
            paper_v_optimal: 444,
            paper_t_overlap_s: 0.233923,
            paper_t_nonoverlap_s: 0.376637,
            paper_fill_ms: 0.627,
        },
        Experiment {
            name: "ii",
            nx: 16,
            ny: 16,
            nz: 32768,
            pi: 4,
            pj: 4,
            paper_v_optimal: 538,
            paper_t_overlap_s: 0.467929,
            paper_t_nonoverlap_s: 0.694516,
            paper_fill_ms: 0.745,
        },
        Experiment {
            name: "iii",
            nx: 32,
            ny: 32,
            nz: 4096,
            pi: 4,
            pj: 4,
            paper_v_optimal: 164,
            paper_t_overlap_s: 0.219059,
            paper_t_nonoverlap_s: 0.324069,
            paper_fill_ms: 0.37,
        },
    ]
}

/// One simulated sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSweepPoint {
    /// Tile height.
    pub v: i64,
    /// Tile volume `g = bx·by·V`.
    pub g: i64,
    /// Simulated blocking (non-overlapping) completion time, µs.
    pub blocking_us: f64,
    /// Simulated overlapping completion time, µs.
    pub overlap_us: f64,
}

/// Build the [`ClusterProblem`] of an experiment at tile height `v`.
pub fn problem_at(exp: &Experiment, v: i64) -> ClusterProblem {
    ClusterProblem::new(
        Tiling::rectangular(&[exp.bx(), exp.by(), v]),
        DependenceSet::paper_3d(),
        exp.space(),
        2,
    )
    .expect("paper layout is always valid")
}

/// Simulate both schedules of an experiment at one tile height.
pub fn simulate_point(exp: &Experiment, v: i64, machine: &MachineParams) -> SimSweepPoint {
    let problem = problem_at(exp, v);
    let cfg = SimConfig::new(*machine).with_trace(false);
    let blocking =
        simulate(cfg, problem.blocking_programs(machine)).expect("blocking program deadlock-free");
    let overlap = simulate(cfg, problem.overlapping_programs(machine))
        .expect("overlapping program deadlock-free");
    SimSweepPoint {
        v,
        g: exp.bx() * exp.by() * v,
        blocking_us: blocking.makespan.as_us(),
        overlap_us: overlap.makespan.as_us(),
    }
}

/// The tile heights swept for an experiment's figure: a geometric ladder
/// from 4 to `nz/4` (the paper's range) plus the paper's measured
/// optimum for direct comparison.
pub fn figure_heights(exp: &Experiment) -> Vec<i64> {
    let mut hs = height_ladder(4, exp.nz / 4, 32);
    if !hs.contains(&exp.paper_v_optimal) {
        hs.push(exp.paper_v_optimal);
        hs.sort_unstable();
    }
    hs
}

/// Run the full sweep of one experiment (one figure's data).
pub fn sweep(exp: &Experiment, machine: &MachineParams, heights: &[i64]) -> Vec<SimSweepPoint> {
    heights
        .iter()
        .map(|&v| simulate_point(exp, v, machine))
        .collect()
}

/// One row of the Fig. 12 table, paper vs. reproduction.
#[derive(Clone, Debug)]
pub struct Table12Row {
    /// Which experiment.
    pub exp: Experiment,
    /// Simulated optimal tile height (overlap schedule).
    pub v_optimal: i64,
    /// `g = bx·by·V_optimal`.
    pub g_optimal: i64,
    /// Simulated optimal overlapping completion time (s).
    pub t_overlap_s: f64,
    /// Model `T_fill_MPI_buffer` at the optimal packet size (ms).
    pub fill_ms: f64,
    /// Overlap schedule length `P(g)` at `V_optimal` (exact UET-UCT).
    pub planes: i64,
    /// Theoretical overlap time from eq. (5) at `V_optimal` (s).
    pub t_theory_s: f64,
    /// |theory − simulated| / simulated.
    pub theory_diff: f64,
    /// Simulated optimal non-overlapping completion time (s).
    pub t_nonoverlap_s: f64,
    /// 1 − overlap/non-overlap.
    pub improvement: f64,
}

/// Compute a Fig. 12 row by sweeping the simulator and evaluating the
/// analytic model at the simulated optimum.
pub fn table12_row(exp: &Experiment, machine: &MachineParams) -> Table12Row {
    let points = sweep(exp, machine, &figure_heights(exp));
    let best_ov = points
        .iter()
        .min_by(|a, b| a.overlap_us.total_cmp(&b.overlap_us))
        .expect("non-empty sweep");
    let best_no = points
        .iter()
        .min_by(|a, b| a.blocking_us.total_cmp(&b.blocking_us))
        .expect("non-empty sweep");

    let v = best_ov.v;
    let tiling = Tiling::rectangular(&[exp.bx(), exp.by(), v]);
    let sched = OverlapSchedule::with_mapping(3, 2);
    let theory = sched.analyze(
        &tiling,
        &DependenceSet::paper_3d(),
        &exp.space(),
        machine,
        OverlapMode::Serialized,
    );
    let tiled_extents: Vec<i64> = theory.tiled_space.extents();
    let planes = uet_uct::uet_uct_makespan(&tiled_extents, 2);
    let t_ov = best_ov.overlap_us * 1e-6;
    let t_th = theory.total_us * 1e-6;
    Table12Row {
        exp: *exp,
        v_optimal: v,
        g_optimal: best_ov.g,
        t_overlap_s: t_ov,
        fill_ms: machine.fill_mpi_buffer.eval(exp.message_bytes(v)) / 1e3,
        planes,
        t_theory_s: t_th,
        theory_diff: (t_th - t_ov).abs() / t_ov,
        t_nonoverlap_s: best_no.blocking_us * 1e-6,
        improvement: 1.0 - t_ov / (best_no.blocking_us * 1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_cross_sections() {
        let [i, ii, iii] = paper_experiments();
        assert_eq!((i.bx(), i.by()), (4, 4));
        assert_eq!((ii.bx(), ii.by()), (4, 4));
        assert_eq!((iii.bx(), iii.by()), (8, 8));
        // Packet sizes of Fig. 12: 7104, 8608, 5248 bytes.
        assert_eq!(i.message_bytes(444), 7104.0);
        assert_eq!(ii.message_bytes(538), 8608.0);
        assert_eq!(iii.message_bytes(164), 5248.0);
    }

    #[test]
    fn figure_heights_include_paper_optimum() {
        for exp in paper_experiments() {
            let hs = figure_heights(&exp);
            assert!(hs.contains(&exp.paper_v_optimal), "{}", exp.name);
            assert!(hs.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(*hs.first().unwrap(), 4);
            assert_eq!(*hs.last().unwrap(), exp.nz / 4);
        }
    }

    #[test]
    fn simulate_point_small_scale() {
        // A scaled-down experiment keeps debug-mode tests fast.
        let exp = Experiment {
            name: "mini",
            nx: 8,
            ny: 8,
            nz: 256,
            pi: 2,
            pj: 2,
            paper_v_optimal: 32,
            paper_t_overlap_s: 0.0,
            paper_t_nonoverlap_s: 0.0,
            paper_fill_ms: 0.0,
        };
        let machine = MachineParams::paper_cluster();
        let p = simulate_point(&exp, 32, &machine);
        assert!(p.overlap_us > 0.0 && p.blocking_us > 0.0);
        assert!(p.overlap_us < p.blocking_us, "{p:?}");
        assert_eq!(p.g, 4 * 4 * 32);
    }

    #[test]
    fn sweep_is_u_shaped_mini() {
        let exp = Experiment {
            name: "mini",
            nx: 8,
            ny: 8,
            nz: 512,
            pi: 2,
            pj: 2,
            paper_v_optimal: 32,
            paper_t_overlap_s: 0.0,
            paper_t_nonoverlap_s: 0.0,
            paper_fill_ms: 0.0,
        };
        let machine = MachineParams::paper_cluster();
        let pts = sweep(&exp, &machine, &[2, 8, 32, 128]);
        let best = pts
            .iter()
            .min_by(|a, b| a.overlap_us.total_cmp(&b.overlap_us))
            .unwrap();
        assert!(best.v > 2, "optimum should not be the finest grain");
    }
}
