//! Cartesian process topologies.
//!
//! The paper lays processors out as a 2-D grid over the tiled space's
//! cross-section (4×4 in experiments i/ii, still 4×4 with 8×8 tile
//! cross-sections in experiment iii). [`CartesianGrid`] maps between
//! ranks and grid coordinates and enumerates the neighbors a rank
//! exchanges tile faces with.

/// A row-major Cartesian process grid of arbitrary dimensionality.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CartesianGrid {
    extents: Vec<usize>,
}

impl CartesianGrid {
    /// A grid with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if any extent is zero or the grid is empty.
    pub fn new(extents: Vec<usize>) -> Self {
        assert!(!extents.is_empty(), "grid needs ≥ 1 dimension");
        assert!(extents.iter().all(|&e| e > 0), "extents must be positive");
        CartesianGrid { extents }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.extents.iter().product()
    }

    /// Grid coordinates of a rank (row-major).
    ///
    /// # Panics
    /// Panics if `rank ≥ size()`.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size(), "rank out of range");
        let mut c = vec![0; self.dims()];
        let mut r = rank;
        for d in (0..self.dims()).rev() {
            c[d] = r % self.extents[d];
            r /= self.extents[d];
        }
        c
    }

    /// Rank of grid coordinates (row-major).
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims(), "coordinate arity mismatch");
        let mut rank = 0;
        for (&c, &e) in coords.iter().zip(&self.extents) {
            assert!(c < e, "coordinate out of range");
            rank = rank * e + c;
        }
        rank
    }

    /// The rank at `coords + offset`, or `None` if outside the grid
    /// (no wraparound — tile pipelines do not wrap).
    pub fn neighbor(&self, rank: usize, offset: &[i64]) -> Option<usize> {
        assert_eq!(offset.len(), self.dims(), "offset arity mismatch");
        let c = self.coords_of(rank);
        let mut n = Vec::with_capacity(self.dims());
        for d in 0..self.dims() {
            let v = c[d] as i64 + offset[d];
            if v < 0 || v >= self.extents[d] as i64 {
                return None;
            }
            n.push(v as usize);
        }
        Some(self.rank_of(&n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rank_coords() {
        let g = CartesianGrid::new(vec![4, 4]);
        assert_eq!(g.size(), 16);
        for rank in 0..16 {
            assert_eq!(g.rank_of(&g.coords_of(rank)), rank);
        }
    }

    #[test]
    fn row_major_order() {
        let g = CartesianGrid::new(vec![2, 3]);
        assert_eq!(g.coords_of(0), vec![0, 0]);
        assert_eq!(g.coords_of(1), vec![0, 1]);
        assert_eq!(g.coords_of(3), vec![1, 0]);
        assert_eq!(g.rank_of(&[1, 2]), 5);
    }

    #[test]
    fn neighbors_clip_at_edges() {
        let g = CartesianGrid::new(vec![4, 4]);
        let corner = g.rank_of(&[0, 0]);
        assert_eq!(g.neighbor(corner, &[-1, 0]), None);
        assert_eq!(g.neighbor(corner, &[0, -1]), None);
        assert_eq!(g.neighbor(corner, &[1, 0]), Some(g.rank_of(&[1, 0])));
        let last = g.rank_of(&[3, 3]);
        assert_eq!(g.neighbor(last, &[0, 1]), None);
        assert_eq!(g.neighbor(last, &[-1, 0]), Some(g.rank_of(&[2, 3])));
    }

    #[test]
    fn diagonal_neighbor() {
        let g = CartesianGrid::new(vec![3, 3]);
        let mid = g.rank_of(&[1, 1]);
        assert_eq!(g.neighbor(mid, &[1, 1]), Some(g.rank_of(&[2, 2])));
    }

    #[test]
    fn one_dimensional_grid() {
        let g = CartesianGrid::new(vec![6]);
        assert_eq!(g.size(), 6);
        assert_eq!(g.neighbor(2, &[1]), Some(3));
        assert_eq!(g.neighbor(5, &[1]), None);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        CartesianGrid::new(vec![2, 2]).coords_of(4);
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_panics() {
        CartesianGrid::new(vec![2, 0]);
    }
}
