//! Trace-driven simulation: record a *real* execution's communication
//! ops and measured compute segments, then replay the recorded program
//! through the `cluster-sim` discrete-event model under any machine
//! parameters.
//!
//! This is how one predicts cluster performance of actual code from a
//! single-machine run: the executors from `stencil` (or any code written
//! against [`Communicator`]) run unchanged against a [`RecordingComm`];
//! the wrapper times the gaps between communication calls (= the real
//! computation) and logs every operation with its real byte count. The
//! result converts to per-rank [`cluster_sim::program::Program`]s whose
//! `Compute` durations are *measured*, while all communication costs
//! come from the simulated machine model.
//!
//! Recording runs the ranks **sequentially on one thread** (in rank
//! order) so compute timings are undistorted by scheduling. That works
//! for any program whose messages flow from lower to higher ranks — the
//! wavefront pipelines of this repository all qualify; a program that
//! receives from a higher rank would block forever, which the unbounded
//! eager channels turn into a clear panic (recv on an empty, hung-up
//! channel) rather than a silent hang once the lower ranks finished.

use crate::comm::{Communicator, RecvRequest, SendRequest, Tag};
use crate::thread_backend::{build_world, LatencyModel, ThreadComm};
use cluster_sim::program::{Program, ReqId};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// One recorded operation.
#[derive(Clone, Debug, PartialEq)]
enum Rec {
    Compute {
        us: f64,
    },
    Send {
        to: usize,
        tag: Tag,
        bytes: u64,
    },
    Recv {
        from: usize,
        tag: Tag,
        bytes: u64,
    },
    Isend {
        to: usize,
        tag: Tag,
        bytes: u64,
    },
    Irecv {
        from: usize,
        tag: Tag,
        /// Resolved when the matching `wait_recv` learns the length.
        bytes: Option<u64>,
    },
    Wait {
        /// Index of the `Isend`/`Irecv` record this waits for.
        op: usize,
    },
}

/// A [`Communicator`] wrapper that executes for real (through an inner
/// [`ThreadComm`]) while recording a simulator program.
pub struct RecordingComm<T: Send + Sync + 'static> {
    inner: ThreadComm<T>,
    ops: Vec<Rec>,
    mark: Instant,
    /// Unresolved `Irecv` record indices per (src, tag), FIFO.
    pending_irecvs: HashMap<(usize, Tag), VecDeque<usize>>,
    /// Inner send-request id → `Isend` record index.
    send_ops: HashMap<u64, usize>,
}

impl<T: Clone + Send + Sync + 'static> RecordingComm<T> {
    fn new(inner: ThreadComm<T>) -> Self {
        RecordingComm {
            inner,
            ops: Vec::new(),
            mark: Instant::now(),
            pending_irecvs: HashMap::new(),
            send_ops: HashMap::new(),
        }
    }

    /// Close the current compute segment (time since the last op).
    fn note_compute(&mut self) {
        let us = self.mark.elapsed().as_secs_f64() * 1e6;
        if us > 0.0 {
            self.ops.push(Rec::Compute { us });
        }
    }

    /// Restart the compute timer (call after the op's own work).
    fn rearm(&mut self) {
        self.mark = Instant::now();
    }

    fn payload_bytes(&self, len: usize) -> u64 {
        (len * std::mem::size_of::<T>()) as u64
    }

    /// Convert the recording into a simulator program.
    ///
    /// # Errors
    /// Fails if an `Irecv` was posted but never waited (its byte count
    /// is unknown to the simulator).
    pub fn into_program(self) -> Result<Program, String> {
        let mut p = Program::new();
        let mut req_of: HashMap<usize, ReqId> = HashMap::new();
        for (idx, rec) in self.ops.iter().enumerate() {
            match *rec {
                Rec::Compute { us } => p.compute(us, idx as u64),
                Rec::Send { to, tag, bytes } => p.send(to, tag, bytes),
                Rec::Recv { from, tag, bytes } => p.recv(from, tag, bytes),
                Rec::Isend { to, tag, bytes } => {
                    let r = p.isend(to, tag, bytes);
                    req_of.insert(idx, r);
                }
                Rec::Irecv { from, tag, bytes } => {
                    let bytes = bytes
                        .ok_or_else(|| format!("Irecv from {from} tag {tag} was never waited"))?;
                    let r = p.irecv(from, tag, bytes);
                    req_of.insert(idx, r);
                }
                Rec::Wait { op } => {
                    let r = *req_of
                        .get(&op)
                        .ok_or_else(|| format!("wait references unknown op {op}"))?;
                    p.wait(r);
                }
            }
        }
        p.validate().map_err(|e| e.to_string())?;
        Ok(p)
    }
}

impl<T: Clone + Send + Sync + 'static> Communicator<T> for RecordingComm<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: Tag, data: Vec<T>) {
        self.note_compute();
        let bytes = self.payload_bytes(data.len());
        self.inner.send(to, tag, data);
        self.ops.push(Rec::Send { to, tag, bytes });
        self.rearm();
    }

    fn recv(&mut self, from: usize, tag: Tag) -> Vec<T> {
        self.note_compute();
        // Non-blocking: during sequential recording the message must
        // already be buffered; a blocking recv would hang forever on a
        // non-rank-ordered program instead of diagnosing it.
        let data = self.inner.recv_now(from, tag);
        let bytes = self.payload_bytes(data.len());
        self.ops.push(Rec::Recv { from, tag, bytes });
        self.rearm();
        data
    }

    fn isend(&mut self, to: usize, tag: Tag, data: Vec<T>) -> SendRequest {
        self.note_compute();
        let bytes = self.payload_bytes(data.len());
        let req = self.inner.isend(to, tag, data);
        self.ops.push(Rec::Isend { to, tag, bytes });
        self.send_ops.insert(req.id, self.ops.len() - 1);
        self.rearm();
        req
    }

    fn irecv(&mut self, from: usize, tag: Tag) -> RecvRequest {
        self.note_compute();
        let req = self.inner.irecv(from, tag);
        self.ops.push(Rec::Irecv {
            from,
            tag,
            bytes: None,
        });
        self.pending_irecvs
            .entry((from, tag))
            .or_default()
            .push_back(self.ops.len() - 1);
        self.rearm();
        req
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.note_compute();
        let op = *self
            .send_ops
            .get(&req.id)
            .expect("wait_send on a request not issued through this comm");
        self.inner.wait_send(req);
        self.ops.push(Rec::Wait { op });
        self.rearm();
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Vec<T> {
        self.note_compute();
        let key = (req.from, req.tag);
        let data = self.inner.recv_now(req.from, req.tag);
        let op = self
            .pending_irecvs
            .get_mut(&key)
            .and_then(VecDeque::pop_front)
            .expect("wait_recv without a matching irecv");
        let nbytes = self.payload_bytes(data.len());
        if let Rec::Irecv { bytes, .. } = &mut self.ops[op] {
            *bytes = Some(nbytes);
        }
        self.ops.push(Rec::Wait { op });
        self.rearm();
        data
    }

    fn barrier(&mut self) {
        // Sequential recording cannot block on a real barrier; the
        // simulator has no barrier op either, so it is recorded as a
        // no-op (barriers separate phases, they don't move data).
    }
}

/// Run `size` ranks **sequentially in rank order** on the current
/// thread, recording each; returns the per-rank results and the per-rank
/// simulator programs.
///
/// All messages must flow from lower to higher ranks (wavefront order) —
/// see the module docs.
pub fn record_sequential<T, R, F>(size: usize, body: F) -> (Vec<R>, Vec<Program>)
where
    T: Clone + Send + Sync + 'static,
    F: Fn(&mut RecordingComm<T>) -> R,
{
    let comms = build_world::<T>(size, LatencyModel::zero());
    let mut results = Vec::with_capacity(size);
    let mut programs = Vec::with_capacity(size);
    for inner in comms {
        let mut rec = RecordingComm::new(inner);
        rec.rearm();
        results.push(body(&mut rec));
        rec.note_compute();
        programs.push(rec.into_program().expect("recording is self-consistent"));
    }
    (results, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::engine::{simulate, SimConfig};
    use cluster_sim::program::Op;
    use tiling_core::machine::MachineParams;

    #[test]
    fn records_a_pipeline_and_replays_in_simulator() {
        // Rank 0 computes then sends; rank 1 receives then computes.
        let (results, programs) = record_sequential::<f32, _, _>(2, |comm| {
            if comm.rank() == 0 {
                let mut acc = 0.0f32;
                for i in 0..200_000 {
                    acc += (i as f32).sqrt();
                }
                comm.send(1, 0, vec![acc; 256]);
                acc
            } else {
                let data = comm.recv(0, 0);
                data[0]
            }
        });
        assert_eq!(results[0], results[1]);
        // Program 0: Compute then Send(1024 B).
        let ops0 = programs[0].ops();
        assert!(matches!(ops0[0], Op::Compute { .. }));
        assert!(matches!(
            ops0[1],
            Op::Send {
                to: 1,
                bytes: 1024,
                ..
            }
        ));
        // Replay through the simulator.
        let machine = MachineParams::paper_cluster();
        let res = simulate(SimConfig::new(machine).with_trace(false), programs).unwrap();
        assert!(res.makespan.as_us() > 0.0);
    }

    #[test]
    fn nonblocking_ops_resolve_bytes_at_wait() {
        let (_, programs) = record_sequential::<f64, _, _>(2, |comm| {
            if comm.rank() == 0 {
                let q = comm.isend(1, 5, vec![1.0; 64]);
                comm.wait_send(q);
            } else {
                let q = comm.irecv(0, 5);
                let data = comm.wait_recv(q);
                assert_eq!(data.len(), 64);
            }
        });
        let ops1 = programs[1].ops();
        let irecv = ops1.iter().find(|o| matches!(o, Op::Irecv { .. })).unwrap();
        assert!(matches!(irecv, Op::Irecv { bytes: 512, .. }));
    }

    #[test]
    fn recorded_program_validates_and_simulates_deterministically() {
        let build = || {
            record_sequential::<f32, _, _>(3, |comm| {
                let r = comm.rank();
                if r > 0 {
                    let _ = comm.recv(r - 1, 0);
                }
                std::hint::black_box((0..10_000).map(|x| x as f32).sum::<f32>());
                if r + 1 < comm.size() {
                    comm.send(r + 1, 0, vec![0.0f32; 128]);
                }
            })
            .1
        };
        for p in build() {
            p.validate().unwrap();
        }
        // Note: compute durations are *measured*, so two recordings
        // differ slightly — but each replay is deterministic.
        let machine = MachineParams::paper_cluster();
        let programs = build();
        let a = simulate(SimConfig::new(machine).with_trace(false), programs.clone()).unwrap();
        let b = simulate(SimConfig::new(machine).with_trace(false), programs).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    #[should_panic(expected = "messages must flow from lower to higher ranks")]
    fn non_rank_ordered_program_is_diagnosed() {
        // Rank 0 receives from rank 1: impossible during sequential
        // recording; must panic with a diagnosis, not hang.
        let _ = record_sequential::<f32, _, _>(2, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 0);
            } else {
                comm.send(0, 0, vec![1.0]);
            }
        });
    }

    #[test]
    fn real_stencil_executor_records() {
        // The unchanged 2-D executor from `stencil` can't be used here
        // (circular dev-dependency), so emulate its op pattern: a 2-rank
        // overlapped pipeline with irecv-ahead.
        let (_, programs) = record_sequential::<f32, _, _>(2, |comm| {
            let rank = comm.rank();
            let steps = 4u64;
            if rank == 0 {
                for k in 0..steps {
                    std::hint::black_box((0..5_000).map(|x| x as f32).sum::<f32>());
                    let q = comm.isend(1, k, vec![1.0f32; 100]);
                    comm.wait_send(q);
                }
            } else {
                let mut cur = comm.irecv(0, 0);
                for k in 0..steps {
                    let next = (k + 1 < steps).then(|| comm.irecv(0, k + 1));
                    let _ = comm.wait_recv(cur);
                    std::hint::black_box((0..5_000).map(|x| x as f32).sum::<f32>());
                    cur = match next {
                        Some(n) => n,
                        None => break,
                    };
                }
            }
        });
        let machine = MachineParams::paper_cluster();
        let res = simulate(SimConfig::new(machine).with_trace(false), programs).unwrap();
        assert!(res.makespan.as_us() > 0.0);
    }
}
