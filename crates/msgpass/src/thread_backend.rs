//! Real multi-threaded backend: one OS thread per rank, pluggable
//! per-link transports ([`TransportKind`]), and an injected
//! wire-latency model.
//!
//! The latency model is what makes overlap *measurable* on a shared-
//! memory machine: every message is stamped at send time and is not
//! released to the receiver before `sent_at + latency(bytes)` — but the
//! receiving thread only pays that wait inside `wait_recv`/`recv`, so a
//! thread that computes while a message is "on the wire" genuinely hides
//! the latency, exactly like a node computing while its NIC works.
//!
//! Blocking sends additionally sleep the *sender* for the transmission
//! time (the paper's Fig. 7: a blocking send suspends the caller until
//! the message is out).
//!
//! ## Transports and persistent buffers
//!
//! Every directed rank pair is one [`crate::transport`] link. The
//! default mpsc transport recycles send buffers through a reverse
//! return channel; the shared-slot transport
//! ([`TransportKind::SharedSlots`]) goes further and stages payloads
//! *directly in peer-visible slot memory*, so the zero-copy entry
//! points (`try_send_with`/`try_isend_with`/`try_recv_with`) pack and
//! unpack without any intermediate vector. Either way, after a short
//! warm-up a steady-state pipeline step performs **zero heap
//! allocations** in the payload path, mirroring MPI persistent
//! requests. [`ThreadComm::pool_stats`] exposes counters that tests
//! use to assert this.

use crate::comm::{CommError, Communicator, RecvRequest, SendRequest, Tag};
use crate::fault::{FaultPlan, FaultStats, ReliabilityConfig};
use crate::transport::{make_link, Envelope, LinkRx, LinkTx, Payload};
pub use crate::transport::{PoolStats, TransportKind};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tiling_core::machine::KernelTier;

/// Affine wire-latency model `startup + per_byte · payload_bytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fixed startup per message, µs.
    pub startup_us: f64,
    /// Per-byte transmission time, µs.
    pub per_byte_us: f64,
}

impl Default for LatencyModel {
    /// Defaults to [`LatencyModel::zero`].
    fn default() -> Self {
        LatencyModel::zero()
    }
}

impl LatencyModel {
    /// No injected latency: messages are available as soon as sent.
    /// Useful as the verification backend.
    pub const fn zero() -> Self {
        LatencyModel {
            startup_us: 0.0,
            per_byte_us: 0.0,
        }
    }

    /// From the paper's machine parameters (`t_s`, `t_t`).
    pub fn from_machine(m: &tiling_core::machine::MachineParams) -> Self {
        LatencyModel {
            startup_us: m.t_s_us,
            per_byte_us: m.t_t_us_per_byte,
        }
    }

    /// The wire time of a `bytes`-byte message, rounded to the nearest
    /// nanosecond (truncation would silently floor sub-ns amounts, biasing
    /// accumulated model time low).
    ///
    /// The conversion clamps explicitly: `f64 → u64` casts saturate in
    /// Rust, but NaN casts to 0 and negative model parameters would
    /// silently alias to zero delay — both are treated as 0 here, while
    /// non-finite/overflowing positive values saturate to `u64::MAX`
    /// nanoseconds instead of wrapping.
    pub fn delay(&self, bytes: usize) -> Duration {
        let ns = (self.startup_us + self.per_byte_us * bytes as f64) * 1e3;
        if ns.is_nan() || ns <= 0.0 {
            return Duration::ZERO;
        }
        if ns >= u64::MAX as f64 {
            return Duration::from_nanos(u64::MAX);
        }
        Duration::from_nanos(ns.round() as u64)
    }
}

/// Full configuration of a threaded world: the wire-latency model plus
/// the transport kind, the optional reliability layer, and the fault
/// plan. [`run_threads`] is the plain-latency shorthand;
/// [`run_threads_with`] accepts this.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Injected wire latency.
    pub latency: LatencyModel,
    /// Wire implementation of every link (mpsc channels by default).
    pub transport: TransportKind,
    /// Receive-side reliability parameters. `None` with an active
    /// fault plan still enables the layer with
    /// [`ReliabilityConfig::default`].
    pub reliability: Option<ReliabilityConfig>,
    /// Sender-side deterministic fault injection.
    pub faults: Option<FaultPlan>,
    /// Skip the pre-flight static plan analysis that executors run
    /// before spawning rank threads (see the `analyzer` crate). Off by
    /// default — benchmarks opt out via
    /// [`WorldConfig::without_preflight`] to keep timing loops free of
    /// even the (constant, microsecond-scale) check cost.
    pub skip_preflight: bool,
    /// Longest single park of a transport backpressure backoff. The
    /// spin-then-park ladder doubles its park from 1 µs up to this cap,
    /// so a blocked sender wakes at least this often to re-check. Large
    /// caps cost nothing when uncontended; on oversubscribed worlds
    /// (more ranks than cores) a smaller cap keeps a full slot ring
    /// from stalling its consumer's time slice.
    pub backoff_cap: Duration,
    /// Numerical tier the compute kernels run at
    /// ([`KernelTier::Bitwise`] by default — distributed results are
    /// bitwise-equal to sequential; [`KernelTier::Fast`] trades that
    /// for shorter dependency chains, ULP-bounded).
    pub kernel_tier: KernelTier,
    /// Compute workers *per rank* (1 = no intra-rank parallelism). The
    /// stencil executors split each tile's independent pencils across
    /// this many threads while the rank's engine keeps driving the
    /// communication lanes.
    pub compute_workers: usize,
    /// Best-effort core-affinity pinning: rank `r` (and its compute
    /// workers) to core `r mod cores`. Failures are ignored — this is
    /// a scheduling hint for scaling measurements, not a correctness
    /// knob.
    pub pin_cores: bool,
}

impl Default for WorldConfig {
    /// Same as [`WorldConfig::new`] with the default (zero) latency.
    fn default() -> Self {
        WorldConfig::new(LatencyModel::default())
    }
}

impl WorldConfig {
    /// Default cap of the transport backpressure backoff ladder —
    /// matches the legacy fixed 20 µs sleep's worst-case wait.
    pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_micros(20);

    /// A plain world: the given latency, mpsc transport, no reliability
    /// layer, no faults — byte-for-byte the transport [`run_threads`]
    /// builds.
    pub fn new(latency: LatencyModel) -> Self {
        WorldConfig {
            latency,
            transport: TransportKind::Mpsc,
            reliability: None,
            faults: None,
            skip_preflight: false,
            backoff_cap: Self::DEFAULT_BACKOFF_CAP,
            kernel_tier: KernelTier::Bitwise,
            compute_workers: 1,
            pin_cores: false,
        }
    }

    /// Cap the transport backpressure backoff's longest park.
    pub fn with_backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// Select the numerical tier of the compute kernels.
    pub fn with_kernel_tier(mut self, tier: KernelTier) -> Self {
        self.kernel_tier = tier;
        self
    }

    /// Set the per-rank compute worker count (≥ 1).
    pub fn with_compute_workers(mut self, workers: usize) -> Self {
        self.compute_workers = workers.max(1);
        self
    }

    /// Request best-effort core-affinity pinning of rank threads.
    pub fn with_core_pinning(mut self) -> Self {
        self.pin_cores = true;
        self
    }

    /// Disable the executors' pre-flight plan analysis for this world
    /// (benchmark hot paths; the shipped configurations are analyzed
    /// separately by `paper analyze`).
    pub fn without_preflight(mut self) -> Self {
        self.skip_preflight = true;
        self
    }

    /// Select the wire implementation of every link.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Enable the reliability layer (sequence numbers, receive
    /// timeouts with retry, ledger recovery, typed errors).
    pub fn with_reliability(mut self, cfg: ReliabilityConfig) -> Self {
        self.reliability = Some(cfg);
        self
    }

    /// Install a deterministic fault plan. Implies the reliability
    /// layer (with default parameters unless
    /// [`WorldConfig::with_reliability`] set them).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Whether this configuration builds reliability state.
    fn reliable(&self) -> bool {
        self.reliability.is_some() || self.faults.is_some()
    }
}

/// Retransmission ledger of one directed link `src → dst`, shared
/// between the two endpoints. The sender commits every logical message
/// (`sent`) and parks recoverably dropped or held payloads in `stored`;
/// the receiver recovers parked payloads on timeout and uses the
/// commit counts to tell a slow message from a permanently lost one.
///
/// Parked payloads are [`Payload`] handles, not copies: a ledger entry
/// shares the wire buffer (slot lease or `Arc`), and the receiver
/// purges the entry when it commits the corresponding sequence number,
/// so no slot stays pinned behind a message that already arrived.
struct PairLedger<T> {
    /// Logical messages committed per tag (includes dropped/lost ones).
    sent: HashMap<Tag, u64>,
    /// Parked payloads keyed by `(tag, seq)`.
    stored: HashMap<(Tag, u64), Payload<T>>,
}

/// A directed link's ledger, shared between its two endpoints.
///
/// Lock acquisitions tolerate poisoning (`into_inner` on the error):
/// the ledger's maps stay structurally valid if a peer panics while
/// holding the lock, and the reliability layer exists precisely to
/// keep delivering through a misbehaving peer.
type SharedLedger<T> = Arc<Mutex<PairLedger<T>>>;

impl<T> Default for PairLedger<T> {
    fn default() -> Self {
        PairLedger {
            sent: HashMap::new(),
            stored: HashMap::new(),
        }
    }
}

/// Per-rank reliability state, present only on reliability-enabled
/// worlds — the default transport carries no trace of it.
struct RelState<T> {
    cfg: ReliabilityConfig,
    plan: Option<FaultPlan>,
    stats: FaultStats,
    /// `send_seq[dst][tag]`: next sequence number to stamp.
    send_seq: Vec<HashMap<Tag, u64>>,
    /// `consumed[src][tag]`: next sequence number to accept.
    consumed: Vec<HashMap<Tag, u64>>,
    /// `ledger_out[dst]`: this rank's sender ledger toward `dst`.
    ledger_out: Vec<SharedLedger<T>>,
    /// `ledger_in[src]`: the ledger of the link arriving from `src`.
    ledger_in: Vec<SharedLedger<T>>,
    /// Message held back per destination by a reorder fault; flushed
    /// after the next send to the same destination (or at a barrier /
    /// when the communicator drops).
    held: Vec<Option<Envelope<T>>>,
}

impl<T> RelState<T> {
    fn new(size: usize, cfg: ReliabilityConfig, plan: Option<FaultPlan>) -> Self {
        RelState {
            cfg,
            plan,
            stats: FaultStats::default(),
            send_seq: (0..size).map(|_| HashMap::new()).collect(),
            consumed: (0..size).map(|_| HashMap::new()).collect(),
            ledger_out: Vec::with_capacity(size),
            ledger_in: Vec::with_capacity(size),
            held: (0..size).map(|_| None).collect(),
        }
    }
}

/// Sleep-then-spin until `deadline` (sleep for the coarse part, spin the
/// last stretch for accuracy).
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// The per-rank communicator of the threaded backend.
pub struct ThreadComm<T> {
    rank: usize,
    size: usize,
    /// `tx[dst]` is this rank's link endpoint into `dst`.
    tx: Vec<Box<dyn LinkTx<T>>>,
    /// `rx[src]` carries messages from `src`.
    rx: Vec<Box<dyn LinkRx<T>>>,
    /// Out-of-order buffer per source.
    stash: Vec<VecDeque<Envelope<T>>>,
    stats: PoolStats,
    latency: LatencyModel,
    /// Barrier shared by the world.
    barrier: std::sync::Arc<std::sync::Barrier>,
    /// Common time origin of the world (same `Instant` on every rank),
    /// so per-rank wall-clock trace recorders share one zero.
    epoch: Instant,
    next_req: u64,
    elem_bytes: usize,
    /// Reliability/fault state — `None` on plain worlds, so the default
    /// transport pays nothing for the layer's existence.
    rel: Option<RelState<T>>,
}

impl<T: Send + Sync + 'static> ThreadComm<T> {
    fn payload_bytes(&self, len: usize) -> usize {
        len * self.elem_bytes
    }

    /// Buffer-pool counters: after warm-up, `fresh_allocs` stays flat
    /// while `recycled`/`returned` grow with the step count — the
    /// zero-steady-state-allocation property the overlapping executor
    /// relies on.
    pub fn pool_stats(&self) -> PoolStats {
        self.stats
    }

    /// The world's shared time origin: the same `Instant` on every rank
    /// of one [`run_threads`] world. Wall-clock trace recorders
    /// ([`crate::trace::WallTrace`]) measure against it so intervals
    /// from different rank threads land on one comparable time axis.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Stage a payload holding a copy of `data` in transport storage
    /// toward `dst` (a pooled vector on mpsc, a peer-visible slot on
    /// the slot transport).
    fn stage_copy(&mut self, dst: usize, data: &[T]) -> Payload<T>
    where
        T: Copy,
    {
        let Self { tx, stats, .. } = self;
        tx[dst].stage(stats, &mut |buf: &mut Vec<T>| {
            buf.clear();
            buf.extend_from_slice(data);
        })
    }

    /// Stage a `len`-element payload toward `dst` and let `fill` pack
    /// it in place — the zero-copy path: on the slot transport `fill`
    /// writes straight into the slot the receiver will read.
    fn stage_with(&mut self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut [T])) -> Payload<T>
    where
        T: Copy + Default,
    {
        let Self { tx, stats, .. } = self;
        tx[dst].stage(stats, &mut |buf: &mut Vec<T>| {
            // Steady state resizes to the same length: no allocation,
            // no initialization traffic beyond the pack itself.
            buf.resize(len, T::default());
            fill(&mut buf[..]);
        })
    }

    /// Hand a consumed payload back to the transport it came from.
    fn reclaim(&mut self, src: usize, payload: Payload<T>) {
        let Self { rx, stats, .. } = self;
        rx[src].reclaim(payload, stats);
    }

    /// Per-rank fault/reliability counters (all zero on plain worlds).
    pub fn fault_stats(&self) -> FaultStats {
        self.rel.as_ref().map(|r| r.stats).unwrap_or_default()
    }

    /// Pull messages from `from` until one with `tag` appears; honor the
    /// stash first (FIFO per source).
    fn match_message(&mut self, from: usize, tag: Tag) -> Envelope<T> {
        let pos = self.stash[from].iter().position(|m| m.tag == tag);
        if let Some(msg) = pos.and_then(|p| self.stash[from].remove(p)) {
            return msg;
        }
        loop {
            let msg = self.rx[from]
                .pop_blocking()
                .unwrap_or_else(|_| panic!("peer hung up before sending expected message"));
            if msg.tag == tag {
                return msg;
            }
            self.stash[from].push_back(msg);
        }
    }

    /// Fallible match: the reliability path when enabled, the classic
    /// blocking path (which can only fail by panicking) otherwise.
    fn fetch(&mut self, from: usize, tag: Tag) -> Result<Envelope<T>, CommError> {
        if self.rel.is_some() {
            self.match_message_rel(from, tag)
        } else {
            Ok(self.match_message(from, tag))
        }
    }

    /// Accept `msg` from `from` if it is the next expected occurrence of
    /// its tag: `Some(msg)` to deliver, `None` if it was consumed as a
    /// duplicate or stashed for later.
    fn triage(
        &mut self,
        from: usize,
        tag: Tag,
        expect: u64,
        msg: Envelope<T>,
    ) -> Option<Envelope<T>> {
        let rel = self.rel.as_mut().expect("triage requires reliability");
        if msg.tag == tag && msg.seq == expect {
            return Some(msg);
        }
        let seen = *rel.consumed[from].get(&msg.tag).unwrap_or(&0);
        if msg.seq < seen {
            // A duplicate of something already consumed.
            rel.stats.duplicates_discarded += 1;
            return None;
        }
        self.stash[from].push_back(msg);
        None
    }

    /// The reliability receive: bounded timeout slices with exponential
    /// backoff, duplicate discard by sequence number, ledger recovery of
    /// recoverably dropped messages, and gap detection for permanent
    /// losses. Returns a typed [`CommError`] instead of hanging.
    fn match_message_rel(&mut self, from: usize, tag: Tag) -> Result<Envelope<T>, CommError> {
        let (cfg, expect) = {
            let rel = self.rel.as_ref().expect("reliability enabled");
            (rel.cfg, *rel.consumed[from].get(&tag).unwrap_or(&0))
        };
        // Committing a receive also purges any ledger copy of the same
        // message (e.g. one parked by a reorder fault whose original
        // arrived anyway) so shared payload buffers — slot leases in
        // particular — are released instead of staying pinned forever.
        let commit = |rel: &mut RelState<T>| {
            *rel.consumed[from].entry(tag).or_insert(0) = expect + 1;
            rel.ledger_in[from]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .stored
                .remove(&(tag, expect));
        };
        let mut waited = Duration::ZERO;
        // Two consecutive attempts that see a committed-but-absent
        // message (and fail ledger recovery) before declaring a gap: a
        // reordered message held at the sender gets one full extra
        // slice to flush.
        let mut missing_strikes = 0u32;
        for attempt in 0..=cfg.max_retries {
            // 1. The stash may already hold the match (purging stale
            //    duplicates as we scan).
            let mut i = 0;
            while i < self.stash[from].len() {
                let m = &self.stash[from][i];
                if m.tag == tag && m.seq == expect {
                    // `i` is in bounds (loop guard), so the remove
                    // always yields; fall through to the wire drain on
                    // the impossible miss rather than panicking.
                    let Some(msg) = self.stash[from].remove(i) else {
                        break;
                    };
                    let rel = self.rel.as_mut().expect("reliability enabled");
                    commit(rel);
                    return Ok(msg);
                }
                let seen = {
                    let rel = self.rel.as_ref().expect("reliability enabled");
                    *rel.consumed[from].get(&m.tag).unwrap_or(&0)
                };
                if m.seq < seen {
                    self.stash[from].remove(i);
                    let rel = self.rel.as_mut().expect("reliability enabled");
                    rel.stats.duplicates_discarded += 1;
                } else {
                    i += 1;
                }
            }
            // 2. Drain the link for one timeout slice.
            let factor = 1u32 << attempt.min(6);
            let slice = cfg.recv_timeout * factor;
            let deadline = Instant::now() + slice;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.rx[from].pop_timeout(remaining) {
                    Ok(Some(msg)) => {
                        if let Some(msg) = self.triage(from, tag, expect, msg) {
                            let rel = self.rel.as_mut().expect("reliability enabled");
                            commit(rel);
                            return Ok(msg);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // The peer is gone — its parked payloads are the
                        // only hope left.
                        let rel = self.rel.as_mut().expect("reliability enabled");
                        let recovered = rel.ledger_in[from]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .stored
                            .remove(&(tag, expect));
                        if let Some(payload) = recovered {
                            rel.stats.recovered += 1;
                            commit(rel);
                            return Ok(Envelope {
                                tag,
                                payload,
                                seq: expect,
                                ready_at: Instant::now(),
                            });
                        }
                        return Err(CommError::PeerClosed { peer: from });
                    }
                }
            }
            waited += slice;
            // 3. Nothing on the wire: try the retransmission ledger.
            let rel = self.rel.as_mut().expect("reliability enabled");
            let (recovered, committed) = {
                let mut led = rel.ledger_in[from]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                (
                    led.stored.remove(&(tag, expect)),
                    *led.sent.get(&tag).unwrap_or(&0),
                )
            };
            if let Some(payload) = recovered {
                rel.stats.recovered += 1;
                rel.stats.retries += attempt as u64;
                commit(rel);
                return Ok(Envelope {
                    tag,
                    payload,
                    seq: expect,
                    ready_at: Instant::now(),
                });
            }
            if committed > expect {
                missing_strikes += 1;
                if missing_strikes >= 2 {
                    return Err(CommError::SequenceGap {
                        from,
                        tag,
                        seq: expect,
                    });
                }
            }
            rel.stats.retries += 1;
            if attempt < cfg.max_retries && !cfg.backoff.is_zero() {
                std::thread::sleep(cfg.backoff * factor);
            }
        }
        Err(CommError::Timeout {
            from,
            tag,
            waited,
            retries: cfg.max_retries,
        })
    }

    /// Flush a message held back by a reorder fault (best effort: the
    /// peer may already be gone).
    fn flush_held(&mut self, to: usize) {
        if let Some(rel) = self.rel.as_mut() {
            if let Some(msg) = rel.held[to].take() {
                let _ = self.tx[to].push(msg);
            }
        }
    }

    /// Non-blocking variant for the sequential recording driver: the
    /// message must already be present (lower ranks ran to completion),
    /// so an empty link means the program's messages do not flow in
    /// rank order — panic with a diagnosis instead of hanging forever.
    pub(crate) fn recv_now(&mut self, from: usize, tag: Tag) -> Vec<T>
    where
        T: Clone,
    {
        let pos = self.stash[from].iter().position(|m| m.tag == tag);
        if let Some(msg) = pos.and_then(|p| self.stash[from].remove(p)) {
            return msg.payload.into_vec();
        }
        loop {
            match self.rx[from].try_pop() {
                Some(msg) if msg.tag == tag => return msg.payload.into_vec(),
                Some(msg) => self.stash[from].push_back(msg),
                None => panic!(
                    "sequential recording: rank {} receives (from {from}, tag {tag}) \
                     but the message was never sent — messages must flow from lower \
                     to higher ranks during recording",
                    self.rank
                ),
            }
        }
    }

    /// Hand a staged payload to the transport toward `to`, applying the
    /// world's fault plan; returns the instant the message is (modeled
    /// to be) fully on the wire. This is the single choke point of all
    /// send entry points.
    ///
    /// The fault layer never copies the payload: duplicates and ledger
    /// parkings go through [`Payload::share`], so one buffer backs the
    /// wire message, the retransmission ledger, and any duplicate.
    fn transmit_payload(
        &mut self,
        to: usize,
        tag: Tag,
        mut payload: Payload<T>,
    ) -> Result<Instant, CommError> {
        let bytes = self.payload_bytes(payload.len());
        let ready_at = Instant::now() + self.latency.delay(bytes);
        if self.rel.is_none() {
            self.tx[to]
                .push(Envelope {
                    tag,
                    payload,
                    seq: 0,
                    ready_at,
                })
                .map_err(|_| CommError::PeerClosed { peer: to })?;
            return Ok(ready_at);
        }
        let rank = self.rank;
        let rel = self.rel.as_mut().expect("reliability enabled");
        let seq = {
            let e = rel.send_seq[to].entry(tag).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        // Commit the logical message before any fault decision: the
        // receiver's gap detector counts commitments, not deliveries.
        rel.ledger_out[to]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sent
            .entry(tag)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let decision = rel
            .plan
            .as_ref()
            .map(|p| p.decide(rank, to, tag, seq))
            .unwrap_or_default();
        if decision.lose {
            rel.stats.lost += 1;
            self.flush_held(to);
            return Ok(ready_at);
        }
        if decision.drop {
            rel.stats.dropped += 1;
            rel.ledger_out[to]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .stored
                .insert((tag, seq), payload);
            self.flush_held(to);
            return Ok(ready_at);
        }
        let ready_at = match decision.extra_delay {
            Some(extra) => {
                rel.stats.delayed += 1;
                ready_at + extra
            }
            None => ready_at,
        };
        if decision.duplicate {
            rel.stats.duplicated += 1;
            let dup = Envelope {
                tag,
                payload: payload.share(),
                seq,
                ready_at,
            };
            let _ = self.tx[to].push(dup);
        }
        let rel = self.rel.as_mut().expect("reliability enabled");
        if decision.reorder && rel.held[to].is_none() {
            rel.stats.reordered += 1;
            // Park a handle in the ledger too: if no later message ever
            // flushes the held one, the receiver can still recover it.
            let parked = payload.share();
            rel.ledger_out[to]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .stored
                .insert((tag, seq), parked);
            rel.held[to] = Some(Envelope {
                tag,
                payload,
                seq,
                ready_at,
            });
            return Ok(ready_at);
        }
        self.tx[to]
            .push(Envelope {
                tag,
                payload,
                seq,
                ready_at,
            })
            .map_err(|_| CommError::PeerClosed { peer: to })?;
        // An older held message leaves after the newer one: reordered.
        self.flush_held(to);
        Ok(ready_at)
    }
}

impl<T: Clone + Send + Sync + 'static> Communicator<T> for ThreadComm<T> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: Tag, data: Vec<T>) {
        let ready_at = self
            .transmit_payload(to, tag, Payload::Owned(data))
            .expect("peer hung up");
        // Blocking semantics: the caller is suspended for the wire time.
        wait_until(ready_at);
    }

    fn recv(&mut self, from: usize, tag: Tag) -> Vec<T> {
        let msg = self
            .fetch(from, tag)
            .unwrap_or_else(|e| panic!("recv failed: {e}"));
        wait_until(msg.ready_at);
        msg.payload.into_vec()
    }

    fn isend(&mut self, to: usize, tag: Tag, data: Vec<T>) -> SendRequest {
        self.transmit_payload(to, tag, Payload::Owned(data))
            .expect("peer hung up");
        let id = self.next_req;
        self.next_req += 1;
        SendRequest { id }
    }

    fn irecv(&mut self, from: usize, tag: Tag) -> RecvRequest {
        RecvRequest { from, tag }
    }

    fn wait_send(&mut self, _req: SendRequest) {
        // The transport owns the payload already; local completion is
        // immediate (eager protocol).
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Vec<T> {
        let msg = self
            .fetch(req.from, req.tag)
            .unwrap_or_else(|e| panic!("wait_recv failed: {e}"));
        wait_until(msg.ready_at);
        msg.payload.into_vec()
    }

    fn barrier(&mut self) {
        // A barrier is a hard progress point: nothing may stay held
        // back past it.
        for to in 0..self.size {
            self.flush_held(to);
        }
        self.barrier.wait();
    }

    fn send_from(&mut self, to: usize, tag: Tag, data: &[T])
    where
        T: Copy,
    {
        let payload = self.stage_copy(to, data);
        let ready_at = self
            .transmit_payload(to, tag, payload)
            .expect("peer hung up");
        wait_until(ready_at);
    }

    fn isend_from(&mut self, to: usize, tag: Tag, data: &[T]) -> SendRequest
    where
        T: Copy,
    {
        let payload = self.stage_copy(to, data);
        self.transmit_payload(to, tag, payload)
            .expect("peer hung up");
        let id = self.next_req;
        self.next_req += 1;
        SendRequest { id }
    }

    fn recv_into(&mut self, from: usize, tag: Tag, out: &mut [T])
    where
        T: Copy,
    {
        let msg = self
            .fetch(from, tag)
            .unwrap_or_else(|e| panic!("recv_into failed: {e}"));
        wait_until(msg.ready_at);
        assert_eq!(
            msg.payload.len(),
            out.len(),
            "recv_into: message length mismatch (from {from}, tag {tag})"
        );
        out.copy_from_slice(msg.payload.as_slice());
        self.reclaim(from, msg.payload);
    }

    fn wait_recv_into(&mut self, req: RecvRequest, out: &mut [T])
    where
        T: Copy,
    {
        let msg = self
            .fetch(req.from, req.tag)
            .unwrap_or_else(|e| panic!("wait_recv_into failed: {e}"));
        wait_until(msg.ready_at);
        assert_eq!(
            msg.payload.len(),
            out.len(),
            "wait_recv_into: message length mismatch (from {}, tag {})",
            req.from,
            req.tag
        );
        out.copy_from_slice(msg.payload.as_slice());
        self.reclaim(req.from, msg.payload);
    }

    fn try_recv_into(&mut self, from: usize, tag: Tag, out: &mut [T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        let msg = self.fetch(from, tag)?;
        wait_until(msg.ready_at);
        if msg.payload.len() != out.len() {
            return Err(CommError::SizeMismatch {
                from,
                tag,
                got: msg.payload.len(),
                want: out.len(),
            });
        }
        out.copy_from_slice(msg.payload.as_slice());
        self.reclaim(from, msg.payload);
        Ok(())
    }

    fn try_wait_recv_into(&mut self, req: RecvRequest, out: &mut [T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        self.try_recv_into(req.from, req.tag, out)
    }

    fn try_send_from(&mut self, to: usize, tag: Tag, data: &[T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        let payload = self.stage_copy(to, data);
        let ready_at = self.transmit_payload(to, tag, payload)?;
        wait_until(ready_at);
        Ok(())
    }

    fn try_isend_from(&mut self, to: usize, tag: Tag, data: &[T]) -> Result<SendRequest, CommError>
    where
        T: Copy,
    {
        let payload = self.stage_copy(to, data);
        self.transmit_payload(to, tag, payload)?;
        let id = self.next_req;
        self.next_req += 1;
        Ok(SendRequest { id })
    }

    fn try_wait_send(&mut self, req: SendRequest) -> Result<(), CommError> {
        self.wait_send(req);
        Ok(())
    }

    fn try_send_with(
        &mut self,
        to: usize,
        tag: Tag,
        len: usize,
        fill: &mut dyn FnMut(&mut [T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        let payload = self.stage_with(to, len, fill);
        let ready_at = self.transmit_payload(to, tag, payload)?;
        wait_until(ready_at);
        Ok(())
    }

    fn try_isend_with(
        &mut self,
        to: usize,
        tag: Tag,
        len: usize,
        fill: &mut dyn FnMut(&mut [T]),
    ) -> Result<SendRequest, CommError>
    where
        T: Copy + Default,
    {
        let payload = self.stage_with(to, len, fill);
        self.transmit_payload(to, tag, payload)?;
        let id = self.next_req;
        self.next_req += 1;
        Ok(SendRequest { id })
    }

    fn try_recv_with(
        &mut self,
        from: usize,
        tag: Tag,
        want: usize,
        take: &mut dyn FnMut(&[T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        let msg = self.fetch(from, tag)?;
        wait_until(msg.ready_at);
        if msg.payload.len() != want {
            return Err(CommError::SizeMismatch {
                from,
                tag,
                got: msg.payload.len(),
                want,
            });
        }
        take(msg.payload.as_slice());
        self.reclaim(from, msg.payload);
        Ok(())
    }

    fn try_wait_recv_with(
        &mut self,
        req: RecvRequest,
        want: usize,
        take: &mut dyn FnMut(&[T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        self.try_recv_with(req.from, req.tag, want, take)
    }
}

/// Anything still held back by a reorder fault leaves when the
/// communicator goes away — a rank that exits cleanly must not strand
/// messages its peers are waiting for.
impl<T> Drop for ThreadComm<T> {
    fn drop(&mut self) {
        if let Some(rel) = self.rel.as_mut() {
            for (to, slot) in rel.held.iter_mut().enumerate() {
                if let Some(msg) = slot.take() {
                    let _ = self.tx[to].push(msg);
                }
            }
        }
    }
}

/// Build the full mesh of per-rank communicators (used by
/// [`run_threads`] and by the trace-recording driver). Each directed
/// pair gets one transport link of the configured kind.
pub(crate) fn build_world<T: Send + Sync + 'static>(
    size: usize,
    latency: LatencyModel,
) -> Vec<ThreadComm<T>> {
    build_world_with(size, &WorldConfig::new(latency))
}

/// [`build_world`] with the full [`WorldConfig`]: additionally wires
/// the per-link retransmission ledgers and per-rank reliability state
/// when the configuration asks for them.
///
/// Public so long-running services can build a world *once* and drive
/// it through [`run_world`] for many jobs: the links (and, on the
/// slot transport, the peer-visible slot rings) are the expensive part
/// of a world, and a fully drained world — one whose every send was
/// matched by a receive, which the `analyzer` crate proves statically
/// for engine plans — is reusable as-is.
pub fn build_world_with<T: Send + Sync + 'static>(
    size: usize,
    cfg: &WorldConfig,
) -> Vec<ThreadComm<T>> {
    assert!(size > 0, "world size must be positive");
    let latency = cfg.latency;
    let mut tx_grid: Vec<Vec<Option<Box<dyn LinkTx<T>>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut rx_grid: Vec<Vec<Option<Box<dyn LinkRx<T>>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    #[allow(clippy::needless_range_loop)] // LINT: src/dst index two grids
    for src in 0..size {
        for dst in 0..size {
            let (t, r) = make_link::<T>(cfg.transport, cfg.backoff_cap);
            tx_grid[src][dst] = Some(t);
            rx_grid[dst][src] = Some(r);
        }
    }
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(size));
    let epoch = Instant::now();
    let elem_bytes = std::mem::size_of::<T>();
    // One shared ledger per directed link (built only when needed):
    // ledgers[src][dst] is cloned into src's ledger_out[dst] and dst's
    // ledger_in[src].
    let ledgers: Option<Vec<Vec<SharedLedger<T>>>> = cfg.reliable().then(|| {
        (0..size)
            .map(|_| (0..size).map(|_| Arc::default()).collect())
            .collect()
    });

    let mut comms: Vec<ThreadComm<T>> = Vec::with_capacity(size);
    for rank in 0..size {
        let tx = (0..size)
            .map(|dst| tx_grid[rank][dst].take().expect("tx endpoint taken once"))
            .collect();
        let rx = (0..size)
            .map(|src| rx_grid[rank][src].take().expect("rx endpoint taken once"))
            .collect();
        let rel = ledgers.as_ref().map(|led| {
            let mut state = RelState::new(
                size,
                cfg.reliability.unwrap_or_default(),
                cfg.faults.clone(),
            );
            state.ledger_out = (0..size).map(|dst| led[rank][dst].clone()).collect();
            state.ledger_in = (0..size).map(|src| led[src][rank].clone()).collect();
            state
        });
        comms.push(ThreadComm {
            rank,
            size,
            tx,
            rx,
            stash: (0..size).map(|_| VecDeque::new()).collect(),
            stats: PoolStats::default(),
            latency,
            barrier: barrier.clone(),
            epoch,
            next_req: 0,
            elem_bytes,
            rel,
        });
    }
    comms
}

/// Run `size` ranks, each executing `body(comm)` on its own OS thread;
/// returns the per-rank results (rank order) and the wall-clock time of
/// the slowest rank.
pub fn run_threads<T, R, F>(size: usize, latency: LatencyModel, body: F) -> (Vec<R>, Duration)
where
    T: Send + Sync + 'static,
    R: Send,
    F: Fn(ThreadComm<T>) -> R + Send + Sync,
{
    let (results, elapsed) = run_threads_with(size, &WorldConfig::new(latency), body);
    (
        results
            .into_iter()
            .map(|r| r.expect("rank thread panicked"))
            .collect(),
        elapsed,
    )
}

/// [`run_threads`] under a full [`WorldConfig`] (transport kind,
/// reliability layer, fault plan). Per-rank panics are captured rather
/// than propagated — on a reliability-enabled world a crashed rank
/// surfaces to its peers as a timeout/closed-peer error, and to the
/// driver as the `Err` slot of that rank, so the caller can report
/// *which* rank failed.
pub fn run_threads_with<T, R, F>(
    size: usize,
    cfg: &WorldConfig,
    body: F,
) -> (Vec<std::thread::Result<R>>, Duration)
where
    T: Send + Sync + 'static,
    R: Send,
    F: Fn(ThreadComm<T>) -> R + Send + Sync,
{
    let comms = build_world_with::<T>(size, cfg);
    let start = Instant::now();
    let body = &body;
    let pin = cfg.pin_cores;
    let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let rank = comm.rank;
                scope.spawn(move || {
                    if pin {
                        // Best-effort placement hint; failure is fine.
                        let _ = crate::affinity::pin_current_thread(rank);
                    }
                    body(comm)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    (results, start.elapsed())
}

/// Drive a *prebuilt* world through one job: rank `r` runs
/// `body(&mut comms[r])` on its own OS thread. Unlike
/// [`run_threads_with`], the communicators are borrowed, not consumed —
/// after every rank's sends have been matched by receives (the engine's
/// plans guarantee this; the analyzer proves it pre-flight) the world is
/// drained and can be handed to the next job with its links, slot rings
/// and buffer pools warm. Reliability sequence numbers and pool
/// counters persist across jobs, consistently on both endpoints.
///
/// Per-rank panics are captured in the result slots, exactly as in
/// [`run_threads_with`] — but note a panicked or errored job may leave
/// links non-drained, in which case the world must be discarded, not
/// reused.
pub fn run_world<T, R, F>(
    comms: &mut [ThreadComm<T>],
    pin_cores: bool,
    body: F,
) -> (Vec<std::thread::Result<R>>, Duration)
where
    T: Send + Sync + 'static,
    R: Send,
    F: Fn(&mut ThreadComm<T>) -> R + Send + Sync,
{
    let start = Instant::now();
    let body = &body;
    let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|comm| {
                let rank = comm.rank;
                scope.spawn(move || {
                    if pin_cores {
                        // Best-effort placement hint; failure is fine.
                        let _ = crate::affinity::pin_current_thread(rank);
                    }
                    body(comm)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    (results, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_blocking_roundtrip() {
        let (results, _) = run_threads::<f32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, got.iter().map(|x| x * 2.0).collect());
                vec![]
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn prebuilt_world_is_reusable_across_jobs() {
        // Two jobs over the same world: the second must see clean links
        // (job 1 drained everything it sent), including on the
        // zero-copy slot transport where the rings persist.
        for transport in [TransportKind::Mpsc, TransportKind::shared_slots()] {
            let cfg = WorldConfig::new(LatencyModel::zero()).with_transport(transport);
            let mut world = build_world_with::<f32>(2, &cfg);
            for job in 1..=3u32 {
                let (results, _) = run_world(&mut world, false, |comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 7, vec![job as f32]);
                        comm.recv(1, 8)[0]
                    } else {
                        let got = comm.recv(0, 7);
                        comm.send(0, 8, vec![got[0] * 2.0]);
                        0.0
                    }
                });
                let r0 = results.into_iter().next().unwrap().unwrap();
                assert_eq!(r0, job as f32 * 2.0, "{transport:?} job {job}");
            }
        }
    }

    #[test]
    fn nonblocking_roundtrip() {
        let (results, _) = run_threads::<i64, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 1, vec![42]);
                comm.wait_send(s);
                0
            } else {
                let r = comm.irecv(0, 1);
                comm.wait_recv(r)[0]
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let (results, _) = run_threads::<u32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10]);
                comm.send(1, 2, vec![20]);
                0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                a[0] * 100 + b[0] // 10·100 + 20
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn fifo_within_same_tag() {
        let (results, _) = run_threads::<u32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1]);
                comm.send(1, 5, vec![2]);
                0
            } else {
                let a = comm.recv(0, 5)[0];
                let b = comm.recv(0, 5)[0];
                a * 10 + b
            }
        });
        assert_eq!(results[1], 12);
    }

    #[test]
    fn latency_is_enforced_on_receive() {
        let lat = LatencyModel {
            startup_us: 3_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 0, vec![1]);
                comm.wait_send(s); // does not pay the wire time
            } else {
                let _ = comm.recv(0, 0); // pays ≥ 3 ms
            }
        });
        assert!(elapsed >= Duration::from_micros(2_900), "{elapsed:?}");
    }

    #[test]
    fn overlap_hides_latency_nonblocking() {
        // Receiver computes ~5 ms while a 5 ms-latency message flies:
        // total should be well under the serial 10 ms.
        let lat = LatencyModel {
            startup_us: 5_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 0, vec![1]);
                comm.wait_send(s);
            } else {
                let req = comm.irecv(0, 0);
                // ~5 ms of real work.
                let t0 = Instant::now();
                let mut acc = 0.0f64;
                while t0.elapsed() < Duration::from_micros(5_000) {
                    acc += acc.sin() + 1.0;
                }
                std::hint::black_box(acc);
                let _ = comm.wait_recv(req);
            }
        });
        assert!(
            elapsed < Duration::from_micros(8_500),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn blocking_send_pays_wire_time() {
        let lat = LatencyModel {
            startup_us: 3_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let t0 = Instant::now();
                comm.send(1, 0, vec![1]);
                assert!(t0.elapsed() >= Duration::from_micros(2_900));
            } else {
                let _ = comm.recv(0, 0);
            }
        });
        assert!(elapsed >= Duration::from_micros(2_900));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        let (results, _) = run_threads::<u8, _, _>(4, LatencyModel::zero(), |mut comm| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            BEFORE.load(Ordering::SeqCst)
        });
        // After the barrier everyone sees all 4 increments.
        assert!(results.iter().all(|&x| x == 4));
    }

    #[test]
    fn ring_pipeline_many_ranks() {
        // 0 → 1 → 2 → 3: each adds its rank.
        let (results, _) = run_threads::<u64, _, _>(4, LatencyModel::zero(), |mut comm| {
            let r = comm.rank();
            if r == 0 {
                comm.send(1, 0, vec![0]);
                0
            } else {
                let v = comm.recv(r - 1, 0)[0] + r as u64;
                if r + 1 < comm.size() {
                    comm.send(r + 1, 0, vec![v]);
                }
                v
            }
        });
        assert_eq!(results[3], 6);
    }

    #[test]
    fn latency_model_delay() {
        let lat = LatencyModel {
            startup_us: 100.0,
            per_byte_us: 0.5,
        };
        assert_eq!(lat.delay(0), Duration::from_micros(100));
        assert_eq!(lat.delay(200), Duration::from_micros(200));
        assert_eq!(LatencyModel::zero().delay(1 << 20), Duration::ZERO);
    }

    #[test]
    fn latency_model_delay_rounds_to_nearest() {
        // zero() stays exactly zero for any size.
        assert_eq!(LatencyModel::zero().delay(0), Duration::ZERO);
        assert_eq!(LatencyModel::zero().delay(usize::MAX >> 16), Duration::ZERO);
        // 0.6 ns rounds up to 1 ns (`as u64` used to floor it to 0).
        let sub_ns = LatencyModel {
            startup_us: 0.0006,
            per_byte_us: 0.0,
        };
        assert_eq!(sub_ns.delay(0), Duration::from_nanos(1));
        // 0.4 ns rounds down.
        let below_half = LatencyModel {
            startup_us: 0.0004,
            per_byte_us: 0.0,
        };
        assert_eq!(below_half.delay(0), Duration::ZERO);
        // Fractional-µs startup: 1.2346 µs = 1234.6 ns → 1235 ns, where
        // truncation produced 1234 ns.
        let frac = LatencyModel {
            startup_us: 1.2346,
            per_byte_us: 0.0,
        };
        assert_eq!(frac.delay(0), Duration::from_nanos(1235));
        // Per-byte fractions accumulate before rounding: 2 B × 0.0003 µs/B
        // = 0.6 ns → 1 ns (truncation: 0).
        let per_byte = LatencyModel {
            startup_us: 0.0,
            per_byte_us: 0.0003,
        };
        assert_eq!(per_byte.delay(2), Duration::from_nanos(1));
    }

    #[test]
    fn latency_model_delay_clamps_extreme_parameters() {
        // NaN model parameters must not alias to an arbitrary delay.
        let nan = LatencyModel {
            startup_us: f64::NAN,
            per_byte_us: 0.0,
        };
        assert_eq!(nan.delay(1024), Duration::ZERO);
        // Negative parameters (nonsensical but representable) clamp to
        // zero instead of casting through a negative f64.
        let neg = LatencyModel {
            startup_us: -5.0,
            per_byte_us: -1.0,
        };
        assert_eq!(neg.delay(4096), Duration::ZERO);
        // A negative startup that a large payload overcomes stays exact.
        let mixed = LatencyModel {
            startup_us: -1.0,
            per_byte_us: 1.0,
        };
        assert_eq!(mixed.delay(3), Duration::from_micros(2));
        // Absurd per-byte cost × huge payload overflows u64 nanoseconds:
        // saturate instead of wrapping to a tiny delay.
        let huge = LatencyModel {
            startup_us: 0.0,
            per_byte_us: 1e18,
        };
        assert_eq!(huge.delay(usize::MAX), Duration::from_nanos(u64::MAX));
        assert_eq!(
            LatencyModel {
                startup_us: f64::INFINITY,
                per_byte_us: 0.0
            }
            .delay(0),
            Duration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn recv_for_later_tag_preserves_earlier_tagged_messages() {
        // Regression for the per-pair stash: receiving tag B while two
        // tag-A messages are queued must neither match them nor lose
        // them nor break their FIFO order.
        let (results, _) = run_threads::<u32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![1]); // A #1
                comm.send(1, 10, vec![2]); // A #2
                comm.send(1, 20, vec![9]); // B
                0
            } else {
                let b = comm.recv(0, 20)[0]; // stashes both A messages
                let a1 = comm.recv(0, 10)[0];
                let a2 = comm.recv(0, 10)[0];
                b * 100 + a1 * 10 + a2
            }
        });
        assert_eq!(results[1], 912);
    }

    #[test]
    fn reliable_world_roundtrip_without_faults() {
        let cfg =
            WorldConfig::new(LatencyModel::zero()).with_reliability(ReliabilityConfig::default());
        let (results, _) = run_threads_with::<f32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0, 2.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, got.iter().map(|x| x * 3.0).collect());
                vec![]
            }
        });
        let r0 = results.into_iter().next().unwrap().expect("rank 0 ok");
        assert_eq!(r0, vec![3.0, 6.0]);
    }

    #[test]
    fn receive_timeout_is_a_typed_error() {
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(5),
            max_retries: 1,
            backoff: Duration::from_millis(1),
        };
        let cfg = WorldConfig::new(LatencyModel::zero()).with_reliability(rel);
        let (results, _) = run_threads_with::<u8, _, _>(2, &cfg, move |mut comm| {
            if comm.rank() == 0 {
                // Never send; stay alive past the peer's retry schedule
                // so the error is Timeout, not PeerClosed.
                std::thread::sleep(rel.worst_case_wait() + Duration::from_millis(50));
                Ok(())
            } else {
                let mut out = [0u8; 1];
                comm.try_recv_into(0, 42, &mut out)
            }
        });
        let r1 = results.into_iter().nth(1).unwrap().expect("no panic");
        match r1 {
            Err(CommError::Timeout {
                from: 0,
                tag: 42,
                retries: 1,
                ..
            }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn dropped_message_is_recovered_from_ledger() {
        use crate::fault::{FaultKind, FaultSite};
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(5),
            max_retries: 4,
            backoff: Duration::from_millis(1),
        };
        let plan = FaultPlan::seeded(1).targeted(FaultSite {
            src: 0,
            dst: 1,
            tag: 3,
            kind: FaultKind::Drop,
        });
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_reliability(rel)
            .with_faults(plan);
        let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![77]);
                (0, comm.fault_stats())
            } else {
                let got = comm.recv(0, 3)[0];
                (got, comm.fault_stats())
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(results[1].0, 77, "payload recovered bit-exact");
        assert_eq!(results[0].1.dropped, 1, "sender counted the drop");
        assert_eq!(results[1].1.recovered, 1, "receiver recovered from ledger");
    }

    #[test]
    fn duplicated_messages_are_discarded_by_sequence() {
        use crate::fault::{FaultKind, FaultSite};
        let plan = FaultPlan::seeded(2).targeted(FaultSite {
            src: 0,
            dst: 1,
            tag: 6,
            kind: FaultKind::Duplicate,
        });
        let cfg = WorldConfig::new(LatencyModel::zero()).with_faults(plan);
        let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, vec![1]);
                comm.send(1, 6, vec![2]);
                (0, comm.fault_stats())
            } else {
                let a = comm.recv(0, 6)[0];
                let b = comm.recv(0, 6)[0];
                (a * 10 + b, comm.fault_stats())
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(
            results[1].0, 12,
            "each payload delivered exactly once, in order"
        );
        assert_eq!(results[0].1.duplicated, 2);
        assert!(results[1].1.duplicates_discarded >= 1);
    }

    #[test]
    fn reordered_messages_are_resequenced() {
        use crate::fault::{FaultKind, FaultSite};
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(20),
            max_retries: 4,
            backoff: Duration::from_millis(1),
        };
        let plan = FaultPlan::seeded(3).targeted(FaultSite {
            src: 0,
            dst: 1,
            tag: 9,
            kind: FaultKind::Reorder,
        });
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_reliability(rel)
            .with_faults(plan);
        let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                for v in 1..=4 {
                    comm.send(1, 9, vec![v]);
                }
                (0, comm.fault_stats())
            } else {
                let mut got = 0;
                for _ in 0..4 {
                    got = got * 10 + comm.recv(0, 9)[0];
                }
                (got, comm.fault_stats())
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(results[1].0, 1234, "sequence numbers restore FIFO order");
        assert!(results[0].1.reordered >= 1, "{:?}", results[0].1);
    }

    #[test]
    fn permanent_loss_is_a_sequence_gap() {
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(5),
            max_retries: 6,
            backoff: Duration::from_millis(1),
        };
        let plan = FaultPlan::seeded(4).lose_at(0, 1, 5);
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_reliability(rel)
            .with_faults(plan);
        let (results, _) = run_threads_with::<u8, _, _>(2, &cfg, move |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1]);
                std::thread::sleep(rel.worst_case_wait() + Duration::from_millis(50));
                Ok(())
            } else {
                let mut out = [0u8; 1];
                comm.try_recv_into(0, 5, &mut out)
            }
        });
        let r1 = results.into_iter().nth(1).unwrap().expect("no panic");
        match r1 {
            Err(CommError::SequenceGap {
                from: 0,
                tag: 5,
                seq: 0,
            }) => {}
            other => panic!("expected SequenceGap, got {other:?}"),
        }
    }

    #[test]
    fn persistent_buffers_recycle_after_warmup() {
        const STEPS: u64 = 50;
        let (results, _) = run_threads::<f64, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                let payload: Vec<f64> = (0..64).map(|i| i as f64).collect();
                let mut ack = [0.0f64; 1];
                for k in 0..STEPS {
                    let s = comm.isend_from(1, k, &payload);
                    comm.wait_send(s);
                    // Wait for the ack so the buffer has round-tripped
                    // before the next send.
                    comm.recv_into(1, 1000 + k, &mut ack);
                }
                comm.pool_stats()
            } else {
                let mut out = vec![0.0f64; 64];
                for k in 0..STEPS {
                    let r = comm.irecv(0, k);
                    comm.wait_recv_into(r, &mut out);
                    assert_eq!(out[63], 63.0);
                    comm.send_from(0, 1000 + k, &out[..1]);
                }
                comm.pool_stats()
            }
        });
        for stats in &results {
            // Exactly one warm-up allocation per link; everything after
            // that is recycled.
            assert_eq!(stats.fresh_allocs, 1, "{stats:?}");
            assert_eq!(stats.recycled, STEPS - 1, "{stats:?}");
            assert_eq!(stats.returned, STEPS, "{stats:?}");
        }
    }

    #[test]
    fn slot_transport_persistent_buffers_recycle_after_warmup() {
        // The slot-transport twin of the test above: identical lockstep
        // traffic, identical exact counter expectations — one slot
        // warm-up growth per link, everything after recycled in place.
        const STEPS: u64 = 50;
        let cfg =
            WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots());
        let (results, _) = run_threads_with::<f64, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                let payload: Vec<f64> = (0..64).map(|i| i as f64).collect();
                let mut ack = [0.0f64; 1];
                for k in 0..STEPS {
                    let s = comm.isend_from(1, k, &payload);
                    comm.wait_send(s);
                    comm.recv_into(1, 1000 + k, &mut ack);
                }
                comm.pool_stats()
            } else {
                let mut out = vec![0.0f64; 64];
                for k in 0..STEPS {
                    let r = comm.irecv(0, k);
                    comm.wait_recv_into(r, &mut out);
                    assert_eq!(out[63], 63.0);
                    comm.send_from(0, 1000 + k, &out[..1]);
                }
                comm.pool_stats()
            }
        });
        for res in results {
            let stats = res.expect("no panic");
            assert_eq!(stats.fresh_allocs, 1, "{stats:?}");
            assert_eq!(stats.recycled, STEPS - 1, "{stats:?}");
            assert_eq!(stats.returned, STEPS, "{stats:?}");
        }
    }

    #[test]
    fn slot_transport_roundtrip_and_tag_matching() {
        let cfg =
            WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots());
        let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10]);
                comm.send(1, 2, vec![20]);
                comm.recv(1, 3)[0]
            } else {
                // Reverse tag order exercises the stash over slot links.
                let b = comm.recv(0, 2)[0];
                let a = comm.recv(0, 1)[0];
                comm.send(0, 3, vec![a * 100 + b]);
                0
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(results[0], 1020);
    }

    #[test]
    fn slot_transport_zero_copy_send_recv_with() {
        let cfg =
            WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots());
        let (results, _) = run_threads_with::<f32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                for k in 0..10u64 {
                    comm.try_send_with(1, k, 16, &mut |out| {
                        for (i, x) in out.iter_mut().enumerate() {
                            *x = (k * 100 + i as u64) as f32;
                        }
                    })
                    .expect("send");
                }
                0.0
            } else {
                let mut sum = 0.0f32;
                for k in 0..10u64 {
                    comm.try_recv_with(0, k, 16, &mut |data| {
                        sum += data.iter().sum::<f32>();
                    })
                    .expect("recv");
                }
                sum
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        let expected: f32 = (0..10u64)
            .flat_map(|k| (0..16u64).map(move |i| (k * 100 + i) as f32))
            .sum();
        assert_eq!(results[1], expected);
    }

    #[test]
    fn slot_transport_faults_recover_bitwise() {
        // Drop + duplicate + reorder on slot links: the ledger parks
        // slot *leases*, not copies, and everything still arrives
        // exactly once, in order, bit-for-bit.
        use crate::fault::{FaultKind, FaultSite};
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(10),
            max_retries: 5,
            backoff: Duration::from_millis(1),
        };
        for kind in [FaultKind::Drop, FaultKind::Duplicate, FaultKind::Reorder] {
            let plan = FaultPlan::seeded(7).targeted(FaultSite {
                src: 0,
                dst: 1,
                tag: 9,
                kind,
            });
            let cfg = WorldConfig::new(LatencyModel::zero())
                .with_transport(TransportKind::shared_slots())
                .with_reliability(rel)
                .with_faults(plan);
            let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
                if comm.rank() == 0 {
                    for v in 1..=4 {
                        comm.send(1, 9, vec![v, v * 11]);
                    }
                    0
                } else {
                    let mut got = 0;
                    for _ in 0..4 {
                        let m = comm.recv(0, 9);
                        assert_eq!(m[1], m[0] * 11, "payload intact");
                        got = got * 10 + m[0];
                    }
                    got
                }
            });
            let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
            assert_eq!(results[1], 1234, "kind {kind:?}");
        }
    }

    #[test]
    fn retransmitted_lease_survives_pool_pressure() {
        // A single-slot pool: the Drop fault parks the only slot's lease
        // in the ledger, every later send must fall back to owned copies
        // (no stale-slot reuse), and the receiver still recovers the
        // dropped payload bit-exact.
        use crate::fault::{FaultKind, FaultSite};
        let rel = ReliabilityConfig {
            recv_timeout: Duration::from_millis(5),
            max_retries: 6,
            backoff: Duration::from_millis(1),
        };
        let plan = FaultPlan::seeded(5).targeted(FaultSite {
            src: 0,
            dst: 1,
            tag: 0,
            kind: FaultKind::Drop,
        });
        let cfg = WorldConfig::new(LatencyModel::zero())
            .with_transport(TransportKind::SharedSlots { slots: 1 })
            .with_reliability(rel)
            .with_faults(plan);
        let (results, _) = run_threads_with::<u32, _, _>(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                // Tag 0 is dropped (and its lease parked); tags 1..8 keep
                // hammering the same link while the slot is pinned.
                for tag in 0..8u64 {
                    comm.send_from(1, tag, &[tag as u32 * 3, tag as u32 * 5]);
                }
                (vec![], comm.fault_stats())
            } else {
                let mut got = Vec::new();
                for tag in 0..8u64 {
                    let mut out = [0u32; 2];
                    comm.recv_into(0, tag, &mut out);
                    got.push(out);
                }
                (got, comm.fault_stats())
            }
        });
        let results: Vec<_> = results.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(results[0].1.dropped, 1);
        assert_eq!(results[1].1.recovered, 1, "dropped lease recovered");
        for (tag, out) in results[1].0.iter().enumerate() {
            let t = tag as u32;
            assert_eq!(out, &[t * 3, t * 5], "tag {tag} bit-exact");
        }
    }

    #[test]
    fn recv_into_checks_length() {
        let result = std::panic::catch_unwind(|| {
            run_threads::<u8, _, _>(2, LatencyModel::zero(), |mut comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![1, 2, 3]);
                } else {
                    let mut out = [0u8; 2];
                    comm.recv_into(0, 0, &mut out);
                }
            });
        });
        assert!(result.is_err(), "length mismatch must panic");
    }
}
