//! Real multi-threaded backend: one OS thread per rank, `std::sync::mpsc`
//! channels as the transport, and an injected wire-latency model.
//!
//! The latency model is what makes overlap *measurable* on a shared-
//! memory machine: every message is stamped at send time and is not
//! released to the receiver before `sent_at + latency(bytes)` — but the
//! receiving thread only pays that wait inside `wait_recv`/`recv`, so a
//! thread that computes while a message is "on the wire" genuinely hides
//! the latency, exactly like a node computing while its NIC works.
//!
//! Blocking sends additionally sleep the *sender* for the transmission
//! time (the paper's Fig. 7: a blocking send suspends the caller until
//! the message is out).
//!
//! ## Persistent buffers
//!
//! Every directed rank pair carries a second, reverse channel that
//! returns spent payload buffers to their sender. The persistent-buffer
//! entry points (`send_from`/`isend_from`/`recv_into`/`wait_recv_into`)
//! draw from this pool, so after a short warm-up a steady-state pipeline
//! step performs **zero heap allocations** in the transport: the same
//! few buffers shuttle back and forth for the lifetime of the run,
//! mirroring MPI persistent requests. [`ThreadComm::pool_stats`] exposes
//! counters that tests use to assert this.

use crate::comm::{Communicator, RecvRequest, SendRequest, Tag};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

/// Affine wire-latency model `startup + per_byte · payload_bytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fixed startup per message, µs.
    pub startup_us: f64,
    /// Per-byte transmission time, µs.
    pub per_byte_us: f64,
}

impl LatencyModel {
    /// No injected latency: messages are available as soon as sent.
    /// Useful as the verification backend.
    pub const fn zero() -> Self {
        LatencyModel {
            startup_us: 0.0,
            per_byte_us: 0.0,
        }
    }

    /// From the paper's machine parameters (`t_s`, `t_t`).
    pub fn from_machine(m: &tiling_core::machine::MachineParams) -> Self {
        LatencyModel {
            startup_us: m.t_s_us,
            per_byte_us: m.t_t_us_per_byte,
        }
    }

    /// The wire time of a `bytes`-byte message, rounded to the nearest
    /// nanosecond (truncation would silently floor sub-ns amounts, biasing
    /// accumulated model time low).
    pub fn delay(&self, bytes: usize) -> Duration {
        let ns = (self.startup_us + self.per_byte_us * bytes as f64) * 1e3;
        Duration::from_nanos(ns.round() as u64)
    }
}

struct Msg<T> {
    tag: Tag,
    data: Vec<T>,
    /// Receiver may not consume the message before this instant.
    ready_at: Instant,
}

/// Sleep-then-spin until `deadline` (sleep for the coarse part, spin the
/// last stretch for accuracy).
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Buffer-pool counters for the persistent-buffer API (see
/// [`ThreadComm::pool_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated because the pool had none available (warm-up).
    pub fresh_allocs: u64,
    /// Sends served from a recycled buffer (steady state).
    pub recycled: u64,
    /// Consumed receive buffers returned to their sender's pool.
    pub returned: u64,
}

/// The per-rank communicator of the threaded backend.
pub struct ThreadComm<T> {
    rank: usize,
    size: usize,
    /// `senders[dst]` is this rank's channel into `dst`.
    senders: Vec<Sender<Msg<T>>>,
    /// `receivers[src]` carries messages from `src`.
    receivers: Vec<Receiver<Msg<T>>>,
    /// Out-of-order buffer per source.
    stash: Vec<VecDeque<Msg<T>>>,
    /// `ret_tx[src]` returns spent buffers of messages from `src`.
    ret_tx: Vec<Sender<Vec<T>>>,
    /// `ret_rx[dst]` yields back buffers this rank previously sent to `dst`.
    ret_rx: Vec<Receiver<Vec<T>>>,
    stats: PoolStats,
    latency: LatencyModel,
    /// Barrier shared by the world.
    barrier: std::sync::Arc<std::sync::Barrier>,
    /// Common time origin of the world (same `Instant` on every rank),
    /// so per-rank wall-clock trace recorders share one zero.
    epoch: Instant,
    next_req: u64,
    elem_bytes: usize,
}

impl<T: Send + 'static> ThreadComm<T> {
    fn payload_bytes(&self, len: usize) -> usize {
        len * self.elem_bytes
    }

    /// Buffer-pool counters: after warm-up, `fresh_allocs` stays flat
    /// while `recycled`/`returned` grow with the step count — the
    /// zero-steady-state-allocation property the overlapping executor
    /// relies on.
    pub fn pool_stats(&self) -> PoolStats {
        self.stats
    }

    /// The world's shared time origin: the same `Instant` on every rank
    /// of one [`run_threads`] world. Wall-clock trace recorders
    /// ([`crate::trace::WallTrace`]) measure against it so intervals
    /// from different rank threads land on one comparable time axis.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Obtain a send buffer holding a copy of `data`: recycled from the
    /// `dst` return channel when available, freshly allocated otherwise.
    fn acquire(&mut self, dst: usize, data: &[T]) -> Vec<T>
    where
        T: Copy,
    {
        let mut buf = match self.ret_rx[dst].try_recv() {
            Ok(b) => {
                self.stats.recycled += 1;
                b
            }
            Err(_) => {
                self.stats.fresh_allocs += 1;
                Vec::with_capacity(data.len())
            }
        };
        buf.clear();
        buf.extend_from_slice(data);
        buf
    }

    /// Hand a consumed payload buffer back to the rank that sent it. The
    /// peer may already have exited; its pool is then simply dropped.
    fn release(&mut self, src: usize, buf: Vec<T>) {
        self.stats.returned += 1;
        let _ = self.ret_tx[src].send(buf);
    }

    /// Pull messages from `from` until one with `tag` appears; honor the
    /// stash first (FIFO per source).
    fn match_message(&mut self, from: usize, tag: Tag) -> Msg<T> {
        if let Some(pos) = self.stash[from].iter().position(|m| m.tag == tag) {
            return self.stash[from].remove(pos).expect("position valid");
        }
        loop {
            let msg = self.receivers[from]
                .recv()
                .expect("peer hung up before sending expected message");
            if msg.tag == tag {
                return msg;
            }
            self.stash[from].push_back(msg);
        }
    }

    /// Non-blocking variant for the sequential recording driver: the
    /// message must already be present (lower ranks ran to completion),
    /// so an empty channel means the program's messages do not flow in
    /// rank order — panic with a diagnosis instead of hanging forever.
    pub(crate) fn recv_now(&mut self, from: usize, tag: Tag) -> Vec<T> {
        if let Some(pos) = self.stash[from].iter().position(|m| m.tag == tag) {
            return self.stash[from].remove(pos).expect("position valid").data;
        }
        loop {
            match self.receivers[from].try_recv() {
                Ok(msg) if msg.tag == tag => return msg.data,
                Ok(msg) => self.stash[from].push_back(msg),
                Err(_) => panic!(
                    "sequential recording: rank {} receives (from {from}, tag {tag}) \
                     but the message was never sent — messages must flow from lower \
                     to higher ranks during recording",
                    self.rank
                ),
            }
        }
    }
}

impl<T: Send + 'static> Communicator<T> for ThreadComm<T> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: Tag, data: Vec<T>) {
        let bytes = self.payload_bytes(data.len());
        let delay = self.latency.delay(bytes);
        let ready_at = Instant::now() + delay;
        self.senders[to]
            .send(Msg {
                tag,
                data,
                ready_at,
            })
            .expect("peer hung up");
        // Blocking semantics: the caller is suspended for the wire time.
        wait_until(ready_at);
    }

    fn recv(&mut self, from: usize, tag: Tag) -> Vec<T> {
        let msg = self.match_message(from, tag);
        wait_until(msg.ready_at);
        msg.data
    }

    fn isend(&mut self, to: usize, tag: Tag, data: Vec<T>) -> SendRequest {
        let bytes = self.payload_bytes(data.len());
        let ready_at = Instant::now() + self.latency.delay(bytes);
        self.senders[to]
            .send(Msg {
                tag,
                data,
                ready_at,
            })
            .expect("peer hung up");
        let id = self.next_req;
        self.next_req += 1;
        SendRequest { id }
    }

    fn irecv(&mut self, from: usize, tag: Tag) -> RecvRequest {
        RecvRequest { from, tag }
    }

    fn wait_send(&mut self, _req: SendRequest) {
        // The channel owns the payload already; local completion is
        // immediate (eager protocol).
    }

    fn wait_recv(&mut self, req: RecvRequest) -> Vec<T> {
        let msg = self.match_message(req.from, req.tag);
        wait_until(msg.ready_at);
        msg.data
    }

    fn barrier(&mut self) {
        self.barrier.wait();
    }

    fn send_from(&mut self, to: usize, tag: Tag, data: &[T])
    where
        T: Copy,
    {
        let buf = self.acquire(to, data);
        self.send(to, tag, buf);
    }

    fn isend_from(&mut self, to: usize, tag: Tag, data: &[T]) -> SendRequest
    where
        T: Copy,
    {
        let buf = self.acquire(to, data);
        self.isend(to, tag, buf)
    }

    fn recv_into(&mut self, from: usize, tag: Tag, out: &mut [T])
    where
        T: Copy,
    {
        let msg = self.match_message(from, tag);
        wait_until(msg.ready_at);
        assert_eq!(
            msg.data.len(),
            out.len(),
            "recv_into: message length mismatch (from {from}, tag {tag})"
        );
        out.copy_from_slice(&msg.data);
        self.release(from, msg.data);
    }

    fn wait_recv_into(&mut self, req: RecvRequest, out: &mut [T])
    where
        T: Copy,
    {
        let msg = self.match_message(req.from, req.tag);
        wait_until(msg.ready_at);
        assert_eq!(
            msg.data.len(),
            out.len(),
            "wait_recv_into: message length mismatch (from {}, tag {})",
            req.from,
            req.tag
        );
        out.copy_from_slice(&msg.data);
        self.release(req.from, msg.data);
    }
}

/// Build the full mesh of per-rank communicators (used by
/// [`run_threads`] and by the trace-recording driver). Each directed
/// pair gets a data channel plus a reverse buffer-return channel for the
/// persistent-buffer pool.
pub(crate) fn build_world<T: Send + 'static>(
    size: usize,
    latency: LatencyModel,
) -> Vec<ThreadComm<T>> {
    assert!(size > 0, "world size must be positive");
    // channels[src][dst]
    let mut to_senders: Vec<Vec<Option<Sender<Msg<T>>>>> = Vec::with_capacity(size);
    let mut from_receivers: Vec<Vec<Option<Receiver<Msg<T>>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    // Return path of the buffer pool: for the data link src→dst, the
    // consumer (dst) holds the sender half and the producer (src) the
    // receiver half.
    let mut ret_senders: Vec<Vec<Option<Sender<Vec<T>>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    let mut ret_receivers: Vec<Vec<Option<Receiver<Vec<T>>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    #[allow(clippy::needless_range_loop)] // src/dst index several structures
    for src in 0..size {
        let mut row = Vec::with_capacity(size);
        for dst in 0..size {
            let (s, r) = channel();
            row.push(Some(s));
            from_receivers[dst][src] = Some(r);
            let (rs, rr) = channel::<Vec<T>>();
            ret_senders[dst][src] = Some(rs);
            ret_receivers[src][dst] = Some(rr);
        }
        to_senders.push(row);
    }
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(size));
    let epoch = Instant::now();
    let elem_bytes = std::mem::size_of::<T>();

    let mut comms: Vec<ThreadComm<T>> = Vec::with_capacity(size);
    for rank in 0..size {
        let senders = (0..size)
            .map(|dst| to_senders[rank][dst].take().expect("sender taken once"))
            .collect();
        let receivers = (0..size)
            .map(|src| from_receivers[rank][src].take().expect("receiver taken once"))
            .collect();
        let ret_tx = (0..size)
            .map(|src| ret_senders[rank][src].take().expect("ret sender taken once"))
            .collect();
        let ret_rx = (0..size)
            .map(|dst| ret_receivers[rank][dst].take().expect("ret receiver taken once"))
            .collect();
        comms.push(ThreadComm {
            rank,
            size,
            senders,
            receivers,
            stash: (0..size).map(|_| VecDeque::new()).collect(),
            ret_tx,
            ret_rx,
            stats: PoolStats::default(),
            latency,
            barrier: barrier.clone(),
            epoch,
            next_req: 0,
            elem_bytes,
        });
    }
    comms
}

/// Run `size` ranks, each executing `body(comm)` on its own OS thread;
/// returns the per-rank results (rank order) and the wall-clock time of
/// the slowest rank.
pub fn run_threads<T, R, F>(
    size: usize,
    latency: LatencyModel,
    body: F,
) -> (Vec<R>, Duration)
where
    T: Send + 'static,
    R: Send,
    F: Fn(ThreadComm<T>) -> R + Send + Sync,
{
    let comms = build_world::<T>(size, latency);
    let start = Instant::now();
    let body = &body;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || body(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    (results, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_blocking_roundtrip() {
        let (results, _) = run_threads::<f32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                comm.send(0, 8, got.iter().map(|x| x * 2.0).collect());
                vec![]
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn nonblocking_roundtrip() {
        let (results, _) = run_threads::<i64, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 1, vec![42]);
                comm.wait_send(s);
                0
            } else {
                let r = comm.irecv(0, 1);
                comm.wait_recv(r)[0]
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let (results, _) = run_threads::<u32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10]);
                comm.send(1, 2, vec![20]);
                0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                a[0] * 100 + b[0] // 10·100 + 20
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn fifo_within_same_tag() {
        let (results, _) = run_threads::<u32, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1]);
                comm.send(1, 5, vec![2]);
                0
            } else {
                let a = comm.recv(0, 5)[0];
                let b = comm.recv(0, 5)[0];
                a * 10 + b
            }
        });
        assert_eq!(results[1], 12);
    }

    #[test]
    fn latency_is_enforced_on_receive() {
        let lat = LatencyModel {
            startup_us: 3_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 0, vec![1]);
                comm.wait_send(s); // does not pay the wire time
            } else {
                let _ = comm.recv(0, 0); // pays ≥ 3 ms
            }
        });
        assert!(elapsed >= Duration::from_micros(2_900), "{elapsed:?}");
    }

    #[test]
    fn overlap_hides_latency_nonblocking() {
        // Receiver computes ~5 ms while a 5 ms-latency message flies:
        // total should be well under the serial 10 ms.
        let lat = LatencyModel {
            startup_us: 5_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let s = comm.isend(1, 0, vec![1]);
                comm.wait_send(s);
            } else {
                let req = comm.irecv(0, 0);
                // ~5 ms of real work.
                let t0 = Instant::now();
                let mut acc = 0.0f64;
                while t0.elapsed() < Duration::from_micros(5_000) {
                    acc += acc.sin() + 1.0;
                }
                std::hint::black_box(acc);
                let _ = comm.wait_recv(req);
            }
        });
        assert!(
            elapsed < Duration::from_micros(8_500),
            "no overlap: {elapsed:?}"
        );
    }

    #[test]
    fn blocking_send_pays_wire_time() {
        let lat = LatencyModel {
            startup_us: 3_000.0,
            per_byte_us: 0.0,
        };
        let (_, elapsed) = run_threads::<u8, _, _>(2, lat, |mut comm| {
            if comm.rank() == 0 {
                let t0 = Instant::now();
                comm.send(1, 0, vec![1]);
                assert!(t0.elapsed() >= Duration::from_micros(2_900));
            } else {
                let _ = comm.recv(0, 0);
            }
        });
        assert!(elapsed >= Duration::from_micros(2_900));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        let (results, _) = run_threads::<u8, _, _>(4, LatencyModel::zero(), |mut comm| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            BEFORE.load(Ordering::SeqCst)
        });
        // After the barrier everyone sees all 4 increments.
        assert!(results.iter().all(|&x| x == 4));
    }

    #[test]
    fn ring_pipeline_many_ranks() {
        // 0 → 1 → 2 → 3: each adds its rank.
        let (results, _) = run_threads::<u64, _, _>(4, LatencyModel::zero(), |mut comm| {
            let r = comm.rank();
            if r == 0 {
                comm.send(1, 0, vec![0]);
                0
            } else {
                let v = comm.recv(r - 1, 0)[0] + r as u64;
                if r + 1 < comm.size() {
                    comm.send(r + 1, 0, vec![v]);
                }
                v
            }
        });
        assert_eq!(results[3], 6);
    }

    #[test]
    fn latency_model_delay() {
        let lat = LatencyModel {
            startup_us: 100.0,
            per_byte_us: 0.5,
        };
        assert_eq!(lat.delay(0), Duration::from_micros(100));
        assert_eq!(lat.delay(200), Duration::from_micros(200));
        assert_eq!(LatencyModel::zero().delay(1 << 20), Duration::ZERO);
    }

    #[test]
    fn latency_model_delay_rounds_to_nearest() {
        // zero() stays exactly zero for any size.
        assert_eq!(LatencyModel::zero().delay(0), Duration::ZERO);
        assert_eq!(LatencyModel::zero().delay(usize::MAX >> 16), Duration::ZERO);
        // 0.6 ns rounds up to 1 ns (`as u64` used to floor it to 0).
        let sub_ns = LatencyModel {
            startup_us: 0.0006,
            per_byte_us: 0.0,
        };
        assert_eq!(sub_ns.delay(0), Duration::from_nanos(1));
        // 0.4 ns rounds down.
        let below_half = LatencyModel {
            startup_us: 0.0004,
            per_byte_us: 0.0,
        };
        assert_eq!(below_half.delay(0), Duration::ZERO);
        // Fractional-µs startup: 1.2346 µs = 1234.6 ns → 1235 ns, where
        // truncation produced 1234 ns.
        let frac = LatencyModel {
            startup_us: 1.2346,
            per_byte_us: 0.0,
        };
        assert_eq!(frac.delay(0), Duration::from_nanos(1235));
        // Per-byte fractions accumulate before rounding: 2 B × 0.0003 µs/B
        // = 0.6 ns → 1 ns (truncation: 0).
        let per_byte = LatencyModel {
            startup_us: 0.0,
            per_byte_us: 0.0003,
        };
        assert_eq!(per_byte.delay(2), Duration::from_nanos(1));
    }

    #[test]
    fn persistent_buffers_recycle_after_warmup() {
        const STEPS: u64 = 50;
        let (results, _) = run_threads::<f64, _, _>(2, LatencyModel::zero(), |mut comm| {
            if comm.rank() == 0 {
                let payload: Vec<f64> = (0..64).map(|i| i as f64).collect();
                let mut ack = [0.0f64; 1];
                for k in 0..STEPS {
                    let s = comm.isend_from(1, k, &payload);
                    comm.wait_send(s);
                    // Wait for the ack so the buffer has round-tripped
                    // before the next send.
                    comm.recv_into(1, 1000 + k, &mut ack);
                }
                comm.pool_stats()
            } else {
                let mut out = vec![0.0f64; 64];
                for k in 0..STEPS {
                    let r = comm.irecv(0, k);
                    comm.wait_recv_into(r, &mut out);
                    assert_eq!(out[63], 63.0);
                    comm.send_from(0, 1000 + k, &out[..1]);
                }
                comm.pool_stats()
            }
        });
        for stats in &results {
            // Exactly one warm-up allocation per link; everything after
            // that is recycled.
            assert_eq!(stats.fresh_allocs, 1, "{stats:?}");
            assert_eq!(stats.recycled, STEPS - 1, "{stats:?}");
            assert_eq!(stats.returned, STEPS, "{stats:?}");
        }
    }

    #[test]
    fn recv_into_checks_length() {
        let result = std::panic::catch_unwind(|| {
            run_threads::<u8, _, _>(2, LatencyModel::zero(), |mut comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![1, 2, 3]);
                } else {
                    let mut out = [0u8; 2];
                    comm.recv_into(0, 0, &mut out);
                }
            });
        });
        assert!(result.is_err(), "length mismatch must panic");
    }
}
