//! # msgpass
//!
//! An MPI-shaped message-passing runtime for the IPPS 2001 loop-tiling
//! reproduction. The paper ran on MPICH over FastEthernet; this crate
//! provides the same primitives (`Send`/`Recv`/`Isend`/`Irecv`/`Wait`)
//! over OS threads on one machine, with a configurable wire-latency
//! model so that non-blocking communication genuinely overlaps
//! computation in wall-clock time.
//!
//! * [`comm`] — the [`comm::Communicator`] trait the distributed
//!   executors are written against, including the fallible `try_*`
//!   operations that surface [`comm::CommError`].
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`])
//!   and the reliability parameters ([`fault::ReliabilityConfig`])
//!   of a [`thread_backend::WorldConfig`]-configured world.
//! * [`thread_backend`] — the real threaded implementation
//!   ([`thread_backend::run_threads`]).
//! * [`transport`] — the per-link wire abstraction
//!   ([`transport::TransportKind`]): mpsc channels with a buffer-return
//!   pool, or zero-copy shared-memory slot rings.
//! * [`slot_transport`] — the SPSC slot-ring transport itself
//!   (cache-line-padded cursors, slot leases, FIFO overflow).
//! * [`modelcheck`] — exhaustive interleaving checks of the slot ring
//!   (every producer/consumer merge order, via `miniloom`), proving
//!   no double-claim, no ABA reuse, and no lost slot.
//! * [`topology`] — Cartesian process grids (the paper's 4×4 layout).
//! * [`trace`] — wall-clock activity recording in the *same* interval
//!   format the `cluster-sim` simulator emits, so real runs render
//!   through the same Gantt paths.
//!
//! Timing-only simulation of the paper's cluster lives in the sibling
//! `cluster-sim` crate; this crate moves *real data* and is what the
//! `stencil` executors and their verification run on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod comm;
pub mod fault;
pub mod modelcheck;
pub mod recording;
pub mod slot_transport;
pub mod thread_backend;
pub mod topology;
pub mod trace;
pub mod transport;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::comm::{CommError, Communicator, RecvRequest, SendRequest, Tag};
    pub use crate::fault::{FaultKind, FaultPlan, FaultSite, FaultStats, ReliabilityConfig};
    pub use crate::recording::{record_sequential, RecordingComm};
    pub use crate::thread_backend::{
        run_threads, run_threads_with, LatencyModel, PoolStats, ThreadComm, WorldConfig,
    };
    pub use crate::topology::CartesianGrid;
    pub use crate::trace::WallTrace;
    pub use crate::transport::TransportKind;
}
