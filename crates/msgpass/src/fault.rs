//! Deterministic fault injection and the reliability configuration of
//! the threaded transport.
//!
//! A [`FaultPlan`] is installed on a world (via
//! [`crate::thread_backend::WorldConfig`]) and decides, **at the
//! sender**, what happens to each logical message: delivered normally,
//! dropped recoverably (the payload is parked in a per-link ledger the
//! receiver can recover it from), lost permanently, duplicated,
//! reordered past the next message on the same link, or delay-spiked on
//! the wire. Decisions are a pure hash of `(seed, src, dst, tag, seq)`
//! — the same plan replays the same faults on every run, which is what
//! makes chaos tests assertable.
//!
//! The matching receive side is configured by [`ReliabilityConfig`]:
//! bounded receive timeouts with exponential backoff, ledger-based
//! retransmission of recoverably dropped messages, duplicate discard by
//! per-`(src, dst, tag)` sequence number, and sequence-gap detection
//! for permanent losses. Outcomes are counted in [`FaultStats`].

use crate::comm::Tag;
use std::time::Duration;

/// Receive-side reliability parameters of a world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Base receive-timeout slice; attempt `n` waits
    /// `recv_timeout · 2ⁿ` (capped at `2⁶`) before consulting the
    /// retransmission ledger.
    pub recv_timeout: Duration,
    /// Receive attempts after the first before giving up with
    /// [`crate::comm::CommError::Timeout`].
    pub max_retries: u32,
    /// Base sleep between attempts, doubled per attempt (capped at
    /// `2⁶`).
    pub backoff: Duration,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            recv_timeout: Duration::from_millis(50),
            max_retries: 5,
            backoff: Duration::from_millis(2),
        }
    }
}

impl ReliabilityConfig {
    /// An upper bound on the wall-clock time one receive may spend
    /// before surfacing a typed error (timeout slices plus backoff
    /// sleeps; ledger work is not wire-bound).
    pub fn worst_case_wait(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..=self.max_retries {
            let factor = 1u32 << attempt.min(6);
            total += self.recv_timeout * factor + self.backoff * factor;
        }
        total
    }
}

/// What a targeted fault does to its message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Recoverable drop: the payload is parked in the link ledger and
    /// the receiver retransmits it to itself on timeout.
    Drop,
    /// Permanent loss: counted as sent but never stored — the receiver
    /// detects a sequence gap.
    Lose,
    /// The message is delivered twice with the same sequence number.
    Duplicate,
    /// The message is held back until the next message on the same
    /// link has been sent.
    Reorder,
    /// The message's wire arrival is postponed by the given extra
    /// delay.
    Delay(Duration),
}

/// A fault pinned to one `(src, dst, tag)` site (applies to every
/// sequence number at that site).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag at the site.
    pub tag: Tag,
    /// What happens to the matching messages.
    pub kind: FaultKind,
}

/// The per-message outcome of consulting a [`FaultPlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Park the payload in the ledger instead of sending (recoverable).
    pub drop: bool,
    /// Discard the payload entirely (unrecoverable).
    pub lose: bool,
    /// Send the message twice.
    pub duplicate: bool,
    /// Hold the message until the next one on the same link.
    pub reorder: bool,
    /// Extra wire delay, if spiked.
    pub extra_delay: Option<Duration>,
}

impl FaultDecision {
    /// True when the message is affected in any way.
    pub fn is_faulty(&self) -> bool {
        self.drop || self.lose || self.duplicate || self.reorder || self.extra_delay.is_some()
    }
}

/// A seeded, deterministic plan of message faults for one world.
///
/// Probabilistic faults are decided per message by hashing
/// `(seed, src, dst, tag, seq)` — independent draws per fault class —
/// so a plan is a pure function of the message's identity: replaying
/// the same program under the same plan injects the same faults.
/// Targeted faults ([`FaultPlan::lose_at`]) pin a [`FaultKind`] to an
/// exact `(src, dst, tag)` site and take precedence over the
/// probabilistic draws.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    duplicate_p: f64,
    reorder_p: f64,
    delay_p: f64,
    delay_spike: Duration,
    targeted: Vec<FaultSite>,
}

/// SplitMix64: the standard 64-bit finalizer-style mixer; full-period,
/// cheap, and good enough to decorrelate per-message fault draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drop each message recoverably with probability `p`.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Duplicate each message with probability `p`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_p = p;
        self
    }

    /// Reorder each message past its successor with probability `p`.
    pub fn with_reorders(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Spike each message's wire delay by `spike` with probability `p`.
    pub fn with_delay_spikes(mut self, p: f64, spike: Duration) -> Self {
        self.delay_p = p;
        self.delay_spike = spike;
        self
    }

    /// Permanently lose every message at `(src, dst, tag)` — the
    /// unrecoverable fault chaos tests use to force a typed error.
    pub fn lose_at(mut self, src: usize, dst: usize, tag: Tag) -> Self {
        self.targeted.push(FaultSite {
            src,
            dst,
            tag,
            kind: FaultKind::Lose,
        });
        self
    }

    /// Pin an arbitrary fault to `(src, dst, tag)`.
    pub fn targeted(mut self, site: FaultSite) -> Self {
        self.targeted.push(site);
        self
    }

    /// True when the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.duplicate_p > 0.0
            || self.reorder_p > 0.0
            || self.delay_p > 0.0
            || !self.targeted.is_empty()
    }

    /// Decide the fate of message `seq` on the link `src → dst` with
    /// `tag`. Pure: the same arguments always produce the same
    /// decision.
    pub fn decide(&self, src: usize, dst: usize, tag: Tag, seq: u64) -> FaultDecision {
        let mut d = FaultDecision::default();
        for site in &self.targeted {
            if site.src == src && site.dst == dst && site.tag == tag {
                match site.kind {
                    FaultKind::Drop => d.drop = true,
                    FaultKind::Lose => d.lose = true,
                    FaultKind::Duplicate => d.duplicate = true,
                    FaultKind::Reorder => d.reorder = true,
                    FaultKind::Delay(extra) => d.extra_delay = Some(extra),
                }
                return d;
            }
        }
        let key = self
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(splitmix64(
                (src as u64) << 48 ^ (dst as u64) << 32 ^ tag.wrapping_mul(0x9e3779b1) ^ seq,
            ));
        let draw = |salt: u64| unit(splitmix64(key ^ splitmix64(salt)));
        if self.drop_p > 0.0 && draw(1) < self.drop_p {
            d.drop = true;
            return d; // a dropped message can't also be duplicated etc.
        }
        if self.duplicate_p > 0.0 && draw(2) < self.duplicate_p {
            d.duplicate = true;
        }
        if self.reorder_p > 0.0 && draw(3) < self.reorder_p {
            d.reorder = true;
        }
        if self.delay_p > 0.0 && draw(4) < self.delay_p {
            d.extra_delay = Some(self.delay_spike);
        }
        d
    }
}

/// Per-rank counters of injected faults and recovery work. Injection
/// counts accrue at the sender; discard/recovery/retry counts at the
/// receiver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages recoverably dropped (parked in the ledger).
    pub dropped: u64,
    /// Messages permanently lost.
    pub lost: u64,
    /// Messages sent twice.
    pub duplicated: u64,
    /// Messages held back past their successor.
    pub reordered: u64,
    /// Messages with a spiked wire delay.
    pub delayed: u64,
    /// Received messages discarded as duplicates (stale sequence).
    pub duplicates_discarded: u64,
    /// Messages recovered from the retransmission ledger.
    pub recovered: u64,
    /// Receive attempts that timed out and retried.
    pub retries: u64,
}

impl FaultStats {
    /// Total faults injected at this rank's sender side.
    pub fn total_injected(&self) -> u64 {
        self.dropped + self.lost + self.duplicated + self.reordered + self.delayed
    }

    /// Accumulate another rank's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.lost += other.lost;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.delayed += other.delayed;
        self.duplicates_discarded += other.duplicates_discarded;
        self.recovered += other.recovered;
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42)
            .with_drops(0.2)
            .with_duplicates(0.1)
            .with_reorders(0.1)
            .with_delay_spikes(0.3, Duration::from_micros(500));
        for seq in 0..64 {
            assert_eq!(
                plan.decide(0, 1, 7, seq),
                plan.decide(0, 1, 7, seq),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn seeds_change_decisions() {
        let a = FaultPlan::seeded(1).with_drops(0.5);
        let b = FaultPlan::seeded(2).with_drops(0.5);
        let differs = (0..256).any(|seq| a.decide(0, 1, 0, seq) != b.decide(0, 1, 0, seq));
        assert!(differs, "different seeds never disagreed over 256 draws");
    }

    #[test]
    fn probabilities_land_near_their_targets() {
        let plan = FaultPlan::seeded(7).with_drops(0.25);
        let n = 4000;
        let hits = (0..n)
            .filter(|&seq| plan.decide(2, 3, 11, seq).drop)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((0.18..0.32).contains(&frac), "drop rate {frac}");
    }

    #[test]
    fn zero_probability_plan_is_silent() {
        let plan = FaultPlan::seeded(99);
        assert!(!plan.is_active());
        for seq in 0..128 {
            assert!(!plan.decide(0, 1, 3, seq).is_faulty());
        }
    }

    #[test]
    fn targeted_loss_overrides_draws() {
        let plan = FaultPlan::seeded(5).with_drops(0.0).lose_at(0, 2, 6);
        assert!(plan.is_active());
        let d = plan.decide(0, 2, 6, 17);
        assert!(d.lose && !d.drop);
        assert!(
            !plan.decide(0, 1, 6, 17).is_faulty(),
            "other dst unaffected"
        );
        assert!(
            !plan.decide(0, 2, 7, 17).is_faulty(),
            "other tag unaffected"
        );
    }

    #[test]
    fn worst_case_wait_bounds_the_schedule() {
        let cfg = ReliabilityConfig {
            recv_timeout: Duration::from_millis(10),
            max_retries: 2,
            backoff: Duration::from_millis(1),
        };
        // Slices 10+20+40 ms, backoffs 1+2+4 ms.
        assert_eq!(cfg.worst_case_wait(), Duration::from_millis(77));
    }

    #[test]
    fn stats_merge_and_totals() {
        let mut a = FaultStats {
            dropped: 2,
            delayed: 1,
            ..FaultStats::default()
        };
        let b = FaultStats {
            lost: 1,
            recovered: 2,
            retries: 3,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.lost, 1);
        assert_eq!(a.recovered, 2);
        assert_eq!(a.retries, 3);
        assert_eq!(a.total_injected(), 4);
    }
}
