//! Shared-memory slot transport: per-directed-link SPSC rings of
//! fixed-capacity payload slots.
//!
//! A link is two shared structures:
//!
//! * a [`SlotPool`]: `slots` refcounted payload buffers. The sender
//!   claims a free slot (refcount 0 → 1), packs the payload **directly
//!   into it** while holding exclusive access, and wraps it in a
//!   [`SlotLease`] that travels inside the envelope. The receiver (and
//!   the reliability layer's ledger/duplicates) read straight out of
//!   the slot; the slot is not reclaimed until the last lease drops.
//! * an envelope ring: a single-producer single-consumer circular
//!   buffer with cache-line-padded head/tail counters. The producer
//!   publishes with a release store of `tail`; the consumer acquires
//!   `tail` and releases `head`. No allocation per message — unlike an
//!   mpsc channel, which heap-allocates a queue node per send.
//!
//! Both structures degrade rather than block or reorder under
//! pressure: a sender whose pool is exhausted waits a bounded while
//! for the consumer to free a slot (the transport's backpressure —
//! `wait_send` is eager, so nothing else throttles a producer that
//! outruns its consumer) and then falls back to an owned heap copy,
//! and a full ring spills into a mutex-guarded overflow queue that
//! preserves link FIFO order (the producer keeps using the overflow
//! until the consumer has drained it).
//!
//! After a warm-up in which each slot's buffer grows to the payload
//! size once, a steady-state halo exchange performs **zero heap
//! allocations** in the transport — `tests/zero_alloc.rs` asserts
//! this with a counting global allocator.

use crate::transport::{Envelope, LinkClosed, LinkRx, LinkTx, Payload, PoolStats};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pad to a cache line so the producer's `tail` and the consumer's
/// `head` never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// One payload slot: a refcount and the buffer it guards.
///
/// Invariant: the buffer is only written between a successful claim
/// (`refs` 0 → 1 by the producer) and the creation of the first lease;
/// from then until `refs` returns to 0 every access is a shared read.
struct Slot<T> {
    refs: CachePadded<AtomicU32>,
    buf: UnsafeCell<Vec<T>>,
}

/// The payload slots of one directed link, shared by both endpoints
/// and by every outstanding [`SlotLease`].
pub(crate) struct SlotPool<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: the refcount protocol above makes cross-thread access to the
// `UnsafeCell` buffers data-race-free; the payloads themselves only
// need to be sendable.
unsafe impl<T: Send + Sync> Send for SlotPool<T> {}
// SAFETY: same protocol as `Send` above — shared references only reach
// a slot's buffer through a claimed lease or a positive refcount.
unsafe impl<T: Send + Sync> Sync for SlotPool<T> {}

impl<T> SlotPool<T> {
    fn new(slots: usize) -> Arc<Self> {
        Arc::new(SlotPool {
            slots: (0..slots)
                .map(|_| Slot {
                    refs: CachePadded(AtomicU32::new(0)),
                    buf: UnsafeCell::new(Vec::new()),
                })
                .collect(),
        })
    }

    /// Claim a free slot for exclusive filling: refcount 0 → 1 with
    /// acquire ordering, so the claim synchronizes with the release
    /// decrement of the lease that last used the slot.
    fn claim(&self) -> Option<usize> {
        self.slots.iter().position(|s| {
            s.refs
                .0
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        })
    }

    /// Number of payload slots (model-check introspection).
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current refcount of slot `idx` (model-check introspection).
    pub(crate) fn ref_count(&self, idx: usize) -> u32 {
        self.slots[idx].refs.0.load(Ordering::Acquire)
    }
}

/// A zero-copy handle on a filled transport slot. Clones share the
/// slot (refcount bump); the slot returns to its pool when the last
/// lease drops. This is how a retransmission ledger entry, a duplicate
/// on the wire, and the original message all reference one buffer.
pub struct SlotLease<T> {
    pool: Arc<SlotPool<T>>,
    idx: usize,
    len: usize,
}

impl<T> SlotLease<T> {
    /// Which pool slot this lease holds (model-check introspection).
    pub(crate) fn slot_index(&self) -> usize {
        self.idx
    }

    /// The leased payload.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: leases only exist after the producer finished writing
        // (see `Slot` invariant), so shared reads are race-free.
        unsafe {
            let buf: &Vec<T> = &*self.pool.slots[self.idx].buf.get();
            &buf[..self.len]
        }
    }
}

impl<T> Clone for SlotLease<T> {
    fn clone(&self) -> Self {
        // Relaxed suffices: a clone is always derived from a live lease,
        // so the count cannot concurrently hit zero.
        self.pool.slots[self.idx]
            .refs
            .0
            .fetch_add(1, Ordering::Relaxed);
        SlotLease {
            pool: Arc::clone(&self.pool),
            idx: self.idx,
            len: self.len,
        }
    }
}

impl<T> Drop for SlotLease<T> {
    fn drop(&mut self) {
        // Release pairs with the acquire CAS in `SlotPool::claim`: all
        // reads of this lease happen-before the slot's next refill.
        self.pool.slots[self.idx]
            .refs
            .0
            .fetch_sub(1, Ordering::Release);
    }
}

/// SPSC envelope ring with a FIFO-preserving mutex overflow.
struct Ring<T> {
    cells: Box<[UnsafeCell<MaybeUninit<Envelope<T>>>]>,
    /// Consumer cursor (monotonic; index = `head % capacity`).
    head: CachePadded<AtomicUsize>,
    /// Producer cursor.
    tail: CachePadded<AtomicUsize>,
    /// Set by the producer's drop; the consumer drains, then reports
    /// the link closed.
    closed: AtomicBool,
    /// Set by the consumer's drop; pushes start failing.
    rx_gone: AtomicBool,
    /// Spill queue for a full ring. The producer routes *every* push
    /// here while `overflow_len > 0`, so ring entries are always older
    /// than overflow entries and the consumer's ring-first drain order
    /// preserves link FIFO.
    overflow: Mutex<VecDeque<Envelope<T>>>,
    overflow_len: AtomicUsize,
}

// SAFETY: head/tail/overflow_len ordering makes cell handoff
// race-free; envelopes cross threads, so `T: Send` is required.
unsafe impl<T: Send + Sync> Send for Ring<T> {}
unsafe impl<T: Send + Sync> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Ring {
            cells: (0..capacity.max(2))
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            rx_gone: AtomicBool::new(false),
            overflow: Mutex::new(VecDeque::new()),
            overflow_len: AtomicUsize::new(0),
        })
    }

    /// Producer side. Never blocks: a full ring spills to the overflow
    /// queue instead.
    fn push(&self, env: Envelope<T>) {
        let cap = self.cells.len();
        let tail = self.tail.0.load(Ordering::Relaxed);
        if self.overflow_len.load(Ordering::Acquire) == 0
            && tail - self.head.0.load(Ordering::Acquire) < cap
        {
            // SAFETY: single producer, and `tail - head < cap` means the
            // consumer is done with this cell.
            unsafe { (*self.cells[tail % cap].get()).write(env) };
            self.tail.0.store(tail + 1, Ordering::Release);
            return;
        }
        // A poisoned overflow mutex (a peer panicked mid-queue-op) still
        // guards a structurally valid VecDeque — keep delivering rather
        // than cascading the panic across the link.
        let mut q = self.overflow.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(env);
        self.overflow_len.store(q.len(), Ordering::Release);
    }

    /// Consumer side: ring first, then overflow.
    fn try_pop(&self) -> Option<Envelope<T>> {
        let cap = self.cells.len();
        let head = self.head.0.load(Ordering::Relaxed);
        if head < self.tail.0.load(Ordering::Acquire) {
            // SAFETY: single consumer, and `head < tail` means the
            // producer published this cell.
            let env = unsafe { (*self.cells[head % cap].get()).assume_init_read() };
            self.head.0.store(head + 1, Ordering::Release);
            return Some(env);
        }
        if self.overflow_len.load(Ordering::Acquire) > 0 {
            let mut q = self.overflow.lock().unwrap_or_else(|e| e.into_inner());
            let env = q.pop_front();
            self.overflow_len.store(q.len(), Ordering::Release);
            return env;
        }
        None
    }
}

/// Unconsumed envelopes are dropped with the ring (their slot leases
/// release themselves).
impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        let cap = self.cells.len();
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: exclusive access (last Arc holder), and cells in
            // `head..tail` are initialized.
            unsafe { self.cells[i % cap].get_mut().assume_init_drop() };
        }
    }
}

/// Default cap of the backoff ladder's longest park — the same
/// worst-case wait as the fixed 20 µs sleep this ladder replaced.
pub(crate) const DEFAULT_BACKOFF_CAP: Duration = Duration::from_micros(20);

/// Incremental backoff for the transport wait loops: spin briefly,
/// yield, then park in exponentially growing slices (1 µs doubling up
/// to `cap`). The exponential ramp is what keeps oversubscribed worlds
/// (more ranks than cores) from serializing on sleeps: a consumer that
/// frees a slot a microsecond after the producer starts waiting costs
/// the producer ~1 µs, not a fixed full sleep quantum, while a
/// long-wedged peer still converges to `cap`-sized parks instead of
/// burning the core.
struct Backoff {
    step: u32,
    cap: Duration,
}

impl Backoff {
    fn with_cap(cap: Duration) -> Self {
        Backoff { step: 0, cap }
    }

    fn snooze(&mut self) {
        if self.step < 64 {
            std::hint::spin_loop();
        } else if self.step < 192 {
            std::thread::yield_now();
        } else {
            let exp = (self.step - 192).min(14);
            let park = Duration::from_micros(1u64 << exp).min(self.cap);
            std::thread::park_timeout(park);
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Sender half of a slot link.
pub(crate) struct SlotTx<T> {
    ring: Arc<Ring<T>>,
    pool: Arc<SlotPool<T>>,
    backoff_cap: Duration,
}

/// Receiver half of a slot link.
pub(crate) struct SlotRx<T> {
    ring: Arc<Ring<T>>,
    backoff_cap: Duration,
}

/// Build one directed slot link with `slots` payload slots (the
/// envelope ring gets twice that, so it only overflows when the pool
/// itself is oversubscribed) and the given backoff park cap.
pub(crate) fn make_slot_link<T: Send + Sync + 'static>(
    slots: usize,
    backoff_cap: Duration,
) -> (Box<dyn LinkTx<T>>, Box<dyn LinkRx<T>>) {
    let (mut tx, mut rx, _) = make_slot_link_raw(slots);
    tx.backoff_cap = backoff_cap;
    rx.backoff_cap = backoff_cap;
    (Box::new(tx), Box::new(rx))
}

/// Like [`make_slot_link`], but returns the concrete halves plus a
/// handle on the shared pool — the model checker (`crate::modelcheck`)
/// drives the real endpoint types and inspects slot refcounts directly.
pub(crate) fn make_slot_link_raw<T: Send + Sync + 'static>(
    slots: usize,
) -> (SlotTx<T>, SlotRx<T>, Arc<SlotPool<T>>) {
    let slots = slots.max(1);
    let ring = Ring::new(slots * 2);
    let pool = SlotPool::new(slots);
    (
        SlotTx {
            ring: Arc::clone(&ring),
            pool: Arc::clone(&pool),
            backoff_cap: DEFAULT_BACKOFF_CAP,
        },
        SlotRx {
            ring,
            backoff_cap: DEFAULT_BACKOFF_CAP,
        },
        pool,
    )
}

/// How many backoff iterations a sender waits for a pool slot to free
/// before falling back to an owned copy (~1 ms worst case): long enough
/// that ordinary consumer lag always resolves inside it — the wait *is*
/// the transport's backpressure — yet bounded so a lease parked forever
/// (a fault-injected drop awaiting retransmission) degrades the sender
/// to copies instead of deadlocking it.
const STAGE_WAIT_BUDGET: u32 = 256;

impl<T: Send + Sync> SlotTx<T> {
    /// [`LinkTx::stage`] with an explicit wait budget. The model
    /// checker replays schedules on one thread, where no consumer can
    /// free a slot *during* the wait — it stages with budget 0 so an
    /// exhausted pool falls straight through to the owned-copy path
    /// instead of spinning out the full backoff per schedule.
    pub(crate) fn stage_with_budget(
        &mut self,
        stats: &mut PoolStats,
        fill: &mut dyn FnMut(&mut Vec<T>),
        wait_budget: u32,
    ) -> Payload<T> {
        let mut claimed = self.pool.claim();
        if claimed.is_none() {
            // Every slot is leased: the producer has outrun the
            // consumer (there is no other wire-level flow control — an
            // eager-protocol `wait_send` completes immediately). Wait a
            // bounded while for the consumer to release one.
            let mut backoff = Backoff::with_cap(self.backoff_cap);
            for _ in 0..wait_budget {
                backoff.snooze();
                claimed = self.pool.claim();
                if claimed.is_some() {
                    break;
                }
            }
        }
        match claimed {
            Some(idx) => {
                // SAFETY: the claim gives exclusive access until the
                // lease below is created.
                let buf = unsafe { &mut *self.pool.slots[idx].buf.get() };
                let cap = buf.capacity();
                fill(buf);
                if buf.capacity() == cap {
                    stats.recycled += 1;
                } else {
                    stats.fresh_allocs += 1; // slot grew: warm-up
                }
                let len = buf.len();
                Payload::Lease(SlotLease {
                    pool: Arc::clone(&self.pool),
                    idx,
                    len,
                })
            }
            None => {
                // Still nothing after the wait (a lease is parked in a
                // retransmission ledger, or the consumer is truly
                // wedged): fall back to an owned copy so the sender
                // never blocks forever on its own pool.
                stats.fresh_allocs += 1;
                let mut buf = Vec::new();
                fill(&mut buf);
                Payload::Owned(buf)
            }
        }
    }
}

impl<T: Send + Sync> LinkTx<T> for SlotTx<T> {
    fn stage(&mut self, stats: &mut PoolStats, fill: &mut dyn FnMut(&mut Vec<T>)) -> Payload<T> {
        self.stage_with_budget(stats, fill, STAGE_WAIT_BUDGET)
    }

    fn push(&mut self, env: Envelope<T>) -> Result<(), LinkClosed> {
        if self.ring.rx_gone.load(Ordering::Acquire) {
            return Err(LinkClosed);
        }
        self.ring.push(env);
        Ok(())
    }
}

impl<T> Drop for SlotTx<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send + Sync> LinkRx<T> for SlotRx<T> {
    fn try_pop(&mut self) -> Option<Envelope<T>> {
        self.ring.try_pop()
    }

    fn pop_blocking(&mut self) -> Result<Envelope<T>, LinkClosed> {
        let mut backoff = Backoff::with_cap(self.backoff_cap);
        loop {
            if let Some(env) = self.ring.try_pop() {
                return Ok(env);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // The close flag is set after the producer's last push,
                // so one more drain after observing it is definitive.
                return self.ring.try_pop().ok_or(LinkClosed);
            }
            backoff.snooze();
        }
    }

    fn pop_timeout(&mut self, timeout: Duration) -> Result<Option<Envelope<T>>, LinkClosed> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::with_cap(self.backoff_cap);
        loop {
            if let Some(env) = self.ring.try_pop() {
                return Ok(Some(env));
            }
            if self.ring.closed.load(Ordering::Acquire) {
                return match self.ring.try_pop() {
                    Some(env) => Ok(Some(env)),
                    None => Err(LinkClosed),
                };
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            backoff.snooze();
        }
    }

    fn reclaim(&mut self, payload: Payload<T>, stats: &mut PoolStats) {
        stats.returned += 1;
        // Dropping a lease releases its slot; owned overflow copies
        // just free.
        drop(payload);
    }
}

impl<T> Drop for SlotRx<T> {
    fn drop(&mut self) {
        self.ring.rx_gone.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Tag;

    fn env(tag: Tag, val: u32) -> Envelope<u32> {
        Envelope {
            tag,
            payload: Payload::Owned(vec![val]),
            seq: 0,
            ready_at: Instant::now(),
        }
    }

    #[test]
    fn ring_overflow_preserves_fifo() {
        // Capacity 2 ring (slots=1): push far more than fits, pop
        // everything, and demand exact FIFO order across the
        // ring → overflow → ring transitions.
        let (mut tx, mut rx) = make_slot_link::<u32>(1, DEFAULT_BACKOFF_CAP);
        let mut popped = Vec::new();
        for round in 0..4u32 {
            for i in 0..10u32 {
                tx.push(env(0, round * 10 + i)).expect("rx alive");
            }
            for _ in 0..7 {
                let e = rx.try_pop().expect("pushed more than popped");
                popped.push(e.payload.as_slice()[0]);
            }
        }
        while let Some(e) = rx.try_pop() {
            popped.push(e.payload.as_slice()[0]);
        }
        let expected: Vec<u32> = (0..4)
            .flat_map(|r| (0..10).map(move |i| r * 10 + i))
            .collect();
        assert_eq!(popped, expected);
    }

    #[test]
    fn exhausted_pool_falls_back_to_owned_copies() {
        let (mut tx, mut rx) = make_slot_link::<u32>(2, DEFAULT_BACKOFF_CAP);
        let mut stats = PoolStats::default();
        // Stage 5 payloads without consuming: 2 leases, then owned
        // fallbacks — all still delivered in order.
        for i in 0..5u32 {
            let p = tx.stage(&mut stats, &mut |buf| {
                buf.clear();
                buf.extend_from_slice(&[i]);
            });
            tx.push(Envelope {
                tag: 0,
                payload: p,
                seq: 0,
                ready_at: Instant::now(),
            })
            .expect("rx alive");
        }
        assert_eq!(stats.fresh_allocs, 5, "2 slot warm-ups + 3 fallback copies");
        for i in 0..5u32 {
            let e = rx.try_pop().expect("queued");
            assert_eq!(e.payload.as_slice(), &[i]);
            rx.reclaim(e.payload, &mut stats);
        }
        assert_eq!(stats.returned, 5);
    }

    #[test]
    fn slot_is_not_reused_while_a_lease_is_parked() {
        let (mut tx, _rx) = make_slot_link::<u32>(1, DEFAULT_BACKOFF_CAP);
        let mut stats = PoolStats::default();
        let first = tx.stage(&mut stats, &mut |buf| {
            buf.clear();
            buf.extend_from_slice(&[7, 8]);
        });
        let mut first = first;
        let parked = first.share(); // e.g. a retransmission-ledger entry
        drop(first); // wire copy consumed
                     // The slot still has a live lease: staging again must not
                     // scribble over it.
        let second = tx.stage(&mut stats, &mut |buf| {
            buf.clear();
            buf.extend_from_slice(&[9, 9]);
        });
        assert_eq!(parked.as_slice(), &[7, 8], "parked lease untouched");
        assert!(
            matches!(second, Payload::Owned(_)),
            "exhausted pool must fall back to an owned copy"
        );
        drop(parked);
        // Lease released: the slot (and its warm buffer) is reusable.
        let third = tx.stage(&mut stats, &mut |buf| {
            buf.clear();
            buf.extend_from_slice(&[1, 2]);
        });
        assert!(matches!(third, Payload::Lease(_)));
        assert_eq!(third.as_slice(), &[1, 2]);
    }

    #[test]
    fn steady_state_staging_recycles_slot_buffers() {
        let (mut tx, mut rx) = make_slot_link::<f32>(4, DEFAULT_BACKOFF_CAP);
        let mut stats = PoolStats::default();
        for step in 0..100 {
            let p = tx.stage(&mut stats, &mut |buf| {
                buf.clear();
                buf.resize(64, step as f32);
            });
            tx.push(Envelope {
                tag: step,
                payload: p,
                seq: 0,
                ready_at: Instant::now(),
            })
            .expect("rx alive");
            let e = rx.try_pop().expect("lockstep");
            assert_eq!(e.payload.len(), 64);
            rx.reclaim(e.payload, &mut stats);
        }
        // Lockstep reuses slot 0 after its single warm-up growth.
        assert_eq!(stats.fresh_allocs, 1, "{stats:?}");
        assert_eq!(stats.recycled, 99, "{stats:?}");
        assert_eq!(stats.returned, 100, "{stats:?}");
    }

    #[test]
    fn closed_link_reports_after_draining() {
        let (mut tx, mut rx) = make_slot_link::<u32>(2, DEFAULT_BACKOFF_CAP);
        tx.push(env(1, 42)).expect("rx alive");
        drop(tx);
        let e = rx
            .pop_timeout(Duration::from_millis(100))
            .expect("message before close")
            .expect("not a timeout");
        assert_eq!(e.payload.as_slice(), &[42]);
        assert!(rx.pop_blocking().is_err(), "drained + closed");
        assert!(rx.pop_timeout(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn push_to_dropped_receiver_fails() {
        let (mut tx, rx) = make_slot_link::<u32>(2, DEFAULT_BACKOFF_CAP);
        drop(rx);
        assert!(tx.push(env(0, 1)).is_err());
    }

    #[test]
    fn cross_thread_spsc_delivers_everything_in_order() {
        let (mut tx, mut rx) = make_slot_link::<u64>(4, DEFAULT_BACKOFF_CAP);
        const N: u64 = 10_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stats = PoolStats::default();
                for i in 0..N {
                    let p = tx.stage(&mut stats, &mut |buf| {
                        buf.clear();
                        buf.extend_from_slice(&[i]);
                    });
                    tx.push(Envelope {
                        tag: 0,
                        payload: p,
                        seq: 0,
                        ready_at: Instant::now(),
                    })
                    .expect("rx alive");
                }
            });
            let mut stats = PoolStats::default();
            for i in 0..N {
                let e = rx.pop_blocking().expect("producer sends N");
                assert_eq!(e.payload.as_slice(), &[i]);
                rx.reclaim(e.payload, &mut stats);
            }
            assert!(rx.pop_blocking().is_err(), "producer dropped");
        });
    }
}
