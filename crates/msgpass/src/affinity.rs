//! Best-effort CPU-affinity pinning for scaling measurements.
//!
//! The threaded backend optionally pins rank threads (and the stencil
//! compute workers riding on them) to cores so many-rank scaling rows
//! measure placement-stable numbers instead of scheduler roulette.
//! Pinning is strictly a hint: it can fail (restricted cpusets,
//! exotic platforms) and every caller ignores the result beyond
//! best-effort reporting — correctness never depends on it.
//!
//! Implemented as a raw `sched_setaffinity` syscall on x86-64 Linux
//! (the only platform this repo targets; no libc dependency), a no-op
//! returning `false` everywhere else — including under Miri, which
//! does not interpret inline assembly.

/// Pin the calling thread to `core` (taken modulo the number of
/// available cores). Returns whether the kernel accepted the mask.
pub fn pin_current_thread(core: usize) -> bool {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    pin_impl(core % cores)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
fn pin_impl(core: usize) -> bool {
    // cpu_set_t-compatible mask: 1024 bits is the kernel's default
    // CPU_SETSIZE, plenty for any machine this runs on.
    let mut mask = [0u64; 16];
    mask[(core / 64) % 16] |= 1u64 << (core % 64);
    let ret: isize;
    // rcx/r11 are declared clobbered per the syscall ABI.
    // SAFETY: sched_setaffinity (syscall 203 on x86-64) with pid 0
    // applies to the calling thread; it only *reads* `size_of(mask)`
    // bytes from the live `mask` buffer and touches no other memory.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203usize => ret,
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags),
        );
    }
    ret == 0
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux", not(miri))))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_survives_any_core_index() {
        // Whatever the platform answers, the call must not crash, and
        // out-of-range cores wrap instead of erroring.
        let a = pin_current_thread(0);
        let b = pin_current_thread(usize::MAX);
        // On x86-64 Linux both should succeed identically; elsewhere
        // both are false. Either way they agree.
        assert_eq!(a, b);
    }
}
