//! Exhaustive interleaving checks of the slot-ring transport.
//!
//! The cross-thread stress tests exercise *some* interleavings of
//! [`crate::slot_transport`]; this module drives the **real**
//! `SlotTx`/`SlotRx` endpoints through [`miniloom`] to execute *every*
//! producer/consumer merge order at operation granularity and prove,
//! for each one:
//!
//! * **no double-claim** — a freshly claimed slot is never one that a
//!   live lease (staged, on the wire, or held by the consumer) still
//!   references;
//! * **no ABA reuse** — every live payload still holds exactly the
//!   generation value it was staged with, after every step;
//! * **refcount exactness** — each tracked live lease's slot counts
//!   exactly 1 reference and every other slot counts 0;
//! * **no lost slot** — after draining, all messages arrived in FIFO
//!   order with intact contents and every slot refcount returned to 0.
//!
//! The schedules are replayed on one thread, so these checks cover the
//! *protocol logic* (claim/stage/publish/consume/release ordering);
//! the memory-ordering correctness of the individual atomics is
//! covered separately (`cargo miri test -p msgpass` in `ci.sh`, plus
//! the cross-thread stress tests).

use crate::slot_transport::{make_slot_link_raw, SlotPool, SlotRx, SlotTx};
use crate::transport::{Envelope, LinkRx, LinkTx, Payload, PoolStats};
use miniloom::CheckOptions;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Elements per staged payload — enough to make a scribbled buffer
/// visible, small enough to keep replays cheap.
const PAYLOAD_LEN: usize = 3;

/// The slot-ring protocol as a [`miniloom::Model`]: a producer thread
/// staging and pushing `messages` generation-stamped payloads, and a
/// consumer thread alternating pops with lease releases.
pub struct SlotRingModel {
    /// Payload slots per link (ring capacity is twice this).
    pub slots: usize,
    /// Messages the producer stages and pushes.
    pub messages: usize,
    /// Test hook: skip the final lease release so the lost-slot
    /// invariant must fire.
    leak_one: bool,
}

impl SlotRingModel {
    /// A model of a `slots`-slot link carrying `messages` messages.
    pub fn new(slots: usize, messages: usize) -> Self {
        SlotRingModel {
            slots,
            messages,
            leak_one: false,
        }
    }
}

/// One execution's state: the real link endpoints plus the shadow
/// bookkeeping the invariants are phrased over.
pub struct RingState {
    tx: SlotTx<u32>,
    rx: SlotRx<u32>,
    pool: Arc<SlotPool<u32>>,
    stats: PoolStats,
    /// Staged but not yet pushed: (generation, payload).
    staged: VecDeque<(u32, Payload<u32>)>,
    /// Pushed but not yet popped: (generation, slot index if leased).
    wire: VecDeque<(u32, Option<usize>)>,
    /// Popped but not yet released: (generation, payload).
    held: VecDeque<(u32, Payload<u32>)>,
    /// Next generation the consumer must observe (FIFO check).
    next_pop: u32,
}

impl RingState {
    /// Slot indices of every live lease the shadow state tracks.
    fn live_slots(&self) -> Vec<usize> {
        let staged = self.staged.iter().filter_map(|(_, p)| lease_slot(p));
        let wire = self.wire.iter().filter_map(|(_, idx)| *idx);
        let held = self.held.iter().filter_map(|(_, p)| lease_slot(p));
        staged.chain(wire).chain(held).collect()
    }

    /// Pop one envelope off the real link and run the FIFO + content
    /// checks; `Ok(false)` when the link is currently empty.
    fn pop_checked(&mut self) -> Result<bool, String> {
        let Some(env) = self.rx.try_pop() else {
            return Ok(false);
        };
        let Some((gen, _)) = self.wire.pop_front() else {
            return Err(format!("popped tag {} but nothing is on the wire", env.tag));
        };
        if env.tag != u64::from(gen) || gen != self.next_pop {
            return Err(format!(
                "FIFO violated: expected generation {}, popped tag {} (wire says {gen})",
                self.next_pop, env.tag
            ));
        }
        check_contents("popped", gen, &env.payload)?;
        self.next_pop += 1;
        self.held.push_back((gen, env.payload));
        Ok(true)
    }
}

/// The slot index behind a payload, when it is a lease.
fn lease_slot(p: &Payload<u32>) -> Option<usize> {
    match p {
        Payload::Lease(l) => Some(l.slot_index()),
        Payload::Owned(_) | Payload::Shared(_) => None,
    }
}

/// ABA check: a payload staged with generation `gen` must still read
/// as `[gen; PAYLOAD_LEN]`.
fn check_contents(what: &str, gen: u32, p: &Payload<u32>) -> Result<(), String> {
    let s = p.as_slice();
    if s.len() != PAYLOAD_LEN || s.iter().any(|&v| v != gen) {
        return Err(format!(
            "{what} payload of generation {gen} was scribbled over: {s:?}"
        ));
    }
    Ok(())
}

impl miniloom::Model for SlotRingModel {
    type State = RingState;

    fn init(&self) -> RingState {
        let (tx, rx, pool) = make_slot_link_raw(self.slots);
        RingState {
            tx,
            rx,
            pool,
            stats: PoolStats::default(),
            staged: VecDeque::new(),
            wire: VecDeque::new(),
            held: VecDeque::new(),
            next_pop: 0,
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn steps(&self, _tid: usize) -> usize {
        // Producer: stage + push per message. Consumer: a pop attempt
        // and a release attempt per message (the finalizer drains
        // whatever a schedule's attempts missed).
        2 * self.messages
    }

    fn step(&self, state: &mut RingState, tid: usize, idx: usize) -> Result<(), String> {
        if tid == 0 {
            if idx.is_multiple_of(2) {
                // Stage generation `idx / 2`. Budget 0: in a replayed
                // schedule no consumer runs *during* the wait, so
                // waiting could never succeed — an exhausted pool goes
                // straight to the owned-copy path (which is itself an
                // interleaving worth covering).
                let gen = (idx / 2) as u32;
                let live = state.live_slots();
                let payload = state.tx.stage_with_budget(
                    &mut state.stats,
                    &mut |buf| {
                        buf.clear();
                        buf.resize(PAYLOAD_LEN, gen);
                    },
                    0,
                );
                if let Some(idx) = lease_slot(&payload) {
                    if live.contains(&idx) {
                        return Err(format!(
                            "double-claim: stage of generation {gen} returned slot {idx}, \
                             already referenced by a live lease"
                        ));
                    }
                }
                state.staged.push_back((gen, payload));
            } else if let Some((gen, payload)) = state.staged.pop_front() {
                let slot = lease_slot(&payload);
                state
                    .tx
                    .push(Envelope {
                        tag: u64::from(gen),
                        payload,
                        seq: 0,
                        ready_at: Instant::now(),
                    })
                    .map_err(|_| "receiver vanished mid-run".to_string())?;
                state.wire.push_back((gen, slot));
            }
        } else if idx.is_multiple_of(2) {
            state.pop_checked()?;
        } else if let Some((gen, payload)) = state.held.pop_front() {
            check_contents("held", gen, &payload)?;
            state.rx.reclaim(payload, &mut state.stats);
        }
        Ok(())
    }

    fn invariant(&self, state: &RingState) -> Result<(), String> {
        // Refcount exactness: every tracked live lease holds exactly
        // one reference to a distinct slot; all other slots are free.
        let mut live = state.live_slots();
        live.sort_unstable();
        if live.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("two live leases share a slot: {live:?}"));
        }
        for idx in 0..state.pool.slot_count() {
            let refs = state.pool.ref_count(idx);
            let expected = u32::from(live.contains(&idx));
            if refs != expected {
                return Err(format!(
                    "slot {idx} refcount {refs}, expected {expected} (live: {live:?})"
                ));
            }
        }
        // ABA: every live payload still carries its generation.
        for (gen, p) in state.staged.iter().chain(state.held.iter()) {
            check_contents("live", *gen, p)?;
        }
        Ok(())
    }

    fn finalize(&self, state: &mut RingState) -> Result<(), String> {
        // Drain whatever this schedule's pop attempts missed.
        while state.pop_checked()? {}
        while let Some((gen, payload)) = state.held.pop_front() {
            check_contents("held", gen, &payload)?;
            if self.leak_one && state.held.is_empty() {
                std::mem::forget(payload); // deliberate leak (test hook)
            } else {
                state.rx.reclaim(payload, &mut state.stats);
            }
        }
        if state.next_pop != self.messages as u32 {
            return Err(format!(
                "lost message: only {} of {} arrived",
                state.next_pop, self.messages
            ));
        }
        // Lost-slot check: with no live leases left, every slot's
        // refcount must have returned to 0.
        for idx in 0..state.pool.slot_count() {
            let refs = state.pool.ref_count(idx);
            if refs != 0 {
                return Err(format!(
                    "lost slot: slot {idx} still holds {refs} reference(s)"
                ));
            }
        }
        Ok(())
    }
}

/// Exhaustively check a `slots`-slot ring carrying `messages` messages
/// across every 2-thread interleaving. Returns the exploration totals
/// or the first violating schedule.
pub fn check_slot_ring(
    slots: usize,
    messages: usize,
) -> Result<miniloom::Report, miniloom::Violation> {
    miniloom::explore(&SlotRingModel::new(slots, messages))
}

/// The slot transport with a retransmission ledger as a 3-participant
/// [`miniloom::Model`]: a producer (tid 0) that parks a zero-copy
/// ledger handle ([`Payload::share`]) for every message it pushes, a
/// consumer (tid 1) that deduplicates by tag, and a retransmitter
/// (tid 2) that either *drops* the front ledger lease once the
/// consumer has acknowledged its generation, or pushes a duplicate of
/// it onto the same wire.
///
/// On top of [`SlotRingModel`]'s refcount/ABA machinery this proves
/// the duplicate path: a slot referenced by the ledger, the wire copy,
/// *and* a retransmitted duplicate must count exactly that many
/// references, and the consumer must discard stale duplicates without
/// miscounting deliveries.
pub struct SlotRetransModel {
    /// Payload slots per link.
    pub slots: usize,
    /// Messages the producer stages and pushes.
    pub messages: usize,
    /// Seeded bug: the retransmitter re-stamps each duplicate with a
    /// *fresh* tag instead of the original generation, so the consumer
    /// counts a stale buffer as a new delivery.
    blind_retransmit: bool,
}

impl SlotRetransModel {
    /// A model of a `slots`-slot link carrying `messages` messages
    /// with a correct, ack-respecting retransmitter.
    pub fn new(slots: usize, messages: usize) -> Self {
        SlotRetransModel {
            slots,
            messages,
            blind_retransmit: false,
        }
    }

    /// The deliberately buggy variant: duplicates are re-tagged as
    /// fresh generations. The checker must report a violating schedule.
    pub fn seeded_blind_retransmit(slots: usize, messages: usize) -> Self {
        SlotRetransModel {
            blind_retransmit: true,
            ..SlotRetransModel::new(slots, messages)
        }
    }
}

/// One shadow record of an envelope currently on the wire.
struct WireEntry {
    /// True generation of the buffer contents.
    gen: u32,
    /// Tag actually stamped on the envelope (differs from `gen` only
    /// for the seeded blind-retransmit bug).
    tag: u64,
    /// Slot index if the payload is a lease.
    slot: Option<usize>,
}

/// One execution's state for [`SlotRetransModel`].
pub struct RetransState {
    tx: SlotTx<u32>,
    rx: SlotRx<u32>,
    pool: Arc<SlotPool<u32>>,
    stats: PoolStats,
    /// Staged but not yet pushed (at most one: stage/push alternate).
    staged: Option<(u32, Payload<u32>)>,
    /// Parked ledger handles, oldest generation first.
    ledger: VecDeque<(u32, Payload<u32>)>,
    /// Envelopes pushed but not yet popped, in wire FIFO order.
    wire: VecDeque<WireEntry>,
    /// Fresh deliveries popped but not yet released.
    held: VecDeque<(u32, Payload<u32>)>,
    /// Next fresh generation the consumer expects.
    next_pop: u32,
    /// Tag counter for the seeded blind-retransmit bug.
    restamp: u64,
}

impl RetransState {
    /// Slot index and multiplicity of every live lease handle.
    fn live_slot_counts(&self, slot_count: usize) -> Vec<u32> {
        let mut counts = vec![0u32; slot_count];
        let staged = self.staged.iter().filter_map(|(_, p)| lease_slot(p));
        let ledger = self.ledger.iter().filter_map(|(_, p)| lease_slot(p));
        let wire = self.wire.iter().filter_map(|e| e.slot);
        let held = self.held.iter().filter_map(|(_, p)| lease_slot(p));
        for idx in staged.chain(ledger).chain(wire).chain(held) {
            counts[idx] += 1;
        }
        counts
    }

    /// Pop one envelope and run the receiver's dedup logic: a tag equal
    /// to the expected generation is a fresh delivery, a smaller tag is
    /// a stale duplicate to discard, a larger one is a protocol error.
    fn pop_checked(&mut self) -> Result<bool, String> {
        let Some(env) = self.rx.try_pop() else {
            return Ok(false);
        };
        let Some(entry) = self.wire.pop_front() else {
            return Err(format!("popped tag {} but nothing is on the wire", env.tag));
        };
        if env.tag != entry.tag {
            return Err(format!(
                "wire reordered: popped tag {}, shadow front says {}",
                env.tag, entry.tag
            ));
        }
        if env.tag == u64::from(self.next_pop) {
            // Fresh delivery: the buffer must carry the tag's data.
            check_contents("delivered", env.tag as u32, &env.payload)?;
            self.next_pop += 1;
            self.held.push_back((entry.gen, env.payload));
        } else if env.tag < u64::from(self.next_pop) {
            // Stale duplicate: verify and discard immediately.
            check_contents("duplicate", entry.gen, &env.payload)?;
            self.rx.reclaim(env.payload, &mut self.stats);
        } else {
            return Err(format!(
                "message from the future: tag {} while expecting generation {}",
                env.tag, self.next_pop
            ));
        }
        Ok(true)
    }
}

impl miniloom::Model for SlotRetransModel {
    type State = RetransState;

    fn init(&self) -> RetransState {
        let (tx, rx, pool) = make_slot_link_raw(self.slots);
        RetransState {
            tx,
            rx,
            pool,
            stats: PoolStats::default(),
            staged: None,
            ledger: VecDeque::new(),
            wire: VecDeque::new(),
            held: VecDeque::new(),
            next_pop: 0,
            restamp: self.messages as u64,
        }
    }

    fn threads(&self) -> usize {
        3
    }

    fn steps(&self, tid: usize) -> usize {
        match tid {
            // Producer stages + pushes, consumer pops + releases.
            0 | 1 => 2 * self.messages,
            // Retransmitter: one ledger action per message.
            _ => self.messages,
        }
    }

    fn step(&self, state: &mut RetransState, tid: usize, idx: usize) -> Result<(), String> {
        match tid {
            0 => {
                if idx.is_multiple_of(2) {
                    // Stage generation idx/2 and park a ledger handle on
                    // the same buffer before it ever hits the wire.
                    let gen = (idx / 2) as u32;
                    let mut payload = state.tx.stage_with_budget(
                        &mut state.stats,
                        &mut |buf| {
                            buf.clear();
                            buf.resize(PAYLOAD_LEN, gen);
                        },
                        0,
                    );
                    state.ledger.push_back((gen, payload.share()));
                    state.staged = Some((gen, payload));
                } else if let Some((gen, payload)) = state.staged.take() {
                    let slot = lease_slot(&payload);
                    state
                        .tx
                        .push(Envelope {
                            tag: u64::from(gen),
                            payload,
                            seq: 0,
                            ready_at: Instant::now(),
                        })
                        .map_err(|_| "receiver vanished mid-run".to_string())?;
                    state.wire.push_back(WireEntry {
                        gen,
                        tag: u64::from(gen),
                        slot,
                    });
                }
            }
            1 => {
                if idx.is_multiple_of(2) {
                    state.pop_checked()?;
                } else if let Some((gen, payload)) = state.held.pop_front() {
                    check_contents("held", gen, &payload)?;
                    state.rx.reclaim(payload, &mut state.stats);
                }
            }
            _ => {
                let acked = state
                    .ledger
                    .front()
                    .is_some_and(|(gen, _)| *gen < state.next_pop);
                if acked {
                    // The consumer confirmed this generation: drop the
                    // parked lease so the slot can recycle.
                    state.ledger.pop_front();
                } else if let Some((gen, payload)) = state.ledger.front_mut() {
                    // Unacked: push a zero-copy duplicate.
                    let dup = payload.share();
                    let slot = lease_slot(&dup);
                    let gen = *gen;
                    let tag = if self.blind_retransmit {
                        let t = state.restamp;
                        state.restamp += 1;
                        t
                    } else {
                        u64::from(gen)
                    };
                    state
                        .tx
                        .push(Envelope {
                            tag,
                            payload: dup,
                            seq: 0,
                            ready_at: Instant::now(),
                        })
                        .map_err(|_| "receiver vanished mid-run".to_string())?;
                    state.wire.push_back(WireEntry { gen, tag, slot });
                }
            }
        }
        Ok(())
    }

    fn invariant(&self, state: &RetransState) -> Result<(), String> {
        // Refcount exactness, duplicate-aware: a slot's refcount must
        // equal the number of live handles on it (staged + ledger +
        // wire + held), not merely 0 or 1.
        let counts = state.live_slot_counts(state.pool.slot_count());
        for (idx, &expected) in counts.iter().enumerate() {
            let refs = state.pool.ref_count(idx);
            if refs != expected {
                return Err(format!(
                    "slot {idx} refcount {refs}, expected {expected} live handle(s)"
                ));
            }
        }
        // ABA: every inspectable live payload still carries its
        // generation (wire payloads are checked at pop).
        let held = state.staged.iter().chain(&state.ledger).chain(&state.held);
        for (gen, p) in held {
            check_contents("live", *gen, p)?;
        }
        Ok(())
    }

    fn finalize(&self, state: &mut RetransState) -> Result<(), String> {
        // Drain the wire, release deliveries, drop the ledger.
        while state.pop_checked()? {}
        while let Some((gen, payload)) = state.held.pop_front() {
            check_contents("held", gen, &payload)?;
            state.rx.reclaim(payload, &mut state.stats);
        }
        state.ledger.clear();
        if state.next_pop != self.messages as u32 {
            return Err(format!(
                "delivery miscount: {} of {} fresh generations arrived",
                state.next_pop, self.messages
            ));
        }
        for idx in 0..state.pool.slot_count() {
            let refs = state.pool.ref_count(idx);
            if refs != 0 {
                return Err(format!(
                    "lost slot: slot {idx} still holds {refs} reference(s)"
                ));
            }
        }
        Ok(())
    }
}

/// Model-check the 3-participant retransmission protocol (producer,
/// deduplicating consumer, lease-dropping retransmitter) over a
/// `slots`-slot link carrying `messages` messages.
pub fn check_slot_retrans(
    slots: usize,
    messages: usize,
) -> Result<miniloom::Report, miniloom::ExploreError> {
    miniloom::check(
        &SlotRetransModel::new(slots, messages),
        &CheckOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_two_ring_is_clean_across_all_924_interleavings() {
        // slots = 1 → ring capacity 2; 3 messages → 6 steps per thread.
        let report = check_slot_ring(1, 3).expect("no interleaving violates the slot protocol");
        assert_eq!(
            Ok(report.schedules),
            miniloom::schedule_count(&[6, 6]).map_err(|e| e.to_string())
        );
        assert_eq!(report.schedules, 924);
    }

    #[test]
    fn two_slot_ring_is_clean() {
        let report = check_slot_ring(2, 3).expect("no interleaving violates the slot protocol");
        assert_eq!(report.schedules, 924);
    }

    #[test]
    fn checker_detects_a_leaked_lease() {
        // Sanity-check the harness itself: forgetting one lease must
        // trip the lost-slot invariant on the very first schedule.
        let mut model = SlotRingModel::new(2, 2);
        model.leak_one = true;
        let v = miniloom::explore(&model).expect_err("a leak must be caught");
        assert!(v.message.contains("lost slot"), "{v}");
    }

    #[test]
    fn retransmission_protocol_is_clean_across_all_3150_interleavings() {
        // Scripts of 4 + 4 + 2 steps: 10!/(4!·4!·2!) = 3150 merge
        // orders, all explored (the wire serializes every step).
        let report = check_slot_retrans(2, 2).expect("retransmission protocol is clean");
        assert_eq!(report.unreduced, Some(3150));
        assert!(
            report.schedules > 0 && report.schedules <= 3150,
            "{report:?}"
        );
    }

    #[test]
    fn blind_retransmit_restamping_is_caught_with_a_schedule() {
        let model = SlotRetransModel::seeded_blind_retransmit(2, 2);
        let err = miniloom::check(&model, &CheckOptions::default())
            .expect_err("fresh-tagged duplicates must be caught");
        match err {
            miniloom::ExploreError::Violation(v) => {
                assert!(!v.schedule.is_empty(), "needs a concrete prefix");
                assert!(
                    v.message.contains("future") || v.message.contains("delivered"),
                    "{v}"
                );
            }
            other => panic!("expected a Violation, got {other}"),
        }
    }
}
