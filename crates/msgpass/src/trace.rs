//! Wall-clock activity tracing for the thread backend.
//!
//! The simulator (`cluster-sim`) and the real threaded backend emit the
//! **same** trace format: this module re-exports the canonical
//! interval/trace types from [`cluster_sim::trace`] and adds
//! [`WallTrace`], the bridge that converts measured `Instant` pairs into
//! [`SimTime`] intervals against a world-shared epoch
//! ([`crate::thread_backend::ThreadComm::epoch`]). A trace recorded
//! from a real run therefore renders through the exact same Gantt/SVG
//! paths as a simulated one — Fig. 1/Fig. 2 next to their measured
//! counterparts.

pub use cluster_sim::time::SimTime;
pub use cluster_sim::trace::{Activity, Interval, Trace};
use std::time::Instant;

/// Per-rank wall-clock trace recorder: measured `[start, end]` instants
/// become [`SimTime`] intervals relative to the world epoch.
#[derive(Debug)]
pub struct WallTrace {
    rank: usize,
    epoch: Instant,
    trace: Trace,
}

impl WallTrace {
    /// A recorder for `rank` measuring against `epoch` (pass
    /// [`crate::thread_backend::ThreadComm::epoch`] so all ranks of one
    /// world share the time origin).
    pub fn new(rank: usize, epoch: Instant) -> Self {
        WallTrace {
            rank,
            epoch,
            trace: Trace::enabled(),
        }
    }

    /// The rank this recorder stamps on every interval.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Record one measured activity interval. Instants before the epoch
    /// saturate to 0 (cannot happen for activities inside the world).
    pub fn record(&mut self, activity: Activity, start: Instant, end: Instant) {
        let s = SimTime::from_nanos(start.saturating_duration_since(self.epoch).as_nanos() as u64);
        let e = SimTime::from_nanos(end.saturating_duration_since(self.epoch).as_nanos() as u64);
        self.trace.record(self.rank, activity, s, e);
    }

    /// Finish recording, yielding the rank's trace (merge the ranks of
    /// one world with [`Trace::extend`]).
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn instants_map_onto_epoch_relative_simtime() {
        let epoch = Instant::now();
        let mut w = WallTrace::new(3, epoch);
        let a = epoch + Duration::from_micros(10);
        let b = epoch + Duration::from_micros(25);
        w.record(Activity::Compute, a, b);
        let tr = w.into_trace();
        assert_eq!(tr.intervals().len(), 1);
        let iv = tr.intervals()[0];
        assert_eq!(iv.rank, 3);
        assert_eq!(iv.start, SimTime::from_us(10.0));
        assert_eq!(iv.end, SimTime::from_us(25.0));
    }

    #[test]
    fn pre_epoch_instants_saturate() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let epoch = Instant::now();
        let mut w = WallTrace::new(0, epoch);
        w.record(Activity::Compute, early, epoch + Duration::from_micros(5));
        let tr = w.into_trace();
        assert_eq!(tr.intervals()[0].start, SimTime::ZERO);
    }

    #[test]
    fn zero_step_run_yields_a_renderable_empty_trace() {
        // A zero-step pipeline records nothing; the rendering paths
        // must still produce valid (if empty) output from it.
        let w = WallTrace::new(0, Instant::now());
        assert_eq!(w.rank(), 0);
        let tr = w.into_trace();
        assert!(tr.intervals().is_empty());
        assert_eq!(tr.horizon(), SimTime::ZERO);
        let g = tr.gantt(&[0], tr.horizon(), 20);
        assert!(g.starts_with("P0"));
        let svg = tr.to_svg(&[0], tr.horizon(), 300);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn zero_length_interval_is_dropped() {
        let epoch = Instant::now();
        let mut w = WallTrace::new(0, epoch);
        let t = epoch + Duration::from_micros(5);
        w.record(Activity::Compute, t, t);
        assert!(w.into_trace().intervals().is_empty());
    }

    #[test]
    fn per_rank_traces_merge_into_world_trace() {
        let epoch = Instant::now();
        let mut a = WallTrace::new(0, epoch);
        let mut b = WallTrace::new(1, epoch);
        a.record(Activity::Compute, epoch, epoch + Duration::from_micros(4));
        b.record(
            Activity::Idle,
            epoch + Duration::from_micros(2),
            epoch + Duration::from_micros(9),
        );
        let mut world = Trace::enabled();
        world.extend(a.into_trace());
        world.extend(b.into_trace());
        assert_eq!(world.for_rank(0).count(), 1);
        assert_eq!(world.for_rank(1).count(), 1);
        assert_eq!(world.horizon(), SimTime::from_us(9.0));
    }
}
