//! The message-passing interface used by the distributed executors.
//!
//! A deliberately MPI-shaped API: blocking `send`/`recv` (the paper's
//! §3 non-overlapping executor) and non-blocking `isend`/`irecv`/`wait`
//! (the §4 overlapping executor). Matching is by `(peer rank, tag)` in
//! FIFO order, like MPI with a fixed communicator.
//!
//! The `try_*` variants are the fallible face of the same operations:
//! on a reliability-enabled world (see
//! [`crate::thread_backend::WorldConfig`]) they surface a typed
//! [`CommError`] — timeout, sequence gap, peer failure — instead of
//! blocking forever or panicking. The default implementations simply
//! delegate to the infallible methods, so observers and recording
//! wrappers keep working unchanged.

use std::fmt;
use std::time::Duration;

/// A tag disambiguating messages between the same pair of ranks.
pub type Tag = u64;

/// Why a communication operation failed on a reliability-enabled
/// world. The infallible [`Communicator`] methods never return these —
/// they keep MPI's abort-on-error behavior — but the `try_*` variants
/// surface them so the engine can fail a run cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the configured retry
    /// schedule.
    Timeout {
        /// The peer the receive was posted against.
        from: usize,
        /// The expected tag.
        tag: Tag,
        /// Total time spent waiting across all attempts.
        waited: Duration,
        /// Number of retry attempts made.
        retries: u32,
    },
    /// The sender committed a message that can no longer be delivered
    /// or recovered — an unrecoverable loss on the link.
    SequenceGap {
        /// The peer the receive was posted against.
        from: usize,
        /// The expected tag.
        tag: Tag,
        /// The sequence number that can never arrive.
        seq: u64,
    },
    /// The peer's channel closed before the expected message arrived
    /// (its thread exited or panicked).
    PeerClosed {
        /// The rank whose channel hung up.
        peer: usize,
    },
    /// The matched message's length differs from the receive buffer's.
    SizeMismatch {
        /// The sending peer.
        from: usize,
        /// The message tag.
        tag: Tag,
        /// Received payload length.
        got: usize,
        /// Expected payload length.
        want: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                from,
                tag,
                waited,
                retries,
            } => write!(
                f,
                "receive (from {from}, tag {tag}) timed out after {waited:?} and {retries} retries"
            ),
            CommError::SequenceGap { from, tag, seq } => write!(
                f,
                "sequence gap (from {from}, tag {tag}): message #{seq} was sent but is unrecoverable"
            ),
            CommError::PeerClosed { peer } => {
                write!(f, "peer {peer} hung up before sending expected message")
            }
            CommError::SizeMismatch {
                from,
                tag,
                got,
                want,
            } => write!(
                f,
                "message length mismatch (from {from}, tag {tag}): got {got}, want {want}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Handle for an in-flight non-blocking send.
#[derive(Debug)]
#[must_use = "a send request must be waited on before its buffer is reused"]
pub struct SendRequest {
    /// Backend-assigned request identifier (kept for tracing/debugging).
    #[allow(dead_code)]
    pub(crate) id: u64,
}

/// Handle for an in-flight non-blocking receive.
#[derive(Debug)]
#[must_use = "a receive request must be waited on to obtain the data"]
pub struct RecvRequest {
    pub(crate) from: usize,
    pub(crate) tag: Tag,
}

/// A process-group communicator carrying `Vec<T>` payloads.
///
/// Implementations: [`crate::thread_backend::ThreadComm`] (real OS
/// threads with injected wire latency — communication genuinely
/// overlaps computation in wall-clock time).
pub trait Communicator<T: Send + 'static> {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of processes.
    fn size(&self) -> usize;

    /// Blocking send (`MPI_Send`): returns when the payload has been
    /// handed to the transport *and* the modeled transmission time has
    /// elapsed on the caller (Fig. 7 of the paper).
    fn send(&mut self, to: usize, tag: Tag, data: Vec<T>);

    /// Blocking receive (`MPI_Recv`).
    fn recv(&mut self, from: usize, tag: Tag) -> Vec<T>;

    /// Non-blocking send (`MPI_Isend`): hands the payload to the
    /// transport and returns immediately.
    fn isend(&mut self, to: usize, tag: Tag, data: Vec<T>) -> SendRequest;

    /// Non-blocking receive (`MPI_Irecv`): registers interest and
    /// returns immediately.
    fn irecv(&mut self, from: usize, tag: Tag) -> RecvRequest;

    /// Complete a non-blocking send (`MPI_Wait`).
    fn wait_send(&mut self, req: SendRequest);

    /// Complete a non-blocking receive (`MPI_Wait`), yielding the data.
    fn wait_recv(&mut self, req: RecvRequest) -> Vec<T>;

    /// Block until every rank has entered the barrier.
    fn barrier(&mut self);

    // ---- persistent-buffer API ----------------------------------------
    //
    // MPI-persistent-request-style variants that let callers keep
    // ownership of their buffers across steps. The default
    // implementations fall back to the owning `Vec` methods (one
    // allocation per call); backends with a buffer pool — notably
    // `ThreadComm` — override them so steady-state pipeline steps
    // allocate nothing.

    /// Blocking send out of a caller-owned buffer (`MPI_Send` on a
    /// persistent buffer). The caller may reuse `data` immediately after
    /// the call returns.
    fn send_from(&mut self, to: usize, tag: Tag, data: &[T])
    where
        T: Copy,
    {
        self.send(to, tag, data.to_vec());
    }

    /// Non-blocking send out of a caller-owned buffer (`MPI_Isend` on a
    /// persistent buffer). The transport copies `data` before returning,
    /// so the caller may reuse the buffer immediately — no need to hold
    /// it until `wait_send`.
    fn isend_from(&mut self, to: usize, tag: Tag, data: &[T]) -> SendRequest
    where
        T: Copy,
    {
        self.isend(to, tag, data.to_vec())
    }

    /// Blocking receive into a caller-owned buffer (`MPI_Recv` on a
    /// persistent buffer). Panics if the message length differs from
    /// `out.len()`.
    fn recv_into(&mut self, from: usize, tag: Tag, out: &mut [T])
    where
        T: Copy,
    {
        let data = self.recv(from, tag);
        assert_eq!(
            data.len(),
            out.len(),
            "recv_into: message length mismatch (from {from}, tag {tag})"
        );
        out.copy_from_slice(&data);
    }

    /// Complete a non-blocking receive into a caller-owned buffer.
    /// Panics if the message length differs from `out.len()`.
    fn wait_recv_into(&mut self, req: RecvRequest, out: &mut [T])
    where
        T: Copy,
    {
        let data = self.wait_recv(req);
        assert_eq!(
            data.len(),
            out.len(),
            "wait_recv_into: message length mismatch"
        );
        out.copy_from_slice(&data);
    }

    // ---- fallible API --------------------------------------------------
    //
    // The engine drives these. On a plain world they are the infallible
    // operations (the defaults below delegate and can only return `Ok`);
    // on a reliability-enabled `ThreadComm` world they surface typed
    // `CommError`s — timeouts, sequence gaps, peer failures — instead of
    // hanging or panicking.

    /// Fallible [`Communicator::recv_into`].
    fn try_recv_into(&mut self, from: usize, tag: Tag, out: &mut [T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        self.recv_into(from, tag, out);
        Ok(())
    }

    /// Fallible [`Communicator::wait_recv_into`].
    fn try_wait_recv_into(&mut self, req: RecvRequest, out: &mut [T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        self.wait_recv_into(req, out);
        Ok(())
    }

    /// Fallible [`Communicator::send_from`].
    fn try_send_from(&mut self, to: usize, tag: Tag, data: &[T]) -> Result<(), CommError>
    where
        T: Copy,
    {
        self.send_from(to, tag, data);
        Ok(())
    }

    /// Fallible [`Communicator::isend_from`].
    fn try_isend_from(&mut self, to: usize, tag: Tag, data: &[T]) -> Result<SendRequest, CommError>
    where
        T: Copy,
    {
        Ok(self.isend_from(to, tag, data))
    }

    /// Fallible [`Communicator::wait_send`].
    fn try_wait_send(&mut self, req: SendRequest) -> Result<(), CommError> {
        self.wait_send(req);
        Ok(())
    }

    // ---- zero-copy staging API ----------------------------------------
    //
    // The slot-transport entry points: instead of handing the transport
    // a finished buffer (which it must then copy into wire storage),
    // the caller receives the wire storage itself and packs directly
    // into it — on `ThreadComm` with `TransportKind::SharedSlots` that
    // storage is the peer-visible slot, so the halo face is written
    // exactly once end to end. The defaults stage through a scratch
    // vector and delegate to the `_from`/`_into` operations, so
    // recording wrappers and plain backends compose unchanged.

    /// Blocking send of a `len`-element payload packed in place by
    /// `fill`, which receives the (zeroed or stale) wire buffer and
    /// must overwrite all of it.
    fn try_send_with(
        &mut self,
        to: usize,
        tag: Tag,
        len: usize,
        fill: &mut dyn FnMut(&mut [T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        let mut buf = vec![T::default(); len];
        fill(&mut buf);
        self.try_send_from(to, tag, &buf)
    }

    /// Non-blocking send of a `len`-element payload packed in place by
    /// `fill` (see [`Communicator::try_send_with`]).
    fn try_isend_with(
        &mut self,
        to: usize,
        tag: Tag,
        len: usize,
        fill: &mut dyn FnMut(&mut [T]),
    ) -> Result<SendRequest, CommError>
    where
        T: Copy + Default,
    {
        let mut buf = vec![T::default(); len];
        fill(&mut buf);
        self.try_isend_from(to, tag, &buf)
    }

    /// Blocking receive of a `want`-element payload consumed in place
    /// by `take`, which reads directly from wire storage (the
    /// peer-visible slot on a slot-transport world). Fails with
    /// [`CommError::SizeMismatch`] if the message length differs.
    fn try_recv_with(
        &mut self,
        from: usize,
        tag: Tag,
        want: usize,
        take: &mut dyn FnMut(&[T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        let mut buf = vec![T::default(); want];
        self.try_recv_into(from, tag, &mut buf)?;
        take(&buf);
        Ok(())
    }

    /// Complete a non-blocking receive, consuming the payload in place
    /// (see [`Communicator::try_recv_with`]).
    fn try_wait_recv_with(
        &mut self,
        req: RecvRequest,
        want: usize,
        take: &mut dyn FnMut(&[T]),
    ) -> Result<(), CommError>
    where
        T: Copy + Default,
    {
        let mut buf = vec![T::default(); want];
        self.try_wait_recv_into(req, &mut buf)?;
        take(&buf);
        Ok(())
    }
}
