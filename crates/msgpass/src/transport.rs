//! Transport abstraction of the threaded backend: a directed link is a
//! `(LinkTx, LinkRx)` endpoint pair moving [`Envelope`]s whose payloads
//! are [`Payload`]s — owned vectors, refcounted shared vectors, or
//! zero-copy slot leases ([`crate::slot_transport`]).
//!
//! Two implementations exist behind the traits:
//!
//! * **mpsc** (the default, [`TransportKind::Mpsc`]): `std::sync::mpsc`
//!   channels plus a reverse buffer-return channel per link, recycling
//!   send buffers after a warm-up — the PR-1 persistent-buffer pool.
//! * **shared slots** ([`TransportKind::SharedSlots`]): per-link SPSC
//!   rings of fixed-capacity slots. `stage` packs the payload directly
//!   into peer-visible slot memory and the receiver reads straight out
//!   of it, so a steady-state halo exchange allocates nothing and
//!   copies each face exactly once on each side (pack, unpack) — the
//!   paper's B₂/B₃ buffer-copy phases drop out of the on-node path.
//!
//! The reliability layer composes with both: instead of cloning a
//! payload into the retransmission ledger or a duplicate message, it
//! calls [`Payload::share`], which refcounts one buffer (an
//! `Arc<Vec<T>>` on the mpsc path, a slot lease on the slot path).

use crate::comm::Tag;
use crate::slot_transport::SlotLease;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Buffer-pool counters of one rank's transport endpoints (see
/// `ThreadComm::pool_stats`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Payload buffers that had to grow or be allocated (warm-up, or a
    /// pool/ring falling back to an owned copy under pressure).
    pub fresh_allocs: u64,
    /// Sends served entirely from recycled transport storage
    /// (steady state).
    pub recycled: u64,
    /// Consumed receive payloads handed back to the transport.
    pub returned: u64,
}

/// Which wire implementation a world's links use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// `std::sync::mpsc` channels with a buffer-return pool (fallback;
    /// every envelope costs one queue-node allocation).
    #[default]
    Mpsc,
    /// Shared-memory SPSC slot rings: zero-copy, zero steady-state
    /// allocations.
    SharedSlots {
        /// Payload slots per directed link. Must cover the link's
        /// maximum number of in-flight messages or senders fall back
        /// to owned copies (correct, but allocating).
        slots: usize,
    },
}

impl TransportKind {
    /// Shared-slot transport with a default slot count generous enough
    /// for the engine's overlap depth (≤ 3 in-flight per link).
    pub fn shared_slots() -> Self {
        TransportKind::SharedSlots { slots: 8 }
    }
}

/// A message payload. The transport decides the representation; every
/// consumer goes through [`Payload::as_slice`] / [`Payload::into_vec`].
pub enum Payload<T> {
    /// A plain owned vector (mpsc path, or a slot ring's overflow copy).
    Owned(Vec<T>),
    /// A refcounted vector: the reliability layer's way of parking the
    /// same buffer in the ledger and on the wire without copying.
    Shared(Arc<Vec<T>>),
    /// A zero-copy lease on a transport slot; the slot is not reused
    /// until every lease (wire, stash, ledger) is dropped.
    Lease(SlotLease<T>),
}

impl<T> Payload<T> {
    /// The payload contents.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => a,
            Payload::Lease(l) => l.as_slice(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// A second handle on the same buffer, without copying the data:
    /// an owned vector is promoted to `Shared` in place, shared and
    /// leased payloads just bump a refcount. This is what the fault
    /// layer uses for duplicates and ledger parking.
    pub fn share(&mut self) -> Payload<T> {
        match self {
            Payload::Owned(v) => {
                let arc = Arc::new(std::mem::take(v));
                *self = Payload::Shared(Arc::clone(&arc));
                Payload::Shared(arc)
            }
            Payload::Shared(a) => Payload::Shared(Arc::clone(a)),
            Payload::Lease(l) => Payload::Lease(l.clone()),
        }
    }
}

impl<T: Clone> Payload<T> {
    /// Extract an owned vector, copying only when the buffer is still
    /// shared with another holder.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| a.as_ref().clone()),
            Payload::Lease(l) => l.as_slice().to_vec(),
        }
    }
}

/// One message on a directed link.
pub struct Envelope<T> {
    /// Application tag (see `stencil::proto` for the wire encoding).
    pub tag: Tag,
    /// The payload, in whatever representation the transport staged.
    pub payload: Payload<T>,
    /// Per-`(src, dst, tag)` occurrence index, stamped only on
    /// reliability-enabled worlds (always 0 otherwise).
    pub seq: u64,
    /// Receiver may not consume the message before this instant.
    pub ready_at: Instant,
}

/// The peer endpoint of a link is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

/// Sender half of one directed link.
pub trait LinkTx<T>: Send {
    /// Obtain transport-owned storage for an outgoing payload, let
    /// `fill` write it (the closure must leave the buffer holding the
    /// complete payload — resize first, then overwrite every element),
    /// and wrap it for transmission. This is where the slot transport
    /// hands out peer-visible memory; the mpsc transport hands out a
    /// pooled vector.
    fn stage(&mut self, stats: &mut PoolStats, fill: &mut dyn FnMut(&mut Vec<T>)) -> Payload<T>;

    /// Queue a staged envelope on the wire (FIFO per link).
    fn push(&mut self, env: Envelope<T>) -> Result<(), LinkClosed>;
}

/// Receiver half of one directed link.
pub trait LinkRx<T>: Send {
    /// Non-blocking pop of the next envelope in link order.
    fn try_pop(&mut self) -> Option<Envelope<T>>;

    /// Block until an envelope arrives; `Err` when the sender is gone
    /// and the link is drained.
    fn pop_blocking(&mut self) -> Result<Envelope<T>, LinkClosed>;

    /// Block up to `timeout`; `Ok(None)` on timeout, `Err` when the
    /// sender is gone and the link is drained.
    fn pop_timeout(&mut self, timeout: Duration) -> Result<Option<Envelope<T>>, LinkClosed>;

    /// Hand a consumed payload back to the transport (return a pooled
    /// buffer to its sender, release a slot lease).
    fn reclaim(&mut self, payload: Payload<T>, stats: &mut PoolStats);
}

/// Build one directed link of the given kind. `backoff_cap` bounds the
/// longest single park of the slot transport's backpressure backoff
/// (ignored by the mpsc transport, which blocks in the channel).
pub(crate) fn make_link<T: Send + Sync + 'static>(
    kind: TransportKind,
    backoff_cap: std::time::Duration,
) -> (Box<dyn LinkTx<T>>, Box<dyn LinkRx<T>>) {
    match kind {
        TransportKind::Mpsc => {
            let (data_tx, data_rx) = channel();
            let (pool_tx, pool_rx) = channel();
            (
                Box::new(MpscTx {
                    data: data_tx,
                    pool: pool_rx,
                }),
                Box::new(MpscRx {
                    data: data_rx,
                    pool: pool_tx,
                }),
            )
        }
        TransportKind::SharedSlots { slots } => {
            crate::slot_transport::make_slot_link(slots, backoff_cap)
        }
    }
}

/// Sender half of an mpsc link: data channel out, buffer pool back.
struct MpscTx<T> {
    data: Sender<Envelope<T>>,
    pool: Receiver<Vec<T>>,
}

/// Receiver half of an mpsc link.
struct MpscRx<T> {
    data: Receiver<Envelope<T>>,
    pool: Sender<Vec<T>>,
}

impl<T: Send + Sync> LinkTx<T> for MpscTx<T> {
    fn stage(&mut self, stats: &mut PoolStats, fill: &mut dyn FnMut(&mut Vec<T>)) -> Payload<T> {
        let mut buf = match self.pool.try_recv() {
            Ok(b) => {
                stats.recycled += 1;
                b
            }
            Err(_) => {
                stats.fresh_allocs += 1;
                Vec::new()
            }
        };
        fill(&mut buf);
        Payload::Owned(buf)
    }

    fn push(&mut self, env: Envelope<T>) -> Result<(), LinkClosed> {
        self.data.send(env).map_err(|_| LinkClosed)
    }
}

impl<T: Send + Sync> LinkRx<T> for MpscRx<T> {
    fn try_pop(&mut self) -> Option<Envelope<T>> {
        self.data.try_recv().ok()
    }

    fn pop_blocking(&mut self) -> Result<Envelope<T>, LinkClosed> {
        self.data.recv().map_err(|_| LinkClosed)
    }

    fn pop_timeout(&mut self, timeout: Duration) -> Result<Option<Envelope<T>>, LinkClosed> {
        match self.data.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkClosed),
        }
    }

    fn reclaim(&mut self, payload: Payload<T>, stats: &mut PoolStats) {
        stats.returned += 1;
        match payload {
            // The sender may already have exited; its pool is then
            // simply dropped.
            Payload::Owned(v) => {
                let _ = self.pool.send(v);
            }
            // A buffer the fault layer shared: recycle it once the
            // last holder lets go, otherwise let the other holders
            // keep it.
            Payload::Shared(a) => {
                if let Ok(v) = Arc::try_unwrap(a) {
                    let _ = self.pool.send(v);
                }
            }
            // Slot leases release themselves on drop (and never occur
            // on an mpsc link anyway).
            Payload::Lease(_) => {}
        }
    }
}
