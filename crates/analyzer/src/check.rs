//! The three pre-flight checks over a symbolic plan: schedule legality
//! against the dependence set, send/receive matching, and deadlock
//! detection by SCC analysis of the cross-rank wait-for graph.

use crate::error::{AnalysisError, Tag, WaitPoint};
use crate::plan::{CommPlan, PlanOp, RankTopology};
use std::collections::HashMap;
use tiling_core::dependence::DependenceSet;
use tiling_core::schedule::{StepPlan, StepStrategy};

/// What a successful analysis proved, plus the plan's headline numbers
/// (rendered by `paper analyze`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Ranks in the world.
    pub ranks: usize,
    /// Pipeline steps per rank.
    pub steps: usize,
    /// Symbolic events across all rank programs.
    pub events: usize,
    /// Matched send/receive pairs.
    pub messages: usize,
    /// Time hyperplanes of the plan over this topology — the eq. 3 /
    /// eq. 4 `P(g)` computed from [`StepPlan::logical_time`] at the
    /// topology's deepest cross-rank hop count.
    pub logical_makespan: i64,
}

/// Check `Π·d^S > 0` for every dependence and, for an overlap plan,
/// the eq.-4 ordering: a dependence with any component off the
/// processor-mapping dimension crosses ranks, so its face spends one
/// full step in flight and must advance `Π·d^S ≥ 2`.
pub fn check_schedule(
    plan: &StepPlan,
    pi: &[i64],
    mapping_dim: usize,
    deps: &DependenceSet,
) -> Result<(), AnalysisError> {
    for d in deps.iter() {
        let dot = d.dot(pi);
        if dot <= 0 {
            return Err(AnalysisError::IllegalSchedule {
                pi: pi.to_vec(),
                dep: d.components().to_vec(),
                dot,
            });
        }
        if plan.strategy() == StepStrategy::Overlap {
            let cross = d
                .components()
                .iter()
                .enumerate()
                .any(|(axis, &c)| axis != mapping_dim && c != 0);
            if cross && dot < 2 {
                return Err(AnalysisError::OverlapOrderingViolation {
                    pi: pi.to_vec(),
                    dep: d.components().to_vec(),
                    dot,
                });
            }
        }
    }
    Ok(())
}

/// A flattened message endpoint, sortable by channel for the
/// merge-based matcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Endpoint {
    from: usize,
    to: usize,
    tag: Tag,
    step: usize,
    len: usize,
}

/// Match every staged send against its peer's receive on (source,
/// destination, tag), in channel order, verifying lengths. Returns the
/// matched-message count.
///
/// The matcher flattens both sides into two pre-sized vectors and
/// merge-walks them sorted — no per-channel maps — so a passing check
/// performs a constant number of allocations regardless of plan depth.
pub fn check_matching(plan: &CommPlan) -> Result<usize, AnalysisError> {
    let total_sends = plan.messages();
    let mut sends: Vec<Endpoint> = Vec::with_capacity(total_sends);
    let mut recvs: Vec<Endpoint> = Vec::with_capacity(plan.events() - total_sends);
    for prog in &plan.programs {
        for op in &prog.ops {
            match *op {
                PlanOp::Send { to, tag, len, step } | PlanOp::PostSend { to, tag, len, step } => {
                    sends.push(Endpoint {
                        from: prog.rank,
                        to,
                        tag,
                        step,
                        len,
                    });
                }
                PlanOp::Recv {
                    from,
                    tag,
                    len,
                    step,
                }
                | PlanOp::PostRecv {
                    from,
                    tag,
                    len,
                    step,
                } => {
                    recvs.push(Endpoint {
                        from,
                        to: prog.rank,
                        tag,
                        step,
                        len,
                    });
                }
                // A WaitRecv consumes the message its PostRecv
                // registered; counting both would double-book it.
                PlanOp::WaitRecv { .. } | PlanOp::WaitSend { .. } | PlanOp::Compute { .. } => {}
            }
        }
    }
    sends.sort_unstable();
    recvs.sort_unstable();

    let channel = |e: &Endpoint| (e.from, e.to, e.tag);
    let mut orphan_sends: Vec<Endpoint> = Vec::new();
    let mut orphan_recvs: Vec<Endpoint> = Vec::new();
    let mut size_mismatch: Option<AnalysisError> = None;
    let (mut i, mut j) = (0, 0);
    let mut matched = 0usize;
    while i < sends.len() || j < recvs.len() {
        if j == recvs.len() || (i < sends.len() && channel(&sends[i]) < channel(&recvs[j])) {
            orphan_sends.push(sends[i]);
            i += 1;
        } else if i == sends.len() || channel(&recvs[j]) < channel(&sends[i]) {
            orphan_recvs.push(recvs[j]);
            j += 1;
        } else {
            let (s, r) = (sends[i], recvs[j]);
            if s.len != r.len && size_mismatch.is_none() {
                size_mismatch = Some(AnalysisError::SizeMismatch {
                    from: s.from,
                    to: s.to,
                    tag: s.tag,
                    step: s.step,
                    send_len: s.len,
                    recv_len: r.len,
                });
            }
            matched += 1;
            i += 1;
            j += 1;
        }
    }

    // A tag mismatch explains an orphan pair on the same (sender,
    // receiver, step) channel better than two separate orphan reports.
    for s in &orphan_sends {
        if let Some(r) = orphan_recvs
            .iter()
            .find(|r| r.from == s.from && r.to == s.to && r.step == s.step)
        {
            return Err(AnalysisError::TagMismatch {
                from: s.from,
                to: s.to,
                step: s.step,
                sent: s.tag,
                expected: r.tag,
            });
        }
    }
    if let Some(e) = size_mismatch {
        return Err(e);
    }
    if let Some(s) = orphan_sends.first() {
        return Err(AnalysisError::UnmatchedSend {
            from: s.from,
            to: s.to,
            tag: s.tag,
            step: s.step,
        });
    }
    if let Some(r) = orphan_recvs.first() {
        return Err(AnalysisError::UnmatchedReceive {
            rank: r.to,
            from: r.from,
            tag: r.tag,
            step: r.step,
        });
    }
    Ok(matched)
}

/// Symbolically execute the plan under the transport's semantics —
/// sends are eager, receives block until the matching send has
/// executed — and, if execution wedges, extract the deadlock cycle
/// from the strongly connected components of the stuck ranks'
/// wait-for graph.
pub fn check_deadlock(plan: &CommPlan) -> Result<(), AnalysisError> {
    let n = plan.programs.len();
    let mut pc = vec![0usize; n];
    // Per (from, to, tag): sends executed minus receives consumed.
    let mut in_flight: HashMap<(usize, usize, Tag), i64> = HashMap::with_capacity(plan.messages());
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for r in 0..n {
            let ops = &plan.programs[r].ops;
            while pc[r] < ops.len() {
                let advance = match ops[pc[r]] {
                    PlanOp::Send { to, tag, .. } | PlanOp::PostSend { to, tag, .. } => {
                        *in_flight.entry((r, to, tag)).or_insert(0) += 1;
                        true
                    }
                    PlanOp::Recv { from, tag, .. } | PlanOp::WaitRecv { from, tag, .. } => {
                        let slot = in_flight.entry((from, r, tag)).or_insert(0);
                        if *slot > 0 {
                            *slot -= 1;
                            true
                        } else {
                            false
                        }
                    }
                    PlanOp::PostRecv { .. } | PlanOp::WaitSend { .. } | PlanOp::Compute { .. } => {
                        true
                    }
                };
                if !advance {
                    break;
                }
                pc[r] += 1;
                progressed = true;
            }
            all_done &= pc[r] == ops.len();
        }
        if all_done {
            return Ok(());
        }
        if !progressed {
            return Err(deadlock_cycle(plan, &pc));
        }
    }
}

/// Build the wait-for graph of the stuck ranks (each blocks on exactly
/// one peer) and report the first strongly connected component with a
/// cycle; if the stuck set has none (a starvation chain into a
/// finished rank), the whole chain is reported.
fn deadlock_cycle(plan: &CommPlan, pc: &[usize]) -> AnalysisError {
    let n = plan.programs.len();
    let wait: Vec<Option<WaitPoint>> = (0..n)
        .map(|r| {
            let ops = &plan.programs[r].ops;
            if pc[r] >= ops.len() {
                return None;
            }
            match ops[pc[r]] {
                PlanOp::Recv {
                    from, tag, step, ..
                }
                | PlanOp::PostRecv {
                    from, tag, step, ..
                }
                | PlanOp::WaitRecv { from, tag, step } => Some(WaitPoint {
                    rank: r,
                    from,
                    tag,
                    step,
                }),
                _ => None,
            }
        })
        .collect();
    if let Some(scc) = cyclic_scc(&wait) {
        let cycle = scc
            .into_iter()
            .filter_map(|r| wait[r].clone())
            .collect::<Vec<_>>();
        return AnalysisError::Deadlock { cycle };
    }
    // No cycle: every stuck rank chains into a rank that already
    // finished — report the full starvation chain.
    AnalysisError::Deadlock {
        cycle: wait.into_iter().flatten().collect(),
    }
}

/// Tarjan's strongly-connected-components algorithm over the wait-for
/// graph (each stuck rank has one out-edge, to the peer it waits on).
/// Returns the members of the first SCC that contains a cycle — more
/// than one rank, or a rank waiting on itself — in rank order.
fn cyclic_scc(wait: &[Option<WaitPoint>]) -> Option<Vec<usize>> {
    let n = wait.len();
    let edge = |r: usize| -> Option<usize> {
        wait[r]
            .as_ref()
            .map(|w| w.from)
            .filter(|&peer| peer < n && wait[peer].is_some())
    };
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut found: Option<Vec<usize>> = None;

    // Iterative Tarjan: each frame is (node, child-visited?). Out-degree
    // is ≤ 1, so the "iterate successors" state is a single bool.
    for start in 0..n {
        if index[start] != usize::MAX || wait[start].is_none() || found.is_some() {
            continue;
        }
        let mut frames: Vec<(usize, bool)> = vec![(start, false)];
        while let Some(&mut (v, ref mut expanded)) = frames.last_mut() {
            if !*expanded {
                *expanded = true;
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
                if let Some(w) = edge(v) {
                    if index[w] == usize::MAX {
                        frames.push((w, false));
                        continue;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut scc = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                let is_cycle = scc.len() > 1 || edge(v) == Some(v);
                if is_cycle && found.is_none() {
                    scc.sort_unstable();
                    found = Some(scc);
                }
            }
        }
    }
    found
}

/// Run the full communication-structure analysis over an explicit
/// symbolic plan: send/receive matching first (a mismatch explains a
/// subsequent wedge better than "deadlock"), then deadlock detection.
/// Returns the matched-message count.
pub fn check_comm_plan(plan: &CommPlan) -> Result<usize, AnalysisError> {
    let matched = check_matching(plan)?;
    check_deadlock(plan)?;
    Ok(matched)
}

/// Everything the pre-flight gate runs, in diagnostic order: schedule
/// legality (`Π·d^S > 0` plus the eq.-4 overlap ordering), symbolic
/// plan construction, send/receive matching, and deadlock detection.
pub fn analyze(
    topo: &dyn RankTopology,
    plan: &StepPlan,
    pi: &[i64],
    mapping_dim: usize,
    deps: &DependenceSet,
) -> Result<AnalysisReport, AnalysisError> {
    check_schedule(plan, pi, mapping_dim, deps)?;
    let comm = CommPlan::build(topo, plan);
    let events = comm.events();
    let messages = check_comm_plan(&comm)?;
    Ok(AnalysisReport {
        ranks: topo.ranks(),
        steps: plan.steps(),
        events,
        messages,
        logical_makespan: logical_makespan(topo, plan),
    })
}

/// The plan's time-hyperplane count over this topology: the engine's
/// [`StepPlan::logical_time`] evaluated at the last step of the rank
/// with the deepest cross-rank hop count — eq. 3's `P(g)` for a
/// blocking plan, eq. 4's `2·Σ_{k≠i} j_k^S + j_i^S` length for an
/// overlap plan.
fn logical_makespan(topo: &dyn RankTopology, plan: &StepPlan) -> i64 {
    if plan.steps() == 0 {
        return 0;
    }
    // Longest hop distance from any source rank, by relaxation over the
    // downstream edges (rank graphs are small and acyclic; bail to the
    // local depth if a cyclic custom topology never settles).
    let n = topo.ranks();
    let mut depth = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for r in 0..n {
            for dir in 0..topo.num_dirs() {
                if let Some(to) = topo.downstream(r, dir) {
                    if to < n && depth[to] < depth[r] + 1 {
                        depth[to] = depth[r] + 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let hops = depth.iter().copied().max().unwrap_or(0);
    plan.logical_time(hops, (plan.steps() - 1) as i64) + 1
}
