//! # analyzer — pre-flight static analysis of distributed tile plans
//!
//! The chaos layer (`msgpass::faults`) and the reliability ledger prove
//! the runtime *recovers* from injected failures; this crate proves a
//! plan is *well-formed before any thread spawns*. Given a
//! [`StepPlan`], a [`RankTopology`] describing who exchanges which
//! halo faces, and the algorithm's [`DependenceSet`], the analyzer:
//!
//! 1. verifies the schedule is legal — `Π·d^S > 0` for every
//!    dependence, plus the eq.-4 overlap ordering (a cross-processor
//!    dependence must advance ≥ 2 time steps, because its face spends
//!    one full step in flight);
//! 2. replays the engine's event loops symbolically into a
//!    [`CommPlan`] and matches every staged send against its peer's
//!    receive on (rank, tag, size, step);
//! 3. symbolically executes the plan under the transport's semantics
//!    (eager sends, blocking receives) and, if it wedges, extracts the
//!    deadlock cycle from the SCC of the cross-rank wait-for graph.
//!
//! Failures are typed [`AnalysisError`]s naming the offending (rank,
//! step, tag) — the information a hang destroys. The stencil engine
//! runs [`analyze`] up front on every `run_dist*` entry point (opt out
//! with `WorldConfig::without_preflight` for benchmarks); `paper
//! analyze` sweeps every shipped configuration through it.
//!
//! [`StepPlan`]: tiling_core::schedule::StepPlan
//! [`DependenceSet`]: tiling_core::dependence::DependenceSet

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod error;
pub mod plan;

pub use check::{
    analyze, check_comm_plan, check_deadlock, check_matching, check_schedule, AnalysisReport,
};
pub use error::{AnalysisError, Tag, WaitPoint};
pub use plan::{CommPlan, PlanOp, RankProgram, RankTopology};

#[cfg(test)]
mod tests {
    use super::*;
    use tiling_core::dependence::DependenceSet;
    use tiling_core::schedule::{StepPlan, StepStrategy};

    /// A 1-D chain of `ranks` processors exchanging one face per step
    /// downstream — the shape of the 2-D strip decomposition.
    struct Chain {
        ranks: usize,
        face: usize,
    }

    impl RankTopology for Chain {
        fn ranks(&self) -> usize {
            self.ranks
        }
        fn num_dirs(&self) -> usize {
            1
        }
        fn upstream(&self, rank: usize, _dir: usize) -> Option<usize> {
            rank.checked_sub(1)
        }
        fn downstream(&self, rank: usize, _dir: usize) -> Option<usize> {
            (rank + 1 < self.ranks).then_some(rank + 1)
        }
        fn wire_dir(&self, _dir: usize) -> u64 {
            1
        }
        fn face_len(&self, _rank: usize, _dir: usize, _step: usize) -> usize {
            self.face
        }
    }

    fn chain() -> Chain {
        Chain { ranks: 3, face: 8 }
    }

    #[test]
    fn blocking_chain_plan_is_clean() {
        let plan = StepPlan::new(StepStrategy::Blocking, 4);
        let report =
            analyze(&chain(), &plan, &[1, 1], 0, &DependenceSet::example_1()).expect("legal plan");
        assert_eq!(report.ranks, 3);
        assert_eq!(report.steps, 4);
        // 2 interior channels × 4 steps.
        assert_eq!(report.messages, 8);
        // Eq. 3: P(g) = hops + steps = 2 + 4.
        assert_eq!(report.logical_makespan, 6);
    }

    #[test]
    fn overlap_chain_plan_is_clean() {
        let plan = StepPlan::new(StepStrategy::Overlap, 4);
        let report =
            analyze(&chain(), &plan, &[1, 2], 0, &DependenceSet::example_1()).expect("legal plan");
        assert_eq!(report.messages, 8);
        // Eq. 4: 2·hops + steps = 4 + 4.
        assert_eq!(report.logical_makespan, 8);
    }

    #[test]
    fn zero_step_plan_is_trivially_clean() {
        let plan = StepPlan::new(StepStrategy::Overlap, 0);
        let report =
            analyze(&chain(), &plan, &[1, 2], 0, &DependenceSet::example_1()).expect("empty plan");
        assert_eq!(report.events, 0);
        assert_eq!(report.messages, 0);
        assert_eq!(report.logical_makespan, 0);
    }

    #[test]
    fn comm_plan_event_orders_match_engine_shape() {
        let topo = chain();
        let blocking = CommPlan::build(&topo, &StepPlan::new(StepStrategy::Blocking, 2));
        // Rank 1 (interior): recv, compute, send per step.
        assert_eq!(
            blocking.programs[1].ops,
            vec![
                PlanOp::Recv {
                    from: 0,
                    tag: 1,
                    len: 8,
                    step: 0
                },
                PlanOp::Compute { step: 0 },
                PlanOp::Send {
                    to: 2,
                    tag: 1,
                    len: 8,
                    step: 0
                },
                PlanOp::Recv {
                    from: 0,
                    tag: 3,
                    len: 8,
                    step: 1
                },
                PlanOp::Compute { step: 1 },
                PlanOp::Send {
                    to: 2,
                    tag: 3,
                    len: 8,
                    step: 1
                },
            ]
        );
        let overlap = CommPlan::build(&topo, &StepPlan::new(StepStrategy::Overlap, 2));
        assert_eq!(
            overlap.programs[1].ops,
            vec![
                PlanOp::PostRecv {
                    from: 0,
                    tag: 1,
                    len: 8,
                    step: 0
                },
                PlanOp::PostRecv {
                    from: 0,
                    tag: 3,
                    len: 8,
                    step: 1
                },
                PlanOp::WaitRecv {
                    from: 0,
                    tag: 1,
                    step: 0
                },
                PlanOp::Compute { step: 0 },
                PlanOp::PostSend {
                    to: 2,
                    tag: 1,
                    len: 8,
                    step: 0
                },
                PlanOp::WaitRecv {
                    from: 0,
                    tag: 3,
                    step: 1
                },
                PlanOp::Compute { step: 1 },
                PlanOp::WaitSend { step: 0 },
                PlanOp::PostSend {
                    to: 2,
                    tag: 3,
                    len: 8,
                    step: 1
                },
                PlanOp::WaitSend { step: 1 },
            ]
        );
    }

    #[test]
    fn size_mismatch_is_detected() {
        /// A chain whose interior rank stages a bigger face than its
        /// downstream peer expects.
        struct Lopsided;
        impl RankTopology for Lopsided {
            fn ranks(&self) -> usize {
                2
            }
            fn num_dirs(&self) -> usize {
                1
            }
            fn upstream(&self, rank: usize, _dir: usize) -> Option<usize> {
                rank.checked_sub(1)
            }
            fn downstream(&self, rank: usize, _dir: usize) -> Option<usize> {
                (rank == 0).then_some(1)
            }
            fn wire_dir(&self, _dir: usize) -> u64 {
                0
            }
            fn face_len(&self, rank: usize, _dir: usize, _step: usize) -> usize {
                if rank == 0 {
                    16
                } else {
                    12
                }
            }
        }
        let plan = StepPlan::new(StepStrategy::Blocking, 1);
        let err = analyze(&Lopsided, &plan, &[1, 1], 0, &DependenceSet::example_1())
            .expect_err("sizes disagree");
        assert_eq!(
            err,
            AnalysisError::SizeMismatch {
                from: 0,
                to: 1,
                tag: 0,
                step: 0,
                send_len: 16,
                recv_len: 12,
            }
        );
    }

    #[test]
    fn errors_render_their_coordinates() {
        let e = AnalysisError::UnmatchedSend {
            from: 2,
            to: 3,
            tag: 7,
            step: 1,
        };
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("tag 7"), "{s}");
        assert!(s.contains("step 1"), "{s}");
    }
}
