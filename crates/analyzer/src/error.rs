//! Typed pre-flight analysis failures.
//!
//! Every error names the offending (rank, step, tag) — the information
//! a hang or a chaos-test timeout destroys — so a broken plan is
//! rejected before any thread spawns.

use std::fmt;

/// Message tag, compatible with `msgpass::comm::Tag`.
pub type Tag = u64;

/// One rank's blocked receive inside a deadlock cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitPoint {
    /// The blocked rank.
    pub rank: usize,
    /// The peer it waits on.
    pub from: usize,
    /// The tag it waits for.
    pub tag: Tag,
    /// The pipeline step of the blocked receive.
    pub step: usize,
}

impl fmt::Display for WaitPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} waits on rank {} (tag {}, step {})",
            self.rank, self.from, self.tag, self.step
        )
    }
}

/// Why a plan failed static analysis. Ordered by diagnostic priority:
/// schedule illegality names the root cause of everything downstream,
/// a tag mismatch explains both of its orphan endpoints, and a
/// deadlock cycle is only reported when every message matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The linear schedule violates a dependence: `Π·d^S ≤ 0`, so a
    /// tile would run before an input it consumes.
    IllegalSchedule {
        /// The schedule vector `Π`.
        pi: Vec<i64>,
        /// The violated dependence `d^S`.
        dep: Vec<i64>,
        /// The offending product `Π·d^S`.
        dot: i64,
    },
    /// The eq.-4 overlap ordering is violated: a cross-processor
    /// dependence advances fewer than 2 time steps, so its face would
    /// still be in flight when the consuming tile starts.
    OverlapOrderingViolation {
        /// The schedule vector `Π` (`2·Σ_{k≠i} j_k^S + j_i^S`).
        pi: Vec<i64>,
        /// The cross-processor dependence `d^S`.
        dep: Vec<i64>,
        /// The offending product `Π·d^S` (must be ≥ 2).
        dot: i64,
    },
    /// A sender and its peer disagree on a message's tag: the same
    /// (sender, receiver, step) channel stages one tag and expects
    /// another.
    TagMismatch {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Pipeline step of the exchange.
        step: usize,
        /// The tag the sender stages.
        sent: Tag,
        /// The tag the receiver expects.
        expected: Tag,
    },
    /// A matched send/receive pair disagrees on the face length.
    SizeMismatch {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// The shared message tag.
        tag: Tag,
        /// Pipeline step of the exchange.
        step: usize,
        /// Elements the sender stages.
        send_len: usize,
        /// Elements the receiver expects.
        recv_len: usize,
    },
    /// A staged send that no receive ever consumes — on the real
    /// transport this message would leak a slot lease (or stall a
    /// reliability ledger) forever.
    UnmatchedSend {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// The orphan tag.
        tag: Tag,
        /// Pipeline step of the orphan send.
        step: usize,
    },
    /// A receive that no send ever satisfies — at runtime this rank
    /// would hang (or time out, on a reliability-enabled world).
    UnmatchedReceive {
        /// The starved rank.
        rank: usize,
        /// The peer it expects the message from.
        from: usize,
        /// The expected tag.
        tag: Tag,
        /// Pipeline step of the starved receive.
        step: usize,
    },
    /// A cycle in the cross-rank wait-for graph: every rank in `cycle`
    /// blocks on a receive whose sender is itself blocked further along
    /// the cycle. Found by SCC analysis of the stuck ranks.
    Deadlock {
        /// The blocked receives forming the cycle, in rank order.
        cycle: Vec<WaitPoint>,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::IllegalSchedule { pi, dep, dot } => write!(
                f,
                "illegal schedule: Π = {pi:?} gives Π·d = {dot} ≤ 0 for dependence {dep:?}"
            ),
            AnalysisError::OverlapOrderingViolation { pi, dep, dot } => write!(
                f,
                "overlap ordering violated: cross-processor dependence {dep:?} advances \
                 Π·d = {dot} < 2 time steps under Π = {pi:?} (eq. 4 needs the face one \
                 full step in flight)"
            ),
            AnalysisError::TagMismatch {
                from,
                to,
                step,
                sent,
                expected,
            } => write!(
                f,
                "tag mismatch on rank {from} → rank {to} at step {step}: \
                 sender stages tag {sent}, receiver expects tag {expected}"
            ),
            AnalysisError::SizeMismatch {
                from,
                to,
                tag,
                step,
                send_len,
                recv_len,
            } => write!(
                f,
                "size mismatch on rank {from} → rank {to} (tag {tag}, step {step}): \
                 sender stages {send_len} elements, receiver expects {recv_len}"
            ),
            AnalysisError::UnmatchedSend {
                from,
                to,
                tag,
                step,
            } => write!(
                f,
                "unmatched send: rank {from} → rank {to} (tag {tag}, step {step}) \
                 is never received"
            ),
            AnalysisError::UnmatchedReceive {
                rank,
                from,
                tag,
                step,
            } => write!(
                f,
                "unmatched receive: rank {rank} waits for rank {from} \
                 (tag {tag}, step {step}) but no such send is staged"
            ),
            AnalysisError::Deadlock { cycle } => {
                write!(f, "deadlock cycle across {} ranks: ", cycle.len())?;
                for (i, w) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AnalysisError {}
