//! The symbolic communication plan: every rank's ordered send, receive,
//! wait and compute events, derived from a [`StepPlan`] and a
//! [`RankTopology`] by replaying — symbolically — exactly the loops the
//! engine will run (`stencil::engine::run_blocking` / `run_overlap`).
//!
//! Building the plan is cheap (`O(ranks × steps × dirs)` events) and
//! allocation-frugal: every vector is sized up front, so a pre-flight
//! check adds a constant number of allocations to a run regardless of
//! pipeline depth — the zero-allocation discipline of the executors
//! (`tests/zero_alloc.rs`) is preserved with the checker enabled.

use crate::error::Tag;
use tiling_core::schedule::{StepPlan, StepStrategy};

/// Static description of a world's communication structure: who talks
/// to whom, over which halo directions, with which face sizes. The
/// stencil decompositions implement this for their rank layouts; tests
/// implement it to seed known-bad worlds.
pub trait RankTopology {
    /// Number of ranks in the world.
    fn ranks(&self) -> usize;

    /// Number of halo directions every rank exposes.
    fn num_dirs(&self) -> usize;

    /// The rank `rank` receives `dir`-faces from, if any.
    fn upstream(&self, rank: usize, dir: usize) -> Option<usize>;

    /// The rank `rank` sends its `dir`-face to, if any.
    fn downstream(&self, rank: usize, dir: usize) -> Option<usize>;

    /// The wire-protocol direction code of `dir`.
    fn wire_dir(&self, dir: usize) -> u64;

    /// Element count of the `dir`-face of `step` as staged by `rank`
    /// (and expected by its downstream peer).
    fn face_len(&self, rank: usize, dir: usize, step: usize) -> usize;

    /// The message tag of the `dir`-face of `step` — must agree with
    /// the wire protocol the executors use (`stencil::proto::tag`).
    fn tag(&self, step: usize, dir: usize) -> Tag {
        (step as u64) * 2 + self.wire_dir(dir)
    }
}

/// One symbolic event of a rank's program, in program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOp {
    /// Blocking send (eager protocol: completes locally).
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Face length in elements.
        len: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Posted non-blocking send (also eager).
    PostSend {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Face length in elements.
        len: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Blocking receive: the rank cannot advance past this event until
    /// the matching send has executed.
    Recv {
        /// Source rank.
        from: usize,
        /// Expected tag.
        tag: Tag,
        /// Expected face length in elements.
        len: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Posted non-blocking receive (registration only; the block
    /// happens at the paired [`PlanOp::WaitRecv`]).
    PostRecv {
        /// Source rank.
        from: usize,
        /// Expected tag.
        tag: Tag,
        /// Expected face length in elements.
        len: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Blocking wait on a posted receive.
    WaitRecv {
        /// Source rank.
        from: usize,
        /// Expected tag.
        tag: Tag,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Wait on a posted send (eager protocol: never blocks).
    WaitSend {
        /// Pipeline step the payload belongs to.
        step: usize,
    },
    /// Tile computation.
    Compute {
        /// Pipeline step.
        step: usize,
    },
}

/// One rank's ordered event sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankProgram {
    /// The rank this program belongs to.
    pub rank: usize,
    /// Events in program order.
    pub ops: Vec<PlanOp>,
}

/// The full symbolic plan of a world: one program per rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommPlan {
    /// Programs indexed by rank.
    pub programs: Vec<RankProgram>,
}

impl CommPlan {
    /// Derive the symbolic plan of `plan` over `topo`, replaying the
    /// engine's loops: blocking is *receive → compute → send* per step;
    /// overlap posts the receives of `k+1` and the sends of `k−1`
    /// around the compute of `k`, with the step-0 receive prologue and
    /// the last-tile send epilogue.
    pub fn build(topo: &dyn RankTopology, plan: &StepPlan) -> CommPlan {
        let steps = plan.steps();
        let dirs = topo.num_dirs();
        let mut programs = Vec::with_capacity(topo.ranks());
        for rank in 0..topo.ranks() {
            // Exact-capacity bound: at most 4 communication events plus
            // the compute per (step, dir), plus prologue/epilogue.
            let mut ops = Vec::with_capacity(steps * (4 * dirs + 1) + 3 * dirs);
            if steps > 0 {
                match plan.strategy() {
                    StepStrategy::Blocking => build_blocking(topo, rank, steps, dirs, &mut ops),
                    StepStrategy::Overlap => build_overlap(topo, rank, steps, dirs, &mut ops),
                }
            }
            programs.push(RankProgram { rank, ops });
        }
        CommPlan { programs }
    }

    /// Total events across all programs.
    pub fn events(&self) -> usize {
        self.programs.iter().map(|p| p.ops.len()).sum()
    }

    /// Total staged sends (blocking and posted) across all programs.
    pub fn messages(&self) -> usize {
        self.programs
            .iter()
            .flat_map(|p| p.ops.iter())
            .filter(|op| matches!(op, PlanOp::Send { .. } | PlanOp::PostSend { .. }))
            .count()
    }
}

/// Eq. 3 structure: per step, receive every upstream face, compute,
/// send every downstream face.
fn build_blocking(
    topo: &dyn RankTopology,
    rank: usize,
    steps: usize,
    dirs: usize,
    ops: &mut Vec<PlanOp>,
) {
    for k in 0..steps {
        for dir in 0..dirs {
            if let Some(from) = topo.upstream(rank, dir) {
                ops.push(PlanOp::Recv {
                    from,
                    tag: topo.tag(k, dir),
                    len: topo.face_len(rank, dir, k),
                    step: k,
                });
            }
        }
        ops.push(PlanOp::Compute { step: k });
        for dir in 0..dirs {
            if let Some(to) = topo.downstream(rank, dir) {
                ops.push(PlanOp::Send {
                    to,
                    tag: topo.tag(k, dir),
                    len: topo.face_len(rank, dir, k),
                    step: k,
                });
            }
        }
    }
}

/// Eq. 4 structure: prologue receives for step 0; per step `k`, post
/// the receives of `k+1` and the sends of `k−1`, wait for `k`'s inputs,
/// compute `k`, wait for the posted sends; epilogue ships the last
/// tile's faces.
fn build_overlap(
    topo: &dyn RankTopology,
    rank: usize,
    steps: usize,
    dirs: usize,
    ops: &mut Vec<PlanOp>,
) {
    for dir in 0..dirs {
        if let Some(from) = topo.upstream(rank, dir) {
            ops.push(PlanOp::PostRecv {
                from,
                tag: topo.tag(0, dir),
                len: topo.face_len(rank, dir, 0),
                step: 0,
            });
        }
    }
    for k in 0..steps {
        if k + 1 < steps {
            for dir in 0..dirs {
                if let Some(from) = topo.upstream(rank, dir) {
                    ops.push(PlanOp::PostRecv {
                        from,
                        tag: topo.tag(k + 1, dir),
                        len: topo.face_len(rank, dir, k + 1),
                        step: k + 1,
                    });
                }
            }
        }
        if k >= 1 {
            for dir in 0..dirs {
                if let Some(to) = topo.downstream(rank, dir) {
                    ops.push(PlanOp::PostSend {
                        to,
                        tag: topo.tag(k - 1, dir),
                        len: topo.face_len(rank, dir, k - 1),
                        step: k - 1,
                    });
                }
            }
        }
        for dir in 0..dirs {
            if let Some(from) = topo.upstream(rank, dir) {
                ops.push(PlanOp::WaitRecv {
                    from,
                    tag: topo.tag(k, dir),
                    step: k,
                });
            }
        }
        ops.push(PlanOp::Compute { step: k });
        if k >= 1 {
            for dir in 0..dirs {
                if topo.downstream(rank, dir).is_some() {
                    ops.push(PlanOp::WaitSend { step: k - 1 });
                }
            }
        }
    }
    for dir in 0..dirs {
        if let Some(to) = topo.downstream(rank, dir) {
            ops.push(PlanOp::PostSend {
                to,
                tag: topo.tag(steps - 1, dir),
                len: topo.face_len(rank, dir, steps - 1),
                step: steps - 1,
            });
            ops.push(PlanOp::WaitSend { step: steps - 1 });
        }
    }
}
