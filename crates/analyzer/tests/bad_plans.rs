//! The analyzer's acceptance gauntlet: four known-bad inputs, each of
//! which must be rejected with its *specific* typed error — never a
//! hang, never a generic failure.

use analyzer::{
    check_comm_plan, check_schedule, AnalysisError, CommPlan, PlanOp, RankProgram, WaitPoint,
};
use tiling_core::dependence::DependenceSet;
use tiling_core::schedule::{StepPlan, StepStrategy};

fn world(programs: Vec<Vec<PlanOp>>) -> CommPlan {
    CommPlan {
        programs: programs
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| RankProgram { rank, ops })
            .collect(),
    }
}

/// Bad input 1: sender stages tag 5, receiver expects tag 7 on the
/// same channel and step.
#[test]
fn mismatched_tag_plan_is_rejected() {
    let plan = world(vec![
        vec![PlanOp::Send {
            to: 1,
            tag: 5,
            len: 8,
            step: 0,
        }],
        vec![PlanOp::Recv {
            from: 0,
            tag: 7,
            len: 8,
            step: 0,
        }],
    ]);
    assert_eq!(
        check_comm_plan(&plan),
        Err(AnalysisError::TagMismatch {
            from: 0,
            to: 1,
            step: 0,
            sent: 5,
            expected: 7,
        })
    );
}

/// Bad input 2: a send whose peer never posts any receive.
#[test]
fn send_without_receive_is_rejected() {
    let plan = world(vec![
        vec![
            PlanOp::Compute { step: 0 },
            PlanOp::Send {
                to: 1,
                tag: 0,
                len: 4,
                step: 0,
            },
        ],
        vec![PlanOp::Compute { step: 0 }],
    ]);
    assert_eq!(
        check_comm_plan(&plan),
        Err(AnalysisError::UnmatchedSend {
            from: 0,
            to: 1,
            tag: 0,
            step: 0,
        })
    );
}

/// Bad input 3: a two-rank wait-for cycle. Every message has a
/// matching peer — the matcher passes — but each rank's blocking
/// receive precedes the send its peer is waiting for, so symbolic
/// execution wedges and SCC analysis names the cycle.
#[test]
fn cyclic_wait_for_graph_is_rejected_as_deadlock() {
    let plan = world(vec![
        vec![
            PlanOp::Recv {
                from: 1,
                tag: 0,
                len: 4,
                step: 0,
            },
            PlanOp::Send {
                to: 1,
                tag: 1,
                len: 4,
                step: 0,
            },
        ],
        vec![
            PlanOp::Recv {
                from: 0,
                tag: 1,
                len: 4,
                step: 0,
            },
            PlanOp::Send {
                to: 0,
                tag: 0,
                len: 4,
                step: 0,
            },
        ],
    ]);
    assert_eq!(
        check_comm_plan(&plan),
        Err(AnalysisError::Deadlock {
            cycle: vec![
                WaitPoint {
                    rank: 0,
                    from: 1,
                    tag: 0,
                    step: 0,
                },
                WaitPoint {
                    rank: 1,
                    from: 0,
                    tag: 1,
                    step: 0,
                },
            ],
        })
    );
}

/// Bad input 4: an illegal schedule — `Π = [1, −1]` gives
/// `Π·(1,1) = 0` for Example 1's diagonal dependence.
#[test]
fn illegal_schedule_is_rejected() {
    let plan = StepPlan::new(StepStrategy::Blocking, 4);
    assert_eq!(
        check_schedule(&plan, &[1, -1], 0, &DependenceSet::example_1()),
        Err(AnalysisError::IllegalSchedule {
            pi: vec![1, -1],
            dep: vec![1, 1],
            dot: 0,
        })
    );
}

/// The overlap ordering check (eq. 4): a legal-but-too-tight schedule
/// where a cross-processor dependence advances only 1 time step.
#[test]
fn overlap_ordering_violation_is_rejected() {
    let plan = StepPlan::new(StepStrategy::Overlap, 4);
    // Π = [1, 2] with mapping dim 1: dependence (1, 0) crosses ranks
    // (nonzero off the mapping dim) but only advances 1.
    assert_eq!(
        check_schedule(&plan, &[1, 2], 1, &DependenceSet::example_1()),
        Err(AnalysisError::OverlapOrderingViolation {
            pi: vec![1, 2],
            dep: vec![1, 0],
            dot: 1,
        })
    );
}

/// A receive with no matching send anywhere — distinct from the
/// deadlock case (which only fires when matching succeeds).
#[test]
fn receive_without_send_is_rejected() {
    let plan = world(vec![
        vec![PlanOp::Compute { step: 0 }],
        vec![PlanOp::Recv {
            from: 0,
            tag: 2,
            len: 4,
            step: 1,
        }],
    ]);
    assert_eq!(
        check_comm_plan(&plan),
        Err(AnalysisError::UnmatchedReceive {
            rank: 1,
            from: 0,
            tag: 2,
            step: 1,
        })
    );
}

/// Order sensitivity inside one channel is legal for the engine's
/// plans (tags disambiguate steps); a plan that reuses one tag twice
/// with different payload sizes must still be caught.
#[test]
fn reused_tag_with_diverging_sizes_is_rejected() {
    let plan = world(vec![
        vec![
            PlanOp::Send {
                to: 1,
                tag: 0,
                len: 4,
                step: 0,
            },
            PlanOp::Send {
                to: 1,
                tag: 0,
                len: 6,
                step: 1,
            },
        ],
        vec![
            PlanOp::Recv {
                from: 0,
                tag: 0,
                len: 4,
                step: 0,
            },
            PlanOp::Recv {
                from: 0,
                tag: 0,
                len: 4,
                step: 1,
            },
        ],
    ]);
    assert_eq!(
        check_comm_plan(&plan),
        Err(AnalysisError::SizeMismatch {
            from: 0,
            to: 1,
            tag: 0,
            step: 1,
            send_len: 6,
            recv_len: 4,
        })
    );
}
