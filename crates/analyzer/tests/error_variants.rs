//! One dedicated test per [`AnalysisError`] variant. Each test drives
//! the analyzer itself (never hand-constructs the error it asserts
//! against alone), pins the *exact* variant with all fields, and pins
//! the exact `Display` rendering — the string operators grep in chaos
//! logs, which must not drift silently.

use analyzer::{
    check_comm_plan, check_schedule, AnalysisError, CommPlan, PlanOp, RankProgram, WaitPoint,
};
use tiling_core::dependence::DependenceSet;
use tiling_core::schedule::{StepPlan, StepStrategy};

fn world(programs: Vec<Vec<PlanOp>>) -> CommPlan {
    CommPlan {
        programs: programs
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| RankProgram { rank, ops })
            .collect(),
    }
}

#[test]
fn illegal_schedule_variant_and_display() {
    let plan = StepPlan::new(StepStrategy::Blocking, 4);
    let err = check_schedule(&plan, &[1, -1], 0, &DependenceSet::example_1())
        .expect_err("Π = [1, -1] nullifies the diagonal dependence");
    assert_eq!(
        err,
        AnalysisError::IllegalSchedule {
            pi: vec![1, -1],
            dep: vec![1, 1],
            dot: 0,
        }
    );
    assert_eq!(
        err.to_string(),
        "illegal schedule: Π = [1, -1] gives Π·d = 0 ≤ 0 for dependence [1, 1]"
    );
}

#[test]
fn overlap_ordering_violation_variant_and_display() {
    let plan = StepPlan::new(StepStrategy::Overlap, 4);
    let err = check_schedule(&plan, &[1, 2], 1, &DependenceSet::example_1())
        .expect_err("cross-processor dependence (1, 0) advances only 1 step");
    assert_eq!(
        err,
        AnalysisError::OverlapOrderingViolation {
            pi: vec![1, 2],
            dep: vec![1, 0],
            dot: 1,
        }
    );
    assert_eq!(
        err.to_string(),
        "overlap ordering violated: cross-processor dependence [1, 0] advances \
         Π·d = 1 < 2 time steps under Π = [1, 2] (eq. 4 needs the face one \
         full step in flight)"
    );
}

#[test]
fn tag_mismatch_variant_and_display() {
    let plan = world(vec![
        vec![PlanOp::Send {
            to: 1,
            tag: 5,
            len: 8,
            step: 0,
        }],
        vec![PlanOp::Recv {
            from: 0,
            tag: 7,
            len: 8,
            step: 0,
        }],
    ]);
    let err = check_comm_plan(&plan).expect_err("tag 5 staged, tag 7 expected");
    assert_eq!(
        err,
        AnalysisError::TagMismatch {
            from: 0,
            to: 1,
            step: 0,
            sent: 5,
            expected: 7,
        }
    );
    assert_eq!(
        err.to_string(),
        "tag mismatch on rank 0 → rank 1 at step 0: \
         sender stages tag 5, receiver expects tag 7"
    );
}

#[test]
fn size_mismatch_variant_and_display() {
    let plan = world(vec![
        vec![PlanOp::Send {
            to: 1,
            tag: 3,
            len: 6,
            step: 2,
        }],
        vec![PlanOp::Recv {
            from: 0,
            tag: 3,
            len: 4,
            step: 2,
        }],
    ]);
    let err = check_comm_plan(&plan).expect_err("6 elements staged, 4 expected");
    assert_eq!(
        err,
        AnalysisError::SizeMismatch {
            from: 0,
            to: 1,
            tag: 3,
            step: 2,
            send_len: 6,
            recv_len: 4,
        }
    );
    assert_eq!(
        err.to_string(),
        "size mismatch on rank 0 → rank 1 (tag 3, step 2): \
         sender stages 6 elements, receiver expects 4"
    );
}

#[test]
fn unmatched_send_variant_and_display() {
    let plan = world(vec![
        vec![PlanOp::Send {
            to: 1,
            tag: 9,
            len: 4,
            step: 1,
        }],
        vec![PlanOp::Compute { step: 1 }],
    ]);
    let err = check_comm_plan(&plan).expect_err("no receive ever consumes tag 9");
    assert_eq!(
        err,
        AnalysisError::UnmatchedSend {
            from: 0,
            to: 1,
            tag: 9,
            step: 1,
        }
    );
    assert_eq!(
        err.to_string(),
        "unmatched send: rank 0 → rank 1 (tag 9, step 1) is never received"
    );
}

#[test]
fn unmatched_receive_variant_and_display() {
    let plan = world(vec![
        vec![PlanOp::Compute { step: 0 }],
        vec![PlanOp::Recv {
            from: 0,
            tag: 2,
            len: 4,
            step: 1,
        }],
    ]);
    let err = check_comm_plan(&plan).expect_err("no send ever satisfies tag 2");
    assert_eq!(
        err,
        AnalysisError::UnmatchedReceive {
            rank: 1,
            from: 0,
            tag: 2,
            step: 1,
        }
    );
    assert_eq!(
        err.to_string(),
        "unmatched receive: rank 1 waits for rank 0 \
         (tag 2, step 1) but no such send is staged"
    );
}

#[test]
fn deadlock_variant_and_display() {
    // Every message has a matching peer, but each rank's blocking
    // receive precedes the send its peer waits on: a two-rank cycle.
    let plan = world(vec![
        vec![
            PlanOp::Recv {
                from: 1,
                tag: 0,
                len: 4,
                step: 0,
            },
            PlanOp::Send {
                to: 1,
                tag: 1,
                len: 4,
                step: 0,
            },
        ],
        vec![
            PlanOp::Recv {
                from: 0,
                tag: 1,
                len: 4,
                step: 0,
            },
            PlanOp::Send {
                to: 0,
                tag: 0,
                len: 4,
                step: 0,
            },
        ],
    ]);
    let err = check_comm_plan(&plan).expect_err("mutual blocking receives must wedge");
    assert_eq!(
        err,
        AnalysisError::Deadlock {
            cycle: vec![
                WaitPoint {
                    rank: 0,
                    from: 1,
                    tag: 0,
                    step: 0,
                },
                WaitPoint {
                    rank: 1,
                    from: 0,
                    tag: 1,
                    step: 0,
                },
            ],
        }
    );
    assert_eq!(
        err.to_string(),
        "deadlock cycle across 2 ranks: \
         rank 0 waits on rank 1 (tag 0, step 0); \
         rank 1 waits on rank 0 (tag 1, step 0)"
    );
}
