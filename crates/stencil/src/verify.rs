//! Verification helpers: distributed runs must be **bitwise** equal to
//! the sequential reference (each cell is written once from final
//! neighbor values, so float non-associativity cannot creep in).

use crate::dist2d::{run_example1_dist, Decomp2D};
use crate::dist3d::{run_paper3d_dist, Decomp3D, ExecMode};
use crate::engine::EngineError;
use crate::seq::{run_example1_seq, run_paper3d_seq};
use msgpass::thread_backend::LatencyModel;

/// Outcome of a verification run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VerifyReport {
    /// Maximum absolute difference (0.0 for a pass).
    pub max_abs_diff: f32,
    /// Wall-clock seconds of the distributed run.
    pub elapsed_secs: f64,
}

impl VerifyReport {
    /// True iff the distributed run is bitwise identical.
    pub fn passed(&self) -> bool {
        self.max_abs_diff == 0.0
    }
}

/// Verify a 3-D decomposition in the given mode against the sequential
/// reference. Returns the engine's typed error if the decomposition or
/// its communication plan is rejected.
pub fn verify_paper3d(
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<VerifyReport, EngineError> {
    let (dist, elapsed) = run_paper3d_dist(d, latency, mode)?;
    let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
    Ok(VerifyReport {
        max_abs_diff: dist.max_abs_diff(&seq),
        elapsed_secs: elapsed.as_secs_f64(),
    })
}

/// Verify a 2-D decomposition in the given mode. Returns the engine's
/// typed error if the decomposition or its communication plan is
/// rejected.
pub fn verify_example1(
    d: Decomp2D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<VerifyReport, EngineError> {
    let (dist, elapsed) = run_example1_dist(d, latency, mode)?;
    let seq = run_example1_seq(d.nx, d.ny, d.boundary);
    Ok(VerifyReport {
        max_abs_diff: dist.max_abs_diff(&seq),
        elapsed_secs: elapsed.as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_3d_both_modes() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 20,
            pi: 2,
            pj: 2,
            v: 5,
            boundary: 1.0,
        };
        assert!(verify_paper3d(d, LatencyModel::zero(), ExecMode::Blocking)
            .expect("valid")
            .passed());
        assert!(
            verify_paper3d(d, LatencyModel::zero(), ExecMode::Overlapping)
                .expect("valid")
                .passed()
        );
    }

    #[test]
    fn verify_2d_both_modes() {
        let d = Decomp2D {
            nx: 30,
            ny: 8,
            ranks: 4,
            v: 7,
            boundary: 2.0,
        };
        assert!(verify_example1(d, LatencyModel::zero(), ExecMode::Blocking)
            .expect("valid")
            .passed());
        assert!(
            verify_example1(d, LatencyModel::zero(), ExecMode::Overlapping)
                .expect("valid")
                .passed()
        );
    }

    #[test]
    fn verify_with_injected_latency_still_correct() {
        // Latency changes timing, never results.
        let lat = LatencyModel {
            startup_us: 200.0,
            per_byte_us: 0.01,
        };
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 12,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 1.0,
        };
        assert!(verify_paper3d(d, lat, ExecMode::Overlapping)
            .expect("valid")
            .passed());
    }

    #[test]
    fn report_fields() {
        let d = Decomp2D {
            nx: 8,
            ny: 4,
            ranks: 2,
            v: 4,
            boundary: 1.0,
        };
        let r = verify_example1(d, LatencyModel::zero(), ExecMode::Blocking).expect("valid");
        assert!(r.passed());
        assert!(r.elapsed_secs >= 0.0);
    }
}
