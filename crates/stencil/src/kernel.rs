//! Stencil kernels: the paper's workloads plus further uniform-
//! dependence recurrences that exercise the same tiled pipelines.
//!
//! All kernels are *single-assignment wavefront* recurrences — each cell
//! is written exactly once from already-final upstream values — so every
//! distributed execution is **bitwise** identical to the sequential one
//! regardless of interleaving ([`crate::verify`] checks exact equality).
//!
//! 2-D kernels see the upstream values `(diag, im1, jm1)` =
//! `A(i−1,j−1), A(i−1,j), A(i,j−1)` (dependences ⊆ {(1,1),(1,0),(0,1)});
//! 3-D kernels see `(im1, jm1, km1)` (dependences {e₁,e₂,e₃}). Both also
//! receive the global cell coordinates, enabling data-dependent
//! recurrences like LCS-style dynamic programming.

use tiling_core::dependence::DependenceSet;
pub use tiling_core::machine::KernelTier;

/// Maximum number of pencils a [`Wave`] can hold.
///
/// Sixteen interleaved carry chains are enough to saturate the sqrt/FMA
/// units on every x86 microarchitecture we care about (the chain latency
/// is ~20 cycles and the units have 4–6-cycle throughput), while keeping
/// the carry state (`16 × f32`) comfortably in registers.
pub const MAX_WAVE: usize = 16;

/// A batch of up to [`MAX_WAVE`] *mutually independent* pencils.
///
/// The executors walk a tile's cross-section in anti-diagonal order:
/// all pencils with `i + j = const` depend only on rows from earlier
/// diagonals, so their loop-carried `k`-chains are independent and a
/// kernel may interleave them freely — each *cell* still sees exactly
/// its sequential operation order, so the bitwise tier stays pinned,
/// but the CPU now has `m` independent dependency chains in flight
/// instead of one.
///
/// Stored struct-of-arrays so the interleaved chain pass indexes flat
/// arrays; slots past `len` hold empty slices and are never touched.
pub struct Wave<'a> {
    len: usize,
    gi: [i64; MAX_WAVE],
    gj: [i64; MAX_WAVE],
    k0: [i64; MAX_WAVE],
    km1: [f32; MAX_WAVE],
    im1: [&'a [f32]; MAX_WAVE],
    jm1: [&'a [f32]; MAX_WAVE],
    out: [&'a mut [f32]; MAX_WAVE],
}

/// Disjoint field views of a [`Wave`], all truncated to its length —
/// lets a kernel's pass-1/pass-2 loops borrow inputs (shared) and
/// outputs (mutable) simultaneously.
pub struct WaveParts<'w, 'a> {
    /// Number of live pencils (`1..=MAX_WAVE`).
    pub m: usize,
    /// Global `i` of each pencil.
    pub gi: &'w [i64],
    /// Global `j` of each pencil.
    pub gj: &'w [i64],
    /// Global `k` of each pencil's first cell.
    pub k0: &'w [i64],
    /// Loop-carried `k−1` seed of each pencil.
    pub km1: &'w [f32],
    /// `i−1` neighbor pencil of each pencil.
    pub im1: &'w [&'a [f32]],
    /// `j−1` neighbor pencil of each pencil.
    pub jm1: &'w [&'a [f32]],
    /// Output pencil of each pencil.
    pub out: &'w mut [&'a mut [f32]],
}

impl<'a> Default for Wave<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Wave<'a> {
    /// An empty wave.
    pub fn new() -> Self {
        Wave {
            len: 0,
            gi: [0; MAX_WAVE],
            gj: [0; MAX_WAVE],
            k0: [0; MAX_WAVE],
            km1: [0.0; MAX_WAVE],
            im1: [&[]; MAX_WAVE],
            jm1: [&[]; MAX_WAVE],
            out: core::array::from_fn(|_| Default::default()),
        }
    }

    /// Number of pencils currently batched.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pencils are batched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when another [`Wave::push`] would overflow.
    pub fn is_full(&self) -> bool {
        self.len == MAX_WAVE
    }

    /// Drop all pencils (also releases the `out` borrows by replacing
    /// them with empty slices).
    pub fn clear(&mut self) {
        self.len = 0;
        self.im1 = [&[]; MAX_WAVE];
        self.jm1 = [&[]; MAX_WAVE];
        self.out = core::array::from_fn(|_| Default::default());
    }

    /// Append one pencil. The caller asserts (by construction of the
    /// batch) that it is independent of every pencil already present.
    ///
    /// # Panics
    /// If the wave is full.
    #[allow(clippy::too_many_arguments)] // LINT: mirrors eval_pencil's signature
    pub fn push(
        &mut self,
        gi: i64,
        gj: i64,
        k0: i64,
        im1: &'a [f32],
        jm1: &'a [f32],
        km1: f32,
        out: &'a mut [f32],
    ) {
        let n = self.len;
        assert!(n < MAX_WAVE, "wave overflow");
        self.gi[n] = gi;
        self.gj[n] = gj;
        self.k0[n] = k0;
        self.km1[n] = km1;
        self.im1[n] = im1;
        self.jm1[n] = jm1;
        self.out[n] = out;
        self.len = n + 1;
    }

    /// Borrow all fields at once, truncated to the live length.
    pub fn parts(&mut self) -> WaveParts<'_, 'a> {
        let m = self.len;
        WaveParts {
            m,
            gi: &self.gi[..m],
            gj: &self.gj[..m],
            k0: &self.k0[..m],
            km1: &self.km1[..m],
            im1: &self.im1[..m],
            jm1: &self.jm1[..m],
            out: &mut self.out[..m],
        }
    }
}

/// Pass-1 helper: `o[z] = f(a[z], c[z])` over the carry-free lanes, in
/// hand-unrolled `[f32; 8]` blocks (one cache line of `f32`) with a
/// scalar remainder loop. The block form gives the compiler a
/// straight-line 8-lane body with no cross-iteration dependence — i.e.
/// license to keep the whole block in vector registers.
#[inline(always)]
fn chunk8(a: &[f32], c: &[f32], o: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    let len = o.len();
    assert!(a.len() >= len && c.len() >= len);
    let mut z = 0;
    while z + 8 <= len {
        let mut t = [0.0f32; 8];
        for (l, t) in t.iter_mut().enumerate() {
            *t = f(a[z + l], c[z + l]);
        }
        o[z..z + 8].copy_from_slice(&t);
        z += 8;
    }
    while z < len {
        o[z] = f(a[z], c[z]);
        z += 1;
    }
}

/// A 2-D wavefront kernel with dependences ⊆ `{(1,1),(1,0),(0,1)}`.
pub trait Kernel2D: Copy + Send + Sync + 'static {
    /// Compute the value of cell `(i, j)` from its upstream values.
    fn eval(&self, i: i64, j: i64, diag: f32, im1: f32, jm1: f32) -> f32;

    /// The kernel's dependence set (defaults to the full triple).
    fn deps(&self) -> DependenceSet {
        DependenceSet::example_1()
    }
}

/// A 3-D wavefront kernel with dependences `{e₁, e₂, e₃}`.
pub trait Kernel3D: Copy + Send + Sync + 'static {
    /// Compute the value of cell `(i, j, k)` from its upstream values.
    fn eval(&self, i: i64, j: i64, k: i64, im1: f32, jm1: f32, km1: f32) -> f32;

    /// Evaluate a whole `k`-pencil: cells `(i, j, k0..k0+out.len())`,
    /// with `im1`/`jm1` the equal-length neighbor pencils and `km1`
    /// seeding the loop-carried `k−1` dependence.
    ///
    /// This is the executors' inner loop. The default walks
    /// [`Kernel3D::eval`] cell by cell — **bitwise identical** by
    /// construction. Kernels override it to hoist loop-invariant work
    /// out of the pencil and iterate over zipped slices (no bounds
    /// checks, no per-cell index arithmetic), which is what lets the
    /// compiler keep the non-carried part of the arithmetic in vector
    /// registers; overrides must preserve each cell's exact operation
    /// order so results stay bitwise equal to the scalar form (the
    /// kernel tests assert this).
    #[inline]
    #[allow(clippy::too_many_arguments)] // LINT: mirrors eval()'s per-cell signature, pencil-wide
    fn eval_pencil(
        &self,
        i: i64,
        j: i64,
        k0: i64,
        im1: &[f32],
        jm1: &[f32],
        km1: f32,
        out: &mut [f32],
    ) {
        let mut prev = km1;
        for (kz, (o, (&a, &c))) in (k0..).zip(out.iter_mut().zip(im1.iter().zip(jm1))) {
            let v = self.eval(i, j, kz, a, c, prev);
            *o = v;
            prev = v;
        }
    }

    /// Evaluate a [`Wave`] of mutually independent pencils.
    ///
    /// This is the two-pass vectorized form of [`Kernel3D::eval_pencil`]:
    /// overrides run a carry-free vector pass (the non-carried term of
    /// every cell, in chunked 8-lane blocks) followed by a scalar carry
    /// pass that *interleaves* the `m` independent `k`-chains — each
    /// cell still performs exactly its sequential operations in the
    /// sequential order, so the result is **bitwise** equal to running
    /// [`Kernel3D::eval_pencil`] on each pencil (the kernel proptests
    /// assert this); only the chain-level parallelism changes.
    ///
    /// The default simply walks the pencils one by one — bitwise by
    /// construction for kernels without an override.
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave(&self, wave: &mut Wave<'_>) {
        let p = wave.parts();
        for n in 0..p.m {
            self.eval_pencil(
                p.gi[n],
                p.gj[n],
                p.k0[n],
                p.im1[n],
                p.jm1[n],
                p.km1[n],
                &mut p.out[n][..],
            );
        }
    }

    /// Fast-math tier of [`Kernel3D::eval_wave`] ([`KernelTier::Fast`]).
    ///
    /// Overrides may reassociate the per-cell arithmetic and substitute
    /// cheaper equivalents valid on the recurrence's reachable domain,
    /// shortening the loop-carried dependency chain at the cost of
    /// bitwise reproducibility. Results are ULP-bounded against the
    /// pinned tier (asserted by the fast-tier tests), never assumed
    /// identical. The default falls back to the bitwise wave.
    #[inline]
    fn eval_wave_fast(&self, wave: &mut Wave<'_>) {
        self.eval_wave(wave)
    }

    /// Dispatch a wave through the tier-selected evaluator.
    #[inline]
    fn eval_wave_tier(&self, tier: KernelTier, wave: &mut Wave<'_>) {
        match tier {
            KernelTier::Bitwise => self.eval_wave(wave),
            KernelTier::Fast => self.eval_wave_fast(wave),
        }
    }

    /// The kernel's dependence set.
    fn deps(&self) -> DependenceSet {
        DependenceSet::paper_3d()
    }
}

/// The 3-point √ kernel of the paper's experiments (§5):
/// `A(i,j,k) = √A(i−1,j,k) + √A(i,j−1,k) + √A(i,j,k−1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Paper3D;

impl Paper3D {
    /// Apply the update given the three upstream values (coordinate-free
    /// convenience used by the hand-written fast paths and tests).
    #[inline]
    pub fn eval(a_im1: f32, a_jm1: f32, a_km1: f32) -> f32 {
        a_im1.max(0.0).sqrt() + a_jm1.max(0.0).sqrt() + a_km1.max(0.0).sqrt()
    }

    /// The dependence set `{e₁, e₂, e₃}`.
    pub fn deps() -> DependenceSet {
        DependenceSet::paper_3d()
    }
}

impl Kernel3D for Paper3D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        Paper3D::eval(im1, jm1, km1)
    }

    // Carry √A(i,j,k−1) across the pencil: each cell then does two fresh
    // square roots (vectorizable, no index math) plus the carried one.
    // The scalar form adds `(√im1 + √jm1) + √km1` left-to-right, which
    // is exactly this loop's order, so results are bitwise equal.
    #[inline]
    fn eval_pencil(
        &self,
        _i: i64,
        _j: i64,
        _k0: i64,
        im1: &[f32],
        jm1: &[f32],
        km1: f32,
        out: &mut [f32],
    ) {
        let mut sk = km1.max(0.0).sqrt();
        for (o, (&a, &c)) in out.iter_mut().zip(im1.iter().zip(jm1)) {
            let v = a.max(0.0).sqrt() + c.max(0.0).sqrt() + sk;
            *o = v;
            sk = v.max(0.0).sqrt();
        }
    }

    // Two-pass wave: pass 1 writes the carry-free `√im1 + √jm1` term of
    // every cell into `out` (8-lane chunked, fully vectorizable); pass 2
    // interleaves the m scalar carry chains `v = out[z] + sk; sk = √v⁺`.
    // Each cell computes `(√a⁺ + √c⁺) + √km1⁺` in exactly the scalar
    // order, so the result is bitwise equal to `eval_pencil`; the win is
    // that the ~20-cycle add→max→sqrt carry latency of one chain hides
    // the same latency of the other m−1.
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave(&self, wave: &mut Wave<'_>) {
        let p = wave.parts();
        // Narrow waves don't amortize the split: one or two interleaved
        // chains hide almost no carry latency, but still pay the extra
        // sweep over `out` — measurably slower than the fused pencil
        // loop, and every tile walk spends its ramp cells there. The
        // fallback is bitwise-free (both forms run each cell's scalar
        // operation order), so only the bitwise tier takes it; the fast
        // tier must stay grouping-invariant across wave widths.
        if p.m <= 2 {
            for n in 0..p.m {
                self.eval_pencil(
                    p.gi[n],
                    p.gj[n],
                    p.k0[n],
                    p.im1[n],
                    p.jm1[n],
                    p.km1[n],
                    &mut p.out[n][..],
                );
            }
            return;
        }
        let mut sk = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            chunk8(p.im1[n], p.jm1[n], &mut p.out[n][..], |a, c| {
                a.max(0.0).sqrt() + c.max(0.0).sqrt()
            });
            sk[n] = p.km1[n].max(0.0).sqrt();
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for (o, s) in p.out.iter_mut().zip(sk.iter_mut()) {
                if z < o.len() {
                    let v = o[z] + *s;
                    o[z] = v;
                    *s = v.max(0.0).sqrt();
                }
            }
        }
    }

    // Fast tier: every carried value is a sum of square roots, hence
    // ≥ 0, so on the reachable domain `max(v, 0)` reduces to `|v|` (one
    // cycle, off the sqrt's critical path on most cores) and the input
    // guards in pass 1 can go entirely — the executors only feed the
    // kernel its own outputs, the (non-negative) boundary splat, or
    // halos thereof. Off-domain (negative) inputs would produce NaNs
    // here where the pinned tier clamps, which is exactly the contract
    // difference the tier flag signals.
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave_fast(&self, wave: &mut Wave<'_>) {
        let p = wave.parts();
        let mut sk = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            chunk8(p.im1[n], p.jm1[n], &mut p.out[n][..], |a, c| {
                a.sqrt() + c.sqrt()
            });
            sk[n] = p.km1[n].abs().sqrt();
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for (o, s) in p.out.iter_mut().zip(sk.iter_mut()) {
                if z < o.len() {
                    let v = o[z] + *s;
                    o[z] = v;
                    *s = v.abs().sqrt();
                }
            }
        }
    }
}

/// A damped 3-D smoothing recurrence (successive-relaxation flavour):
/// `A = ω/3 · (A_{i−1} + A_{j−1} + A_{k−1})` with `ω < 1` for stability.
#[derive(Clone, Copy, Debug)]
pub struct Relax3D {
    /// Relaxation factor in `(0, 1]`.
    pub omega: f32,
}

impl Default for Relax3D {
    fn default() -> Self {
        Relax3D { omega: 0.9 }
    }
}

impl Kernel3D for Relax3D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        self.omega / 3.0 * (im1 + jm1 + km1)
    }

    // Hoist the `ω/3` division out of the pencil and pre-add the two
    // non-carried neighbors. The scalar form is `(ω/3) · ((im1 + jm1)
    // + km1)`, so `w · (s + prev)` performs the identical operations in
    // the identical order — bitwise equal, one divide per pencil.
    #[inline]
    fn eval_pencil(
        &self,
        _i: i64,
        _j: i64,
        _k0: i64,
        im1: &[f32],
        jm1: &[f32],
        km1: f32,
        out: &mut [f32],
    ) {
        let w = self.omega / 3.0;
        let mut prev = km1;
        for (o, (&a, &c)) in out.iter_mut().zip(im1.iter().zip(jm1)) {
            let v = w * (a + c + prev);
            *o = v;
            prev = v;
        }
    }

    // Two-pass wave: pass 1 writes the carry-free `im1 + jm1` term
    // (8-lane chunked); pass 2 interleaves the carries, each cell doing
    // `w · ((a + c) + prev)` in exactly the scalar association — the
    // scalar `a + c + prev` parses left-to-right, so bitwise equal.
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave(&self, wave: &mut Wave<'_>) {
        let w = self.omega / 3.0;
        let p = wave.parts();
        // Narrow waves don't amortize the split: one or two interleaved
        // chains hide almost no carry latency, but still pay the extra
        // sweep over `out` — measurably slower than the fused pencil
        // loop, and every tile walk spends its ramp cells there. The
        // fallback is bitwise-free (both forms run each cell's scalar
        // operation order), so only the bitwise tier takes it; the fast
        // tier must stay grouping-invariant across wave widths.
        if p.m <= 2 {
            for n in 0..p.m {
                self.eval_pencil(
                    p.gi[n],
                    p.gj[n],
                    p.k0[n],
                    p.im1[n],
                    p.jm1[n],
                    p.km1[n],
                    &mut p.out[n][..],
                );
            }
            return;
        }
        let mut prev = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            chunk8(p.im1[n], p.jm1[n], &mut p.out[n][..], |a, c| a + c);
            prev[n] = p.km1[n];
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for (o, s) in p.out.iter_mut().zip(prev.iter_mut()) {
                if z < o.len() {
                    let v = w * (o[z] + *s);
                    o[z] = v;
                    *s = v;
                }
            }
        }
    }

    // Fast tier: distribute `w` into the carry-free term — pass 1
    // precomputes `w·(a + c)` (still fully vectorizable), and the carry
    // becomes a single fused multiply-add `v = prev·w + ws[z]`, halving
    // the loop-carried latency (one FMA vs add-then-multiply). The
    // reassociation perturbs each cell by ≤ a few ULP; the recurrence is
    // a contraction (`ω < 1`), so the perturbation stays bounded.
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave_fast(&self, wave: &mut Wave<'_>) {
        let w = self.omega / 3.0;
        let p = wave.parts();
        let mut prev = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            chunk8(p.im1[n], p.jm1[n], &mut p.out[n][..], |a, c| w * (a + c));
            prev[n] = p.km1[n];
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for (o, s) in p.out.iter_mut().zip(prev.iter_mut()) {
                if z < o.len() {
                    let v = s.mul_add(w, o[z]);
                    o[z] = v;
                    *s = v;
                }
            }
        }
    }
}

/// A max-plus "longest path through a 3-D lattice" recurrence:
/// `A = max(im1, jm1, km1) + w(i,j,k)` with a deterministic pseudo-
/// random cell weight — the 3-D analogue of sequence-alignment DP.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestPath3D;

/// A tiny deterministic hash → `[0, 1)` weight (SplitMix64 finalizer).
#[inline]
pub fn cell_weight(i: i64, j: i64, k: i64) -> f32 {
    let mut z = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((k as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    ((z >> 40) as f32) / ((1u64 << 24) as f32)
}

impl Kernel3D for LongestPath3D {
    #[inline]
    fn eval(&self, i: i64, j: i64, k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        im1.max(jm1).max(km1) + cell_weight(i, j, k)
    }
}

/// A fused-multiply-add anisotropic smoothing recurrence:
/// `A = wa·A_{i−1} + wa·A_{j−1} + wc·A_{k−1}`, written with
/// [`f32::mul_add`] in **both** the scalar and pencil forms so the two
/// are bitwise identical by construction and the compiler can emit FMA
/// instructions for the non-carried lanes. Contractive when
/// `2·wa + wc < 1`.
#[derive(Clone, Copy, Debug)]
pub struct Fused3D {
    /// Weight of the `i−1` and `j−1` neighbors.
    pub wa: f32,
    /// Weight of the loop-carried `k−1` neighbor.
    pub wc: f32,
}

impl Default for Fused3D {
    fn default() -> Self {
        Fused3D { wa: 0.45, wc: 0.09 }
    }
}

impl Kernel3D for Fused3D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        im1.mul_add(self.wa, jm1.mul_add(self.wa, km1 * self.wc))
    }

    // Same fused expression over zipped slices: nothing to hoist, but
    // the slice form drops the per-cell coordinate bookkeeping of the
    // default and keeps the two FMAs in straight-line code.
    #[inline]
    fn eval_pencil(
        &self,
        _i: i64,
        _j: i64,
        _k0: i64,
        im1: &[f32],
        jm1: &[f32],
        km1: f32,
        out: &mut [f32],
    ) {
        let (wa, wc) = (self.wa, self.wc);
        let mut prev = km1;
        for (o, (&a, &c)) in out.iter_mut().zip(im1.iter().zip(jm1)) {
            let v = a.mul_add(wa, c.mul_add(wa, prev * wc));
            *o = v;
            prev = v;
        }
    }

    // Bitwise wave: the fused expression nests `prev` *inside* the
    // second FMA, so no carry-free prefix can be split off without
    // reassociating — instead the full per-cell chains are interleaved
    // (identical ops and order per cell, m chains in flight).
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave(&self, wave: &mut Wave<'_>) {
        let (wa, wc) = (self.wa, self.wc);
        let p = wave.parts();
        // Narrow waves don't amortize the split: one or two interleaved
        // chains hide almost no carry latency, but still pay the extra
        // sweep over `out` — measurably slower than the fused pencil
        // loop, and every tile walk spends its ramp cells there. The
        // fallback is bitwise-free (both forms run each cell's scalar
        // operation order), so only the bitwise tier takes it; the fast
        // tier must stay grouping-invariant across wave widths.
        if p.m <= 2 {
            for n in 0..p.m {
                self.eval_pencil(
                    p.gi[n],
                    p.gj[n],
                    p.k0[n],
                    p.im1[n],
                    p.jm1[n],
                    p.km1[n],
                    &mut p.out[n][..],
                );
            }
            return;
        }
        let mut prev = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            prev[n] = p.km1[n];
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for n in 0..p.m {
                let o = &mut p.out[n];
                if z < o.len() {
                    let v = p.im1[n][z].mul_add(wa, p.jm1[n][z].mul_add(wa, prev[n] * wc));
                    o[z] = v;
                    prev[n] = v;
                }
            }
        }
    }

    // Fast tier: hoist the non-carried `wa·a + wa·c` into pass 1 (one
    // FMA per cell, vectorizable) so the carry chain collapses to the
    // single FMA `v = prev·wc + e[z]` — reassociated, ULP-bounded, and
    // contractive for the shipped weights (`2·wa + wc < 1`).
    #[inline]
    #[allow(clippy::needless_range_loop)] // LINT: n indexes several parallel wave arrays at once
    fn eval_wave_fast(&self, wave: &mut Wave<'_>) {
        let (wa, wc) = (self.wa, self.wc);
        let p = wave.parts();
        let mut prev = [0.0f32; MAX_WAVE];
        let mut len = 0;
        for n in 0..p.m {
            chunk8(p.im1[n], p.jm1[n], &mut p.out[n][..], |a, c| {
                a.mul_add(wa, c * wa)
            });
            prev[n] = p.km1[n];
            len = len.max(p.out[n].len());
        }
        for z in 0..len {
            for (o, s) in p.out.iter_mut().zip(prev.iter_mut()) {
                if z < o.len() {
                    let v = s.mul_add(wc, o[z]);
                    o[z] = v;
                    *s = v;
                }
            }
        }
    }
}

/// The 2-D kernel of Example 1 (§3), damped so long sweeps stay finite
/// in `f32` (the dependence structure — the only thing the schedule
/// cares about — is unchanged).
#[derive(Clone, Copy, Debug, Default)]
pub struct Example1;

impl Example1 {
    /// Apply the update given the three upstream values.
    #[inline]
    pub fn eval(a_diag: f32, a_im1: f32, a_jm1: f32) -> f32 {
        0.25 * (a_diag + a_im1 + a_jm1)
    }

    /// The dependence set `{(1,1), (1,0), (0,1)}`.
    pub fn deps() -> DependenceSet {
        DependenceSet::example_1()
    }
}

impl Kernel2D for Example1 {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, diag: f32, im1: f32, jm1: f32) -> f32 {
        Example1::eval(diag, im1, jm1)
    }
}

/// LCS-style sequence-alignment dynamic programming:
/// `A(i,j) = max(diag + match(i,j), im1, jm1)` where `match` is 1 when
/// two deterministic pseudo-random sequences agree at `(i, j)`.
#[derive(Clone, Copy, Debug)]
pub struct Alignment2D {
    /// Alphabet size of the synthetic sequences (≥ 1; smaller = more
    /// matches).
    pub alphabet: u32,
}

impl Default for Alignment2D {
    fn default() -> Self {
        Alignment2D { alphabet: 4 }
    }
}

impl Alignment2D {
    #[inline]
    fn symbol(seed: u64, idx: i64, alphabet: u32) -> u32 {
        let mut z = (idx as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed);
        z ^= z >> 31;
        z = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^= z >> 32;
        (z % u64::from(alphabet.max(1))) as u32
    }
}

impl Kernel2D for Alignment2D {
    #[inline]
    fn eval(&self, i: i64, j: i64, diag: f32, im1: f32, jm1: f32) -> f32 {
        let m = Self::symbol(0xA5A5, i, self.alphabet) == Self::symbol(0x5A5A, j, self.alphabet);
        let with_match = diag + if m { 1.0 } else { 0.0 };
        with_match.max(im1).max(jm1)
    }
}

/// A 2-D smoothing recurrence using only the axis dependences
/// `{(1,0), (0,1)}` (Gauss–Seidel sweep flavour).
#[derive(Clone, Copy, Debug)]
pub struct Smooth2D {
    /// Relaxation factor in `(0, 1]`.
    pub omega: f32,
}

impl Default for Smooth2D {
    fn default() -> Self {
        Smooth2D { omega: 0.8 }
    }
}

impl Kernel2D for Smooth2D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _diag: f32, im1: f32, jm1: f32) -> f32 {
        self.omega * 0.5 * (im1 + jm1)
    }

    fn deps(&self) -> DependenceSet {
        DependenceSet::from_vectors(2, vec![vec![1, 0], vec![0, 1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper3d_deps() {
        let d = Paper3D::deps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 3);
    }

    #[test]
    fn paper3d_eval() {
        assert_eq!(Paper3D::eval(4.0, 9.0, 16.0), 2.0 + 3.0 + 4.0);
        assert_eq!(Paper3D::eval(0.0, 0.0, 0.0), 0.0);
        // Negative guards (can't feed NaNs into the pipeline).
        assert_eq!(Paper3D::eval(-1.0, 4.0, 0.0), 2.0);
        // Trait form agrees with the inherent form.
        let k = Paper3D;
        assert_eq!(Kernel3D::eval(&k, 5, 6, 7, 4.0, 9.0, 16.0), 9.0);
    }

    #[test]
    fn example1_eval() {
        assert_eq!(Example1::eval(4.0, 8.0, 4.0), 4.0);
        assert_eq!(Example1::eval(0.0, 0.0, 0.0), 0.0);
        let k = Example1;
        assert_eq!(Kernel2D::eval(&k, 1, 2, 4.0, 8.0, 4.0), 4.0);
    }

    #[test]
    fn example1_bounded_on_constant_boundary() {
        let mut v = 1000.0f32;
        for _ in 0..100 {
            v = Example1::eval(v, v, v);
        }
        assert!(v < 1.0);
    }

    #[test]
    fn relax3d_is_contraction() {
        let k = Relax3D::default();
        let v = Kernel3D::eval(&k, 0, 0, 0, 1.0, 1.0, 1.0);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn longest_path_monotone() {
        let k = LongestPath3D;
        let a = Kernel3D::eval(&k, 1, 2, 3, 5.0, 1.0, 2.0);
        assert!((5.0..6.0).contains(&a));
    }

    #[test]
    fn cell_weight_deterministic_and_bounded() {
        for (i, j, k) in [(0, 0, 0), (5, 7, 11), (100, -3, 2)] {
            let w = cell_weight(i, j, k);
            assert_eq!(w, cell_weight(i, j, k));
            assert!((0.0..1.0).contains(&w), "{w}");
        }
        assert_ne!(cell_weight(1, 2, 3), cell_weight(3, 2, 1));
    }

    #[test]
    fn alignment_match_increments_diagonal() {
        let k = Alignment2D { alphabet: 1 }; // everything matches
        let v = Kernel2D::eval(&k, 3, 4, 2.0, 1.0, 1.0);
        assert_eq!(v, 3.0);
        // Score is non-decreasing in all inputs.
        assert!(Kernel2D::eval(&k, 3, 4, 2.0, 5.0, 1.0) >= v);
    }

    #[test]
    fn smooth2d_ignores_diagonal_and_declares_axis_deps() {
        let k = Smooth2D::default();
        assert_eq!(
            Kernel2D::eval(&k, 0, 0, 1e9, 1.0, 1.0),
            Kernel2D::eval(&k, 0, 0, -1e9, 1.0, 1.0)
        );
        assert_eq!(k.deps().len(), 2);
    }

    #[test]
    fn example1_deps() {
        let d = Example1::deps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 2);
    }

    #[test]
    fn fused3d_is_contraction() {
        let k = Fused3D::default();
        let v = Kernel3D::eval(&k, 0, 0, 0, 1.0, 1.0, 1.0);
        assert!(v < 1.0 && v > 0.0);
    }

    /// Walk `eval` cell by cell with the loop-carried `k−1` value —
    /// the reference the pencil overrides must match bitwise.
    fn scalar_pencil<K: Kernel3D>(
        k: &K,
        i: i64,
        j: i64,
        k0: i64,
        im1: &[f32],
        jm1: &[f32],
        km1: f32,
    ) -> Vec<f32> {
        let mut prev = km1;
        let mut out = Vec::with_capacity(im1.len());
        for (n, (&a, &c)) in im1.iter().zip(jm1).enumerate() {
            let v = k.eval(i, j, k0 + n as i64, a, c, prev);
            out.push(v);
            prev = v;
        }
        out
    }

    fn check_pencil_bitwise<K: Kernel3D>(kernel: K, name: &str) {
        // Deterministic awkward data: mixed signs and magnitudes so the
        // `max(0.0)` guards and non-associative sums are exercised.
        for (len, seed) in [(1usize, 3u64), (7, 17), (64, 255), (129, 4096)] {
            let gen = |s: u64, n: usize| {
                let w = cell_weight(s as i64, n as i64, len as i64);
                (w - 0.5) * 8.0 * if n.is_multiple_of(3) { -1.0 } else { 1.0 }
            };
            let im1: Vec<f32> = (0..len).map(|n| gen(seed, n)).collect();
            let jm1: Vec<f32> = (0..len).map(|n| gen(seed ^ 0xFF, n)).collect();
            let km1 = gen(seed ^ 0xABCD, len);
            let want = scalar_pencil(&kernel, 5, -2, 11, &im1, &jm1, km1);
            let mut got = vec![0.0f32; len];
            kernel.eval_pencil(5, -2, 11, &im1, &jm1, km1, &mut got);
            for (n, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{name}: cell {n} of {len} differs: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn pencil_matches_scalar_bitwise() {
        check_pencil_bitwise(Paper3D, "paper3d");
        check_pencil_bitwise(Relax3D::default(), "relax3d");
        check_pencil_bitwise(Relax3D { omega: 0.37 }, "relax3d-0.37");
        check_pencil_bitwise(LongestPath3D, "longest-path");
        check_pencil_bitwise(Fused3D::default(), "fused3d");
        check_pencil_bitwise(Fused3D { wa: 0.3, wc: 0.25 }, "fused3d-0.3");
    }

    /// Deterministic mixed-sign pencil data, distinct per (pencil, salt).
    fn wave_data(p: usize, salt: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|n| {
                let w = cell_weight(p as i64 + salt as i64 * 31, n as i64, len as i64);
                (w - 0.5) * 8.0
            })
            .collect()
    }

    fn check_wave_bitwise<K: Kernel3D>(kernel: K, name: &str) {
        // Widths spanning 1..MAX_WAVE, lengths hitting the 8-lane
        // remainder cases, plus one ragged batch (mixed pencil lengths
        // exercising the chain pass's per-pencil end guard).
        for (m, lens) in [
            (1usize, vec![5usize]),
            (3, vec![64; 3]),
            (4, vec![7; 4]),
            (MAX_WAVE, vec![129; MAX_WAVE]),
            (5, vec![1, 8, 17, 3, 40]),
        ] {
            let im1s: Vec<Vec<f32>> = (0..m).map(|p| wave_data(p, 1, lens[p])).collect();
            let jm1s: Vec<Vec<f32>> = (0..m).map(|p| wave_data(p, 2, lens[p])).collect();
            let km1s: Vec<f32> = (0..m)
                .map(|p| (cell_weight(p as i64, 9, 9) - 0.5) * 4.0)
                .collect();
            let mut want: Vec<Vec<f32>> = lens.iter().map(|&l| vec![0.0; l]).collect();
            for p in 0..m {
                kernel.eval_pencil(p as i64, -1, 3, &im1s[p], &jm1s[p], km1s[p], &mut want[p]);
            }
            let mut got: Vec<Vec<f32>> = lens.iter().map(|&l| vec![0.0; l]).collect();
            let mut wave = Wave::new();
            for (p, g) in got.iter_mut().enumerate() {
                wave.push(p as i64, -1, 3, &im1s[p], &jm1s[p], km1s[p], g);
            }
            assert_eq!(wave.len(), m);
            kernel.eval_wave(&mut wave);
            wave.clear(); // release the `out` borrows before reading `got`
            for p in 0..m {
                for (n, (g, w)) in got[p].iter().zip(&want[p]).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{name}: wave m={m} pencil {p} cell {n} differs: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn wave_matches_pencil_bitwise() {
        check_wave_bitwise(Paper3D, "paper3d");
        check_wave_bitwise(Relax3D::default(), "relax3d");
        check_wave_bitwise(Relax3D { omega: 0.37 }, "relax3d-0.37");
        check_wave_bitwise(LongestPath3D, "longest-path");
        check_wave_bitwise(Fused3D::default(), "fused3d");
        check_wave_bitwise(Fused3D { wa: 0.3, wc: 0.25 }, "fused3d-0.3");
    }

    /// ULP distance between two finite f32 of the same sign region.
    fn ulp_diff(a: f32, b: f32) -> u32 {
        let (ia, ib) = (a.to_bits() as i32, b.to_bits() as i32);
        ia.abs_diff(ib)
    }

    #[test]
    fn fast_tier_stays_within_ulp_bound() {
        // Non-negative inputs: the fast tier's domain contract.
        for kernel_check in [0usize, 1, 2] {
            let m = 6;
            let len = 65;
            let im1s: Vec<Vec<f32>> = (0..m)
                .map(|p| wave_data(p, 1, len).iter().map(|x| x.abs()).collect())
                .collect();
            let jm1s: Vec<Vec<f32>> = (0..m)
                .map(|p| wave_data(p, 2, len).iter().map(|x| x.abs()).collect())
                .collect();
            let km1s: Vec<f32> = (0..m).map(|p| cell_weight(p as i64, 9, 9) * 4.0).collect();
            let mut want: Vec<Vec<f32>> = vec![vec![0.0; len]; m];
            let mut got: Vec<Vec<f32>> = vec![vec![0.0; len]; m];
            let run = |fast: bool, outs: &mut Vec<Vec<f32>>| {
                let mut wave = Wave::new();
                for (p, g) in outs.iter_mut().enumerate() {
                    wave.push(p as i64, -1, 3, &im1s[p], &jm1s[p], km1s[p], g);
                }
                match (kernel_check, fast) {
                    (0, false) => Paper3D.eval_wave(&mut wave),
                    (0, true) => Paper3D.eval_wave_fast(&mut wave),
                    (1, false) => Relax3D::default().eval_wave(&mut wave),
                    (1, true) => Relax3D::default().eval_wave_fast(&mut wave),
                    (2, false) => Fused3D::default().eval_wave(&mut wave),
                    (2, true) => Fused3D::default().eval_wave_fast(&mut wave),
                    _ => unreachable!(),
                }
            };
            run(false, &mut want);
            run(true, &mut got);
            let max_ulp = got
                .iter()
                .flatten()
                .zip(want.iter().flatten())
                .map(|(g, w)| ulp_diff(*g, *w))
                .max()
                .unwrap();
            assert!(
                max_ulp <= 8,
                "kernel {kernel_check}: fast tier drifted {max_ulp} ULP"
            );
        }
    }
}
