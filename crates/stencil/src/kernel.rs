//! Stencil kernels: the paper's workloads plus further uniform-
//! dependence recurrences that exercise the same tiled pipelines.
//!
//! All kernels are *single-assignment wavefront* recurrences — each cell
//! is written exactly once from already-final upstream values — so every
//! distributed execution is **bitwise** identical to the sequential one
//! regardless of interleaving ([`crate::verify`] checks exact equality).
//!
//! 2-D kernels see the upstream values `(diag, im1, jm1)` =
//! `A(i−1,j−1), A(i−1,j), A(i,j−1)` (dependences ⊆ {(1,1),(1,0),(0,1)});
//! 3-D kernels see `(im1, jm1, km1)` (dependences {e₁,e₂,e₃}). Both also
//! receive the global cell coordinates, enabling data-dependent
//! recurrences like LCS-style dynamic programming.

use tiling_core::dependence::DependenceSet;

/// A 2-D wavefront kernel with dependences ⊆ `{(1,1),(1,0),(0,1)}`.
pub trait Kernel2D: Copy + Send + Sync + 'static {
    /// Compute the value of cell `(i, j)` from its upstream values.
    fn eval(&self, i: i64, j: i64, diag: f32, im1: f32, jm1: f32) -> f32;

    /// The kernel's dependence set (defaults to the full triple).
    fn deps(&self) -> DependenceSet {
        DependenceSet::example_1()
    }
}

/// A 3-D wavefront kernel with dependences `{e₁, e₂, e₃}`.
pub trait Kernel3D: Copy + Send + Sync + 'static {
    /// Compute the value of cell `(i, j, k)` from its upstream values.
    fn eval(&self, i: i64, j: i64, k: i64, im1: f32, jm1: f32, km1: f32) -> f32;

    /// The kernel's dependence set.
    fn deps(&self) -> DependenceSet {
        DependenceSet::paper_3d()
    }
}

/// The 3-point √ kernel of the paper's experiments (§5):
/// `A(i,j,k) = √A(i−1,j,k) + √A(i,j−1,k) + √A(i,j,k−1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Paper3D;

impl Paper3D {
    /// Apply the update given the three upstream values (coordinate-free
    /// convenience used by the hand-written fast paths and tests).
    #[inline]
    pub fn eval(a_im1: f32, a_jm1: f32, a_km1: f32) -> f32 {
        a_im1.max(0.0).sqrt() + a_jm1.max(0.0).sqrt() + a_km1.max(0.0).sqrt()
    }

    /// The dependence set `{e₁, e₂, e₃}`.
    pub fn deps() -> DependenceSet {
        DependenceSet::paper_3d()
    }
}

impl Kernel3D for Paper3D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        Paper3D::eval(im1, jm1, km1)
    }
}

/// A damped 3-D smoothing recurrence (successive-relaxation flavour):
/// `A = ω/3 · (A_{i−1} + A_{j−1} + A_{k−1})` with `ω < 1` for stability.
#[derive(Clone, Copy, Debug)]
pub struct Relax3D {
    /// Relaxation factor in `(0, 1]`.
    pub omega: f32,
}

impl Default for Relax3D {
    fn default() -> Self {
        Relax3D { omega: 0.9 }
    }
}

impl Kernel3D for Relax3D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        self.omega / 3.0 * (im1 + jm1 + km1)
    }
}

/// A max-plus "longest path through a 3-D lattice" recurrence:
/// `A = max(im1, jm1, km1) + w(i,j,k)` with a deterministic pseudo-
/// random cell weight — the 3-D analogue of sequence-alignment DP.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestPath3D;

/// A tiny deterministic hash → `[0, 1)` weight (SplitMix64 finalizer).
#[inline]
pub fn cell_weight(i: i64, j: i64, k: i64) -> f32 {
    let mut z = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((k as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    ((z >> 40) as f32) / ((1u64 << 24) as f32)
}

impl Kernel3D for LongestPath3D {
    #[inline]
    fn eval(&self, i: i64, j: i64, k: i64, im1: f32, jm1: f32, km1: f32) -> f32 {
        im1.max(jm1).max(km1) + cell_weight(i, j, k)
    }
}

/// The 2-D kernel of Example 1 (§3), damped so long sweeps stay finite
/// in `f32` (the dependence structure — the only thing the schedule
/// cares about — is unchanged).
#[derive(Clone, Copy, Debug, Default)]
pub struct Example1;

impl Example1 {
    /// Apply the update given the three upstream values.
    #[inline]
    pub fn eval(a_diag: f32, a_im1: f32, a_jm1: f32) -> f32 {
        0.25 * (a_diag + a_im1 + a_jm1)
    }

    /// The dependence set `{(1,1), (1,0), (0,1)}`.
    pub fn deps() -> DependenceSet {
        DependenceSet::example_1()
    }
}

impl Kernel2D for Example1 {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, diag: f32, im1: f32, jm1: f32) -> f32 {
        Example1::eval(diag, im1, jm1)
    }
}

/// LCS-style sequence-alignment dynamic programming:
/// `A(i,j) = max(diag + match(i,j), im1, jm1)` where `match` is 1 when
/// two deterministic pseudo-random sequences agree at `(i, j)`.
#[derive(Clone, Copy, Debug)]
pub struct Alignment2D {
    /// Alphabet size of the synthetic sequences (≥ 1; smaller = more
    /// matches).
    pub alphabet: u32,
}

impl Default for Alignment2D {
    fn default() -> Self {
        Alignment2D { alphabet: 4 }
    }
}

impl Alignment2D {
    #[inline]
    fn symbol(seed: u64, idx: i64, alphabet: u32) -> u32 {
        let mut z = (idx as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed);
        z ^= z >> 31;
        z = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^= z >> 32;
        (z % u64::from(alphabet.max(1))) as u32
    }
}

impl Kernel2D for Alignment2D {
    #[inline]
    fn eval(&self, i: i64, j: i64, diag: f32, im1: f32, jm1: f32) -> f32 {
        let m = Self::symbol(0xA5A5, i, self.alphabet) == Self::symbol(0x5A5A, j, self.alphabet);
        let with_match = diag + if m { 1.0 } else { 0.0 };
        with_match.max(im1).max(jm1)
    }
}

/// A 2-D smoothing recurrence using only the axis dependences
/// `{(1,0), (0,1)}` (Gauss–Seidel sweep flavour).
#[derive(Clone, Copy, Debug)]
pub struct Smooth2D {
    /// Relaxation factor in `(0, 1]`.
    pub omega: f32,
}

impl Default for Smooth2D {
    fn default() -> Self {
        Smooth2D { omega: 0.8 }
    }
}

impl Kernel2D for Smooth2D {
    #[inline]
    fn eval(&self, _i: i64, _j: i64, _diag: f32, im1: f32, jm1: f32) -> f32 {
        self.omega * 0.5 * (im1 + jm1)
    }

    fn deps(&self) -> DependenceSet {
        DependenceSet::from_vectors(2, vec![vec![1, 0], vec![0, 1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper3d_deps() {
        let d = Paper3D::deps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 3);
    }

    #[test]
    fn paper3d_eval() {
        assert_eq!(Paper3D::eval(4.0, 9.0, 16.0), 2.0 + 3.0 + 4.0);
        assert_eq!(Paper3D::eval(0.0, 0.0, 0.0), 0.0);
        // Negative guards (can't feed NaNs into the pipeline).
        assert_eq!(Paper3D::eval(-1.0, 4.0, 0.0), 2.0);
        // Trait form agrees with the inherent form.
        let k = Paper3D;
        assert_eq!(Kernel3D::eval(&k, 5, 6, 7, 4.0, 9.0, 16.0), 9.0);
    }

    #[test]
    fn example1_eval() {
        assert_eq!(Example1::eval(4.0, 8.0, 4.0), 4.0);
        assert_eq!(Example1::eval(0.0, 0.0, 0.0), 0.0);
        let k = Example1;
        assert_eq!(Kernel2D::eval(&k, 1, 2, 4.0, 8.0, 4.0), 4.0);
    }

    #[test]
    fn example1_bounded_on_constant_boundary() {
        let mut v = 1000.0f32;
        for _ in 0..100 {
            v = Example1::eval(v, v, v);
        }
        assert!(v < 1.0);
    }

    #[test]
    fn relax3d_is_contraction() {
        let k = Relax3D::default();
        let v = Kernel3D::eval(&k, 0, 0, 0, 1.0, 1.0, 1.0);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn longest_path_monotone() {
        let k = LongestPath3D;
        let a = Kernel3D::eval(&k, 1, 2, 3, 5.0, 1.0, 2.0);
        assert!((5.0..6.0).contains(&a));
    }

    #[test]
    fn cell_weight_deterministic_and_bounded() {
        for (i, j, k) in [(0, 0, 0), (5, 7, 11), (100, -3, 2)] {
            let w = cell_weight(i, j, k);
            assert_eq!(w, cell_weight(i, j, k));
            assert!((0.0..1.0).contains(&w), "{w}");
        }
        assert_ne!(cell_weight(1, 2, 3), cell_weight(3, 2, 1));
    }

    #[test]
    fn alignment_match_increments_diagonal() {
        let k = Alignment2D { alphabet: 1 }; // everything matches
        let v = Kernel2D::eval(&k, 3, 4, 2.0, 1.0, 1.0);
        assert_eq!(v, 3.0);
        // Score is non-decreasing in all inputs.
        assert!(Kernel2D::eval(&k, 3, 4, 2.0, 5.0, 1.0) >= v);
    }

    #[test]
    fn smooth2d_ignores_diagonal_and_declares_axis_deps() {
        let k = Smooth2D::default();
        assert_eq!(
            Kernel2D::eval(&k, 0, 0, 1e9, 1.0, 1.0),
            Kernel2D::eval(&k, 0, 0, -1e9, 1.0, 1.0)
        );
        assert_eq!(k.deps().len(), 2);
    }

    #[test]
    fn example1_deps() {
        let d = Example1::deps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 2);
    }
}
