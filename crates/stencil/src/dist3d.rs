//! Distributed execution of the paper's 3-D kernel (§5 layout).
//!
//! The processor grid covers the `i×j` cross-section (one block column
//! per rank); all tiles along `k` stay on their rank. Each pipeline step
//! processes a tile of height `V` along `k`:
//!
//! * **blocking** (`ProcB`): receive the `i−1`/`j−1` faces for the
//!   current tile, compute, send own faces — serialized, eq. (3);
//! * **overlapping** (`ProcNB`): post receives for step `k+1` and sends
//!   of step `k−1` results, compute step `k`, wait — the wire time rides
//!   under the computation, eq. (4).
//!
//! ## Structure
//!
//! [`Block3D`] is the 3-D [`TileOps`] implementation: it owns the block,
//! halo planes and face buffers and supplies the hot paths — the
//! pipeline loop itself lives in [`crate::engine`], driven by the
//! [`tiling_core`] schedule type behind the chosen [`ExecMode`]. The
//! per-step path is allocation-free and branch-free in its inner loop.
//! `compute_tile` peels the `i==0`/`j==0`/`k==0` boundary cases out of
//! the k-loop: for each `(i, j)` pencil it split-borrows the block at
//! the current row, selects the `i−1`/`j−1` neighbor rows *once*
//! (previous block row, halo row, or a pre-splatted boundary row),
//! carries the `k−1` value in a register, and runs a zip over
//! equal-length slices — no per-cell index arithmetic, no bounds checks,
//! no boundary branches. Faces pack/unpack through the row-chunked
//! [`crate::halo`] copies straight to and from transport wire storage
//! (on a slot-transport world, the peer-visible slot itself): there is
//! no intermediate face or landing buffer at all, and a steady-state
//! step performs zero heap allocations (asserted by
//! `tests/zero_alloc.rs`).
//! The original element-wise paths survive in [`crate::legacy`] as the
//! property-test oracle and perf baseline.
//!
//! Executors are generic over any [`Communicator`], and the driver
//! [`run_paper3d_dist`] runs them on the threaded backend, gathering the
//! blocks into a full [`Grid3D`] for verification. The observed/traced
//! drivers additionally collect per-rank [`StepObserver`] output — real
//! wall-clock Gantt traces via [`run_dist3d_traced`].

use crate::decomp::{self, DecompError};
use crate::engine::{self, EngineError, NoopObserver, StepObserver, TileOps, TraceObserver};
use crate::grid::Grid3D;
use crate::halo;
use crate::kernel::{Kernel3D, KernelTier, Paper3D, Wave, MAX_WAVE};
use crate::pool;
use crate::proto::{DIR_I, DIR_J};
use msgpass::comm::Communicator;
use msgpass::fault::FaultStats;
use msgpass::thread_backend::{LatencyModel, ThreadComm, WorldConfig};
use msgpass::topology::CartesianGrid;
use msgpass::trace::Trace;
use std::time::Duration;

pub use crate::engine::ExecMode;

/// Domain decomposition of the 3-D experiment.
#[derive(Clone, Copy, Debug)]
pub struct Decomp3D {
    /// Global extent along i.
    pub nx: usize,
    /// Global extent along j.
    pub ny: usize,
    /// Global extent along k (the pipelined dimension).
    pub nz: usize,
    /// Processor-grid extent along i.
    pub pi: usize,
    /// Processor-grid extent along j.
    pub pj: usize,
    /// Tile height `V` along k.
    pub v: usize,
    /// Boundary value for out-of-range reads.
    pub boundary: f32,
}

impl Decomp3D {
    /// Validate divisibility and sizes.
    pub fn validate(&self) -> Result<(), DecompError> {
        decomp::require_nonempty_grid(&[self.nx, self.ny, self.nz])?;
        decomp::require_nonempty_decomp(&[self.pi, self.pj, self.v])?;
        decomp::require_divides("nx", self.nx, self.pi)?;
        decomp::require_divides("ny", self.ny, self.pj)
    }

    /// Block extent along i.
    pub fn bx(&self) -> usize {
        self.nx / self.pi
    }

    /// Block extent along j.
    pub fn by(&self) -> usize {
        self.ny / self.pj
    }

    /// Number of pipeline steps `⌈nz / V⌉`.
    pub fn steps(&self) -> usize {
        decomp::pipeline_steps(self.nz, self.v)
    }

    /// The k-range of step `k` (the last tile may be partial).
    pub(crate) fn krange(&self, k: usize) -> (usize, usize) {
        decomp::tile_range(self.nz, self.v, k)
    }
}

/// Halo-direction indices of the 3-D block (the [`TileOps`] `dir` axis).
const FACE_I: usize = 0;
const FACE_J: usize = 1;

/// Per-rank working state: the 3-D [`TileOps`] implementation. All
/// buffers are allocated once at construction; the pipeline loop never
/// allocates.
struct Block3D<K> {
    d: Decomp3D,
    kernel: K,
    tier: KernelTier,
    /// Own block, `bx × by × nz`, k fastest.
    block: Vec<f32>,
    /// Halo plane `i = own_lo_i − 1`: `by × nz`.
    halo_i: Vec<f32>,
    /// Halo plane `j = own_lo_j − 1`: `bx × nz`.
    halo_j: Vec<f32>,
    has_left_i: bool,
    has_left_j: bool,
    /// Upstream/downstream ranks per halo direction (`[i, j]`).
    up: [Option<usize>; 2],
    dn: [Option<usize>; 2],
    /// Global coordinates of the block origin.
    gi0: i64,
    gj0: i64,
    /// Boundary splat, `nz` long: the "neighbor row" of cells whose
    /// `i−1`/`j−1` neighbor is outside the global grid.
    brow: Vec<f32>,
    /// Per-row wave-carve stamp: `(generation << 5) | item_index`, so a
    /// neighbor lookup resolves its gap segment in O(1) (see
    /// [`Block3D::eval_chunk_wave`]). Allocated once; a stale
    /// generation means "row not written by the current wave".
    row_item: Vec<u64>,
    wave_gen: u64,
}

impl<K: Kernel3D> Block3D<K> {
    fn new(d: Decomp3D, kernel: K, tier: KernelTier, rank: usize) -> Self {
        let grid = CartesianGrid::new(vec![d.pi, d.pj]);
        let coords = grid.coords_of(rank);
        Block3D {
            d,
            kernel,
            tier,
            block: vec![0.0; d.bx() * d.by() * d.nz],
            halo_i: vec![0.0; d.by() * d.nz],
            halo_j: vec![0.0; d.bx() * d.nz],
            has_left_i: coords[0] > 0,
            has_left_j: coords[1] > 0,
            up: [grid.neighbor(rank, &[-1, 0]), grid.neighbor(rank, &[0, -1])],
            dn: [grid.neighbor(rank, &[1, 0]), grid.neighbor(rank, &[0, 1])],
            gi0: (coords[0] * d.bx()) as i64,
            gj0: (coords[1] * d.by()) as i64,
            brow: vec![d.boundary; d.nz],
            row_item: vec![0; d.bx() * d.by()],
            wave_gen: 0,
        }
    }

    /// Packed length of the `i`-face of step `k`.
    fn face_i_len(&self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        self.d.by() * (k1 - k0)
    }

    /// Packed length of the `j`-face of step `k`.
    fn face_j_len(&self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        self.d.bx() * (k1 - k0)
    }

    /// Compute one tile (all of the block's cross-section over `krange`).
    ///
    /// Pencils are blocked into k-chunks of [`CHUNK`] cells and walked
    /// in **3-D super-diagonal** order: chunk `(i, j, c)` (cells
    /// `k0 + c·CHUNK ..`) depends on the same-`k`-range chunks of rows
    /// `(i−1, j)` and `(i, j−1)` plus chunk `c − 1` of its own pencil —
    /// all with coordinate sum `i + j + c − 1` — so every chunk on one
    /// super-diagonal is independent of the others and they go to the
    /// kernel as a [`Wave`] of up to [`MAX_WAVE`] interleaved carry
    /// chains. Chunking matters on small cross-sections: a 4×4 tile has
    /// anti-diagonals of mean width 2.3, but its chunked super-diagonals
    /// interleave 6+ chains, which is what hides the serial
    /// `add → max → sqrt` latency of the paper kernel. Results stay
    /// bitwise-identical to the element-wise reference in
    /// [`crate::legacy`] on the pinned tier: a single-assignment
    /// recurrence doesn't care in which order independent cells are
    /// written, and each cell's own operation order is preserved by the
    /// wave contract (asserted by the kernel proptests).
    fn compute_tile(&mut self, k: usize) {
        let (k0, k1) = self.d.krange(k);
        let len = k1 - k0;
        let (bx, by) = (self.d.bx(), self.d.by());
        let ndiags = bx + by - 1;
        // Adaptive chunk: just enough chunks that super-diagonal waves
        // approach MAX_WAVE interleaved chains (mean plain-diagonal
        // width is bx·by/ndiags), rounded to a CHUNK multiple so the
        // vector pass and per-chunk bookkeeping stay amortized. Wide
        // cross-sections and short pencils degrade to whole-pencil
        // waves.
        let target = (MAX_WAVE * ndiags).div_ceil(bx * by).max(1);
        let chunk = len.div_ceil(target).next_multiple_of(CHUNK);
        let nchunks = len.div_ceil(chunk);
        for s in 0..ndiags + nchunks - 1 {
            // (i, j) cross-section diagonals participating in this
            // super-diagonal: t = i + j with a live chunk c = s − t.
            let t_lo = s.saturating_sub(nchunks - 1);
            let t_hi = s.min(ndiags - 1);
            // Stream the super-diagonal's chunks in ascending flat-row
            // order (i asc, then j asc — the contiguous j-window of
            // each i), flushing a wave whenever MAX_WAVE accumulate.
            let mut items: [(usize, usize); MAX_WAVE] = [(0, 0); MAX_WAVE];
            let mut m = 0;
            for i in 0..bx {
                if i > t_hi {
                    break;
                }
                let j_lo = t_lo.saturating_sub(i);
                let j_hi = (t_hi - i).min(by - 1);
                for j in j_lo..=j_hi {
                    items[m] = (i, j);
                    m += 1;
                    if m == MAX_WAVE {
                        self.eval_chunk_wave(s, &items[..m], k0, k1, chunk);
                        m = 0;
                    }
                }
            }
            if m > 0 {
                self.eval_chunk_wave(s, &items[..m], k0, k1, chunk);
            }
        }
    }

    /// Evaluate one wave of same-super-diagonal chunks: items are
    /// `(i, j)` in ascending flat-row order, each contributing its
    /// chunk `s − i − j` of the tile's `[k0, k1)` pencil span.
    fn eval_chunk_wave(
        &mut self,
        s: usize,
        items: &[(usize, usize)],
        k0: usize,
        k1: usize,
        chunk: usize,
    ) {
        let kernel = self.kernel;
        let tier = self.tier;
        let by = self.d.by();
        let nz = self.d.nz;
        let b = self.d.boundary;
        let (gi0, gj0) = (self.gi0, self.gj0);
        let (has_li, has_lj) = (self.has_left_i, self.has_left_j);
        let block = &mut self.block[..];
        let halo_i = &self.halo_i[..];
        let halo_j = &self.halo_j[..];
        let brow = &self.brow[..];
        // Carve the block into the wave's output chunks plus the
        // immutable gap segments between them. Every read this wave
        // makes lands in a gap: a neighbor's same-range chunk has
        // coordinate sum s − 1 (finished last super-diagonal), and when
        // that neighbor row's *next* chunk is also an output of this
        // wave, the output starts exactly one CHUNK above the range
        // being read. Rows are distinct within a wave (c is determined
        // by i + j) and streamed in ascending r = i·by + j, so one
        // forward split pass suffices.
        self.wave_gen += 1;
        let gen = self.wave_gen;
        let row_item = &mut self.row_item[..];
        let mut segs: [(usize, &[f32]); MAX_WAVE + 1] = [(0, &[]); MAX_WAVE + 1];
        let mut outs: [&mut [f32]; MAX_WAVE] = core::array::from_fn(|_| Default::default());
        let mut remaining = block;
        let mut off = 0usize;
        for (p, &(i, j)) in items.iter().enumerate() {
            let c = s - (i + j);
            let ck0 = k0 + c * chunk;
            let clen = chunk.min(k1 - ck0);
            let start = (i * by + j) * nz + ck0;
            let (gap, rest) = remaining.split_at_mut(start - off);
            let (out, rest) = rest.split_at_mut(clen);
            segs[p] = (off, gap);
            outs[p] = out;
            remaining = rest;
            off = start + clen;
            row_item[i * by + j] = (gen << 5) | p as u64;
        }
        let row_item: &[u64] = row_item;
        // A neighbor read resolves its gap segment in O(1): if the
        // neighbor row was carved this wave (generation match on its
        // stamp), its same-range span lies in the gap directly before
        // that item's output — the output is the row's *next* chunk, so
        // it starts exactly one chunk above the range being read, and
        // the preceding item sits on a strictly lower row. Own-row reads
        // (the k−1 seed) land in the reader's own gap the same way.
        // Only when the stamp is stale — ramp-down waves whose neighbor
        // pencil already finished, or cross-batch neighbors on
        // supersteps wider than MAX_WAVE — does the lookup fall back to
        // the binary search over carve offsets.
        let gap_item = |r: usize| -> Option<usize> {
            let v = row_item[r];
            (v >> 5 == gen).then_some((v & 31) as usize)
        };
        let mut wave = Wave::new();
        for (p, out) in outs.into_iter().take(items.len()).enumerate() {
            let (i, j) = items[p];
            let c = s - (i + j);
            let ck0 = k0 + c * chunk;
            let clen = chunk.min(k1 - ck0);
            let im1: &[f32] = if i > 0 {
                let t = ((i - 1) * by + j) * nz + ck0;
                match gap_item((i - 1) * by + j) {
                    Some(q) => {
                        let (s0, seg) = segs[q];
                        &seg[t - s0..][..clen]
                    }
                    None => find_span(&segs[..=p], t, clen),
                }
            } else if has_li {
                &halo_i[j * nz + ck0..][..clen]
            } else {
                &brow[ck0..ck0 + clen]
            };
            let jm1: &[f32] = if j > 0 {
                let t = (i * by + (j - 1)) * nz + ck0;
                match gap_item(i * by + (j - 1)) {
                    Some(q) => {
                        let (s0, seg) = segs[q];
                        &seg[t - s0..][..clen]
                    }
                    None => find_span(&segs[..=p], t, clen),
                }
            } else if has_lj {
                &halo_j[i * nz + ck0..][..clen]
            } else {
                &brow[ck0..ck0 + clen]
            };
            // k−1 dependence: seed from the cell below the chunk — the
            // previous chunk's top (or the previous tile's, or the
            // boundary); the kernel carries it up the chunk. The cell
            // below always sits in the reader's own gap.
            let km1 = if ck0 > 0 {
                let (s0, seg) = segs[p];
                seg[(i * by + j) * nz + ck0 - 1 - s0]
            } else {
                b
            };
            wave.push(
                gi0 + i as i64,
                gj0 + j as i64,
                ck0 as i64,
                im1,
                jm1,
                km1,
                out,
            );
        }
        kernel.eval_wave_tier(tier, &mut wave);
    }
}

/// k-chunk length of the super-diagonal tile walk: short enough that a
/// 4×4 cross-section with the paper's V = 128 spreads into wide waves,
/// long enough that the vector pass and per-chunk bookkeeping amortize.
const CHUNK: usize = 32;

/// Locate the `len`-long span starting at flat index `t` among the
/// carved gap segments of a wave (each `(start, slice)`, starts
/// non-decreasing). Binary search plus a backward skip over empty
/// segments — the slow path behind the O(1) stamp lookup in
/// [`Block3D::eval_chunk_wave`], taken only when the neighbor row was
/// not carved by the current wave.
fn find_span<'s>(segs: &[(usize, &'s [f32])], t: usize, len: usize) -> &'s [f32] {
    let mut q = segs.partition_point(|&(s, _)| s <= t);
    while q > 0 {
        q -= 1;
        let (s, seg) = segs[q];
        if t >= s && t + len <= s + seg.len() {
            return &seg[t - s..][..len];
        }
    }
    unreachable!("neighbor span not among carved segments")
}

impl<K: Kernel3D> TileOps for Block3D<K> {
    fn num_dirs(&self) -> usize {
        2
    }

    fn upstream(&self, dir: usize) -> Option<usize> {
        self.up[dir]
    }

    fn downstream(&self, dir: usize) -> Option<usize> {
        self.dn[dir]
    }

    fn wire_dir(&self, dir: usize) -> u64 {
        if dir == FACE_I {
            DIR_I
        } else {
            debug_assert_eq!(dir, FACE_J);
            DIR_J
        }
    }

    fn face_len(&self, dir: usize, step: usize) -> usize {
        if dir == FACE_I {
            self.face_i_len(step)
        } else {
            self.face_j_len(step)
        }
    }

    fn pack_into(&mut self, dir: usize, step: usize, out: &mut [f32]) {
        // Gather the outgoing face's rows straight into the wire buffer
        // (the peer-visible slot on a slot-transport world) — the
        // block-to-kernel-buffer copy of the paper's B₂ phase is this
        // one strided copy, with no further staging behind it.
        let (k0, k1) = self.d.krange(step);
        let len = k1 - k0;
        if dir == FACE_I {
            let base = (self.d.bx() - 1) * self.d.by() * self.d.nz;
            halo::pack_rows(&self.block, base, self.d.nz, k0, len, out);
        } else {
            let base = (self.d.by() - 1) * self.d.nz;
            halo::pack_rows(&self.block, base, self.d.by() * self.d.nz, k0, len, out);
        }
    }

    fn unpack_from(&mut self, dir: usize, step: usize, data: &[f32]) {
        // Scatter the received face directly from the wire payload into
        // the halo plane — B₃ without an intermediate landing buffer.
        let (k0, k1) = self.d.krange(step);
        let len = k1 - k0;
        let halo = if dir == FACE_I {
            &mut self.halo_i
        } else {
            &mut self.halo_j
        };
        halo::unpack_rows(data, halo, 0, self.d.nz, k0, len);
    }

    fn compute(&mut self, step: usize) {
        self.compute_tile(step);
    }
}

/// One rank's execution of any 3-D kernel under `mode`'s schedule,
/// reporting every phase to `obs`; returns its block (`bx × by × nz`)
/// or the typed transport/structure error that stopped it.
pub fn try_run_rank3d_observed<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    mode: ExecMode,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    try_run_rank3d_tier(comm, kernel, d, mode, KernelTier::Bitwise, obs)
}

/// [`try_run_rank3d_observed`] with an explicit [`KernelTier`].
pub fn try_run_rank3d_tier<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    mode: ExecMode,
    tier: KernelTier,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    // The paper's §5 layout maps along i₃ of a 3-D tiled space
    // (pi = [2, 2, 1]).
    let plan = mode.step_plan(3, 2, d.steps());
    try_run_rank3d_plan(comm, kernel, d, &plan, tier, obs)
}

/// One rank's execution of any 3-D kernel from a pre-compiled
/// [`StepPlan`] (see [`crate::plan::Compiled3D`]), reporting every
/// phase to `obs`; returns its block (`bx × by × nz`) or the typed
/// transport/structure error that stopped it. Nothing is re-derived
/// here — the plan is executed exactly as compiled.
pub fn try_run_rank3d_plan<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    plan: &tiling_core::schedule::StepPlan,
    tier: KernelTier,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    let mut blk = Block3D::new(d, kernel, tier, comm.rank());
    engine::run_rank(comm, &mut blk, plan, obs)?;
    Ok(blk.block)
}

/// [`TileOps`] facade over a [`pool::Shared`]: the engine thread's view
/// of the pooled per-rank state. Faces are packed/unpacked through the
/// shard locks (uncontended between tiles), and `compute` fans the tile
/// out to the pool — the engine participates as worker 0 and returns
/// only when the whole tile is done, so the lane schedule around it is
/// unchanged.
struct PooledBlock<'s, K> {
    shared: &'s pool::Shared<K>,
}

impl<K: Kernel3D> TileOps for PooledBlock<'_, K> {
    fn num_dirs(&self) -> usize {
        2
    }

    fn upstream(&self, dir: usize) -> Option<usize> {
        self.shared.up[dir]
    }

    fn downstream(&self, dir: usize) -> Option<usize> {
        self.shared.dn[dir]
    }

    fn wire_dir(&self, dir: usize) -> u64 {
        if dir == FACE_I {
            DIR_I
        } else {
            debug_assert_eq!(dir, FACE_J);
            DIR_J
        }
    }

    fn face_len(&self, dir: usize, step: usize) -> usize {
        let d = self.shared.decomp();
        let (k0, k1) = d.krange(step);
        let rows = if dir == FACE_I { d.by() } else { d.bx() };
        rows * (k1 - k0)
    }

    fn pack_into(&mut self, dir: usize, step: usize, out: &mut [f32]) {
        self.shared.pack_face(dir, step, out);
    }

    fn unpack_from(&mut self, dir: usize, step: usize, data: &[f32]) {
        self.shared.unpack_face(dir, step, data);
    }

    fn compute(&mut self, step: usize) {
        self.shared.compute(step);
    }
}

/// [`try_run_rank3d_tier`] with the tile fanned out across `workers`
/// intra-rank compute threads (see [`pool`]). The engine thread is
/// worker 0; `workers − 1` extra threads are spawned for the duration
/// of the rank run and park between tiles. `pin_base`, when set, pins
/// worker `w` to core `pin_base + w` (best effort). Results are
/// bitwise-identical to the unpooled run on the pinned tier.
#[allow(clippy::too_many_arguments)] // LINT: the pooled variant of try_run_rank3d_tier plus its pool knobs
pub fn try_run_rank3d_pooled<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    mode: ExecMode,
    tier: KernelTier,
    workers: usize,
    pin_base: Option<usize>,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    let plan = mode.step_plan(3, 2, d.steps());
    try_run_rank3d_pooled_plan(comm, kernel, d, &plan, tier, workers, pin_base, obs)
}

/// [`try_run_rank3d_pooled`] from a pre-compiled [`StepPlan`] — the
/// pooled counterpart of [`try_run_rank3d_plan`].
///
/// [`StepPlan`]: tiling_core::schedule::StepPlan
#[allow(clippy::too_many_arguments)] // LINT: the pooled variant of try_run_rank3d_plan plus its pool knobs
pub fn try_run_rank3d_pooled_plan<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    plan: &tiling_core::schedule::StepPlan,
    tier: KernelTier,
    workers: usize,
    pin_base: Option<usize>,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    let workers = workers.max(1);
    let shared = pool::Shared::new(d, kernel, tier, workers, comm.rank());
    let result = std::thread::scope(|scope| {
        for w in 1..workers {
            let sh = &shared;
            scope.spawn(move || sh.worker_loop(w, pin_base.map(|b| b + w)));
        }
        let r = engine::run_rank(comm, &mut PooledBlock { shared: &shared }, plan, obs);
        // Always release the pool — even on a transport error — or the
        // scope would join forever.
        shared.shutdown();
        r
    });
    result?;
    Ok(shared.into_flat_block())
}

/// One rank's execution of any 3-D kernel under `mode`'s schedule,
/// reporting every phase to `obs`; returns its block (`bx × by × nz`).
pub fn run_rank3d_observed<C: Communicator<f32>, K: Kernel3D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    mode: ExecMode,
    obs: &mut O,
) -> Vec<f32> {
    let rank = comm.rank();
    try_run_rank3d_observed(comm, kernel, d, mode, obs)
        .unwrap_or_else(|e| panic!("rank {rank}: {e}"))
}

/// One rank's execution of any 3-D kernel under `mode`'s schedule;
/// returns its block (`bx × by × nz`).
pub fn run_rank3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
    mode: ExecMode,
) -> Vec<f32> {
    run_rank3d_observed(comm, kernel, d, mode, &mut NoopObserver)
}

/// Gather per-rank blocks into the full grid.
pub(crate) fn gather_blocks(d: Decomp3D, blocks: &[Vec<f32>]) -> Grid3D {
    // Assemble: every block pencil is contiguous in both the block and
    // the destination grid, so the gather is one memcpy per (i, j).
    let grid_topo = CartesianGrid::new(vec![d.pi, d.pj]);
    let mut out = Grid3D::new(d.nx, d.ny, d.nz, 0.0, d.boundary);
    let (bx, by) = (d.bx(), d.by());
    for (rank, block) in blocks.iter().enumerate() {
        let c = grid_topo.coords_of(rank);
        for i in 0..bx {
            for j in 0..by {
                out.row_mut(c[0] * bx + i, c[1] * by + j)
                    .copy_from_slice(&block[(i * by + j) * d.nz..][..d.nz]);
            }
        }
    }
    out
}

/// Run a full distributed 3-D kernel on a fully configured world —
/// wire latency, and optionally a reliability layer and a fault plan —
/// with a per-rank [`StepObserver`] built by `make_obs`. Returns the
/// assembled grid, the wall-clock time of the parallel region, the
/// observers in rank order, and each rank's fault counters. When ranks
/// fail, the most diagnostic error is returned (see
/// [`EngineError::severity`]).
pub fn run_dist3d_observed_with<K, O, F>(
    kernel: K,
    d: Decomp3D,
    cfg: &WorldConfig,
    mode: ExecMode,
    make_obs: F,
) -> Result<(Grid3D, Duration, Vec<O>, Vec<FaultStats>), EngineError>
where
    K: Kernel3D,
    O: StepObserver + Send,
    F: Fn(&ThreadComm<f32>) -> O + Send + Sync,
{
    // Compile (validate + pre-flight, exactly once) then execute the
    // sealed plan — see [`crate::plan`].
    let compiled = if cfg.skip_preflight {
        crate::plan::Compiled3D::compile_unchecked(d, mode)?
    } else {
        crate::plan::Compiled3D::compile(d, mode)?
    };
    crate::plan::run3d_observed_with(kernel, &compiled, cfg, make_obs)
}

/// Run a full distributed 3-D kernel on the threaded backend with a
/// per-rank [`StepObserver`] built by `make_obs`. Returns the assembled
/// grid, the wall-clock time of the parallel region, and the observers
/// in rank order.
pub fn run_dist3d_observed<K, O, F>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
    make_obs: F,
) -> Result<(Grid3D, Duration, Vec<O>), EngineError>
where
    K: Kernel3D,
    O: StepObserver + Send,
    F: Fn(&ThreadComm<f32>) -> O + Send + Sync,
{
    let (grid, elapsed, observers, _) =
        run_dist3d_observed_with(kernel, d, &WorldConfig::new(latency), mode, make_obs)?;
    Ok((grid, elapsed, observers))
}

/// Run a full distributed 3-D kernel on a fully configured world and
/// gather. Returns the assembled grid, the wall-clock time, and each
/// rank's fault counters.
pub fn run_dist3d_with<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    cfg: &WorldConfig,
    mode: ExecMode,
) -> Result<(Grid3D, Duration, Vec<FaultStats>), EngineError> {
    let (grid, elapsed, _, stats) =
        run_dist3d_observed_with(kernel, d, cfg, mode, |_| NoopObserver)?;
    Ok((grid, elapsed, stats))
}

/// Run a full distributed 3-D kernel on the threaded backend and gather
/// the result. Returns the assembled grid and the wall-clock time of the
/// parallel region.
pub fn run_dist3d<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid3D, Duration), EngineError> {
    let (grid, elapsed, _) = run_dist3d_with(kernel, d, &WorldConfig::new(latency), mode)?;
    Ok((grid, elapsed))
}

/// Run a full distributed 3-D kernel with wall-clock activity tracing:
/// every rank records its phases against the world epoch, and the
/// per-rank traces merge into one [`Trace`] renderable by the same
/// Gantt/SVG paths as the simulator's.
pub fn run_dist3d_traced<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid3D, Duration, Trace), EngineError> {
    let (grid, elapsed, observers) =
        run_dist3d_observed(kernel, d, latency, mode, |comm: &ThreadComm<f32>| {
            TraceObserver::new(comm.rank(), comm.epoch())
        })?;
    let mut trace = Trace::enabled();
    for obs in observers {
        trace.extend(obs.into_trace());
    }
    Ok((grid, elapsed, trace))
}

/// [`run_dist3d`] specialized to the paper's √ kernel.
pub fn run_paper3d_dist(
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid3D, Duration), EngineError> {
    run_dist3d(Paper3D, d, latency, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Fused3D, LongestPath3D, Relax3D};
    use crate::seq::{run_paper3d_seq, run_seq3d};

    fn check_matches_seq(d: Decomp3D, mode: ExecMode) {
        let (dist, _) = run_paper3d_dist(d, LatencyModel::zero(), mode).expect("valid decomp");
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        assert_eq!(
            dist.max_abs_diff(&seq),
            0.0,
            "distributed result differs ({mode:?}, {d:?})"
        );
    }

    #[test]
    fn blocking_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn overlap_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn overlap_matches_sequential_4x4() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 24,
                pi: 4,
                pj: 4,
                v: 5, // non-dividing V: last tile is partial
                boundary: 2.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn blocking_matches_sequential_asymmetric() {
        check_matches_seq(
            Decomp3D {
                nx: 6,
                ny: 4,
                nz: 17,
                pi: 3,
                pj: 2,
                v: 4,
                boundary: 0.5,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn single_rank_trivial() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 16,
                pi: 1,
                pj: 1,
                v: 4,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    fn check_pooled_matches_seq(d: Decomp3D, mode: ExecMode, workers: usize) {
        let cfg = WorldConfig::new(LatencyModel::zero()).with_compute_workers(workers);
        let (dist, _, _) = run_dist3d_with(Paper3D, d, &cfg, mode).expect("pooled run");
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        assert_eq!(
            dist.max_abs_diff(&seq),
            0.0,
            "pooled result ({workers} workers) differs ({mode:?}, {d:?})"
        );
    }

    #[test]
    fn pooled_matches_sequential_2x2_two_workers() {
        check_pooled_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
            2,
        );
    }

    #[test]
    fn pooled_matches_sequential_4x4_three_workers() {
        // bx = by = 2: most diagonals have fewer items than workers, so
        // some workers get empty shares — they must still hit every
        // barrier.
        check_pooled_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 24,
                pi: 4,
                pj: 4,
                v: 5,
                boundary: 2.0,
            },
            ExecMode::Overlapping,
            3,
        );
    }

    #[test]
    fn pooled_single_rank_many_workers() {
        check_pooled_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 16,
                pi: 1,
                pj: 1,
                v: 4,
                boundary: 1.0,
            },
            ExecMode::Blocking,
            4,
        );
    }

    #[test]
    fn fast_tier_stays_close_to_pinned_at_grid_level() {
        let d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: 64,
            pi: 2,
            pj: 2,
            v: 16,
            boundary: 1.0,
        };
        let (pinned, _) =
            run_paper3d_dist(d, LatencyModel::zero(), ExecMode::Overlapping).expect("pinned run");
        let cfg = WorldConfig::new(LatencyModel::zero()).with_kernel_tier(KernelTier::Fast);
        let (fast, _, _) =
            run_dist3d_with(Paper3D, d, &cfg, ExecMode::Overlapping).expect("fast run");
        let err = fast.max_abs_diff(&pinned);
        // The √ recurrence contracts perturbations, so the reassociated
        // tier stays at rounding-noise distance across the whole grid.
        assert!(err <= 1e-4, "fast tier drifted {err} from pinned");
    }

    #[test]
    fn pooled_fast_tier_is_grouping_invariant() {
        // The fast tier's per-pencil operation sequence is independent
        // of how pencils are grouped into waves, so pooled fast must be
        // bitwise-equal to unpooled fast.
        let d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: 32,
            pi: 2,
            pj: 2,
            v: 8,
            boundary: 1.0,
        };
        let fast = WorldConfig::new(LatencyModel::zero()).with_kernel_tier(KernelTier::Fast);
        let (lone, _, _) =
            run_dist3d_with(Paper3D, d, &fast, ExecMode::Overlapping).expect("fast run");
        let pooled_cfg = fast.clone().with_compute_workers(3);
        let (pooled, _, _) =
            run_dist3d_with(Paper3D, d, &pooled_cfg, ExecMode::Overlapping).expect("pooled fast");
        assert_eq!(pooled.max_abs_diff(&lone), 0.0);
    }

    #[test]
    fn v_equal_nz_single_step() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 8,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn v_one_fine_grain() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 6,
                pi: 2,
                pj: 2,
                v: 1,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn v_larger_than_nz() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 5,
                pi: 2,
                pj: 2,
                v: 9, // single, clamped step
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn generic_kernels_match_sequential() {
        let d = Decomp3D {
            nx: 6,
            ny: 6,
            nz: 20,
            pi: 2,
            pj: 3,
            v: 6,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (dist, _) =
                run_dist3d(Relax3D::default(), d, LatencyModel::zero(), mode).expect("valid");
            let seq = run_seq3d(Relax3D::default(), d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Relax3D {mode:?}");

            let (dist, _) =
                run_dist3d(LongestPath3D, d, LatencyModel::zero(), mode).expect("valid");
            let seq = run_seq3d(LongestPath3D, d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "LongestPath3D {mode:?}");

            let (dist, _) =
                run_dist3d(Fused3D::default(), d, LatencyModel::zero(), mode).expect("valid");
            let seq = run_seq3d(Fused3D::default(), d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Fused3D {mode:?}");
        }
    }

    #[test]
    fn matches_legacy_executor_bitwise() {
        // The optimized paths must agree with the preserved element-wise
        // baseline exactly, including a partial last tile.
        let d = Decomp3D {
            nx: 6,
            ny: 4,
            nz: 19,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 1.5,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (new, _) = run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid");
            let (old, _) =
                crate::legacy::run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid");
            assert_eq!(new.max_abs_diff(&old), 0.0, "{mode:?}");
        }
    }

    #[test]
    fn invalid_decomps_are_errors_not_panics() {
        let d = Decomp3D {
            nx: 7,
            ny: 8,
            nz: 8,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert_eq!(
            d.validate(),
            Err(DecompError::NotDivisible {
                axis: "nx",
                extent: 7,
                parts: 2
            })
        );
        assert!(run_paper3d_dist(d, LatencyModel::zero(), ExecMode::Overlapping).is_err());
        let d2 = Decomp3D { v: 0, ..d };
        assert_eq!(d2.validate(), Err(DecompError::EmptyDecomposition));
    }

    #[test]
    fn steps_rounding() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 10,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert_eq!(d.steps(), 3);
        assert_eq!(d.krange(2), (8, 10));
    }

    #[test]
    fn traced_run_emits_per_rank_intervals() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 16,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 1.0,
        };
        let (grid, _, trace) =
            run_dist3d_traced(Paper3D, d, LatencyModel::zero(), ExecMode::Overlapping)
                .expect("valid decomp");
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        assert_eq!(grid.max_abs_diff(&seq), 0.0);
        // Every rank computed d.steps() tiles; the trace must hold one
        // Compute interval per tile per rank, on a shared time axis.
        use msgpass::trace::Activity;
        for rank in 0..4 {
            let computes = trace
                .for_rank(rank)
                .filter(|iv| iv.activity == Activity::Compute)
                .count();
            assert_eq!(computes, d.steps(), "rank {rank}");
        }
        assert!(trace.horizon() > msgpass::trace::SimTime::ZERO);
    }
}
