//! Distributed execution of the paper's 3-D kernel (§5 layout).
//!
//! The processor grid covers the `i×j` cross-section (one block column
//! per rank); all tiles along `k` stay on their rank. Each pipeline step
//! processes a tile of height `V` along `k`:
//!
//! * **blocking** (`ProcB`): receive the `i−1`/`j−1` faces for the
//!   current tile, compute, send own faces — serialized, eq. (3);
//! * **overlapping** (`ProcNB`): post receives for step `k+1` and sends
//!   of step `k−1` results, compute step `k`, wait — the wire time rides
//!   under the computation, eq. (4).
//!
//! ## Hot-path structure
//!
//! The per-step path is allocation-free and branch-free in its inner
//! loop. `compute_tile` peels the `i==0`/`j==0`/`k==0` boundary cases
//! out of the k-loop: for each `(i, j)` pencil it split-borrows the
//! block at the current row, selects the `i−1`/`j−1` neighbor rows
//! *once* (previous block row, halo row, or a pre-splatted boundary
//! row), carries the `k−1` value in a register, and runs a zip over
//! equal-length slices — no per-cell index arithmetic, no bounds checks,
//! no boundary branches. Faces pack/unpack through the row-chunked
//! [`crate::halo`] copies into persistent buffers, and sends/receives go
//! through the `msgpass` persistent-buffer API, so a steady-state step
//! performs zero heap allocations (asserted by `tests/zero_alloc.rs`).
//! The original element-wise paths survive in [`crate::legacy`] as the
//! property-test oracle and perf baseline.
//!
//! Executors are generic over any [`Communicator`], and the driver
//! [`run_paper3d_dist`] runs them on the threaded backend, gathering the
//! blocks into a full [`Grid3D`] for verification.

use crate::grid::Grid3D;
use crate::halo;
use crate::kernel::{Kernel3D, Paper3D};
use crate::proto::{tag, DIR_I, DIR_J};
use msgpass::comm::Communicator;
use msgpass::thread_backend::{run_threads, LatencyModel};
use msgpass::topology::CartesianGrid;
use std::time::Duration;

/// Execution style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Blocking receive → compute → send per tile (§3).
    Blocking,
    /// Non-blocking pipelined overlap (§4).
    Overlapping,
}

/// Domain decomposition of the 3-D experiment.
#[derive(Clone, Copy, Debug)]
pub struct Decomp3D {
    /// Global extent along i.
    pub nx: usize,
    /// Global extent along j.
    pub ny: usize,
    /// Global extent along k (the pipelined dimension).
    pub nz: usize,
    /// Processor-grid extent along i.
    pub pi: usize,
    /// Processor-grid extent along j.
    pub pj: usize,
    /// Tile height `V` along k.
    pub v: usize,
    /// Boundary value for out-of-range reads.
    pub boundary: f32,
}

impl Decomp3D {
    /// Validate divisibility and sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            return Err("empty grid".into());
        }
        if self.pi == 0 || self.pj == 0 || self.v == 0 {
            return Err("empty decomposition".into());
        }
        if !self.nx.is_multiple_of(self.pi) {
            return Err(format!("nx = {} not divisible by pi = {}", self.nx, self.pi));
        }
        if !self.ny.is_multiple_of(self.pj) {
            return Err(format!("ny = {} not divisible by pj = {}", self.ny, self.pj));
        }
        Ok(())
    }

    /// Block extent along i.
    pub fn bx(&self) -> usize {
        self.nx / self.pi
    }

    /// Block extent along j.
    pub fn by(&self) -> usize {
        self.ny / self.pj
    }

    /// Number of pipeline steps `⌈nz / V⌉`.
    pub fn steps(&self) -> usize {
        self.nz.div_ceil(self.v)
    }

    /// The k-range of step `k` (the last tile may be partial).
    pub(crate) fn krange(&self, k: usize) -> (usize, usize) {
        (k * self.v, ((k + 1) * self.v).min(self.nz))
    }
}

/// Per-rank working state for a 3-D kernel. All buffers are allocated
/// once at construction; the pipeline loop never allocates.
struct Block3D {
    d: Decomp3D,
    /// Own block, `bx × by × nz`, k fastest.
    block: Vec<f32>,
    /// Halo plane `i = own_lo_i − 1`: `by × nz`.
    halo_i: Vec<f32>,
    /// Halo plane `j = own_lo_j − 1`: `bx × nz`.
    halo_j: Vec<f32>,
    has_left_i: bool,
    has_left_j: bool,
    /// Global coordinates of the block origin.
    gi0: i64,
    gj0: i64,
    /// Boundary splat, `nz` long: the "neighbor row" of cells whose
    /// `i−1`/`j−1` neighbor is outside the global grid.
    brow: Vec<f32>,
    /// Persistent outgoing-face buffers (max tile size, sliced per step).
    face_i_buf: Vec<f32>,
    face_j_buf: Vec<f32>,
    /// Persistent incoming-face buffers.
    recv_i_buf: Vec<f32>,
    recv_j_buf: Vec<f32>,
}

impl Block3D {
    fn new(d: Decomp3D, coords: &[usize]) -> Self {
        let vmax = d.v.min(d.nz);
        Block3D {
            d,
            block: vec![0.0; d.bx() * d.by() * d.nz],
            halo_i: vec![0.0; d.by() * d.nz],
            halo_j: vec![0.0; d.bx() * d.nz],
            has_left_i: coords[0] > 0,
            has_left_j: coords[1] > 0,
            gi0: (coords[0] * d.bx()) as i64,
            gj0: (coords[1] * d.by()) as i64,
            brow: vec![d.boundary; d.nz],
            face_i_buf: vec![0.0; d.by() * vmax],
            face_j_buf: vec![0.0; d.bx() * vmax],
            recv_i_buf: vec![0.0; d.by() * vmax],
            recv_j_buf: vec![0.0; d.bx() * vmax],
        }
    }

    /// Packed length of the `i`-face of step `k`.
    fn face_i_len(&self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        self.d.by() * (k1 - k0)
    }

    /// Packed length of the `j`-face of step `k`.
    fn face_j_len(&self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        self.d.bx() * (k1 - k0)
    }

    /// Compute one tile (all of the block's cross-section over `krange`).
    ///
    /// Bitwise-identical to the element-wise reference in
    /// [`crate::legacy`]: the arithmetic per cell is unchanged, only the
    /// addressing is hoisted.
    fn compute_tile<K: Kernel3D>(&mut self, kernel: K, k: usize) {
        let (k0, k1) = self.d.krange(k);
        let len = k1 - k0;
        let (bx, by) = (self.d.bx(), self.d.by());
        let nz = self.d.nz;
        let b = self.d.boundary;
        for i in 0..bx {
            let gi = self.gi0 + i as i64;
            for j in 0..by {
                let gj = self.gj0 + j as i64;
                let row = (i * by + j) * nz;
                // Rows before `row` are fully computed this step; the
                // split lets us borrow them immutably next to the
                // mutable current row.
                let (done, rest) = self.block.split_at_mut(row);
                let im1: &[f32] = if i > 0 {
                    &done[((i - 1) * by + j) * nz + k0..][..len]
                } else if self.has_left_i {
                    &self.halo_i[j * nz + k0..][..len]
                } else {
                    &self.brow[k0..k1]
                };
                let jm1: &[f32] = if j > 0 {
                    &done[((i * by) + (j - 1)) * nz + k0..][..len]
                } else if self.has_left_j {
                    &self.halo_j[i * nz + k0..][..len]
                } else {
                    &self.brow[k0..k1]
                };
                // k−1 dependence: seed from below the tile (or the
                // boundary), then carry the freshly computed value.
                let mut km1 = if k0 > 0 { rest[k0 - 1] } else { b };
                let cur = &mut rest[k0..k1];
                for (kz, (out, (&a, &c))) in
                    (k0 as i64..).zip(cur.iter_mut().zip(im1.iter().zip(jm1)))
                {
                    let val = kernel.eval(gi, gj, kz, a, c, km1);
                    *out = val;
                    km1 = val;
                }
            }
        }
    }

    /// Pack the outgoing `i`-face (i = bx−1) of step `k` into
    /// `face_i_buf`; returns the packed length.
    fn pack_face_i(&mut self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        let len = k1 - k0;
        let n = self.d.by() * len;
        let base = (self.d.bx() - 1) * self.d.by() * self.d.nz;
        halo::pack_rows(
            &self.block,
            base,
            self.d.nz,
            k0,
            len,
            &mut self.face_i_buf[..n],
        );
        n
    }

    /// Pack the outgoing `j`-face (j = by−1) of step `k` into
    /// `face_j_buf`; returns the packed length.
    fn pack_face_j(&mut self, k: usize) -> usize {
        let (k0, k1) = self.d.krange(k);
        let len = k1 - k0;
        let n = self.d.bx() * len;
        let base = (self.d.by() - 1) * self.d.nz;
        halo::pack_rows(
            &self.block,
            base,
            self.d.by() * self.d.nz,
            k0,
            len,
            &mut self.face_j_buf[..n],
        );
        n
    }

    /// Install the `n` received `i`-face values (already in
    /// `recv_i_buf`) into the halo plane.
    fn store_halo_i(&mut self, k: usize, n: usize) {
        let (k0, k1) = self.d.krange(k);
        halo::unpack_rows(
            &self.recv_i_buf[..n],
            &mut self.halo_i,
            0,
            self.d.nz,
            k0,
            k1 - k0,
        );
    }

    /// Install the `n` received `j`-face values (already in
    /// `recv_j_buf`) into the halo plane.
    fn store_halo_j(&mut self, k: usize, n: usize) {
        let (k0, k1) = self.d.krange(k);
        halo::unpack_rows(
            &self.recv_j_buf[..n],
            &mut self.halo_j,
            0,
            self.d.nz,
            k0,
            k1 - k0,
        );
    }
}

/// Run one rank's blocking (`ProcB`) execution of any 3-D kernel;
/// returns its block.
pub fn rank_blocking_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = Block3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    for k in 0..d.steps() {
        if let Some(src) = up_i {
            let n = blk.face_i_len(k);
            comm.recv_into(src, tag(k, DIR_I), &mut blk.recv_i_buf[..n]);
            blk.store_halo_i(k, n);
        }
        if let Some(src) = up_j {
            let n = blk.face_j_len(k);
            comm.recv_into(src, tag(k, DIR_J), &mut blk.recv_j_buf[..n]);
            blk.store_halo_j(k, n);
        }
        blk.compute_tile(kernel, k);
        if let Some(dst) = dn_i {
            let n = blk.pack_face_i(k);
            comm.send_from(dst, tag(k, DIR_I), &blk.face_i_buf[..n]);
        }
        if let Some(dst) = dn_j {
            let n = blk.pack_face_j(k);
            comm.send_from(dst, tag(k, DIR_J), &blk.face_j_buf[..n]);
        }
    }
    blk.block
}

/// Run one rank's overlapping (`ProcNB`) execution of any 3-D kernel;
/// returns its block. The steady-state loop performs no heap
/// allocations: requests live in fixed `Option` slots and payloads move
/// through the persistent-buffer API.
pub fn rank_overlap_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = Block3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    let steps = d.steps();

    // Prologue: receives for step 0.
    let mut cur_recv_i = up_i.map(|src| comm.irecv(src, tag(0, DIR_I)));
    let mut cur_recv_j = up_j.map(|src| comm.irecv(src, tag(0, DIR_J)));
    for k in 0..steps {
        // Post receives for the next tile…
        let next_recv_i = if k + 1 < steps {
            up_i.map(|src| comm.irecv(src, tag(k + 1, DIR_I)))
        } else {
            None
        };
        let next_recv_j = if k + 1 < steps {
            up_j.map(|src| comm.irecv(src, tag(k + 1, DIR_J)))
        } else {
            None
        };
        // …and sends of the previous tile's results.
        let mut send_i = None;
        let mut send_j = None;
        if k >= 1 {
            if let Some(dst) = dn_i {
                let n = blk.pack_face_i(k - 1);
                send_i = Some(comm.isend_from(dst, tag(k - 1, DIR_I), &blk.face_i_buf[..n]));
            }
            if let Some(dst) = dn_j {
                let n = blk.pack_face_j(k - 1);
                send_j = Some(comm.isend_from(dst, tag(k - 1, DIR_J), &blk.face_j_buf[..n]));
            }
        }
        // Wait for this tile's inputs, then compute.
        if let Some(req) = cur_recv_i.take() {
            let n = blk.face_i_len(k);
            comm.wait_recv_into(req, &mut blk.recv_i_buf[..n]);
            blk.store_halo_i(k, n);
        }
        if let Some(req) = cur_recv_j.take() {
            let n = blk.face_j_len(k);
            comm.wait_recv_into(req, &mut blk.recv_j_buf[..n]);
            blk.store_halo_j(k, n);
        }
        blk.compute_tile(kernel, k);
        if let Some(req) = send_i {
            comm.wait_send(req);
        }
        if let Some(req) = send_j {
            comm.wait_send(req);
        }
        cur_recv_i = next_recv_i;
        cur_recv_j = next_recv_j;
    }
    // Epilogue: ship the last tile's faces.
    if let Some(dst) = dn_i {
        let n = blk.pack_face_i(steps - 1);
        let req = comm.isend_from(dst, tag(steps - 1, DIR_I), &blk.face_i_buf[..n]);
        comm.wait_send(req);
    }
    if let Some(dst) = dn_j {
        let n = blk.pack_face_j(steps - 1);
        let req = comm.isend_from(dst, tag(steps - 1, DIR_J), &blk.face_j_buf[..n]);
        comm.wait_send(req);
    }
    blk.block
}

/// Run a full distributed 3-D kernel on the threaded backend and gather
/// the result. Returns the assembled grid and the wall-clock time of the
/// parallel region.
pub fn run_dist3d<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> (Grid3D, Duration) {
    d.validate().expect("invalid decomposition");
    let ranks = d.pi * d.pj;
    let (blocks, elapsed) = run_threads::<f32, Vec<f32>, _>(ranks, latency, |mut comm| {
        match mode {
            ExecMode::Blocking => rank_blocking_3d(&mut comm, kernel, d),
            ExecMode::Overlapping => rank_overlap_3d(&mut comm, kernel, d),
        }
    });
    // Assemble: every block pencil is contiguous in both the block and
    // the destination grid, so the gather is one memcpy per (i, j).
    let grid_topo = CartesianGrid::new(vec![d.pi, d.pj]);
    let mut out = Grid3D::new(d.nx, d.ny, d.nz, 0.0, d.boundary);
    let (bx, by) = (d.bx(), d.by());
    for (rank, block) in blocks.iter().enumerate() {
        let c = grid_topo.coords_of(rank);
        for i in 0..bx {
            for j in 0..by {
                out.row_mut(c[0] * bx + i, c[1] * by + j)
                    .copy_from_slice(&block[(i * by + j) * d.nz..][..d.nz]);
            }
        }
    }
    (out, elapsed)
}

/// [`run_dist3d`] specialized to the paper's √ kernel.
pub fn run_paper3d_dist(
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> (Grid3D, Duration) {
    run_dist3d(Paper3D, d, latency, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LongestPath3D, Relax3D};
    use crate::seq::{run_paper3d_seq, run_seq3d};

    fn check_matches_seq(d: Decomp3D, mode: ExecMode) {
        let (dist, _) = run_paper3d_dist(d, LatencyModel::zero(), mode);
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        assert_eq!(
            dist.max_abs_diff(&seq),
            0.0,
            "distributed result differs ({mode:?}, {d:?})"
        );
    }

    #[test]
    fn blocking_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn overlap_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn overlap_matches_sequential_4x4() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 24,
                pi: 4,
                pj: 4,
                v: 5, // non-dividing V: last tile is partial
                boundary: 2.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn blocking_matches_sequential_asymmetric() {
        check_matches_seq(
            Decomp3D {
                nx: 6,
                ny: 4,
                nz: 17,
                pi: 3,
                pj: 2,
                v: 4,
                boundary: 0.5,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn single_rank_trivial() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 16,
                pi: 1,
                pj: 1,
                v: 4,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn v_equal_nz_single_step() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 8,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn v_one_fine_grain() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 6,
                pi: 2,
                pj: 2,
                v: 1,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn v_larger_than_nz() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 5,
                pi: 2,
                pj: 2,
                v: 9, // single, clamped step
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn generic_kernels_match_sequential() {
        let d = Decomp3D {
            nx: 6,
            ny: 6,
            nz: 20,
            pi: 2,
            pj: 3,
            v: 6,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (dist, _) = run_dist3d(Relax3D::default(), d, LatencyModel::zero(), mode);
            let seq = run_seq3d(Relax3D::default(), d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Relax3D {mode:?}");

            let (dist, _) = run_dist3d(LongestPath3D, d, LatencyModel::zero(), mode);
            let seq = run_seq3d(LongestPath3D, d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "LongestPath3D {mode:?}");
        }
    }

    #[test]
    fn matches_legacy_executor_bitwise() {
        // The optimized paths must agree with the preserved element-wise
        // baseline exactly, including a partial last tile.
        let d = Decomp3D {
            nx: 6,
            ny: 4,
            nz: 19,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 1.5,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (new, _) = run_dist3d(Paper3D, d, LatencyModel::zero(), mode);
            let (old, _) = crate::legacy::run_dist3d(Paper3D, d, LatencyModel::zero(), mode);
            assert_eq!(new.max_abs_diff(&old), 0.0, "{mode:?}");
        }
    }

    #[test]
    fn validate_rejects_bad_decomp() {
        let d = Decomp3D {
            nx: 7,
            ny: 8,
            nz: 8,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert!(d.validate().is_err());
        let d2 = Decomp3D { v: 0, ..d };
        assert!(d2.validate().is_err());
    }

    #[test]
    fn steps_rounding() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 10,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert_eq!(d.steps(), 3);
        assert_eq!(d.krange(2), (8, 10));
    }
}
