//! Distributed execution of the paper's 3-D kernel (§5 layout).
//!
//! The processor grid covers the `i×j` cross-section (one block column
//! per rank); all tiles along `k` stay on their rank. Each pipeline step
//! processes a tile of height `V` along `k`:
//!
//! * **blocking** (`ProcB`): receive the `i−1`/`j−1` faces for the
//!   current tile, compute, send own faces — serialized, eq. (3);
//! * **overlapping** (`ProcNB`): post receives for step `k+1` and sends
//!   of step `k−1` results, compute step `k`, wait — the wire time rides
//!   under the computation, eq. (4).
//!
//! Executors are generic over any [`Communicator`], and the driver
//! [`run_paper3d_dist`] runs them on the threaded backend, gathering the
//! blocks into a full [`Grid3D`] for verification.

use crate::grid::Grid3D;
use crate::kernel::{Kernel3D, Paper3D};
use msgpass::comm::{Communicator, RecvRequest};
use msgpass::thread_backend::{run_threads, LatencyModel};
use msgpass::topology::CartesianGrid;
use std::time::Duration;

/// Execution style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Blocking receive → compute → send per tile (§3).
    Blocking,
    /// Non-blocking pipelined overlap (§4).
    Overlapping,
}

/// Domain decomposition of the 3-D experiment.
#[derive(Clone, Copy, Debug)]
pub struct Decomp3D {
    /// Global extent along i.
    pub nx: usize,
    /// Global extent along j.
    pub ny: usize,
    /// Global extent along k (the pipelined dimension).
    pub nz: usize,
    /// Processor-grid extent along i.
    pub pi: usize,
    /// Processor-grid extent along j.
    pub pj: usize,
    /// Tile height `V` along k.
    pub v: usize,
    /// Boundary value for out-of-range reads.
    pub boundary: f32,
}

impl Decomp3D {
    /// Validate divisibility and sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            return Err("empty grid".into());
        }
        if self.pi == 0 || self.pj == 0 || self.v == 0 {
            return Err("empty decomposition".into());
        }
        if !self.nx.is_multiple_of(self.pi) {
            return Err(format!("nx = {} not divisible by pi = {}", self.nx, self.pi));
        }
        if !self.ny.is_multiple_of(self.pj) {
            return Err(format!("ny = {} not divisible by pj = {}", self.ny, self.pj));
        }
        Ok(())
    }

    /// Block extent along i.
    pub fn bx(&self) -> usize {
        self.nx / self.pi
    }

    /// Block extent along j.
    pub fn by(&self) -> usize {
        self.ny / self.pj
    }

    /// Number of pipeline steps `⌈nz / V⌉`.
    pub fn steps(&self) -> usize {
        self.nz.div_ceil(self.v)
    }

    /// The k-range of step `k`.
    fn krange(&self, k: usize) -> (usize, usize) {
        (k * self.v, ((k + 1) * self.v).min(self.nz))
    }
}

/// Per-rank working state for a 3-D kernel.
struct Block3D {
    d: Decomp3D,
    /// Own block, `bx × by × nz`, k fastest.
    block: Vec<f32>,
    /// Halo plane `i = own_lo_i − 1`: `by × nz`.
    halo_i: Vec<f32>,
    /// Halo plane `j = own_lo_j − 1`: `bx × nz`.
    halo_j: Vec<f32>,
    has_left_i: bool,
    has_left_j: bool,
    /// Global coordinates of the block origin.
    gi0: i64,
    gj0: i64,
}

impl Block3D {
    fn new(d: Decomp3D, coords: &[usize]) -> Self {
        Block3D {
            d,
            block: vec![0.0; d.bx() * d.by() * d.nz],
            halo_i: vec![0.0; d.by() * d.nz],
            halo_j: vec![0.0; d.bx() * d.nz],
            has_left_i: coords[0] > 0,
            has_left_j: coords[1] > 0,
            gi0: (coords[0] * d.bx()) as i64,
            gj0: (coords[1] * d.by()) as i64,
        }
    }

    #[inline]
    fn bidx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.d.by() + j) * self.d.nz + k
    }

    /// Compute one tile (all of the block's cross-section over `krange`).
    fn compute_tile<K: Kernel3D>(&mut self, kernel: K, k: usize) {
        let (k0, k1) = self.d.krange(k);
        let (bx, by) = (self.d.bx(), self.d.by());
        let nz = self.d.nz;
        let b = self.d.boundary;
        for i in 0..bx {
            for j in 0..by {
                for kz in k0..k1 {
                    let im1 = if i > 0 {
                        self.block[self.bidx(i - 1, j, kz)]
                    } else if self.has_left_i {
                        self.halo_i[j * nz + kz]
                    } else {
                        b
                    };
                    let jm1 = if j > 0 {
                        self.block[self.bidx(i, j - 1, kz)]
                    } else if self.has_left_j {
                        self.halo_j[i * nz + kz]
                    } else {
                        b
                    };
                    let km1 = if kz > 0 {
                        self.block[self.bidx(i, j, kz - 1)]
                    } else {
                        b
                    };
                    let idx = self.bidx(i, j, kz);
                    self.block[idx] = kernel.eval(
                        self.gi0 + i as i64,
                        self.gj0 + j as i64,
                        kz as i64,
                        im1,
                        jm1,
                        km1,
                    );
                }
            }
        }
    }

    /// Extract the outgoing `i`-face (i = bx−1) for step `k`.
    fn face_i(&self, k: usize) -> Vec<f32> {
        let (k0, k1) = self.d.krange(k);
        let i = self.d.bx() - 1;
        let mut out = Vec::with_capacity(self.d.by() * (k1 - k0));
        for j in 0..self.d.by() {
            for kz in k0..k1 {
                out.push(self.block[self.bidx(i, j, kz)]);
            }
        }
        out
    }

    /// Extract the outgoing `j`-face (j = by−1) for step `k`.
    fn face_j(&self, k: usize) -> Vec<f32> {
        let (k0, k1) = self.d.krange(k);
        let j = self.d.by() - 1;
        let mut out = Vec::with_capacity(self.d.bx() * (k1 - k0));
        for i in 0..self.d.bx() {
            for kz in k0..k1 {
                out.push(self.block[self.bidx(i, j, kz)]);
            }
        }
        out
    }

    /// Install a received `i`-face into the halo.
    fn store_halo_i(&mut self, k: usize, data: &[f32]) {
        let (k0, k1) = self.d.krange(k);
        assert_eq!(data.len(), self.d.by() * (k1 - k0), "i-face size mismatch");
        let nz = self.d.nz;
        let mut it = data.iter();
        for j in 0..self.d.by() {
            for kz in k0..k1 {
                self.halo_i[j * nz + kz] = *it.next().expect("size checked");
            }
        }
    }

    /// Install a received `j`-face into the halo.
    fn store_halo_j(&mut self, k: usize, data: &[f32]) {
        let (k0, k1) = self.d.krange(k);
        assert_eq!(data.len(), self.d.bx() * (k1 - k0), "j-face size mismatch");
        let nz = self.d.nz;
        let mut it = data.iter();
        for i in 0..self.d.bx() {
            for kz in k0..k1 {
                self.halo_j[i * nz + kz] = *it.next().expect("size checked");
            }
        }
    }
}

const DIR_I: u64 = 0;
const DIR_J: u64 = 1;

fn tag(k: usize, dir: u64) -> u64 {
    (k as u64) * 2 + dir
}

/// Run one rank's blocking (`ProcB`) execution of any 3-D kernel;
/// returns its block.
pub fn rank_blocking_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = Block3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    for k in 0..d.steps() {
        if let Some(src) = up_i {
            let data = comm.recv(src, tag(k, DIR_I));
            blk.store_halo_i(k, &data);
        }
        if let Some(src) = up_j {
            let data = comm.recv(src, tag(k, DIR_J));
            blk.store_halo_j(k, &data);
        }
        blk.compute_tile(kernel, k);
        if let Some(dst) = dn_i {
            comm.send(dst, tag(k, DIR_I), blk.face_i(k));
        }
        if let Some(dst) = dn_j {
            comm.send(dst, tag(k, DIR_J), blk.face_j(k));
        }
    }
    blk.block
}

/// Run one rank's overlapping (`ProcNB`) execution of any 3-D kernel;
/// returns its block.
pub fn rank_overlap_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = Block3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    let steps = d.steps();

    let post_recvs = |comm: &mut C, k: usize| -> Vec<(u64, RecvRequest)> {
        let mut reqs = Vec::new();
        if let Some(src) = up_i {
            reqs.push((DIR_I, comm.irecv(src, tag(k, DIR_I))));
        }
        if let Some(src) = up_j {
            reqs.push((DIR_J, comm.irecv(src, tag(k, DIR_J))));
        }
        reqs
    };

    // Prologue: receives for step 0.
    let mut cur_recvs = post_recvs(comm, 0);
    for k in 0..steps {
        // Post receives for the next tile…
        let next_recvs = if k + 1 < steps {
            post_recvs(comm, k + 1)
        } else {
            Vec::new()
        };
        // …and sends of the previous tile's results.
        let mut send_reqs = Vec::new();
        if k >= 1 {
            if let Some(dst) = dn_i {
                send_reqs.push(comm.isend(dst, tag(k - 1, DIR_I), blk.face_i(k - 1)));
            }
            if let Some(dst) = dn_j {
                send_reqs.push(comm.isend(dst, tag(k - 1, DIR_J), blk.face_j(k - 1)));
            }
        }
        // Wait for this tile's inputs, then compute.
        for (dir, req) in cur_recvs.drain(..) {
            let data = comm.wait_recv(req);
            if dir == DIR_I {
                blk.store_halo_i(k, &data);
            } else {
                blk.store_halo_j(k, &data);
            }
        }
        blk.compute_tile(kernel, k);
        for req in send_reqs {
            comm.wait_send(req);
        }
        cur_recvs = next_recvs;
    }
    // Epilogue: ship the last tile's faces.
    let mut send_reqs = Vec::new();
    if let Some(dst) = dn_i {
        send_reqs.push(comm.isend(dst, tag(steps - 1, DIR_I), blk.face_i(steps - 1)));
    }
    if let Some(dst) = dn_j {
        send_reqs.push(comm.isend(dst, tag(steps - 1, DIR_J), blk.face_j(steps - 1)));
    }
    for req in send_reqs {
        comm.wait_send(req);
    }
    blk.block
}

/// Run a full distributed 3-D kernel on the threaded backend and gather
/// the result. Returns the assembled grid and the wall-clock time of the
/// parallel region.
pub fn run_dist3d<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> (Grid3D, Duration) {
    d.validate().expect("invalid decomposition");
    let ranks = d.pi * d.pj;
    let (blocks, elapsed) = run_threads::<f32, Vec<f32>, _>(ranks, latency, |mut comm| {
        match mode {
            ExecMode::Blocking => rank_blocking_3d(&mut comm, kernel, d),
            ExecMode::Overlapping => rank_overlap_3d(&mut comm, kernel, d),
        }
    });
    // Assemble.
    let grid_topo = CartesianGrid::new(vec![d.pi, d.pj]);
    let mut out = Grid3D::new(d.nx, d.ny, d.nz, 0.0, d.boundary);
    let (bx, by) = (d.bx(), d.by());
    for (rank, block) in blocks.iter().enumerate() {
        let c = grid_topo.coords_of(rank);
        for i in 0..bx {
            for j in 0..by {
                for k in 0..d.nz {
                    out.set(
                        c[0] * bx + i,
                        c[1] * by + j,
                        k,
                        block[(i * by + j) * d.nz + k],
                    );
                }
            }
        }
    }
    (out, elapsed)
}

/// [`run_dist3d`] specialized to the paper's √ kernel.
pub fn run_paper3d_dist(
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> (Grid3D, Duration) {
    run_dist3d(Paper3D, d, latency, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LongestPath3D, Relax3D};
    use crate::seq::{run_paper3d_seq, run_seq3d};

    fn check_matches_seq(d: Decomp3D, mode: ExecMode) {
        let (dist, _) = run_paper3d_dist(d, LatencyModel::zero(), mode);
        let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
        assert_eq!(
            dist.max_abs_diff(&seq),
            0.0,
            "distributed result differs ({mode:?}, {d:?})"
        );
    }

    #[test]
    fn blocking_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn overlap_matches_sequential_2x2() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 32,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn overlap_matches_sequential_4x4() {
        check_matches_seq(
            Decomp3D {
                nx: 8,
                ny: 8,
                nz: 24,
                pi: 4,
                pj: 4,
                v: 5, // non-dividing V: last tile is partial
                boundary: 2.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn blocking_matches_sequential_asymmetric() {
        check_matches_seq(
            Decomp3D {
                nx: 6,
                ny: 4,
                nz: 17,
                pi: 3,
                pj: 2,
                v: 4,
                boundary: 0.5,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn single_rank_trivial() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 16,
                pi: 1,
                pj: 1,
                v: 4,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn v_equal_nz_single_step() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 8,
                pi: 2,
                pj: 2,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn v_one_fine_grain() {
        check_matches_seq(
            Decomp3D {
                nx: 4,
                ny: 4,
                nz: 6,
                pi: 2,
                pj: 2,
                v: 1,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn generic_kernels_match_sequential() {
        let d = Decomp3D {
            nx: 6,
            ny: 6,
            nz: 20,
            pi: 2,
            pj: 3,
            v: 6,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (dist, _) = run_dist3d(Relax3D::default(), d, LatencyModel::zero(), mode);
            let seq = run_seq3d(Relax3D::default(), d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Relax3D {mode:?}");

            let (dist, _) = run_dist3d(LongestPath3D, d, LatencyModel::zero(), mode);
            let seq = run_seq3d(LongestPath3D, d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "LongestPath3D {mode:?}");
        }
    }

    #[test]
    fn validate_rejects_bad_decomp() {
        let d = Decomp3D {
            nx: 7,
            ny: 8,
            nz: 8,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert!(d.validate().is_err());
        let d2 = Decomp3D { v: 0, ..d };
        assert!(d2.validate().is_err());
    }

    #[test]
    fn steps_rounding() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 10,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 0.0,
        };
        assert_eq!(d.steps(), 3);
        assert_eq!(d.krange(2), (8, 10));
    }
}
