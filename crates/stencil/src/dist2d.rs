//! Distributed execution of the 2-D Example 1 kernel (§3/§4).
//!
//! Strip decomposition: ranks own contiguous `j`-strips, tiles sweep the
//! `i` dimension (the paper's Example 1 maps along `i₁`, the 10 000-long
//! dimension). The dependence set `{(1,1),(1,0),(0,1)}` makes the halo a
//! single column per neighbor, with the diagonal `(1,1)` satisfied by
//! keeping the *whole* halo column resident: the value `(i−1, j₀−1)`
//! needed by tile `k` arrived with message `k` (rows `kV..`) or message
//! `k−1` (row `kV−1`), both already received before tile `k` computes.
//!
//! ## Structure
//!
//! [`Strip2D`] is the 2-D [`TileOps`] implementation: it owns the strip,
//! halo column and face buffer and supplies the branch-peeled
//! `compute_tile` hot path (unchanged from the pre-engine executors) —
//! the pipeline loop itself lives in [`crate::engine`], driven by the
//! [`tiling_core`] schedule type behind the chosen [`ExecMode`]. Each
//! row's `i−1` neighbors are one contiguous slice (the previous strip
//! row or a boundary splat), the `j−1` value is loop-carried, and the
//! diagonal/west pair comes from a two-wide window over the neighbor
//! row. The outgoing face column (stride `by`) gathers straight into
//! the transport's wire buffer and the received column copies straight
//! from the wire payload into the contiguous halo window — no face or
//! landing buffers at all. Steady-state steps allocate nothing. The
//! element-wise original survives in [`crate::legacy`] as oracle and
//! perf baseline.

use crate::decomp::{self, DecompError};
use crate::engine::{self, EngineError, NoopObserver, StepObserver, TileOps};
use crate::grid::Grid2D;
use crate::kernel::{Example1, Kernel2D};
use crate::proto::DIR_J;
use msgpass::comm::Communicator;
use msgpass::fault::FaultStats;
use msgpass::thread_backend::{LatencyModel, WorldConfig};
use std::time::Duration;
use tiling_core::schedule::StepPlan;

pub use crate::engine::ExecMode;

/// Domain decomposition for the 2-D kernel.
#[derive(Clone, Copy, Debug)]
pub struct Decomp2D {
    /// Global extent along i (the pipelined dimension).
    pub nx: usize,
    /// Global extent along j (partitioned across ranks).
    pub ny: usize,
    /// Number of ranks (j-strips).
    pub ranks: usize,
    /// Tile height `V` along i.
    pub v: usize,
    /// Boundary value.
    pub boundary: f32,
}

impl Decomp2D {
    /// Validate divisibility and sizes.
    pub fn validate(&self) -> Result<(), DecompError> {
        decomp::require_nonempty_grid(&[self.nx, self.ny])?;
        decomp::require_nonempty_decomp(&[self.ranks, self.v])?;
        decomp::require_divides("ny", self.ny, self.ranks)
    }

    /// Strip width per rank.
    pub fn by(&self) -> usize {
        self.ny / self.ranks
    }

    /// Number of pipeline steps `⌈nx / V⌉`.
    pub fn steps(&self) -> usize {
        decomp::pipeline_steps(self.nx, self.v)
    }

    /// The i-range of step `k` (the last tile may be partial).
    pub(crate) fn irange(&self, k: usize) -> (usize, usize) {
        decomp::tile_range(self.nx, self.v, k)
    }
}

/// Per-rank working state: the 2-D [`TileOps`] implementation. All
/// buffers are allocated once; the pipeline loop never allocates.
struct Strip2D<K> {
    d: Decomp2D,
    kernel: K,
    /// Own strip, `nx × by`, j fastest.
    strip: Vec<f32>,
    /// Halo column `j = own_lo − 1`, full `nx` length.
    halo: Vec<f32>,
    has_left: bool,
    /// Upstream/downstream ranks along the single halo direction.
    up: Option<usize>,
    down: Option<usize>,
    /// Global j of the strip's first column.
    gj0: i64,
    /// Boundary splat, `by` long: the `i−1` neighbor row of row 0.
    brow: Vec<f32>,
}

impl<K: Kernel2D> Strip2D<K> {
    fn new(d: Decomp2D, kernel: K, rank: usize) -> Self {
        Strip2D {
            d,
            kernel,
            strip: vec![0.0; d.nx * d.by()],
            halo: vec![0.0; d.nx],
            has_left: rank > 0,
            up: (rank > 0).then(|| rank - 1),
            down: (rank + 1 < d.ranks).then_some(rank + 1),
            gj0: (rank * d.by()) as i64,
            brow: vec![d.boundary; d.by()],
        }
    }

    /// Compute one tile (rows `irange(k)` across the strip width).
    ///
    /// Bitwise-identical to the element-wise reference in
    /// [`crate::legacy`].
    fn compute_tile(&mut self, k: usize) {
        let kernel = self.kernel;
        let (i0, i1) = self.d.irange(k);
        let by = self.d.by();
        let b = self.d.boundary;
        for i in i0..i1 {
            let row = i * by;
            let (done, rest) = self.strip.split_at_mut(row);
            // Row i−1, fully computed (earlier tile or earlier row of
            // this tile); row 0 reads the boundary splat instead.
            let up: &[f32] = if i > 0 { &done[row - by..] } else { &self.brow };
            let cur = &mut rest[..by];
            // Peel j == 0: its west/diagonal neighbors come from the
            // halo column (or the boundary).
            let diag0 = if i > 0 && self.has_left {
                self.halo[i - 1]
            } else {
                b
            };
            let jm1_0 = if self.has_left { self.halo[i] } else { b };
            let mut prev = kernel.eval(i as i64, self.gj0, diag0, up[0], jm1_0);
            cur[0] = prev;
            // Steady state: diag = up[j−1], north = up[j], west carried.
            for (gj, (out, w)) in (self.gj0 + 1..).zip(cur[1..].iter_mut().zip(up.windows(2))) {
                let val = kernel.eval(i as i64, gj, w[0], w[1], prev);
                *out = val;
                prev = val;
            }
        }
    }
}

impl<K: Kernel2D> TileOps for Strip2D<K> {
    fn num_dirs(&self) -> usize {
        1
    }

    fn upstream(&self, _dir: usize) -> Option<usize> {
        self.up
    }

    fn downstream(&self, _dir: usize) -> Option<usize> {
        self.down
    }

    fn wire_dir(&self, _dir: usize) -> u64 {
        DIR_J
    }

    fn face_len(&self, _dir: usize, step: usize) -> usize {
        let (i0, i1) = self.d.irange(step);
        i1 - i0
    }

    fn pack_into(&mut self, _dir: usize, step: usize, out: &mut [f32]) {
        // Gather the outgoing boundary column (j = by−1) of the tile
        // straight into the wire buffer — no intermediate face buffer.
        let (i0, i1) = self.d.irange(step);
        let by = self.d.by();
        let col = by - 1;
        for (o, i) in out.iter_mut().zip(i0..i1) {
            *o = self.strip[i * by + col];
        }
    }

    fn unpack_from(&mut self, _dir: usize, step: usize, data: &[f32]) {
        // The halo column is contiguous: the wire payload copies
        // straight into its tile window.
        let (i0, i1) = self.d.irange(step);
        self.halo[i0..i1].copy_from_slice(data);
    }

    fn compute(&mut self, step: usize) {
        self.compute_tile(step);
    }
}

/// One rank's execution of any 2-D kernel from a pre-compiled
/// [`StepPlan`] (see [`crate::plan::Compiled2D`]), reporting every
/// phase to `obs`; returns its strip (`nx × by`) or the typed
/// transport/structure error that stopped it. Nothing is re-derived
/// here — the plan is executed exactly as compiled.
pub fn try_run_rank2d_plan<C: Communicator<f32>, K: Kernel2D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
    plan: &StepPlan,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    let mut s = Strip2D::new(d, kernel, comm.rank());
    engine::run_rank(comm, &mut s, plan, obs)?;
    Ok(s.strip)
}

/// One rank's execution of any 2-D kernel under `mode`'s schedule,
/// reporting every phase to `obs`; returns its strip (`nx × by`) or
/// the typed transport/structure error that stopped it.
pub fn try_run_rank2d_observed<C: Communicator<f32>, K: Kernel2D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
    mode: ExecMode,
    obs: &mut O,
) -> Result<Vec<f32>, EngineError> {
    // Example 1 maps along i₁ of a 2-D tiled space (pi = [1, 2]).
    let plan = mode.step_plan(2, 0, d.steps());
    try_run_rank2d_plan(comm, kernel, d, &plan, obs)
}

/// One rank's execution of any 2-D kernel under `mode`'s schedule,
/// reporting every phase to `obs`; returns its strip (`nx × by`).
pub fn run_rank2d_observed<C: Communicator<f32>, K: Kernel2D, O: StepObserver>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
    mode: ExecMode,
    obs: &mut O,
) -> Vec<f32> {
    let rank = comm.rank();
    try_run_rank2d_observed(comm, kernel, d, mode, obs)
        .unwrap_or_else(|e| panic!("rank {rank}: {e}"))
}

/// One rank's execution of any 2-D kernel under `mode`'s schedule;
/// returns its strip (`nx × by`).
pub fn run_rank2d<C: Communicator<f32>, K: Kernel2D>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
    mode: ExecMode,
) -> Vec<f32> {
    run_rank2d_observed(comm, kernel, d, mode, &mut NoopObserver)
}

/// Run a distributed 2-D kernel on a fully configured world — wire
/// latency, and optionally a reliability layer and a fault plan — and
/// gather. Returns the assembled grid, the wall-clock time, and each
/// rank's fault counters. When ranks fail, the most diagnostic error
/// is returned (see [`EngineError::severity`]).
pub fn run_dist2d_with<K: Kernel2D>(
    kernel: K,
    d: Decomp2D,
    cfg: &WorldConfig,
    mode: ExecMode,
) -> Result<(Grid2D, Duration, Vec<FaultStats>), EngineError> {
    // Compile (validate + pre-flight, exactly once) then execute the
    // sealed plan — see [`crate::plan`].
    let compiled = if cfg.skip_preflight {
        crate::plan::Compiled2D::compile_unchecked(d, mode)?
    } else {
        crate::plan::Compiled2D::compile(d, mode)?
    };
    crate::plan::run2d_with(kernel, &compiled, cfg)
}

/// Run a distributed 2-D kernel on the threaded backend and gather.
pub fn run_dist2d<K: Kernel2D>(
    kernel: K,
    d: Decomp2D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid2D, Duration), EngineError> {
    let (out, elapsed, _) = run_dist2d_with(kernel, d, &WorldConfig::new(latency), mode)?;
    Ok((out, elapsed))
}

/// [`run_dist2d`] specialized to the Example 1 kernel.
pub fn run_example1_dist(
    d: Decomp2D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid2D, Duration), EngineError> {
    run_dist2d(Example1, d, latency, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::run_example1_seq;

    fn check(d: Decomp2D, mode: ExecMode) {
        let (dist, _) = run_example1_dist(d, LatencyModel::zero(), mode).expect("valid decomp");
        let seq = run_example1_seq(d.nx, d.ny, d.boundary);
        assert_eq!(dist.max_abs_diff(&seq), 0.0, "{mode:?} {d:?}");
    }

    #[test]
    fn blocking_matches_sequential() {
        check(
            Decomp2D {
                nx: 40,
                ny: 12,
                ranks: 4,
                v: 10,
                boundary: 4.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn overlap_matches_sequential() {
        check(
            Decomp2D {
                nx: 40,
                ny: 12,
                ranks: 4,
                v: 10,
                boundary: 4.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn overlap_partial_last_tile() {
        check(
            Decomp2D {
                nx: 37,
                ny: 9,
                ranks: 3,
                v: 8,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn single_rank() {
        check(
            Decomp2D {
                nx: 16,
                ny: 8,
                ranks: 1,
                v: 4,
                boundary: 2.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn fine_grain_v1() {
        check(
            Decomp2D {
                nx: 10,
                ny: 6,
                ranks: 2,
                v: 1,
                boundary: 3.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn wide_strips() {
        check(
            Decomp2D {
                nx: 24,
                ny: 30,
                ranks: 5,
                v: 6,
                boundary: 1.0,
            },
            ExecMode::Blocking,
        );
    }

    #[test]
    fn unit_width_strips() {
        // by == 1: every row's steady-state loop is empty and the face
        // column is also the first column.
        check(
            Decomp2D {
                nx: 12,
                ny: 3,
                ranks: 3,
                v: 5,
                boundary: 2.0,
            },
            ExecMode::Overlapping,
        );
    }

    #[test]
    fn generic_2d_kernels_match_sequential() {
        use crate::kernel::{Alignment2D, Smooth2D};
        use crate::seq::run_seq2d;
        let d = Decomp2D {
            nx: 25,
            ny: 12,
            ranks: 3,
            v: 6,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let k = Alignment2D { alphabet: 3 };
            let (dist, _) = run_dist2d(k, d, LatencyModel::zero(), mode).expect("valid decomp");
            let seq = run_seq2d(k, d.nx, d.ny, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Alignment2D {mode:?}");

            let k = Smooth2D::default();
            let (dist, _) = run_dist2d(k, d, LatencyModel::zero(), mode).expect("valid decomp");
            let seq = run_seq2d(k, d.nx, d.ny, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "Smooth2D {mode:?}");
        }
    }

    #[test]
    fn matches_legacy_executor_bitwise() {
        let d = Decomp2D {
            nx: 23,
            ny: 8,
            ranks: 2,
            v: 5, // partial last tile
            boundary: 1.5,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (new, _) = run_example1_dist(d, LatencyModel::zero(), mode).expect("valid decomp");
            let (old, _) =
                crate::legacy::run_dist2d(Example1, d, LatencyModel::zero(), mode).expect("valid");
            assert_eq!(new.max_abs_diff(&old), 0.0, "{mode:?}");
        }
    }

    #[test]
    fn invalid_decomps_are_errors_not_panics() {
        let bad_div = Decomp2D {
            nx: 10,
            ny: 10,
            ranks: 3,
            v: 2,
            boundary: 0.0,
        };
        assert_eq!(
            bad_div.validate(),
            Err(DecompError::NotDivisible {
                axis: "ny",
                extent: 10,
                parts: 3
            })
        );
        assert!(run_example1_dist(bad_div, LatencyModel::zero(), ExecMode::Blocking).is_err());
        let bad_v = Decomp2D { v: 0, ..bad_div };
        assert_eq!(bad_v.validate(), Err(DecompError::EmptyDecomposition));
    }

    #[test]
    fn diagonal_dependence_exercised() {
        // A boundary of 1.0 with multiple strips: if the diagonal halo
        // value were mishandled, column j = by (first column of rank 1)
        // would differ from sequential. Use an asymmetric size to make
        // index bugs visible.
        check(
            Decomp2D {
                nx: 13,
                ny: 4,
                ranks: 2,
                v: 3,
                boundary: 1.0,
            },
            ExecMode::Overlapping,
        );
    }
}
