//! Model checking of the intra-rank pool's tile handoff protocol.
//!
//! [`crate::pool`] hands a tile from the engine to its workers through
//! a seq-numbered condvar mailbox and meets them at a generation
//! barrier per anti-diagonal. The protocol's correctness argument —
//! workers read the halo planes only *after* the engine's
//! `unpack_face` writes, because the mailbox publish sits between them
//! — lives in comments there; this module states it as a
//! [`miniloom::Model`] and has the checker prove it over every
//! reachable interleaving of one engine and two workers.
//!
//! The model abstracts one tile at operation granularity:
//!
//! * the engine writes the halo, publishes the job (seq bump + notify),
//!   computes its own share, and joins the barrier;
//! * each worker blocks on the mailbox (`enabled` models the
//!   state-based `seq != seen` condvar wait), computes its share
//!   reading the halo, and joins the barrier;
//! * the barrier is the real algorithm's shape: arrivals count up, the
//!   last arriver resets the count and bumps the generation, leavers
//!   block until the generation moves.
//!
//! The halo handoff is *deliberately not* an invariant: a worker
//! reading the halo before the engine wrote it is exactly an
//! unsynchronized read/write pair, and catching it is the vector-clock
//! race detector's job. The two seeded-bug variants demonstrate both
//! failure classes: [`PoolHandoffModel::seeded_publish_before_halo`]
//! is reported as a **race** on the halo location, and
//! [`PoolHandoffModel::seeded_lost_barrier_arrival`] as a **deadlock**
//! at the barrier.

use miniloom::{CheckOptions, ExploreError, Footprint, Model, Report};

/// Modeled location: the halo planes (engine writes, tile reads).
const HALO: usize = 0;
/// Modeled location: the job mailbox (mutex + condvar + seq).
const MAILBOX: usize = 1;
/// Modeled location: the barrier's count/generation atomics.
const BARRIER: usize = 2;
/// Modeled locations `ROWS + t`: participant `t`'s share of the rows.
const ROWS: usize = 10;

/// Engine + 2 workers handing one tile through the mailbox/barrier
/// protocol of [`crate::pool`].
pub struct PoolHandoffModel {
    /// Seeded bug: publish the job *before* writing the halo, letting
    /// a fast worker read the plane the engine is still writing.
    publish_before_halo: bool,
    /// Seeded bug: worker 2 never increments the barrier count, so the
    /// generation never advances and every leaver blocks forever.
    skip_barrier_arrival: bool,
}

/// The number of scripted participants (engine + 2 pool workers).
const PARTIES: usize = 3;

impl PoolHandoffModel {
    /// The protocol as shipped.
    pub fn new() -> Self {
        PoolHandoffModel {
            publish_before_halo: false,
            skip_barrier_arrival: false,
        }
    }

    /// Deliberately buggy variant: mailbox publish ordered before the
    /// halo write. The checker must report a data race on the halo.
    pub fn seeded_publish_before_halo() -> Self {
        PoolHandoffModel {
            publish_before_halo: true,
            ..PoolHandoffModel::new()
        }
    }

    /// Deliberately buggy variant: one worker's barrier arrival is
    /// lost. The checker must report a deadlock.
    pub fn seeded_lost_barrier_arrival() -> Self {
        PoolHandoffModel {
            skip_barrier_arrival: true,
            ..PoolHandoffModel::new()
        }
    }
}

impl Default for PoolHandoffModel {
    fn default() -> Self {
        PoolHandoffModel::new()
    }
}

/// Shadow state of one tile handoff.
#[derive(Default)]
pub struct PoolState {
    /// Times the halo plane has been written (0 = stale).
    halo_writes: u32,
    /// Mailbox sequence number (bumped by the publish).
    seq: u64,
    /// Barrier arrival count and generation.
    bar_count: usize,
    bar_gen: usize,
    /// Barrier generation each participant saw when arriving.
    arrived_gen: [Option<usize>; PARTIES],
    /// Halo version each participant's compute read (`Some(0)` means a
    /// stale read — the race detector, not an invariant, flags it).
    computed: [Option<u32>; PARTIES],
    /// Participants that made it out of the barrier.
    left: [bool; PARTIES],
}

impl PoolState {
    fn arrive(&mut self, tid: usize) {
        self.arrived_gen[tid] = Some(self.bar_gen);
        self.bar_count += 1;
        if self.bar_count == PARTIES {
            // The real WaveBarrier's last-arriver path: reset the
            // count before releasing the generation.
            self.bar_count = 0;
            self.bar_gen += 1;
        }
    }

    fn leave(&mut self, tid: usize) -> Result<(), String> {
        if self.computed.iter().any(|c| c.is_none()) {
            return Err(format!(
                "thread {tid} left the diagonal barrier before all shares \
                 were computed: {:?}",
                self.computed
            ));
        }
        self.left[tid] = true;
        Ok(())
    }
}

/// Step indices of the engine script (worker scripts are the same
/// minus the halo write and publish, plus the mailbox wait).
const E_HALO: usize = 0;
const E_PUBLISH: usize = 1;
const E_COMPUTE: usize = 2;
const E_ARRIVE: usize = 3;
const E_LEAVE: usize = 4;
const W_WAIT: usize = 0;
const W_COMPUTE: usize = 1;
const W_ARRIVE: usize = 2;
const W_LEAVE: usize = 3;

impl Model for PoolHandoffModel {
    type State = PoolState;

    fn init(&self) -> PoolState {
        PoolState::default()
    }

    fn threads(&self) -> usize {
        PARTIES
    }

    fn steps(&self, tid: usize) -> usize {
        if tid == 0 {
            5
        } else {
            4
        }
    }

    fn step(&self, state: &mut PoolState, tid: usize, idx: usize) -> Result<(), String> {
        if tid == 0 {
            // The seeded ordering bug swaps the engine's first two steps.
            let idx = match (self.publish_before_halo, idx) {
                (true, E_HALO) => E_PUBLISH,
                (true, E_PUBLISH) => E_HALO,
                (_, i) => i,
            };
            match idx {
                E_HALO => state.halo_writes += 1,
                E_PUBLISH => state.seq += 1,
                E_COMPUTE => state.computed[0] = Some(state.halo_writes),
                E_ARRIVE => state.arrive(0),
                _ => state.leave(0)?,
            }
        } else {
            match idx {
                W_WAIT => { /* effect is the guard observing the seq */ }
                W_COMPUTE => state.computed[tid] = Some(state.halo_writes),
                W_ARRIVE => {
                    if self.skip_barrier_arrival && tid == 2 {
                        // Seeded bug: the arrival is lost.
                    } else {
                        state.arrive(tid);
                    }
                }
                _ => state.leave(tid)?,
            }
        }
        Ok(())
    }

    fn enabled(&self, state: &PoolState, tid: usize, idx: usize) -> bool {
        if tid == 0 {
            // The engine's barrier exit blocks until the generation
            // advances past the one it arrived in.
            idx != E_LEAVE || state.arrived_gen[0].is_some_and(|g| state.bar_gen > g)
        } else {
            match idx {
                // worker_loop's condvar wait: runnable once seq != seen.
                W_WAIT => state.seq > 0,
                W_LEAVE => state.arrived_gen[tid].is_some_and(|g| state.bar_gen > g),
                _ => true,
            }
        }
    }

    fn footprint(&self, tid: usize, idx: usize) -> Footprint {
        if tid == 0 {
            let idx = match (self.publish_before_halo, idx) {
                (true, E_HALO) => E_PUBLISH,
                (true, E_PUBLISH) => E_HALO,
                (_, i) => i,
            };
            match idx {
                E_HALO => Footprint::empty().write(HALO),
                E_PUBLISH => Footprint::empty().sync(MAILBOX),
                E_COMPUTE => Footprint::empty().read(HALO).write(ROWS),
                // Arrive and leave both touch count+generation; leave's
                // guard reads the generation, so it must declare it.
                _ => Footprint::empty().sync(BARRIER),
            }
        } else {
            match idx {
                // The wait's guard reads the mailbox seq.
                W_WAIT => Footprint::empty().sync(MAILBOX),
                W_COMPUTE => Footprint::empty().read(HALO).write(ROWS + tid),
                _ => Footprint::empty().sync(BARRIER),
            }
        }
    }

    fn invariant(&self, state: &PoolState) -> Result<(), String> {
        if state.bar_count >= PARTIES {
            return Err(format!(
                "barrier count reached {} without resetting",
                state.bar_count
            ));
        }
        if state.seq > 1 {
            return Err(format!("mailbox seq {} for a single tile", state.seq));
        }
        Ok(())
    }

    fn finalize(&self, state: &mut PoolState) -> Result<(), String> {
        if state.left.iter().any(|l| !l) {
            return Err(format!(
                "schedule completed with threads still inside the barrier: {:?}",
                state.left
            ));
        }
        Ok(())
    }
}

/// Model-check the shipped handoff protocol under DPOR.
pub fn check_pool_handoff() -> Result<Report, ExploreError> {
    miniloom::check(&PoolHandoffModel::new(), &CheckOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_is_clean_and_dpor_reduces_it() {
        let report = check_pool_handoff().expect("the shipped protocol is clean");
        let unreduced = report.unreduced.expect("13 steps fit in u64");
        // 13!/(5!·4!·4!) merge orders before enabledness/reduction.
        assert_eq!(unreduced, 90090);
        assert!(
            report.schedules < unreduced,
            "DPOR must beat full enumeration: {report:?}"
        );
        assert!(report.reduction_ratio().unwrap() > 1.0);
    }

    #[test]
    fn publish_before_halo_is_reported_as_a_race() {
        let model = PoolHandoffModel::seeded_publish_before_halo();
        let err = miniloom::check(&model, &CheckOptions::default())
            .expect_err("a fast worker reads the half-written halo");
        match err {
            ExploreError::Race(r) => {
                assert_eq!(r.loc, HALO);
                assert!(!r.prefix.is_empty());
            }
            other => panic!("expected a race on the halo, got {other}"),
        }
    }

    #[test]
    fn lost_barrier_arrival_is_reported_as_a_deadlock() {
        let model = PoolHandoffModel::seeded_lost_barrier_arrival();
        let err = miniloom::check(&model, &CheckOptions::default())
            .expect_err("the generation never advances");
        match err {
            ExploreError::Deadlock { schedule, blocked } => {
                assert!(!schedule.is_empty());
                assert!(blocked.contains(&0), "the engine is stuck too: {blocked:?}");
            }
            other => panic!("expected a deadlock, got {other}"),
        }
    }
}
