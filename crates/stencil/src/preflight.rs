//! Pre-flight static analysis of the stencil decompositions.
//!
//! Bridges the concrete [`Decomp2D`] / [`Decomp3D`] rank layouts to the
//! `analyzer` crate's [`RankTopology`] and runs the full analysis —
//! schedule legality against the kernel's dependence set, symbolic
//! send/receive matching, and deadlock detection — *before any rank
//! thread spawns*. The distributed drivers call [`check_plan2d`] /
//! [`check_plan3d`] on every entry unless the world opts out
//! (`WorldConfig::without_preflight`); `paper analyze` sweeps every
//! shipped configuration through the same functions.
//!
//! The check is allocation-frugal by construction (every collection in
//! the analyzer is pre-sized), so the zero-allocation steady-state
//! assertions of `tests/zero_alloc.rs` hold with pre-flight enabled —
//! the check costs a constant number of allocations per *run*, not per
//! step.

use crate::dist2d::Decomp2D;
use crate::dist3d::Decomp3D;
use crate::engine::{EngineError, ExecMode};
use crate::proto::{DIR_I, DIR_J};
use analyzer::{analyze, AnalysisReport, RankTopology};
use msgpass::topology::CartesianGrid;
use tiling_core::dependence::DependenceSet;
use tiling_core::schedule::{NonOverlapSchedule, OverlapSchedule};

/// The schedule vector `Π` the mode's schedule type mandates — the
/// same construction [`ExecMode::step_plan`] projects from.
fn mode_pi(mode: ExecMode, dims: usize, mapping_dim: usize) -> Vec<i64> {
    match mode {
        ExecMode::Blocking => NonOverlapSchedule::with_mapping(dims, mapping_dim)
            .schedule()
            .pi()
            .to_vec(),
        ExecMode::Overlapping => OverlapSchedule::with_mapping(dims, mapping_dim).pi(),
    }
}

/// The 2-D strip decomposition as a rank topology: a 1-D chain where
/// rank `r` ships its last `j`-column to rank `r + 1`, one face per
/// pipeline step.
struct Chain2D(Decomp2D);

impl RankTopology for Chain2D {
    fn ranks(&self) -> usize {
        self.0.ranks
    }

    fn num_dirs(&self) -> usize {
        1
    }

    fn upstream(&self, rank: usize, _dir: usize) -> Option<usize> {
        rank.checked_sub(1)
    }

    fn downstream(&self, rank: usize, _dir: usize) -> Option<usize> {
        (rank + 1 < self.0.ranks).then_some(rank + 1)
    }

    fn wire_dir(&self, _dir: usize) -> u64 {
        DIR_J
    }

    fn face_len(&self, _rank: usize, _dir: usize, step: usize) -> usize {
        let (i0, i1) = self.0.irange(step);
        i1 - i0
    }
}

/// The 3-D block decomposition as a rank topology: a `pi × pj`
/// Cartesian grid where every rank ships its high-`i` face to the
/// `(+1, 0)` neighbor and its high-`j` face to the `(0, +1)` neighbor.
///
/// Neighbors are precomputed per rank: `CartesianGrid::neighbor`
/// allocates coordinate scratch, and the analyzer queries the topology
/// once per plan event — caching keeps the whole analysis at a
/// constant allocation count regardless of pipeline depth.
struct Grid3DTopo {
    d: Decomp3D,
    /// `[i-dir, j-dir]` upstream neighbor per rank.
    up: Vec<[Option<usize>; 2]>,
    /// `[i-dir, j-dir]` downstream neighbor per rank.
    dn: Vec<[Option<usize>; 2]>,
}

impl Grid3DTopo {
    fn new(d: Decomp3D) -> Self {
        let grid = CartesianGrid::new(vec![d.pi, d.pj]);
        let ranks = d.pi * d.pj;
        let mut up = Vec::with_capacity(ranks);
        let mut dn = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            up.push([grid.neighbor(rank, &[-1, 0]), grid.neighbor(rank, &[0, -1])]);
            dn.push([grid.neighbor(rank, &[1, 0]), grid.neighbor(rank, &[0, 1])]);
        }
        Grid3DTopo { d, up, dn }
    }
}

impl RankTopology for Grid3DTopo {
    fn ranks(&self) -> usize {
        self.d.pi * self.d.pj
    }

    fn num_dirs(&self) -> usize {
        2
    }

    fn upstream(&self, rank: usize, dir: usize) -> Option<usize> {
        self.up[rank][dir]
    }

    fn downstream(&self, rank: usize, dir: usize) -> Option<usize> {
        self.dn[rank][dir]
    }

    fn wire_dir(&self, dir: usize) -> u64 {
        if dir == 0 {
            DIR_I
        } else {
            DIR_J
        }
    }

    fn face_len(&self, _rank: usize, dir: usize, step: usize) -> usize {
        let (k0, k1) = self.d.krange(step);
        let width = if dir == 0 { self.d.by() } else { self.d.bx() };
        width * (k1 - k0)
    }
}

/// Statically analyze the 2-D strip plan `mode` will execute over `d`.
/// The decomposition must already be validated.
pub fn check_plan2d(d: &Decomp2D, mode: ExecMode) -> Result<AnalysisReport, EngineError> {
    // Example 1 maps along i₁ of a 2-D tiled space (`try_run_rank2d_observed`).
    let plan = mode.step_plan(2, 0, d.steps());
    let pi = mode_pi(mode, 2, 0);
    analyze(&Chain2D(*d), &plan, &pi, 0, &DependenceSet::example_1()).map_err(EngineError::from)
}

/// Statically analyze the 3-D block plan `mode` will execute over `d`.
/// The decomposition must already be validated.
pub fn check_plan3d(d: &Decomp3D, mode: ExecMode) -> Result<AnalysisReport, EngineError> {
    // The paper's §5 layout maps along i₃ (`try_run_rank3d_observed`).
    let plan = mode.step_plan(3, 2, d.steps());
    let pi = mode_pi(mode, 3, 2);
    analyze(
        &Grid3DTopo::new(*d),
        &plan,
        &pi,
        2,
        &DependenceSet::paper_3d(),
    )
    .map_err(EngineError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_2d_plans_are_clean() {
        let d = Decomp2D {
            nx: 40,
            ny: 12,
            ranks: 4,
            v: 10,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let report = check_plan2d(&d, mode).expect("shipped layout analyzes clean");
            assert_eq!(report.ranks, 4);
            assert_eq!(report.steps, 4);
            // 3 interior channels × 4 steps.
            assert_eq!(report.messages, 12);
        }
    }

    #[test]
    fn shipped_3d_plans_are_clean() {
        let d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: 32,
            pi: 2,
            pj: 2,
            v: 8,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let report = check_plan3d(&d, mode).expect("shipped layout analyzes clean");
            assert_eq!(report.ranks, 4);
            assert_eq!(report.steps, 4);
            // 4 directed interior faces × 4 steps.
            assert_eq!(report.messages, 16);
        }
    }

    #[test]
    fn overlap_makespan_matches_eq4() {
        // 2×2 grid: deepest rank is 2 hops from the origin; eq. 4 gives
        // 2·2 + steps time hyperplanes.
        let d = Decomp3D {
            nx: 8,
            ny: 8,
            nz: 32,
            pi: 2,
            pj: 2,
            v: 8,
            boundary: 1.0,
        };
        let o = check_plan3d(&d, ExecMode::Overlapping).expect("clean");
        assert_eq!(o.logical_makespan, 2 * 2 + 4);
        let b = check_plan3d(&d, ExecMode::Blocking).expect("clean");
        assert_eq!(b.logical_makespan, 2 + 4);
    }
}
