//! Wire protocol shared by the 2-D and 3-D distributed executors.
//!
//! Every halo message between a pair of ranks is identified by the
//! pipeline step it belongs to and the face direction it carries; both
//! executors (and the legacy baseline) must agree on the encoding, so it
//! lives here instead of being copied per dimension.

use msgpass::comm::Tag;

/// Face direction along `i` (messages between `i`-adjacent ranks).
pub const DIR_I: u64 = 0;

/// Face direction along `j` (messages between `j`-adjacent ranks; the
/// only direction the 1-D strip decomposition of the 2-D executor uses).
pub const DIR_J: u64 = 1;

/// The message tag of the `dir`-face exchanged for pipeline step `step`.
#[inline]
pub fn tag(step: usize, dir: u64) -> Tag {
    (step as u64) * 2 + dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_per_step_and_dir() {
        let mut seen = std::collections::HashSet::new();
        for step in 0..100 {
            for dir in [DIR_I, DIR_J] {
                assert!(seen.insert(tag(step, dir)), "tag collision at {step}/{dir}");
            }
        }
    }
}
