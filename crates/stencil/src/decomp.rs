//! Shared decomposition arithmetic and validation for the distributed
//! executors.
//!
//! [`crate::dist2d::Decomp2D`] and [`crate::dist3d::Decomp3D`] describe
//! the same thing at different arities — a block partition of the
//! cross-section plus a tile height `V` along the pipelined dimension —
//! so the block-extent division, step count `⌈extent / V⌉`, per-step
//! tile ranges and validation checks live here once. Validation errors
//! are a typed [`DecompError`] (not a panic), and the `run_dist*`
//! drivers surface them as `Result`s.

use std::fmt;

/// Why a decomposition is invalid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecompError {
    /// A global grid extent is zero.
    EmptyGrid,
    /// A processor-grid extent or the tile height `V` is zero.
    EmptyDecomposition,
    /// An extent does not divide evenly across its processor-grid axis.
    NotDivisible {
        /// The global axis (e.g. `"nx"`).
        axis: &'static str,
        /// The global extent along that axis.
        extent: usize,
        /// The number of processor-grid parts it must divide into.
        parts: usize,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::EmptyGrid => write!(f, "empty grid"),
            DecompError::EmptyDecomposition => write!(f, "empty decomposition"),
            DecompError::NotDivisible {
                axis,
                extent,
                parts,
            } => write!(f, "{axis} = {extent} not divisible by {parts} processors"),
        }
    }
}

impl std::error::Error for DecompError {}

/// All global extents must be positive.
pub fn require_nonempty_grid(extents: &[usize]) -> Result<(), DecompError> {
    if extents.contains(&0) {
        return Err(DecompError::EmptyGrid);
    }
    Ok(())
}

/// All processor-grid extents and the tile height must be positive.
pub fn require_nonempty_decomp(parts: &[usize]) -> Result<(), DecompError> {
    if parts.contains(&0) {
        return Err(DecompError::EmptyDecomposition);
    }
    Ok(())
}

/// `extent` must divide evenly into `parts` blocks along `axis`.
pub fn require_divides(axis: &'static str, extent: usize, parts: usize) -> Result<(), DecompError> {
    if !extent.is_multiple_of(parts) {
        return Err(DecompError::NotDivisible {
            axis,
            extent,
            parts,
        });
    }
    Ok(())
}

/// Number of pipeline steps along the pipelined dimension:
/// `⌈extent / V⌉` (the last tile may be partial).
pub fn pipeline_steps(extent: usize, v: usize) -> usize {
    extent.div_ceil(v)
}

/// The half-open index range of pipeline step `k`, clamped at the
/// global extent for the partial last tile. Both endpoints clamp, so a
/// step index past the pipeline yields an empty range instead of a
/// reversed one (`start > end`).
pub fn tile_range(extent: usize, v: usize, k: usize) -> (usize, usize) {
    ((k * v).min(extent), ((k + 1) * v).min(extent))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_helpers() {
        assert_eq!(require_nonempty_grid(&[4, 4, 8]), Ok(()));
        assert_eq!(require_nonempty_grid(&[4, 0]), Err(DecompError::EmptyGrid));
        assert_eq!(require_nonempty_decomp(&[2, 2, 1]), Ok(()));
        assert_eq!(
            require_nonempty_decomp(&[2, 0]),
            Err(DecompError::EmptyDecomposition)
        );
        assert_eq!(require_divides("nx", 8, 2), Ok(()));
        assert_eq!(
            require_divides("ny", 7, 2),
            Err(DecompError::NotDivisible {
                axis: "ny",
                extent: 7,
                parts: 2
            })
        );
    }

    #[test]
    fn steps_and_ranges() {
        assert_eq!(pipeline_steps(10, 4), 3);
        assert_eq!(tile_range(10, 4, 0), (0, 4));
        assert_eq!(tile_range(10, 4, 2), (8, 10)); // partial last tile
        assert_eq!(pipeline_steps(5, 9), 1);
        assert_eq!(tile_range(5, 9, 0), (0, 5)); // V > extent clamps
                                                 // A step index past the pipeline is empty, not reversed.
        assert_eq!(tile_range(10, 4, 3), (10, 10));
        assert_eq!(tile_range(10, 4, 100), (10, 10));
    }

    #[test]
    fn errors_render() {
        let e = DecompError::NotDivisible {
            axis: "ny",
            extent: 10,
            parts: 3,
        };
        assert_eq!(e.to_string(), "ny = 10 not divisible by 3 processors");
        assert_eq!(DecompError::EmptyGrid.to_string(), "empty grid");
    }
}
