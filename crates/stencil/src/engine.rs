//! The schedule-driven pipelined-rank engine.
//!
//! One executor core replaces the four hand-rolled
//! `rank_{blocking,overlap}_{2d,3d}` drivers: a rank's tile sequence is
//! executed from a [`StepPlan`] derived from the `tiling-core` schedule
//! types, so the *schedule type* — [`NonOverlapSchedule`] (eq. 3) or
//! [`OverlapSchedule`] (eq. 4) — selects the communication structure:
//!
//! * [`StepStrategy::Blocking`]: per step, *receive faces → compute
//!   tile → send faces*, fully serialized;
//! * [`StepStrategy::Overlap`]: per step `k`, post the receives of
//!   `k+1` and the sends of `k−1`, compute `k`, then wait — the wire
//!   time rides under the computation.
//!
//! Dimensionality lives entirely in the [`TileOps`] implementation
//! (2-D strips in [`crate::dist2d`], 3-D blocks in [`crate::dist3d`]),
//! which carries the zero-allocation branch-peeled hot paths unchanged:
//! the engine itself performs no heap allocation — request slots are
//! fixed arrays of [`MAX_DIRS`] options — so the steady-state step
//! allocates nothing (asserted by `tests/zero_alloc.rs`).
//!
//! Every phase of every step is reported to a [`StepObserver`]:
//! [`NoopObserver`] compiles the instrumentation out, [`TraceObserver`]
//! records wall-clock activity intervals in the simulator's trace
//! format (rendered by the same Gantt paths as Fig. 1/2), [`PhaseLog`]
//! captures the exact event order for schedule-conformance tests, and
//! [`LaneStats`] accumulates the per-step A-lane/B-lane split of eq. 4.

use crate::decomp::DecompError;
use crate::proto::tag;
use msgpass::comm::{CommError, Communicator, Tag};
use msgpass::trace::{Activity, Trace, WallTrace};
use std::fmt;
use std::time::{Duration, Instant};
use tiling_core::schedule::{NonOverlapSchedule, OverlapSchedule, StepPlan, StepStrategy};

/// Maximum number of halo directions any [`TileOps`] may expose (the
/// 3-D block has two: the `i`-face and the `j`-face).
pub const MAX_DIRS: usize = 2;

/// Why a distributed run failed. Produced by [`run_rank`] and the
/// `dist2d`/`dist3d` drivers instead of hanging forever or panicking
/// with an index error: decomposition problems are caught up front,
/// transport faults (on a reliability-enabled world) surface with the
/// rank that observed them attached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The problem could not be decomposed over the requested ranks.
    Decomp(DecompError),
    /// The pre-flight static analysis rejected the plan before any
    /// thread spawned (see the `analyzer` crate): unmatched or
    /// mismatched messages, an illegal schedule, or a deadlock cycle.
    Analysis(analyzer::AnalysisError),
    /// A [`TileOps`] exposed more halo directions than the engine's
    /// fixed request-slot arrays can hold.
    TooManyDirections {
        /// Directions the tile operations asked for.
        dirs: usize,
        /// The engine's [`MAX_DIRS`] capacity.
        max: usize,
    },
    /// A receive timed out past the configured retry schedule.
    Timeout {
        /// The rank whose receive timed out.
        rank: usize,
        /// The peer it was waiting on.
        from: usize,
        /// The expected message tag.
        tag: Tag,
        /// Total time spent waiting across all attempts.
        waited: Duration,
        /// Retry attempts made.
        retries: u32,
    },
    /// A message was sent but is unrecoverably lost on the link.
    SequenceGap {
        /// The rank that detected the gap.
        rank: usize,
        /// The peer whose message is missing.
        from: usize,
        /// The expected message tag.
        tag: Tag,
        /// The sequence number that can never arrive.
        seq: u64,
    },
    /// A rank's thread exited or panicked mid-run.
    RankFailed {
        /// The failed rank.
        rank: usize,
    },
    /// Any other transport error, with the reporting rank attached.
    Comm {
        /// The rank that observed the error.
        rank: usize,
        /// Human-readable description.
        message: String,
    },
}

impl EngineError {
    /// Attach `rank` to a transport error. A peer hanging up is
    /// reported as *that peer's* failure, not the observer's.
    pub fn from_comm(rank: usize, err: CommError) -> Self {
        match err {
            CommError::Timeout {
                from,
                tag,
                waited,
                retries,
            } => EngineError::Timeout {
                rank,
                from,
                tag,
                waited,
                retries,
            },
            CommError::SequenceGap { from, tag, seq } => EngineError::SequenceGap {
                rank,
                from,
                tag,
                seq,
            },
            CommError::PeerClosed { peer } => EngineError::RankFailed { rank: peer },
            other => EngineError::Comm {
                rank,
                message: other.to_string(),
            },
        }
    }

    /// Combine with another rank's error, keeping the more diagnostic
    /// one (see [`EngineError::severity`]).
    pub fn prefer(self, other: EngineError) -> EngineError {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// Diagnostic value of this error when several ranks fail at once:
    /// a sequence gap or a structural error names the root cause, a
    /// timeout is usually its echo on neighboring ranks, and a failed
    /// rank is the least specific (every peer of a crashed rank
    /// reports it). Drivers keep the highest-severity error.
    pub fn severity(&self) -> u8 {
        match self {
            EngineError::Decomp(_)
            | EngineError::Analysis(_)
            | EngineError::TooManyDirections { .. } => 4,
            EngineError::SequenceGap { .. } => 3,
            EngineError::Timeout { .. } => 2,
            EngineError::Comm { .. } => 1,
            EngineError::RankFailed { .. } => 0,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Decomp(e) => write!(f, "decomposition error: {e}"),
            EngineError::Analysis(e) => {
                write!(f, "pre-flight analysis rejected the plan: {e}")
            }
            EngineError::TooManyDirections { dirs, max } => write!(
                f,
                "tile operations expose {dirs} halo directions but the engine holds at most {max}"
            ),
            EngineError::Timeout {
                rank,
                from,
                tag,
                waited,
                retries,
            } => write!(
                f,
                "rank {rank}: receive (from {from}, tag {tag}) timed out after {waited:?} and {retries} retries"
            ),
            EngineError::SequenceGap {
                rank,
                from,
                tag,
                seq,
            } => write!(
                f,
                "rank {rank}: message #{seq} (from {from}, tag {tag}) is unrecoverably lost"
            ),
            EngineError::RankFailed { rank } => write!(f, "rank {rank} exited or panicked mid-run"),
            EngineError::Comm { rank, message } => write!(f, "rank {rank}: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DecompError> for EngineError {
    fn from(e: DecompError) -> Self {
        EngineError::Decomp(e)
    }
}

impl From<analyzer::AnalysisError> for EngineError {
    fn from(e: analyzer::AnalysisError) -> Self {
        EngineError::Analysis(e)
    }
}

/// Execution style of a distributed run — a shorthand that maps onto
/// the `tiling-core` schedule type actually driving the engine (see
/// [`ExecMode::step_plan`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Blocking receive → compute → send per tile (§3,
    /// [`NonOverlapSchedule`]).
    Blocking,
    /// Non-blocking pipelined overlap (§4, [`OverlapSchedule`]).
    Overlapping,
}

impl ExecMode {
    /// Build the [`StepPlan`] for `steps` local tiles from the schedule
    /// type this mode names: the non-overlapping `Π = [1 … 1]` schedule
    /// or the overlapping `2·Σ_{k≠i} j_k + j_i` one, mapped along
    /// `mapping_dim` of a `dims`-dimensional tiled space.
    pub fn step_plan(self, dims: usize, mapping_dim: usize, steps: usize) -> StepPlan {
        match self {
            ExecMode::Blocking => {
                NonOverlapSchedule::with_mapping(dims, mapping_dim).step_plan(steps)
            }
            ExecMode::Overlapping => {
                OverlapSchedule::with_mapping(dims, mapping_dim).step_plan(steps)
            }
        }
    }
}

/// One rank's tile pipeline, abstracted over dimensionality: the engine
/// drives these operations from a [`StepPlan`], never touching grid
/// layout itself. Directions index halo faces (`0..num_dirs()`).
///
/// Faces move through *callbacks over wire storage* rather than through
/// intermediate buffers: the engine hands [`TileOps::pack_into`] the
/// transport's outgoing buffer (on a slot-transport world, the
/// peer-visible slot itself) and [`TileOps::unpack_from`] the received
/// payload in place, so a halo face is written exactly once by the
/// sender and read exactly once by the receiver — the paper's B₂/B₃
/// kernel-buffer copies disappear from the on-node path, and the
/// steady-state step allocates nothing.
pub trait TileOps {
    /// Number of halo directions (≤ [`MAX_DIRS`]).
    fn num_dirs(&self) -> usize;

    /// The rank faces arrive from in `dir`, if any.
    fn upstream(&self, dir: usize) -> Option<usize>;

    /// The rank this rank's `dir`-face goes to, if any.
    fn downstream(&self, dir: usize) -> Option<usize>;

    /// The wire-protocol direction code of `dir` (see [`crate::proto`]).
    fn wire_dir(&self, dir: usize) -> u64;

    /// Element count of the `dir`-face of `step` (identical for the
    /// incoming and outgoing side of a direction: neighbors exchange
    /// congruent faces; the last tile of a pipeline may be partial).
    fn face_len(&self, dir: usize, step: usize) -> usize;

    /// Pack the outgoing `dir`-face of `step` into `out`, the
    /// transport-owned wire buffer of exactly [`TileOps::face_len`]
    /// elements. Every element must be written.
    fn pack_into(&mut self, dir: usize, step: usize, out: &mut [f32]);

    /// Install the received `dir`-face of `step` into the halo,
    /// reading straight from the wire payload `data`
    /// ([`TileOps::face_len`] elements).
    fn unpack_from(&mut self, dir: usize, step: usize, data: &[f32]);

    /// Compute tile `step`.
    fn compute(&mut self, step: usize);
}

/// One phase of one pipeline step, as reported to a [`StepObserver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tile computation (`A₂`).
    Compute {
        /// Pipeline step.
        step: usize,
    },
    /// Packing an outgoing face into its kernel buffer.
    Pack {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Installing a received face into the halo.
    Unpack {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Posting a non-blocking receive (`A₃`).
    PostRecv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the receive is for.
        step: usize,
    },
    /// Posting a non-blocking send (`A₁`).
    PostSend {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the payload belongs to.
        step: usize,
    },
    /// Blocking receive (wire wait plus copy).
    Recv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Blocking send (copy plus wire wait).
    Send {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Waiting on a posted receive.
    WaitRecv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Waiting on a posted send.
    WaitSend {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the payload belongs to.
        step: usize,
    },
}

impl Phase {
    /// The pipeline step this phase belongs to.
    pub fn step(&self) -> usize {
        match *self {
            Phase::Compute { step }
            | Phase::Pack { step, .. }
            | Phase::Unpack { step, .. }
            | Phase::PostRecv { step, .. }
            | Phase::PostSend { step, .. }
            | Phase::Recv { step, .. }
            | Phase::Send { step, .. }
            | Phase::WaitRecv { step, .. }
            | Phase::WaitSend { step, .. } => step,
        }
    }

    /// The trace activity this phase renders as — the mapping that
    /// makes real-execution Gantt charts structurally comparable to
    /// simulated ones: packing/unpacking are CPU post work (`s`/`r`),
    /// blocking transfers keep their striped `S`/`R` glyphs, and
    /// request waits are idle time.
    pub fn activity(&self) -> Activity {
        match self {
            Phase::Compute { .. } => Activity::Compute,
            Phase::Pack { .. } | Phase::PostSend { .. } => Activity::PostSend,
            Phase::Unpack { .. } | Phase::PostRecv { .. } => Activity::PostRecv,
            Phase::Recv { .. } => Activity::BlockingRecv,
            Phase::Send { .. } => Activity::BlockingSend,
            Phase::WaitRecv { .. } | Phase::WaitSend { .. } => Activity::Idle,
        }
    }

    /// True for phases that occupy the CPU lane (`A₁+A₂+A₃` plus the
    /// kernel-buffer copies); false for the waits that expose the
    /// communication lane (`B`).
    pub fn is_cpu_lane(&self) -> bool {
        !matches!(
            self,
            Phase::Recv { .. }
                | Phase::Send { .. }
                | Phase::WaitRecv { .. }
                | Phase::WaitSend { .. }
        )
    }
}

/// Receives the timed phases of an engine run. Implementations with
/// `ENABLED = false` compile the instrumentation out of the hot path.
pub trait StepObserver {
    /// Whether the engine should time phases at all.
    const ENABLED: bool;

    /// One phase ran over `[start, end]`.
    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant);

    /// How long a communication-lane phase (a wait or a blocking
    /// transfer) may run before the engine reports it via
    /// [`StepObserver::on_stall`]. `None` (the default) disables stall
    /// detection.
    fn stall_threshold(&self) -> Option<Duration> {
        None
    }

    /// A communication-lane phase exceeded
    /// [`StepObserver::stall_threshold`] — the schedule failed to hide
    /// this wait (or a fault-induced retry inflated it). Called *in
    /// addition to* [`StepObserver::on_phase`], over the same interval.
    fn on_stall(&mut self, phase: Phase, start: Instant, end: Instant) {
        let _ = (phase, start, end);
    }
}

/// The default observer: records nothing, costs nothing.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopObserver;

impl StepObserver for NoopObserver {
    const ENABLED: bool = false;

    fn on_phase(&mut self, _phase: Phase, _start: Instant, _end: Instant) {}
}

/// Records wall-clock activity intervals in the simulator's trace
/// format (via [`WallTrace`]): a real run becomes a [`Trace`] the
/// existing Gantt/SVG renderers draw directly.
#[derive(Debug)]
pub struct TraceObserver {
    wall: WallTrace,
    stall_after: Option<Duration>,
}

impl TraceObserver {
    /// A recorder for `rank` against the world `epoch` (use
    /// `ThreadComm::epoch()` so all ranks share the origin).
    pub fn new(rank: usize, epoch: Instant) -> Self {
        TraceObserver {
            wall: WallTrace::new(rank, epoch),
            stall_after: None,
        }
    }

    /// Record waits longer than `threshold` as [`Activity::Stall`]
    /// instead of plain idle time, so they stand out in the rendered
    /// Gantt charts.
    pub fn with_stall_threshold(mut self, threshold: Duration) -> Self {
        self.stall_after = Some(threshold);
        self
    }

    /// Finish recording, yielding the rank's trace.
    pub fn into_trace(self) -> Trace {
        self.wall.into_trace()
    }

    fn is_stall(&self, phase: Phase, start: Instant, end: Instant) -> bool {
        !phase.is_cpu_lane()
            && self
                .stall_after
                .is_some_and(|th| end.duration_since(start) >= th)
    }
}

impl StepObserver for TraceObserver {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant) {
        // A stalled wait is recorded by `on_stall` instead, so each
        // phase contributes exactly one interval to the trace.
        if self.is_stall(phase, start, end) {
            return;
        }
        self.wall.record(phase.activity(), start, end);
    }

    fn stall_threshold(&self) -> Option<Duration> {
        self.stall_after
    }

    fn on_stall(&mut self, _phase: Phase, start: Instant, end: Instant) {
        self.wall.record(Activity::Stall, start, end);
    }
}

/// Captures the exact phase order of a run (timing discarded) — the
/// instrument behind the schedule-conformance tests.
#[derive(Clone, Default, Debug)]
pub struct PhaseLog {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl StepObserver for PhaseLog {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, _start: Instant, _end: Instant) {
        self.phases.push(phase);
    }
}

/// Per-step lane accounting: the measured counterpart of eq. 4's
/// `max(A-lane, B-lane)` split. Index `k` holds the µs tile `k` spent
/// in CPU-lane phases (compute, pack/unpack, posts) and in
/// communication-lane phases (blocking transfers and request waits).
#[derive(Clone, Debug)]
pub struct LaneStats {
    /// CPU-lane µs per step (`A₁+A₂+A₃` plus kernel-buffer copies).
    pub cpu_us: Vec<f64>,
    /// Communication-lane µs per step (waits and blocking transfers).
    pub comm_us: Vec<f64>,
}

impl LaneStats {
    /// Zeroed accounting for a `steps`-deep pipeline.
    pub fn new(steps: usize) -> Self {
        LaneStats {
            cpu_us: vec![0.0; steps],
            comm_us: vec![0.0; steps],
        }
    }

    /// Mean/max summary over every (rank, step) sample of several
    /// ranks' stats: `(a_mean, a_max, b_mean, b_max)` in µs.
    pub fn summarize(all: &[LaneStats]) -> (f64, f64, f64, f64) {
        let mut a = (0.0f64, 0.0f64, 0usize);
        let mut b = (0.0f64, 0.0f64, 0usize);
        for s in all {
            for &v in &s.cpu_us {
                a = (a.0 + v, a.1.max(v), a.2 + 1);
            }
            for &v in &s.comm_us {
                b = (b.0 + v, b.1.max(v), b.2 + 1);
            }
        }
        let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
        (mean(a.0, a.2), a.1, mean(b.0, b.2), b.1)
    }
}

impl StepObserver for LaneStats {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant) {
        let us = end.duration_since(start).as_secs_f64() * 1e6;
        let k = phase.step();
        if k < self.cpu_us.len() {
            if phase.is_cpu_lane() {
                self.cpu_us[k] += us;
            } else {
                self.comm_us[k] += us;
            }
        }
    }
}

/// Time `f` and report it as `phase` — compiled down to a bare call
/// when the observer is disabled.
#[inline(always)]
fn timed<O: StepObserver, R>(obs: &mut O, phase: Phase, f: impl FnOnce() -> R) -> R {
    if O::ENABLED {
        let start = Instant::now();
        let r = f();
        let end = Instant::now();
        note(obs, phase, start, end);
        r
    } else {
        f()
    }
}

/// Report an already-timed `[start, end]` interval as `phase`,
/// including the stall check for communication-lane phases. Used where
/// one transport call spans two phases (a receive whose payload is
/// unpacked inside the callback, a send packed inside the callback):
/// the callback records the interior split point and the two halves
/// are reported as disjoint phase intervals.
#[inline(always)]
fn note<O: StepObserver>(obs: &mut O, phase: Phase, start: Instant, end: Instant) {
    obs.on_phase(phase, start, end);
    if !phase.is_cpu_lane() {
        if let Some(th) = obs.stall_threshold() {
            if end.duration_since(start) >= th {
                obs.on_stall(phase, start, end);
            }
        }
    }
}

/// Receive the `dir`-face of step `k` and unpack it in place from the
/// wire payload: a posted request (`req = Some`, reported as
/// [`Phase::WaitRecv`]) or a blocking receive (reported as
/// [`Phase::Recv`]), followed by [`Phase::Unpack`] over the in-callback
/// unpack span.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // LINT: the (peer, tag, dir, step, request) wire tuple is irreducible
fn recv_unpack<T, C, O>(
    comm: &mut C,
    ops: &mut T,
    obs: &mut O,
    src: usize,
    t: Tag,
    dir: usize,
    k: usize,
    req: Option<msgpass::comm::RecvRequest>,
) -> Result<(), CommError>
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    let want = ops.face_len(dir, k);
    let posted = req.is_some();
    if O::ENABLED {
        let start = Instant::now();
        let mut span = (start, start);
        let take = &mut |data: &[f32]| {
            let u0 = Instant::now();
            ops.unpack_from(dir, k, data);
            span = (u0, Instant::now());
        };
        match req {
            Some(r) => comm.try_wait_recv_with(r, want, take)?,
            None => comm.try_recv_with(src, t, want, take)?,
        }
        let wait_phase = if posted {
            Phase::WaitRecv { dir, step: k }
        } else {
            Phase::Recv { dir, step: k }
        };
        note(obs, wait_phase, start, span.0);
        note(obs, Phase::Unpack { dir, step: k }, span.0, span.1);
        Ok(())
    } else {
        let take = &mut |data: &[f32]| ops.unpack_from(dir, k, data);
        match req {
            Some(r) => comm.try_wait_recv_with(r, want, take),
            None => comm.try_recv_with(src, t, want, take),
        }
    }
}

/// Pack the `dir`-face of step `k` straight into the transport's wire
/// buffer and send it: blocking ([`Phase::Send`]) or posted
/// (`post = true`, [`Phase::PostSend`], returning the request), with
/// [`Phase::Pack`] reported over the in-callback pack span.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // LINT: the (peer, tag, dir, step, post) wire tuple is irreducible
fn pack_send<T, C, O>(
    comm: &mut C,
    ops: &mut T,
    obs: &mut O,
    dst: usize,
    t: Tag,
    dir: usize,
    k: usize,
    post: bool,
) -> Result<Option<msgpass::comm::SendRequest>, CommError>
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    let len = ops.face_len(dir, k);
    if O::ENABLED {
        let start = Instant::now();
        let mut packed = start;
        let fill = &mut |out: &mut [f32]| {
            ops.pack_into(dir, k, out);
            packed = Instant::now();
        };
        let req = if post {
            Some(comm.try_isend_with(dst, t, len, fill)?)
        } else {
            comm.try_send_with(dst, t, len, fill)?;
            None
        };
        let end = Instant::now();
        note(obs, Phase::Pack { dir, step: k }, start, packed);
        let send_phase = if post {
            Phase::PostSend { dir, step: k }
        } else {
            Phase::Send { dir, step: k }
        };
        note(obs, send_phase, packed, end);
        Ok(req)
    } else {
        let fill = &mut |out: &mut [f32]| ops.pack_into(dir, k, out);
        if post {
            Ok(Some(comm.try_isend_with(dst, t, len, fill)?))
        } else {
            comm.try_send_with(dst, t, len, fill)?;
            Ok(None)
        }
    }
}

/// Execute one rank's full tile sequence according to `plan`. The
/// schedule type the plan came from decides the communication
/// structure; `ops` supplies the dimensional mechanics.
///
/// On a plain world the transport never reports errors, so the only
/// possible failure is [`EngineError::TooManyDirections`]; on a
/// reliability-enabled world transport faults surface as typed
/// [`EngineError`]s instead of hanging the rank forever.
pub fn run_rank<T, C, O>(
    comm: &mut C,
    ops: &mut T,
    plan: &StepPlan,
    obs: &mut O,
) -> Result<(), EngineError>
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    let dirs = ops.num_dirs();
    if dirs > MAX_DIRS {
        return Err(EngineError::TooManyDirections {
            dirs,
            max: MAX_DIRS,
        });
    }
    if plan.steps() == 0 {
        // Nothing to do — and the overlap epilogue addresses tile
        // `steps - 1`, which does not exist for an empty pipeline.
        return Ok(());
    }
    match plan.strategy() {
        StepStrategy::Blocking => run_blocking(comm, ops, plan.steps(), obs),
        StepStrategy::Overlap => run_overlap(comm, ops, plan.steps(), obs),
    }
}

/// Eq. 3: every step a serialized *receive → compute → send* triplet.
fn run_blocking<T, C, O>(
    comm: &mut C,
    ops: &mut T,
    steps: usize,
    obs: &mut O,
) -> Result<(), EngineError>
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    let rank = comm.rank();
    let dirs = ops.num_dirs();
    for k in 0..steps {
        for dir in 0..dirs {
            if let Some(src) = ops.upstream(dir) {
                let t = tag(k, ops.wire_dir(dir));
                recv_unpack(comm, ops, obs, src, t, dir, k, None)
                    .map_err(|e| EngineError::from_comm(rank, e))?;
            }
        }
        timed(obs, Phase::Compute { step: k }, || ops.compute(k));
        for dir in 0..dirs {
            if let Some(dst) = ops.downstream(dir) {
                let t = tag(k, ops.wire_dir(dir));
                pack_send(comm, ops, obs, dst, t, dir, k, false)
                    .map_err(|e| EngineError::from_comm(rank, e))?;
            }
        }
    }
    Ok(())
}

/// Eq. 4: post receives for `k+1` and sends of `k−1`, compute `k`,
/// wait. Request slots live in fixed arrays, so the steady-state loop
/// performs no heap allocations.
fn run_overlap<T, C, O>(
    comm: &mut C,
    ops: &mut T,
    steps: usize,
    obs: &mut O,
) -> Result<(), EngineError>
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    use msgpass::comm::{RecvRequest, SendRequest};
    let rank = comm.rank();
    let dirs = ops.num_dirs();

    // Prologue: receives for step 0.
    let mut cur_recv: [Option<RecvRequest>; MAX_DIRS] = [None, None];
    let mut next_recv: [Option<RecvRequest>; MAX_DIRS] = [None, None];
    let mut sends: [Option<SendRequest>; MAX_DIRS] = [None, None];
    for (dir, slot) in cur_recv.iter_mut().enumerate().take(dirs) {
        *slot = ops.upstream(dir).map(|src| {
            let t = tag(0, ops.wire_dir(dir));
            timed(obs, Phase::PostRecv { dir, step: 0 }, || comm.irecv(src, t))
        });
    }
    for k in 0..steps {
        // Post receives for the next tile…
        for (dir, slot) in next_recv.iter_mut().enumerate().take(dirs) {
            *slot = if k + 1 < steps {
                ops.upstream(dir).map(|src| {
                    let t = tag(k + 1, ops.wire_dir(dir));
                    timed(obs, Phase::PostRecv { dir, step: k + 1 }, || {
                        comm.irecv(src, t)
                    })
                })
            } else {
                None
            };
        }
        // …and sends of the previous tile's results, packed straight
        // into wire storage (the peer-visible slot on a slot-transport
        // world) so the face is copied exactly once.
        if k >= 1 {
            for (dir, slot) in sends.iter_mut().enumerate().take(dirs) {
                if let Some(dst) = ops.downstream(dir) {
                    let t = tag(k - 1, ops.wire_dir(dir));
                    *slot = pack_send(comm, ops, obs, dst, t, dir, k - 1, true)
                        .map_err(|e| EngineError::from_comm(rank, e))?;
                }
            }
        }
        // Wait for this tile's inputs, then compute.
        for (dir, slot) in cur_recv.iter_mut().enumerate().take(dirs) {
            if let Some(req) = slot.take() {
                // src/tag are carried by the request; placeholders are
                // only used when req is None, which it is not here.
                recv_unpack(comm, ops, obs, 0, 0, dir, k, Some(req))
                    .map_err(|e| EngineError::from_comm(rank, e))?;
            }
        }
        timed(obs, Phase::Compute { step: k }, || ops.compute(k));
        for (dir, slot) in sends.iter_mut().enumerate().take(dirs) {
            if let Some(req) = slot.take() {
                timed(obs, Phase::WaitSend { dir, step: k - 1 }, || {
                    comm.try_wait_send(req)
                })
                .map_err(|e| EngineError::from_comm(rank, e))?;
            }
        }
        std::mem::swap(&mut cur_recv, &mut next_recv);
    }
    // Epilogue: ship the last tile's faces.
    for dir in 0..dirs {
        if let Some(dst) = ops.downstream(dir) {
            let t = tag(steps - 1, ops.wire_dir(dir));
            // A posted send always yields a request, but degrade to
            // "nothing to wait on" rather than panicking mid-epilogue.
            if let Some(req) = pack_send(comm, ops, obs, dst, t, dir, steps - 1, true)
                .map_err(|e| EngineError::from_comm(rank, e))?
            {
                timed(
                    obs,
                    Phase::WaitSend {
                        dir,
                        step: steps - 1,
                    },
                    || comm.try_wait_send(req),
                )
                .map_err(|e| EngineError::from_comm(rank, e))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_selects_schedule_type() {
        let b = ExecMode::Blocking.step_plan(3, 2, 10);
        assert_eq!(b.strategy(), StepStrategy::Blocking);
        assert_eq!(b.steps(), 10);
        let o = ExecMode::Overlapping.step_plan(3, 2, 10);
        assert_eq!(o.strategy(), StepStrategy::Overlap);
    }

    #[test]
    fn phase_lane_and_activity_mapping() {
        assert_eq!(Phase::Compute { step: 0 }.activity(), Activity::Compute);
        assert!(Phase::Compute { step: 0 }.is_cpu_lane());
        assert_eq!(
            Phase::Pack { dir: 0, step: 1 }.activity(),
            Activity::PostSend
        );
        assert_eq!(
            Phase::Unpack { dir: 1, step: 2 }.activity(),
            Activity::PostRecv
        );
        assert_eq!(
            Phase::Recv { dir: 0, step: 0 }.activity(),
            Activity::BlockingRecv
        );
        assert!(!Phase::Recv { dir: 0, step: 0 }.is_cpu_lane());
        assert_eq!(
            Phase::WaitRecv { dir: 0, step: 4 }.activity(),
            Activity::Idle
        );
        assert!(!Phase::WaitSend { dir: 1, step: 4 }.is_cpu_lane());
        assert_eq!(Phase::WaitSend { dir: 1, step: 4 }.step(), 4);
    }

    struct FakeOps {
        dirs: usize,
        computed: usize,
    }

    impl TileOps for FakeOps {
        fn num_dirs(&self) -> usize {
            self.dirs
        }
        fn upstream(&self, _dir: usize) -> Option<usize> {
            None
        }
        fn downstream(&self, _dir: usize) -> Option<usize> {
            None
        }
        fn wire_dir(&self, dir: usize) -> u64 {
            dir as u64
        }
        fn face_len(&self, _dir: usize, _step: usize) -> usize {
            0
        }
        fn pack_into(&mut self, _dir: usize, _step: usize, _out: &mut [f32]) {}
        fn unpack_from(&mut self, _dir: usize, _step: usize, _data: &[f32]) {}
        fn compute(&mut self, _step: usize) {
            self.computed += 1;
        }
    }

    #[test]
    fn too_many_directions_is_a_typed_error_not_a_panic() {
        use msgpass::prelude::*;
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let plan = mode.step_plan(3, 2, 4);
            let (results, _) =
                run_threads::<f32, _, _>(1, LatencyModel::zero(), move |mut comm| {
                    let mut ops = FakeOps {
                        dirs: MAX_DIRS + 1,
                        computed: 0,
                    };
                    run_rank(&mut comm, &mut ops, &plan, &mut NoopObserver)
                });
            assert_eq!(
                results[0],
                Err(EngineError::TooManyDirections {
                    dirs: MAX_DIRS + 1,
                    max: MAX_DIRS
                })
            );
        }
    }

    #[test]
    fn zero_step_plan_completes_without_computing() {
        use msgpass::prelude::*;
        // Regression: the overlap epilogue addresses tile `steps - 1`,
        // which used to underflow for an empty pipeline.
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let plan = mode.step_plan(3, 2, 0);
            let (results, _) =
                run_threads::<f32, _, _>(1, LatencyModel::zero(), move |mut comm| {
                    let mut ops = FakeOps {
                        dirs: 2,
                        computed: 0,
                    };
                    run_rank(&mut comm, &mut ops, &plan, &mut NoopObserver).map(|()| ops.computed)
                });
            assert_eq!(results[0], Ok(0));
        }
    }

    #[test]
    fn engine_error_mapping_and_severity() {
        let e = EngineError::from_comm(
            3,
            msgpass::comm::CommError::Timeout {
                from: 1,
                tag: 7,
                waited: Duration::from_millis(80),
                retries: 4,
            },
        );
        assert_eq!(
            e,
            EngineError::Timeout {
                rank: 3,
                from: 1,
                tag: 7,
                waited: Duration::from_millis(80),
                retries: 4
            }
        );
        // A peer hanging up is that peer's failure.
        let e = EngineError::from_comm(2, msgpass::comm::CommError::PeerClosed { peer: 5 });
        assert_eq!(e, EngineError::RankFailed { rank: 5 });
        // Root causes outrank their echoes.
        let gap = EngineError::from_comm(
            0,
            msgpass::comm::CommError::SequenceGap {
                from: 1,
                tag: 2,
                seq: 3,
            },
        );
        assert!(gap.severity() > e.severity());
        assert!(EngineError::TooManyDirections { dirs: 3, max: 2 }.severity() > gap.severity());
        assert!(!format!("{gap}").is_empty());
    }

    #[test]
    fn trace_observer_marks_long_waits_as_stalls() {
        // The threshold is generous relative to an empty closure so the
        // "fast" cases cannot cross it even on a loaded machine.
        let threshold = Duration::from_millis(25);
        let mut obs = TraceObserver::new(0, Instant::now()).with_stall_threshold(threshold);
        // A fast wait stays idle; a slow one becomes a stall; compute is
        // never a stall no matter how long.
        timed(&mut obs, Phase::WaitRecv { dir: 0, step: 0 }, || {
            std::thread::sleep(Duration::from_micros(10))
        });
        timed(&mut obs, Phase::WaitRecv { dir: 0, step: 1 }, || {
            std::thread::sleep(threshold * 2)
        });
        timed(&mut obs, Phase::Compute { step: 1 }, || {
            std::thread::sleep(threshold * 2)
        });
        let trace = obs.into_trace();
        let acts: Vec<Activity> = trace.intervals().iter().map(|iv| iv.activity).collect();
        assert_eq!(
            acts,
            vec![Activity::Idle, Activity::Stall, Activity::Compute]
        );
    }

    #[test]
    fn lane_stats_accumulate_and_summarize() {
        let mut s = LaneStats::new(2);
        let t0 = Instant::now();
        let t1 = t0 + std::time::Duration::from_micros(10);
        let t2 = t0 + std::time::Duration::from_micros(14);
        s.on_phase(Phase::Compute { step: 0 }, t0, t1);
        s.on_phase(Phase::WaitRecv { dir: 0, step: 1 }, t1, t2);
        assert!((s.cpu_us[0] - 10.0).abs() < 1e-6);
        assert!((s.comm_us[1] - 4.0).abs() < 1e-6);
        let (a_mean, a_max, b_mean, b_max) = LaneStats::summarize(&[s]);
        assert!((a_mean - 5.0).abs() < 1e-6); // steps 0 and 1 average
        assert!((a_max - 10.0).abs() < 1e-6);
        assert!((b_mean - 2.0).abs() < 1e-6);
        assert!((b_max - 4.0).abs() < 1e-6);
    }
}
