//! The schedule-driven pipelined-rank engine.
//!
//! One executor core replaces the four hand-rolled
//! `rank_{blocking,overlap}_{2d,3d}` drivers: a rank's tile sequence is
//! executed from a [`StepPlan`] derived from the `tiling-core` schedule
//! types, so the *schedule type* — [`NonOverlapSchedule`] (eq. 3) or
//! [`OverlapSchedule`] (eq. 4) — selects the communication structure:
//!
//! * [`StepStrategy::Blocking`]: per step, *receive faces → compute
//!   tile → send faces*, fully serialized;
//! * [`StepStrategy::Overlap`]: per step `k`, post the receives of
//!   `k+1` and the sends of `k−1`, compute `k`, then wait — the wire
//!   time rides under the computation.
//!
//! Dimensionality lives entirely in the [`TileOps`] implementation
//! (2-D strips in [`crate::dist2d`], 3-D blocks in [`crate::dist3d`]),
//! which carries the zero-allocation branch-peeled hot paths unchanged:
//! the engine itself performs no heap allocation — request slots are
//! fixed arrays of [`MAX_DIRS`] options — so the steady-state step
//! allocates nothing (asserted by `tests/zero_alloc.rs`).
//!
//! Every phase of every step is reported to a [`StepObserver`]:
//! [`NoopObserver`] compiles the instrumentation out, [`TraceObserver`]
//! records wall-clock activity intervals in the simulator's trace
//! format (rendered by the same Gantt paths as Fig. 1/2), [`PhaseLog`]
//! captures the exact event order for schedule-conformance tests, and
//! [`LaneStats`] accumulates the per-step A-lane/B-lane split of eq. 4.

use crate::proto::tag;
use msgpass::comm::Communicator;
use msgpass::trace::{Activity, Trace, WallTrace};
use std::time::Instant;
use tiling_core::schedule::{NonOverlapSchedule, OverlapSchedule, StepPlan, StepStrategy};

/// Maximum number of halo directions any [`TileOps`] may expose (the
/// 3-D block has two: the `i`-face and the `j`-face).
pub const MAX_DIRS: usize = 2;

/// Execution style of a distributed run — a shorthand that maps onto
/// the `tiling-core` schedule type actually driving the engine (see
/// [`ExecMode::step_plan`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Blocking receive → compute → send per tile (§3,
    /// [`NonOverlapSchedule`]).
    Blocking,
    /// Non-blocking pipelined overlap (§4, [`OverlapSchedule`]).
    Overlapping,
}

impl ExecMode {
    /// Build the [`StepPlan`] for `steps` local tiles from the schedule
    /// type this mode names: the non-overlapping `Π = [1 … 1]` schedule
    /// or the overlapping `2·Σ_{k≠i} j_k + j_i` one, mapped along
    /// `mapping_dim` of a `dims`-dimensional tiled space.
    pub fn step_plan(self, dims: usize, mapping_dim: usize, steps: usize) -> StepPlan {
        match self {
            ExecMode::Blocking => {
                NonOverlapSchedule::with_mapping(dims, mapping_dim).step_plan(steps)
            }
            ExecMode::Overlapping => {
                OverlapSchedule::with_mapping(dims, mapping_dim).step_plan(steps)
            }
        }
    }
}

/// One rank's tile pipeline, abstracted over dimensionality: the engine
/// drives these operations from a [`StepPlan`], never touching grid
/// layout itself. Directions index halo faces (`0..num_dirs()`); all
/// buffers behind `recv_buf`/`face` are persistent, so steady-state
/// steps allocate nothing.
pub trait TileOps {
    /// Number of halo directions (≤ [`MAX_DIRS`]).
    fn num_dirs(&self) -> usize;

    /// The rank faces arrive from in `dir`, if any.
    fn upstream(&self, dir: usize) -> Option<usize>;

    /// The rank this rank's `dir`-face goes to, if any.
    fn downstream(&self, dir: usize) -> Option<usize>;

    /// The wire-protocol direction code of `dir` (see [`crate::proto`]).
    fn wire_dir(&self, dir: usize) -> u64;

    /// The persistent landing buffer for the `dir`-face of `step`,
    /// sized exactly to the incoming message.
    fn recv_buf(&mut self, dir: usize, step: usize) -> &mut [f32];

    /// Install the received `dir`-face of `step` (already in
    /// [`TileOps::recv_buf`]) into the halo (a no-op where receives
    /// land in place).
    fn unpack(&mut self, dir: usize, step: usize);

    /// Pack the outgoing `dir`-face of `step` into the persistent face
    /// buffer; returns the packed length.
    fn pack(&mut self, dir: usize, step: usize) -> usize;

    /// The persistent outgoing face buffer of `dir` (slice to the
    /// length [`TileOps::pack`] returned).
    fn face(&self, dir: usize) -> &[f32];

    /// Compute tile `step`.
    fn compute(&mut self, step: usize);
}

/// One phase of one pipeline step, as reported to a [`StepObserver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tile computation (`A₂`).
    Compute {
        /// Pipeline step.
        step: usize,
    },
    /// Packing an outgoing face into its kernel buffer.
    Pack {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Installing a received face into the halo.
    Unpack {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Posting a non-blocking receive (`A₃`).
    PostRecv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the receive is for.
        step: usize,
    },
    /// Posting a non-blocking send (`A₁`).
    PostSend {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the payload belongs to.
        step: usize,
    },
    /// Blocking receive (wire wait plus copy).
    Recv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Blocking send (copy plus wire wait).
    Send {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Waiting on a posted receive.
    WaitRecv {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the face belongs to.
        step: usize,
    },
    /// Waiting on a posted send.
    WaitSend {
        /// Halo direction.
        dir: usize,
        /// Pipeline step the payload belongs to.
        step: usize,
    },
}

impl Phase {
    /// The pipeline step this phase belongs to.
    pub fn step(&self) -> usize {
        match *self {
            Phase::Compute { step }
            | Phase::Pack { step, .. }
            | Phase::Unpack { step, .. }
            | Phase::PostRecv { step, .. }
            | Phase::PostSend { step, .. }
            | Phase::Recv { step, .. }
            | Phase::Send { step, .. }
            | Phase::WaitRecv { step, .. }
            | Phase::WaitSend { step, .. } => step,
        }
    }

    /// The trace activity this phase renders as — the mapping that
    /// makes real-execution Gantt charts structurally comparable to
    /// simulated ones: packing/unpacking are CPU post work (`s`/`r`),
    /// blocking transfers keep their striped `S`/`R` glyphs, and
    /// request waits are idle time.
    pub fn activity(&self) -> Activity {
        match self {
            Phase::Compute { .. } => Activity::Compute,
            Phase::Pack { .. } | Phase::PostSend { .. } => Activity::PostSend,
            Phase::Unpack { .. } | Phase::PostRecv { .. } => Activity::PostRecv,
            Phase::Recv { .. } => Activity::BlockingRecv,
            Phase::Send { .. } => Activity::BlockingSend,
            Phase::WaitRecv { .. } | Phase::WaitSend { .. } => Activity::Idle,
        }
    }

    /// True for phases that occupy the CPU lane (`A₁+A₂+A₃` plus the
    /// kernel-buffer copies); false for the waits that expose the
    /// communication lane (`B`).
    pub fn is_cpu_lane(&self) -> bool {
        !matches!(
            self,
            Phase::Recv { .. } | Phase::Send { .. } | Phase::WaitRecv { .. } | Phase::WaitSend { .. }
        )
    }
}

/// Receives the timed phases of an engine run. Implementations with
/// `ENABLED = false` compile the instrumentation out of the hot path.
pub trait StepObserver {
    /// Whether the engine should time phases at all.
    const ENABLED: bool;

    /// One phase ran over `[start, end]`.
    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant);
}

/// The default observer: records nothing, costs nothing.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopObserver;

impl StepObserver for NoopObserver {
    const ENABLED: bool = false;

    fn on_phase(&mut self, _phase: Phase, _start: Instant, _end: Instant) {}
}

/// Records wall-clock activity intervals in the simulator's trace
/// format (via [`WallTrace`]): a real run becomes a [`Trace`] the
/// existing Gantt/SVG renderers draw directly.
#[derive(Debug)]
pub struct TraceObserver {
    wall: WallTrace,
}

impl TraceObserver {
    /// A recorder for `rank` against the world `epoch` (use
    /// `ThreadComm::epoch()` so all ranks share the origin).
    pub fn new(rank: usize, epoch: Instant) -> Self {
        TraceObserver {
            wall: WallTrace::new(rank, epoch),
        }
    }

    /// Finish recording, yielding the rank's trace.
    pub fn into_trace(self) -> Trace {
        self.wall.into_trace()
    }
}

impl StepObserver for TraceObserver {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant) {
        self.wall.record(phase.activity(), start, end);
    }
}

/// Captures the exact phase order of a run (timing discarded) — the
/// instrument behind the schedule-conformance tests.
#[derive(Clone, Default, Debug)]
pub struct PhaseLog {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl StepObserver for PhaseLog {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, _start: Instant, _end: Instant) {
        self.phases.push(phase);
    }
}

/// Per-step lane accounting: the measured counterpart of eq. 4's
/// `max(A-lane, B-lane)` split. Index `k` holds the µs tile `k` spent
/// in CPU-lane phases (compute, pack/unpack, posts) and in
/// communication-lane phases (blocking transfers and request waits).
#[derive(Clone, Debug)]
pub struct LaneStats {
    /// CPU-lane µs per step (`A₁+A₂+A₃` plus kernel-buffer copies).
    pub cpu_us: Vec<f64>,
    /// Communication-lane µs per step (waits and blocking transfers).
    pub comm_us: Vec<f64>,
}

impl LaneStats {
    /// Zeroed accounting for a `steps`-deep pipeline.
    pub fn new(steps: usize) -> Self {
        LaneStats {
            cpu_us: vec![0.0; steps],
            comm_us: vec![0.0; steps],
        }
    }

    /// Mean/max summary over every (rank, step) sample of several
    /// ranks' stats: `(a_mean, a_max, b_mean, b_max)` in µs.
    pub fn summarize(all: &[LaneStats]) -> (f64, f64, f64, f64) {
        let mut a = (0.0f64, 0.0f64, 0usize);
        let mut b = (0.0f64, 0.0f64, 0usize);
        for s in all {
            for &v in &s.cpu_us {
                a = (a.0 + v, a.1.max(v), a.2 + 1);
            }
            for &v in &s.comm_us {
                b = (b.0 + v, b.1.max(v), b.2 + 1);
            }
        }
        let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
        (mean(a.0, a.2), a.1, mean(b.0, b.2), b.1)
    }
}

impl StepObserver for LaneStats {
    const ENABLED: bool = true;

    fn on_phase(&mut self, phase: Phase, start: Instant, end: Instant) {
        let us = end.duration_since(start).as_secs_f64() * 1e6;
        let k = phase.step();
        if k < self.cpu_us.len() {
            if phase.is_cpu_lane() {
                self.cpu_us[k] += us;
            } else {
                self.comm_us[k] += us;
            }
        }
    }
}

/// Time `f` and report it as `phase` — compiled down to a bare call
/// when the observer is disabled.
#[inline(always)]
fn timed<O: StepObserver, R>(obs: &mut O, phase: Phase, f: impl FnOnce() -> R) -> R {
    if O::ENABLED {
        let start = Instant::now();
        let r = f();
        obs.on_phase(phase, start, Instant::now());
        r
    } else {
        f()
    }
}

/// Execute one rank's full tile sequence according to `plan`. The
/// schedule type the plan came from decides the communication
/// structure; `ops` supplies the dimensional mechanics.
pub fn run_rank<T, C, O>(comm: &mut C, ops: &mut T, plan: &StepPlan, obs: &mut O)
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    debug_assert!(ops.num_dirs() <= MAX_DIRS, "too many halo directions");
    match plan.strategy() {
        StepStrategy::Blocking => run_blocking(comm, ops, plan.steps(), obs),
        StepStrategy::Overlap => run_overlap(comm, ops, plan.steps(), obs),
    }
}

/// Eq. 3: every step a serialized *receive → compute → send* triplet.
fn run_blocking<T, C, O>(comm: &mut C, ops: &mut T, steps: usize, obs: &mut O)
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    let dirs = ops.num_dirs();
    for k in 0..steps {
        for dir in 0..dirs {
            if let Some(src) = ops.upstream(dir) {
                let t = tag(k, ops.wire_dir(dir));
                timed(obs, Phase::Recv { dir, step: k }, || {
                    comm.recv_into(src, t, ops.recv_buf(dir, k))
                });
                timed(obs, Phase::Unpack { dir, step: k }, || ops.unpack(dir, k));
            }
        }
        timed(obs, Phase::Compute { step: k }, || ops.compute(k));
        for dir in 0..dirs {
            if let Some(dst) = ops.downstream(dir) {
                let n = timed(obs, Phase::Pack { dir, step: k }, || ops.pack(dir, k));
                let t = tag(k, ops.wire_dir(dir));
                timed(obs, Phase::Send { dir, step: k }, || {
                    comm.send_from(dst, t, &ops.face(dir)[..n])
                });
            }
        }
    }
}

/// Eq. 4: post receives for `k+1` and sends of `k−1`, compute `k`,
/// wait. Request slots live in fixed arrays, so the steady-state loop
/// performs no heap allocations.
fn run_overlap<T, C, O>(comm: &mut C, ops: &mut T, steps: usize, obs: &mut O)
where
    T: TileOps,
    C: Communicator<f32>,
    O: StepObserver,
{
    use msgpass::comm::{RecvRequest, SendRequest};
    let dirs = ops.num_dirs();

    // Prologue: receives for step 0.
    let mut cur_recv: [Option<RecvRequest>; MAX_DIRS] = [None, None];
    let mut next_recv: [Option<RecvRequest>; MAX_DIRS] = [None, None];
    let mut sends: [Option<SendRequest>; MAX_DIRS] = [None, None];
    for (dir, slot) in cur_recv.iter_mut().enumerate().take(dirs) {
        *slot = ops.upstream(dir).map(|src| {
            let t = tag(0, ops.wire_dir(dir));
            timed(obs, Phase::PostRecv { dir, step: 0 }, || comm.irecv(src, t))
        });
    }
    for k in 0..steps {
        // Post receives for the next tile…
        for (dir, slot) in next_recv.iter_mut().enumerate().take(dirs) {
            *slot = if k + 1 < steps {
                ops.upstream(dir).map(|src| {
                    let t = tag(k + 1, ops.wire_dir(dir));
                    timed(obs, Phase::PostRecv { dir, step: k + 1 }, || {
                        comm.irecv(src, t)
                    })
                })
            } else {
                None
            };
        }
        // …and sends of the previous tile's results.
        if k >= 1 {
            for (dir, slot) in sends.iter_mut().enumerate().take(dirs) {
                if let Some(dst) = ops.downstream(dir) {
                    let n = timed(obs, Phase::Pack { dir, step: k - 1 }, || {
                        ops.pack(dir, k - 1)
                    });
                    let t = tag(k - 1, ops.wire_dir(dir));
                    *slot = Some(timed(obs, Phase::PostSend { dir, step: k - 1 }, || {
                        comm.isend_from(dst, t, &ops.face(dir)[..n])
                    }));
                }
            }
        }
        // Wait for this tile's inputs, then compute.
        for (dir, slot) in cur_recv.iter_mut().enumerate().take(dirs) {
            if let Some(req) = slot.take() {
                timed(obs, Phase::WaitRecv { dir, step: k }, || {
                    comm.wait_recv_into(req, ops.recv_buf(dir, k))
                });
                timed(obs, Phase::Unpack { dir, step: k }, || ops.unpack(dir, k));
            }
        }
        timed(obs, Phase::Compute { step: k }, || ops.compute(k));
        for (dir, slot) in sends.iter_mut().enumerate().take(dirs) {
            if let Some(req) = slot.take() {
                timed(obs, Phase::WaitSend { dir, step: k - 1 }, || {
                    comm.wait_send(req)
                });
            }
        }
        std::mem::swap(&mut cur_recv, &mut next_recv);
    }
    // Epilogue: ship the last tile's faces.
    for dir in 0..dirs {
        if let Some(dst) = ops.downstream(dir) {
            let n = timed(obs, Phase::Pack { dir, step: steps - 1 }, || {
                ops.pack(dir, steps - 1)
            });
            let t = tag(steps - 1, ops.wire_dir(dir));
            let req = timed(obs, Phase::PostSend { dir, step: steps - 1 }, || {
                comm.isend_from(dst, t, &ops.face(dir)[..n])
            });
            timed(obs, Phase::WaitSend { dir, step: steps - 1 }, || {
                comm.wait_send(req)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_selects_schedule_type() {
        let b = ExecMode::Blocking.step_plan(3, 2, 10);
        assert_eq!(b.strategy(), StepStrategy::Blocking);
        assert_eq!(b.steps(), 10);
        let o = ExecMode::Overlapping.step_plan(3, 2, 10);
        assert_eq!(o.strategy(), StepStrategy::Overlap);
    }

    #[test]
    fn phase_lane_and_activity_mapping() {
        assert_eq!(Phase::Compute { step: 0 }.activity(), Activity::Compute);
        assert!(Phase::Compute { step: 0 }.is_cpu_lane());
        assert_eq!(
            Phase::Pack { dir: 0, step: 1 }.activity(),
            Activity::PostSend
        );
        assert_eq!(
            Phase::Unpack { dir: 1, step: 2 }.activity(),
            Activity::PostRecv
        );
        assert_eq!(
            Phase::Recv { dir: 0, step: 0 }.activity(),
            Activity::BlockingRecv
        );
        assert!(!Phase::Recv { dir: 0, step: 0 }.is_cpu_lane());
        assert_eq!(
            Phase::WaitRecv { dir: 0, step: 4 }.activity(),
            Activity::Idle
        );
        assert!(!Phase::WaitSend { dir: 1, step: 4 }.is_cpu_lane());
        assert_eq!(Phase::WaitSend { dir: 1, step: 4 }.step(), 4);
    }

    #[test]
    fn lane_stats_accumulate_and_summarize() {
        let mut s = LaneStats::new(2);
        let t0 = Instant::now();
        let t1 = t0 + std::time::Duration::from_micros(10);
        let t2 = t0 + std::time::Duration::from_micros(14);
        s.on_phase(Phase::Compute { step: 0 }, t0, t1);
        s.on_phase(Phase::WaitRecv { dir: 0, step: 1 }, t1, t2);
        assert!((s.cpu_us[0] - 10.0).abs() < 1e-6);
        assert!((s.comm_us[1] - 4.0).abs() < 1e-6);
        let (a_mean, a_max, b_mean, b_max) = LaneStats::summarize(&[s]);
        assert!((a_mean - 5.0).abs() < 1e-6); // steps 0 and 1 average
        assert!((a_max - 10.0).abs() < 1e-6);
        assert!((b_mean - 2.0).abs() < 1e-6);
        assert!((b_max - 4.0).abs() < 1e-6);
    }
}
