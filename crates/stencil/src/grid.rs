//! Dense 2-D and 3-D grids of `f32` values.
//!
//! These hold the arrays the paper's kernels update. Out-of-range reads
//! return a configurable boundary value (the experiments' arrays are
//! fully determined by their boundary: every interior cell is
//! recomputed from already-recomputed neighbors).

/// A dense row-major 2-D grid.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid2D {
    nx: usize,
    ny: usize,
    data: Vec<f32>,
    boundary: f32,
}

impl Grid2D {
    /// An `nx × ny` grid filled with `fill`, with out-of-range reads
    /// yielding `boundary`.
    pub fn new(nx: usize, ny: usize, fill: f32, boundary: f32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        Grid2D {
            nx,
            ny,
            data: vec![fill; nx * ny],
            boundary,
        }
    }

    /// Extent along i.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Extent along j.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The boundary value returned by out-of-range [`Self::get`]s.
    pub fn boundary(&self) -> f32 {
        self.boundary
    }

    /// Read `(i, j)`; out-of-range returns the boundary value.
    #[inline]
    pub fn get(&self, i: i64, j: i64) -> f32 {
        if i < 0 || j < 0 || i >= self.nx as i64 || j >= self.ny as i64 {
            self.boundary
        } else {
            self.data[i as usize * self.ny + j as usize]
        }
    }

    /// Write `(i, j)` (must be in range).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.nx && j < self.ny, "grid write out of range");
        self.data[i * self.ny + j] = v;
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row `i` (all `ny` values), for bulk copies.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.nx, "grid row out of range");
        &mut self.data[i * self.ny..(i + 1) * self.ny]
    }

    /// Maximum absolute difference to another grid of the same shape.
    pub fn max_abs_diff(&self, other: &Grid2D) -> f32 {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// A dense 3-D grid, `k` fastest (matching the paper's `A(i,j,k)` sweep).
#[derive(Clone, PartialEq, Debug)]
pub struct Grid3D {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f32>,
    boundary: f32,
}

impl Grid3D {
    /// An `nx × ny × nz` grid filled with `fill`.
    pub fn new(nx: usize, ny: usize, nz: usize, fill: f32, boundary: f32) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid must be non-empty");
        Grid3D {
            nx,
            ny,
            nz,
            data: vec![fill; nx * ny * nz],
            boundary,
        }
    }

    /// Extent along i.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Extent along j.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Extent along k.
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// The boundary value.
    pub fn boundary(&self) -> f32 {
        self.boundary
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.ny + j) * self.nz + k
    }

    /// Read `(i, j, k)`; out-of-range returns the boundary value.
    #[inline]
    pub fn get(&self, i: i64, j: i64, k: i64) -> f32 {
        if i < 0
            || j < 0
            || k < 0
            || i >= self.nx as i64
            || j >= self.ny as i64
            || k >= self.nz as i64
        {
            self.boundary
        } else {
            self.data[self.idx(i as usize, j as usize, k as usize)]
        }
    }

    /// Write `(i, j, k)` (must be in range).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f32) {
        assert!(
            i < self.nx && j < self.ny && k < self.nz,
            "grid write out of range"
        );
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Raw data (row-major, k fastest).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable k-row at `(i, j)` (all `nz` values), for bulk copies.
    #[inline]
    pub fn row_mut(&mut self, i: usize, j: usize) -> &mut [f32] {
        assert!(i < self.nx && j < self.ny, "grid row out of range");
        let start = (i * self.ny + j) * self.nz;
        &mut self.data[start..start + self.nz]
    }

    /// Maximum absolute difference to another grid of the same shape.
    pub fn max_abs_diff(&self, other: &Grid3D) -> f32 {
        assert_eq!(
            (self.nx, self.ny, self.nz),
            (other.nx, other.ny, other.nz),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_basics() {
        let mut g = Grid2D::new(3, 4, 0.0, 1.5);
        g.set(1, 2, 7.0);
        assert_eq!(g.get(1, 2), 7.0);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(-1, 0), 1.5);
        assert_eq!(g.get(0, 4), 1.5);
        assert_eq!(g.get(3, 0), 1.5);
        assert_eq!(g.nx(), 3);
        assert_eq!(g.ny(), 4);
    }

    #[test]
    fn grid3d_basics() {
        let mut g = Grid3D::new(2, 3, 4, 0.0, -1.0);
        g.set(1, 2, 3, 9.0);
        assert_eq!(g.get(1, 2, 3), 9.0);
        assert_eq!(g.get(2, 0, 0), -1.0);
        assert_eq!(g.get(0, 0, -1), -1.0);
        assert_eq!(g.data().len(), 24);
    }

    #[test]
    fn max_abs_diff() {
        let a = Grid2D::new(2, 2, 1.0, 0.0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 1, 3.5);
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_out_of_range_panics() {
        Grid2D::new(2, 2, 0.0, 0.0).set(2, 0, 1.0);
    }

    #[test]
    fn k_fastest_layout() {
        let mut g = Grid3D::new(2, 2, 2, 0.0, 0.0);
        g.set(0, 0, 1, 1.0);
        g.set(0, 1, 0, 2.0);
        g.set(1, 0, 0, 3.0);
        assert_eq!(g.data()[1], 1.0);
        assert_eq!(g.data()[2], 2.0);
        assert_eq!(g.data()[4], 3.0);
    }
}
