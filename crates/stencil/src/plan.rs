//! Compiled execution plans: validate + analyze once, execute many.
//!
//! A [`Compiled2D`] / [`Compiled3D`] is the sealed, immutable bundle a
//! distributed run actually needs — the validated decomposition, the
//! [`StepPlan`] projected from the schedule type behind the chosen
//! [`ExecMode`], and the pre-flight [`AnalysisReport`] proving the plan
//! legal, fully matched and deadlock-free. Compiling is the *only*
//! place validation and pre-flight analysis happen; every runner in
//! this module consumes the bundle as-is, so a plan compiled once can
//! back any number of executions without re-deriving or re-checking
//! anything (the `planc` crate's `PlanArtifact` wraps these bundles
//! with a cache key and model metadata for exactly that reuse).
//!
//! The legacy per-run entry points (`run_dist2d_with`,
//! `run_dist3d_observed_with`, …) are now thin compile-then-execute
//! wrappers over this module — their behavior, results and error
//! precedence are unchanged.
//!
//! [`run3d_on_world`] additionally executes a compiled plan over a
//! *prebuilt* thread-backend world (`msgpass::thread_backend::run_world`):
//! a service can keep a pool of worlds warm and run job after job on
//! them, reusing links, slot rings and buffer pools. That reuse is
//! sound precisely because the analyzer proved the plan drains every
//! link — a completed run leaves no message behind.

use crate::dist2d::{self, Decomp2D};
use crate::dist3d::{self, Decomp3D};
use crate::engine::{EngineError, ExecMode, NoopObserver, StepObserver};
use crate::grid::{Grid2D, Grid3D};
use crate::kernel::{Kernel2D, Kernel3D};
use analyzer::AnalysisReport;
use msgpass::comm::Communicator;
use msgpass::fault::FaultStats;
use msgpass::thread_backend::{run_threads_with, run_world, ThreadComm, WorldConfig};
use std::time::Duration;
use tiling_core::machine::KernelTier;
use tiling_core::schedule::StepPlan;

/// A compiled, analyzer-approved 2-D strip plan: decomposition,
/// schedule projection and pre-flight report, sealed at compile time.
#[derive(Clone, Copy, Debug)]
pub struct Compiled2D {
    d: Decomp2D,
    mode: ExecMode,
    plan: StepPlan,
    report: Option<AnalysisReport>,
}

impl Compiled2D {
    /// Validate the decomposition, run the pre-flight static analysis
    /// exactly once, and seal the executable plan.
    pub fn compile(d: Decomp2D, mode: ExecMode) -> Result<Self, EngineError> {
        d.validate()?;
        let report = crate::preflight::check_plan2d(&d, mode)?;
        Ok(Compiled2D {
            d,
            mode,
            // Example 1 maps along i₁ of a 2-D tiled space (pi = [1, 2]).
            plan: mode.step_plan(2, 0, d.steps()),
            report: Some(report),
        })
    }

    /// Seal without the pre-flight analysis (benchmark hot paths that
    /// opt out via `WorldConfig::without_preflight`; the layout must be
    /// covered elsewhere, e.g. by `paper analyze`). Validation still
    /// runs — an unexecutable decomposition is never sealed.
    pub fn compile_unchecked(d: Decomp2D, mode: ExecMode) -> Result<Self, EngineError> {
        d.validate()?;
        Ok(Compiled2D {
            d,
            mode,
            plan: mode.step_plan(2, 0, d.steps()),
            report: None,
        })
    }

    /// The validated decomposition.
    pub fn decomp(&self) -> Decomp2D {
        self.d
    }

    /// The execution mode the plan was compiled for.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The schedule's executable projection.
    pub fn step_plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The pre-flight report (`None` for [`Compiled2D::compile_unchecked`]).
    pub fn report(&self) -> Option<&AnalysisReport> {
        self.report.as_ref()
    }

    /// World size the plan executes on.
    pub fn ranks(&self) -> usize {
        self.d.ranks
    }
}

/// A compiled, analyzer-approved 3-D block plan (§5 layout).
#[derive(Clone, Copy, Debug)]
pub struct Compiled3D {
    d: Decomp3D,
    mode: ExecMode,
    plan: StepPlan,
    report: Option<AnalysisReport>,
}

impl Compiled3D {
    /// Validate the decomposition, run the pre-flight static analysis
    /// exactly once, and seal the executable plan.
    pub fn compile(d: Decomp3D, mode: ExecMode) -> Result<Self, EngineError> {
        d.validate()?;
        let report = crate::preflight::check_plan3d(&d, mode)?;
        Ok(Compiled3D {
            d,
            mode,
            // The paper's §5 layout maps along i₃ (pi = [2, 2, 1]).
            plan: mode.step_plan(3, 2, d.steps()),
            report: Some(report),
        })
    }

    /// Seal without the pre-flight analysis (see
    /// [`Compiled2D::compile_unchecked`]).
    pub fn compile_unchecked(d: Decomp3D, mode: ExecMode) -> Result<Self, EngineError> {
        d.validate()?;
        Ok(Compiled3D {
            d,
            mode,
            plan: mode.step_plan(3, 2, d.steps()),
            report: None,
        })
    }

    /// The validated decomposition.
    pub fn decomp(&self) -> Decomp3D {
        self.d
    }

    /// The execution mode the plan was compiled for.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The schedule's executable projection.
    pub fn step_plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The pre-flight report (`None` for [`Compiled3D::compile_unchecked`]).
    pub fn report(&self) -> Option<&AnalysisReport> {
        self.report.as_ref()
    }

    /// World size the plan executes on.
    pub fn ranks(&self) -> usize {
        self.d.pi * self.d.pj
    }
}

/// Fold per-rank results, preferring the most diagnostic error (see
/// [`EngineError::severity`]).
fn prefer_worst(worst: &mut Option<EngineError>, err: EngineError) {
    *worst = Some(match worst.take() {
        Some(w) => w.prefer(err),
        None => err,
    });
}

/// Execute a compiled 2-D plan on a fully configured world and gather.
/// No validation or pre-flight runs here — that happened at compile
/// time. Returns the assembled grid, the wall-clock time, and each
/// rank's fault counters.
pub fn run2d_with<K: Kernel2D>(
    kernel: K,
    c: &Compiled2D,
    cfg: &WorldConfig,
) -> Result<(Grid2D, Duration, Vec<FaultStats>), EngineError> {
    let d = c.d;
    let plan = &c.plan;
    let (results, elapsed) = run_threads_with::<f32, _, _>(d.ranks, cfg, move |mut comm| {
        let strip = dist2d::try_run_rank2d_plan(&mut comm, kernel, d, plan, &mut NoopObserver);
        (strip, comm.fault_stats())
    });
    let mut strips = Vec::with_capacity(d.ranks);
    let mut stats = Vec::with_capacity(d.ranks);
    let mut worst: Option<EngineError> = None;
    for (rank, joined) in results.into_iter().enumerate() {
        match joined {
            Ok((Ok(strip), st)) => {
                strips.push(strip);
                stats.push(st);
            }
            Ok((Err(e), st)) => {
                stats.push(st);
                prefer_worst(&mut worst, e);
            }
            Err(_) => prefer_worst(&mut worst, EngineError::RankFailed { rank }),
        }
    }
    if let Some(e) = worst {
        return Err(e);
    }
    Ok((assemble2d(d, &strips), elapsed, stats))
}

/// Assemble per-rank strips into the full grid: each strip row is a
/// contiguous span of the output row.
fn assemble2d(d: Decomp2D, strips: &[Vec<f32>]) -> Grid2D {
    let by = d.by();
    let mut out = Grid2D::new(d.nx, d.ny, 0.0, d.boundary);
    for (rank, strip) in strips.iter().enumerate() {
        for i in 0..d.nx {
            out.row_mut(i)[rank * by..][..by].copy_from_slice(&strip[i * by..][..by]);
        }
    }
    out
}

/// Execute a compiled 3-D plan on a fully configured world with a
/// per-rank [`StepObserver`] built by `make_obs`. No validation or
/// pre-flight runs here — that happened at compile time. Returns the
/// assembled grid, the wall-clock time of the parallel region, the
/// observers in rank order, and each rank's fault counters.
pub fn run3d_observed_with<K, O, F>(
    kernel: K,
    c: &Compiled3D,
    cfg: &WorldConfig,
    make_obs: F,
) -> Result<(Grid3D, Duration, Vec<O>, Vec<FaultStats>), EngineError>
where
    K: Kernel3D,
    O: StepObserver + Send,
    F: Fn(&ThreadComm<f32>) -> O + Send + Sync,
{
    let d = c.d;
    let plan = &c.plan;
    let ranks = c.ranks();
    let tier = cfg.kernel_tier;
    let workers = cfg.compute_workers.max(1);
    let pin = cfg.pin_cores;
    let (results, elapsed) = run_threads_with::<f32, _, _>(ranks, cfg, |mut comm| {
        let mut obs = make_obs(&comm);
        let block = if workers > 1 {
            // Place each rank's pool on a contiguous core span so the
            // engine (worker 0) and its workers share locality.
            let pin_base = if pin {
                Some(comm.rank() * workers)
            } else {
                None
            };
            dist3d::try_run_rank3d_pooled_plan(
                &mut comm, kernel, d, plan, tier, workers, pin_base, &mut obs,
            )
        } else {
            dist3d::try_run_rank3d_plan(&mut comm, kernel, d, plan, tier, &mut obs)
        };
        (block, obs, comm.fault_stats())
    });
    let mut blocks = Vec::with_capacity(ranks);
    let mut observers = Vec::with_capacity(ranks);
    let mut stats = Vec::with_capacity(ranks);
    let mut worst: Option<EngineError> = None;
    for (rank, joined) in results.into_iter().enumerate() {
        match joined {
            Ok((Ok(block), obs, st)) => {
                blocks.push(block);
                observers.push(obs);
                stats.push(st);
            }
            Ok((Err(e), obs, st)) => {
                observers.push(obs);
                stats.push(st);
                prefer_worst(&mut worst, e);
            }
            Err(_) => prefer_worst(&mut worst, EngineError::RankFailed { rank }),
        }
    }
    if let Some(e) = worst {
        return Err(e);
    }
    Ok((dist3d::gather_blocks(d, &blocks), elapsed, observers, stats))
}

/// Execute a compiled 3-D plan on a fully configured world and gather.
pub fn run3d_with<K: Kernel3D>(
    kernel: K,
    c: &Compiled3D,
    cfg: &WorldConfig,
) -> Result<(Grid3D, Duration, Vec<FaultStats>), EngineError> {
    let (grid, elapsed, _, stats) = run3d_observed_with(kernel, c, cfg, |_| NoopObserver)?;
    Ok((grid, elapsed, stats))
}

/// Execute a compiled 3-D plan over a *prebuilt* world (see
/// [`msgpass::thread_backend::build_world_with`] /
/// [`msgpass::thread_backend::run_world`]): the world's links, slot
/// rings and buffer pools are reused as-is, so a warm world costs no
/// setup. The world's size must match the plan's rank count. On error
/// the world may hold undrained messages and must be discarded.
pub fn run3d_on_world<K: Kernel3D>(
    kernel: K,
    c: &Compiled3D,
    tier: KernelTier,
    world: &mut [ThreadComm<f32>],
) -> Result<(Grid3D, Duration), EngineError> {
    assert_eq!(
        world.len(),
        c.ranks(),
        "prebuilt world size must match the compiled plan's rank count"
    );
    let d = c.d;
    let plan = &c.plan;
    let (results, elapsed) = run_world(world, false, |comm| {
        dist3d::try_run_rank3d_plan(comm, kernel, d, plan, tier, &mut NoopObserver)
    });
    let mut blocks = Vec::with_capacity(c.ranks());
    let mut worst: Option<EngineError> = None;
    for (rank, joined) in results.into_iter().enumerate() {
        match joined {
            Ok(Ok(block)) => blocks.push(block),
            Ok(Err(e)) => prefer_worst(&mut worst, e),
            Err(_) => prefer_worst(&mut worst, EngineError::RankFailed { rank }),
        }
    }
    if let Some(e) = worst {
        return Err(e);
    }
    Ok((dist3d::gather_blocks(d, &blocks), elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Example1, Paper3D};
    use msgpass::thread_backend::{build_world_with, LatencyModel};

    fn d3() -> Decomp3D {
        Decomp3D {
            nx: 8,
            ny: 8,
            nz: 64,
            pi: 2,
            pj: 2,
            v: 16,
            boundary: 1.0,
        }
    }

    #[test]
    fn compile_once_execute_many_matches_sequential() {
        let c = Compiled3D::compile(d3(), ExecMode::Overlapping).expect("clean plan");
        assert!(c.report().is_some());
        let seq = crate::seq::run_paper3d_seq(8, 8, 64, 1.0);
        let cfg = WorldConfig::new(LatencyModel::zero());
        for _ in 0..2 {
            let (grid, _, _) = run3d_with(Paper3D, &c, &cfg).expect("runs");
            assert_eq!(grid.max_abs_diff(&seq), 0.0);
        }
    }

    #[test]
    fn compiled_2d_matches_sequential() {
        let d = Decomp2D {
            nx: 40,
            ny: 12,
            ranks: 4,
            v: 10,
            boundary: 4.0,
        };
        let c = Compiled2D::compile(d, ExecMode::Blocking).expect("clean plan");
        let (grid, _, _) =
            run2d_with(Example1, &c, &WorldConfig::new(LatencyModel::zero())).expect("runs");
        let seq = crate::seq::run_example1_seq(d.nx, d.ny, d.boundary);
        assert_eq!(grid.max_abs_diff(&seq), 0.0);
    }

    #[test]
    fn compile_rejects_invalid_decomp() {
        let bad = Decomp3D { pi: 3, ..d3() }; // 8 % 3 != 0
        assert!(Compiled3D::compile(bad, ExecMode::Blocking).is_err());
        assert!(Compiled3D::compile_unchecked(bad, ExecMode::Blocking).is_err());
    }

    #[test]
    fn prebuilt_world_runs_compiled_plans_back_to_back() {
        use msgpass::transport::TransportKind;
        let c = Compiled3D::compile(d3(), ExecMode::Overlapping).expect("clean plan");
        let cfg =
            WorldConfig::new(LatencyModel::zero()).with_transport(TransportKind::shared_slots());
        let mut world = build_world_with::<f32>(c.ranks(), &cfg);
        let seq = crate::seq::run_paper3d_seq(8, 8, 64, 1.0);
        for _ in 0..3 {
            let (grid, _) =
                run3d_on_world(Paper3D, &c, KernelTier::Bitwise, &mut world).expect("runs");
            assert_eq!(grid.max_abs_diff(&seq), 0.0);
        }
        // A different compiled plan (other mode) on the same warm world.
        let c2 = Compiled3D::compile(d3(), ExecMode::Blocking).expect("clean plan");
        let (grid, _) =
            run3d_on_world(Paper3D, &c2, KernelTier::Bitwise, &mut world).expect("runs");
        assert_eq!(grid.max_abs_diff(&seq), 0.0);
    }
}
