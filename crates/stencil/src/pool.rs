//! Intra-rank compute worker pool for the 3-D executors.
//!
//! One rank = one engine thread (the A/B communication lanes) plus
//! `compute_workers − 1` pool workers. Per tile, the engine publishes a
//! job and every thread — engine included, as worker 0 — takes a
//! contiguous share of each anti-diagonal of the tile cross-section,
//! evaluates its pencils as [`Wave`]s, and meets the others at a spin
//! barrier before the next diagonal. Pencils on one diagonal are
//! mutually independent (see [`crate::dist3d`]), so the split changes
//! only *who* computes a pencil, never the per-cell operation order:
//! pooled runs stay bitwise-equal to sequential on the pinned tier.
//!
//! **Pool workers never touch the communication lanes.** Every
//! send/receive — posting, waiting, packing, unpacking — happens on the
//! engine thread, outside [`TileOps::compute`]; in overlap mode the
//! sends it posted *before* compute are already staged in transport
//! slots, where the peer's receive progresses without any action from
//! this rank. Workers therefore need no access to the communicator, no
//! send ordering is perturbed, and the engine's lane bookkeeping
//! ([`crate::engine::LaneStats`]) keeps its single-threaded meaning.
//!
//! ## Storage and locking
//!
//! The block is sharded one row (pencil) per [`RwLock`]: a worker
//! write-locks the rows of its own wave and read-locks their `i−1`/
//! `j−1` neighbors. Writers lock only current-diagonal rows, readers
//! only previous-diagonal rows (finished before the last barrier), so
//! no lock acquisition ever blocks — the locks exist to let the borrow
//! checker hand disjoint `&mut` rows to threads, not to arbitrate — and
//! no deadlock is possible. Workers are spawned **once per rank run**
//! (scoped threads) and park on a condvar between tiles; the steady-
//! state tile path allocates nothing (asserted by `tests/zero_alloc.rs`).

use crate::dist3d::Decomp3D;
use crate::kernel::{Kernel3D, KernelTier, Wave, MAX_WAVE};
use msgpass::topology::CartesianGrid;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock, RwLockReadGuard};

/// Spin-then-yield barrier for the per-diagonal rendezvous. Diagonals
/// are microseconds apart, so parking would dominate; generation-based
/// so it is reusable without reset races.
struct WaveBarrier {
    parties: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl WaveBarrier {
    fn new(parties: usize) -> Self {
        WaveBarrier {
            parties,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count *before* releasing the
            // generation — waiters re-enter only after observing the
            // new generation, so they never see a stale count.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed host: give the peers our slice.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Job mailbox: the engine bumps `seq` per tile; workers act on any
/// `seq` they have not seen yet (state-based, so a late waiter cannot
/// miss a wakeup).
struct Job {
    seq: u64,
    step: usize,
    quit: bool,
}

/// Per-rank shared compute state: the row-sharded block plus the job
/// mailbox and barrier the pool synchronizes on.
pub(crate) struct Shared<K> {
    d: Decomp3D,
    kernel: K,
    tier: KernelTier,
    workers: usize,
    /// Block rows, `rows[i·by + j]` = the `(i, j)` pencil (`nz` long).
    rows: Vec<RwLock<Vec<f32>>>,
    /// Halo plane `i = own_lo_i − 1`, `by × nz` (engine writes between
    /// tiles, workers read during them — phases never overlap).
    halo_i: RwLock<Vec<f32>>,
    /// Halo plane `j = own_lo_j − 1`, `bx × nz`.
    halo_j: RwLock<Vec<f32>>,
    /// Boundary splat, `nz` long.
    brow: Vec<f32>,
    has_left_i: bool,
    has_left_j: bool,
    pub(crate) up: [Option<usize>; 2],
    pub(crate) dn: [Option<usize>; 2],
    gi0: i64,
    gj0: i64,
    job: Mutex<Job>,
    cv: Condvar,
    barrier: WaveBarrier,
}

impl<K: Kernel3D> Shared<K> {
    pub(crate) fn new(
        d: Decomp3D,
        kernel: K,
        tier: KernelTier,
        workers: usize,
        rank: usize,
    ) -> Self {
        let grid = CartesianGrid::new(vec![d.pi, d.pj]);
        let coords = grid.coords_of(rank);
        let workers = workers.max(1);
        Shared {
            d,
            kernel,
            tier,
            workers,
            rows: (0..d.bx() * d.by())
                .map(|_| RwLock::new(vec![0.0; d.nz]))
                .collect(),
            halo_i: RwLock::new(vec![0.0; d.by() * d.nz]),
            halo_j: RwLock::new(vec![0.0; d.bx() * d.nz]),
            brow: vec![d.boundary; d.nz],
            has_left_i: coords[0] > 0,
            has_left_j: coords[1] > 0,
            up: [grid.neighbor(rank, &[-1, 0]), grid.neighbor(rank, &[0, -1])],
            dn: [grid.neighbor(rank, &[1, 0]), grid.neighbor(rank, &[0, 1])],
            gi0: (coords[0] * d.bx()) as i64,
            gj0: (coords[1] * d.by()) as i64,
            job: Mutex::new(Job {
                seq: 0,
                step: 0,
                quit: false,
            }),
            cv: Condvar::new(),
            barrier: WaveBarrier::new(workers),
        }
    }

    /// Pool-worker body (workers `1..workers`; the engine is worker 0).
    pub(crate) fn worker_loop(&self, worker: usize, pin_core: Option<usize>) {
        if let Some(core) = pin_core {
            // Best-effort placement; failure is fine.
            let _ = msgpass::affinity::pin_current_thread(core);
        }
        let mut seen = 0u64;
        loop {
            let (seq, step, quit) = {
                let mut g = self.job.lock().unwrap();
                while !g.quit && g.seq == seen {
                    g = self.cv.wait(g).unwrap();
                }
                (g.seq, g.step, g.quit)
            };
            if quit {
                return;
            }
            seen = seq;
            self.run_tile(worker, step);
        }
    }

    /// Publish tile `step` to the pool and compute the engine's own
    /// share; returns only when the whole tile is done (the final
    /// diagonal barrier is the completion rendezvous).
    pub(crate) fn compute(&self, step: usize) {
        {
            let mut g = self.job.lock().unwrap();
            g.seq += 1;
            g.step = step;
        }
        self.cv.notify_all();
        self.run_tile(0, step);
    }

    /// Stop the pool (idempotent); workers drain out of `worker_loop`.
    pub(crate) fn shutdown(&self) {
        self.job.lock().unwrap().quit = true;
        self.cv.notify_all();
    }

    /// One thread's share of one tile: its slice of every anti-diagonal,
    /// with a barrier between diagonals.
    fn run_tile(&self, worker: usize, step: usize) {
        let (k0, k1) = self.d.krange(step);
        let len = k1 - k0;
        let (bx, by) = (self.d.bx(), self.d.by());
        let halo_i = self.halo_i.read().unwrap();
        let halo_j = self.halo_j.read().unwrap();
        for diag in 0..(bx + by - 1) {
            let i_lo = (diag + 1).saturating_sub(by);
            let i_hi = diag.min(bx - 1);
            let count = i_hi - i_lo + 1;
            let lo = i_lo + (count * worker) / self.workers;
            let hi = i_lo + (count * (worker + 1)) / self.workers;
            let mut i = lo;
            while i < hi {
                let m = (hi - i).min(MAX_WAVE);
                self.eval_wave_at(diag, i, m, k0, len, &halo_i, &halo_j);
                i += m;
            }
            self.barrier.wait();
        }
    }

    /// Lock and evaluate the wave of pencils `(i..i+m, diag−i..)`.
    #[allow(clippy::too_many_arguments)] // LINT: one coordinate per wave axis, mirrors eval_pencil's shape
    fn eval_wave_at(
        &self,
        diag: usize,
        i: usize,
        m: usize,
        k0: usize,
        len: usize,
        halo_i: &[f32],
        halo_j: &[f32],
    ) {
        let by = self.d.by();
        let nz = self.d.nz;
        // Lock phase: own rows exclusively, neighbor rows shared. None
        // of these can block (see module docs), they just prove
        // disjointness to the borrow checker.
        let mut ngi: [Option<RwLockReadGuard<'_, Vec<f32>>>; MAX_WAVE] =
            core::array::from_fn(|_| None);
        let mut ngj: [Option<RwLockReadGuard<'_, Vec<f32>>>; MAX_WAVE] =
            core::array::from_fn(|_| None);
        let mut own: [_; MAX_WAVE] = core::array::from_fn(|_| None);
        for p in 0..m {
            let ii = i + p;
            let jj = diag - ii;
            own[p] = Some(self.rows[ii * by + jj].write().unwrap());
            if ii > 0 {
                ngi[p] = Some(self.rows[(ii - 1) * by + jj].read().unwrap());
            }
            if jj > 0 {
                ngj[p] = Some(self.rows[ii * by + (jj - 1)].read().unwrap());
            }
        }
        let mut wave = Wave::new();
        for (p, og) in own[..m].iter_mut().enumerate() {
            let ii = i + p;
            let jj = diag - ii;
            let im1: &[f32] = match &ngi[p] {
                Some(g) => &g[k0..k0 + len],
                None if self.has_left_i => &halo_i[jj * nz + k0..][..len],
                None => &self.brow[k0..k0 + len],
            };
            let jm1: &[f32] = match &ngj[p] {
                Some(g) => &g[k0..k0 + len],
                None if self.has_left_j => &halo_j[ii * nz + k0..][..len],
                None => &self.brow[k0..k0 + len],
            };
            let row: &mut Vec<f32> = og.as_mut().unwrap();
            let (below, at) = row.split_at_mut(k0);
            let km1 = if k0 > 0 {
                below[k0 - 1]
            } else {
                self.d.boundary
            };
            let (out, _) = at.split_at_mut(len);
            wave.push(
                self.gi0 + ii as i64,
                self.gj0 + jj as i64,
                k0 as i64,
                im1,
                jm1,
                km1,
                out,
            );
        }
        self.kernel.eval_wave_tier(self.tier, &mut wave);
    }

    /// Pack the outgoing `dir` face of `step` into `out` (engine thread,
    /// between tiles — all row locks are free).
    pub(crate) fn pack_face(&self, dir: usize, step: usize, out: &mut [f32]) {
        let (k0, k1) = self.d.krange(step);
        let len = k1 - k0;
        let (bx, by) = (self.d.bx(), self.d.by());
        if dir == 0 {
            for j in 0..by {
                let row = self.rows[(bx - 1) * by + j].read().unwrap();
                out[j * len..][..len].copy_from_slice(&row[k0..k1]);
            }
        } else {
            for i in 0..bx {
                let row = self.rows[i * by + (by - 1)].read().unwrap();
                out[i * len..][..len].copy_from_slice(&row[k0..k1]);
            }
        }
    }

    /// Scatter a received `dir` face of `step` into the halo plane.
    pub(crate) fn unpack_face(&self, dir: usize, step: usize, data: &[f32]) {
        let (k0, k1) = self.d.krange(step);
        let len = k1 - k0;
        let mut halo = if dir == 0 {
            self.halo_i.write().unwrap()
        } else {
            self.halo_j.write().unwrap()
        };
        let nz = self.d.nz;
        for (n, chunk) in data.chunks_exact(len).enumerate() {
            halo[n * nz + k0..][..len].copy_from_slice(chunk);
        }
    }

    /// Flatten the sharded rows back into the `bx × by × nz` block
    /// layout the gather paths expect.
    pub(crate) fn into_flat_block(self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows.len() * self.d.nz);
        for row in self.rows {
            out.extend_from_slice(&row.into_inner().unwrap());
        }
        out
    }

    /// Decomposition this pool was built for.
    pub(crate) fn decomp(&self) -> &Decomp3D {
        &self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronizes_phases() {
        // 4 threads × many rounds: after leaving barrier round r, every
        // thread must observe all 4 arrivals of round r.
        let parties = 4;
        let b = WaveBarrier::new(parties);
        let hits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for round in 1..=200u64 {
                        hits.fetch_add(1, Ordering::AcqRel);
                        b.wait();
                        let seen = hits.load(Ordering::Acquire);
                        assert!(
                            seen >= round * parties as u64,
                            "left barrier round {round} having seen only {seen} arrivals"
                        );
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Acquire), 200 * parties as u64);
    }
}
