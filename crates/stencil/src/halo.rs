//! Row-chunked halo face packing and unpacking.
//!
//! Both block layouts used by the executors keep the pipelined dimension
//! fastest, so every row of an outgoing face is contiguous in memory:
//! packing a face is a strided sequence of `copy_from_slice` row copies
//! instead of a per-element gather, and unpacking into a halo plane is
//! the mirror-image scatter. The generic parameters:
//!
//! * `base` — offset of row 0's start within the source/destination,
//! * `stride` — distance between consecutive row starts,
//! * `k0`/`len` — the tile's window within each row.
//!
//! For the 3-D `bx × by × nz` block (k fastest), the `i = bx−1` face has
//! `base = (bx−1)·by·nz, stride = nz` (rows indexed by `j`) and the
//! `j = by−1` face has `base = (by−1)·nz, stride = by·nz` (rows indexed
//! by `i`). Halo planes unpack with `base = 0, stride = nz`.
//!
//! The element-wise equivalents these replace live in [`crate::legacy`];
//! property tests assert bitwise equality between the two on random
//! shapes, including partial last tiles.

/// Pack face rows into a flat buffer: for each row `r`,
/// `out[r·len .. (r+1)·len] = src[base + r·stride + k0 ..][.. len]`.
/// The row count is implied by `out.len() / len`.
pub fn pack_rows(src: &[f32], base: usize, stride: usize, k0: usize, len: usize, out: &mut [f32]) {
    assert!(len > 0, "face rows must be non-empty");
    assert!(
        out.len().is_multiple_of(len),
        "packed buffer length {} not a multiple of row length {len}",
        out.len()
    );
    for (r, chunk) in out.chunks_exact_mut(len).enumerate() {
        let start = base + r * stride + k0;
        chunk.copy_from_slice(&src[start..start + len]);
    }
}

/// Unpack a flat face buffer into strided rows: for each row `r`,
/// `dst[base + r·stride + k0 ..][.. len] = data[r·len .. (r+1)·len]`.
pub fn unpack_rows(
    data: &[f32],
    dst: &mut [f32],
    base: usize,
    stride: usize,
    k0: usize,
    len: usize,
) {
    assert!(len > 0, "face rows must be non-empty");
    assert!(
        data.len().is_multiple_of(len),
        "packed buffer length {} not a multiple of row length {len}",
        data.len()
    );
    for (r, chunk) in data.chunks_exact(len).enumerate() {
        let start = base + r * stride + k0;
        dst[start..start + len].copy_from_slice(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_then_unpack_roundtrips() {
        // A 3×4 "plane" with stride 5 (2 padding cells per row).
        let stride = 5;
        let src: Vec<f32> = (0..3 * stride).map(|x| x as f32).collect();
        let mut packed = vec![0.0; 3 * 4];
        pack_rows(&src, 0, stride, 1, 4, &mut packed);
        assert_eq!(packed[0..4], [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(packed[4..8], [6.0, 7.0, 8.0, 9.0]);

        let mut dst = vec![0.0; 3 * stride];
        unpack_rows(&packed, &mut dst, 0, stride, 1, 4);
        for r in 0..3 {
            assert_eq!(dst[r * stride], 0.0); // untouched outside the window
            assert_eq!(
                dst[r * stride + 1..r * stride + 5],
                src[r * stride + 1..r * stride + 5]
            );
        }
    }

    #[test]
    fn base_offsets_select_the_face() {
        // 2×2×3 block, k fastest; the i=1 face starts at base 2*3.
        let block: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let mut out = vec![0.0; 2 * 3];
        pack_rows(&block, 6, 3, 0, 3, &mut out);
        assert_eq!(out, [6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mismatched_length_panics() {
        let src = vec![0.0; 10];
        let mut out = vec![0.0; 5];
        pack_rows(&src, 0, 2, 0, 2, &mut out);
    }
}
