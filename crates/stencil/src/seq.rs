//! Sequential reference executors.
//!
//! These run the kernels in the original (untiled) lexicographic loop
//! order on one core. The distributed executors must produce bitwise
//! identical grids.

use crate::grid::{Grid2D, Grid3D};
use crate::kernel::{Example1, Kernel2D, Kernel3D, Paper3D};

/// Run any 3-D wavefront kernel sequentially; returns the final grid.
pub fn run_seq3d<K: Kernel3D>(kernel: K, nx: usize, ny: usize, nz: usize, boundary: f32) -> Grid3D {
    let mut g = Grid3D::new(nx, ny, nz, 0.0, boundary);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let v = kernel.eval(
                    i as i64,
                    j as i64,
                    k as i64,
                    g.get(i as i64 - 1, j as i64, k as i64),
                    g.get(i as i64, j as i64 - 1, k as i64),
                    g.get(i as i64, j as i64, k as i64 - 1),
                );
                g.set(i, j, k, v);
            }
        }
    }
    g
}

/// Run any 2-D wavefront kernel sequentially.
pub fn run_seq2d<K: Kernel2D>(kernel: K, nx: usize, ny: usize, boundary: f32) -> Grid2D {
    let mut g = Grid2D::new(nx, ny, 0.0, boundary);
    for i in 0..nx {
        for j in 0..ny {
            let v = kernel.eval(
                i as i64,
                j as i64,
                g.get(i as i64 - 1, j as i64 - 1),
                g.get(i as i64 - 1, j as i64),
                g.get(i as i64, j as i64 - 1),
            );
            g.set(i, j, v);
        }
    }
    g
}

/// Run the paper's 3-D kernel sequentially on an `nx × ny × nz` grid
/// with the given boundary value; returns the final grid.
pub fn run_paper3d_seq(nx: usize, ny: usize, nz: usize, boundary: f32) -> Grid3D {
    run_seq3d(Paper3D, nx, ny, nz, boundary)
}

/// Run the Example 1 kernel sequentially on an `nx × ny` grid.
pub fn run_example1_seq(nx: usize, ny: usize, boundary: f32) -> Grid2D {
    run_seq2d(Example1, nx, ny, boundary)
}

/// Measure `t_c` the way the paper did (§5): run a batch of kernel
/// iterations on one core and divide wall time by the iteration count.
/// Returns microseconds per iteration.
pub fn measure_t_c_paper3d(iterations: usize) -> f64 {
    assert!(iterations > 0);
    let n = (iterations as f64).cbrt().ceil() as usize;
    let start = std::time::Instant::now();
    let g = run_paper3d_seq(n, n, n, 1.0);
    let elapsed = start.elapsed().as_secs_f64() * 1e6;
    std::hint::black_box(g.get(0, 0, 0));
    elapsed / (n * n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Alignment2D, LongestPath3D, Relax3D, Smooth2D};

    #[test]
    fn paper3d_small_values() {
        // Boundary 1.0: A(0,0,0) = 3·√1 = 3.
        let g = run_paper3d_seq(2, 2, 2, 1.0);
        assert_eq!(g.get(0, 0, 0), 3.0);
        // A(0,0,1) = √1 + √1 + √3.
        assert_eq!(g.get(0, 0, 1), 2.0 + 3.0f32.sqrt());
    }

    #[test]
    fn paper3d_zero_boundary_is_all_zero() {
        let g = run_paper3d_seq(3, 3, 3, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn example1_small_values() {
        // Boundary 4.0: A(0,0) = 0.25·(4+4+4) = 3.
        let g = run_example1_seq(2, 2, 4.0);
        assert_eq!(g.get(0, 0), 3.0);
        assert_eq!(g.get(0, 1), 2.75);
        assert_eq!(g.get(1, 1), 0.25 * (3.0 + 2.75 + 2.75));
    }

    #[test]
    fn values_stay_finite() {
        let g = run_paper3d_seq(8, 8, 32, 1.0);
        assert!(g.data().iter().all(|x| x.is_finite()));
        let g2 = run_example1_seq(64, 64, 1.0);
        assert!(g2.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn t_c_measurement_positive() {
        let t = measure_t_c_paper3d(1000);
        assert!(t > 0.0 && t < 1e4, "t_c = {t} µs");
    }

    #[test]
    fn relax3d_contracts_towards_zero() {
        let g = run_seq3d(Relax3D::default(), 4, 4, 32, 1.0);
        // Deep in the sweep the value has decayed well below boundary.
        assert!(g.get(3, 3, 31) < 1.0);
        assert!(g.data().iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn longest_path_is_monotone_along_axes() {
        let g = run_seq3d(LongestPath3D, 4, 4, 8, 0.0);
        // Path scores never decrease along k (each step adds ≥ 0).
        for k in 1..8 {
            assert!(g.get(3, 3, k) >= g.get(3, 3, k - 1));
        }
    }

    #[test]
    fn alignment_scores_are_plausible_lcs() {
        // With alphabet 1, every cell matches: score = min(i, j) + 1
        // (classical LCS of identical sequences).
        let g = run_seq2d(Alignment2D { alphabet: 1 }, 6, 9, 0.0);
        for i in 0..6i64 {
            for j in 0..9i64 {
                assert_eq!(g.get(i, j), (i.min(j) + 1) as f32, "({i},{j})");
            }
        }
    }

    #[test]
    fn smooth2d_decays() {
        let g = run_seq2d(Smooth2D::default(), 16, 16, 1.0);
        assert!(g.get(15, 15) < g.get(0, 0));
    }
}
