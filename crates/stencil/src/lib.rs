//! # stencil
//!
//! The workloads of the IPPS 2001 loop-tiling paper, executed for real:
//! dense grids ([`grid`]), wavefront kernels ([`kernel`]), sequential
//! references ([`seq`]) and distributed tiled executors for both the
//! non-overlapping (§3) and overlapping (§4) schedules, running on the
//! `msgpass` threaded backend with injected wire latency ([`dist2d`],
//! [`dist3d`]). The pipeline loop itself lives once in [`engine`]: a
//! [`engine::TileOps`] implementation per dimensionality, driven by a
//! `tiling-core` `StepPlan` whose schedule type selects blocking or
//! overlapped communication. [`decomp`] holds the shared decomposition
//! arithmetic and typed validation errors. [`verify`] checks that every
//! distributed run is bitwise identical to the sequential sweep.
//!
//! Kernels (all single-assignment wavefront recurrences, so distributed
//! results are exactly reproducible):
//!
//! | kernel | dims | recurrence |
//! |---|---|---|
//! | [`kernel::Paper3D`] | 3 | the paper's `√A(i−1)+√A(j−1)+√A(k−1)` |
//! | [`kernel::Relax3D`] | 3 | damped smoothing `ω/3·(…)` |
//! | [`kernel::LongestPath3D`] | 3 | max-plus lattice paths |
//! | [`kernel::Fused3D`] | 3 | FMA smoothing `wa·A(i−1)+wa·A(j−1)+wc·A(k−1)` |
//! | [`kernel::Example1`] | 2 | the §3 Example 1 sum (damped) |
//! | [`kernel::Alignment2D`] | 2 | LCS-style sequence alignment DP |
//! | [`kernel::Smooth2D`] | 2 | axis-dependence Gauss–Seidel sweep |
//!
//! The executors are generic over [`kernel::Kernel2D`] /
//! [`kernel::Kernel3D`] and over any [`msgpass::comm::Communicator`],
//! which is how the trace-driven recorder replays them unchanged.
//!
//! ```
//! use stencil::dist3d::{run_paper3d_dist, Decomp3D, ExecMode};
//! use stencil::seq::run_paper3d_seq;
//! use msgpass::thread_backend::LatencyModel;
//!
//! let d = Decomp3D { nx: 4, ny: 4, nz: 16, pi: 2, pj: 2, v: 4, boundary: 1.0 };
//! let (dist, _) = run_paper3d_dist(d, LatencyModel::zero(), ExecMode::Overlapping).unwrap();
//! let seq = run_paper3d_seq(4, 4, 16, 1.0);
//! assert_eq!(dist.max_abs_diff(&seq), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decomp;
pub mod dist2d;
pub mod dist3d;
pub mod engine;
pub mod grid;
pub mod halo;
pub mod kernel;
pub mod legacy;
pub mod modelcheck;
pub mod plan;
pub(crate) mod pool;
pub mod preflight;
pub mod proto;
pub mod seq;
pub mod verify;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::decomp::DecompError;
    pub use crate::dist2d::{run_dist2d, run_dist2d_with, run_example1_dist, Decomp2D};
    pub use crate::dist3d::{
        run_dist3d, run_dist3d_traced, run_dist3d_with, run_paper3d_dist, Decomp3D, ExecMode,
    };
    pub use crate::engine::{
        run_rank, EngineError, LaneStats, NoopObserver, Phase, PhaseLog, StepObserver, TileOps,
        TraceObserver,
    };
    pub use crate::grid::{Grid2D, Grid3D};
    pub use crate::kernel::{
        Alignment2D, Example1, Fused3D, Kernel2D, Kernel3D, LongestPath3D, Paper3D, Relax3D,
        Smooth2D,
    };
    pub use crate::plan::{Compiled2D, Compiled3D};
    pub use crate::preflight::{check_plan2d, check_plan3d};
    pub use crate::seq::{
        measure_t_c_paper3d, run_example1_seq, run_paper3d_seq, run_seq2d, run_seq3d,
    };
    pub use crate::verify::{verify_example1, verify_paper3d, VerifyReport};
}
