//! The pre-optimization executor paths: element-wise pack/unpack, branchy
//! per-cell compute, per-step heap allocations and per-cell gathers.
//!
//! Kept deliberately, with two jobs:
//!
//! 1. **Oracle.** Property tests assert that the chunked
//!    [`crate::halo`] pack/unpack and the branch-free
//!    [`crate::dist3d`]/[`crate::dist2d`] compute paths are bitwise
//!    identical to these reference implementations on randomized shapes,
//!    including partial last tiles (`v` not dividing the pipelined
//!    extent).
//! 2. **Baseline.** The `paper perf` benchmark runs these executors
//!    next to the optimized ones and records both in
//!    `BENCH_stencil.json`, so the speedup claimed by the optimization
//!    is measured, not asserted.
//!
//! Nothing here is used by the optimized hot paths.

use crate::decomp::DecompError;
use crate::dist2d::Decomp2D;
use crate::dist3d::{Decomp3D, ExecMode};
use crate::grid::{Grid2D, Grid3D};
use crate::kernel::{Kernel2D, Kernel3D};
use crate::proto::{tag, DIR_I, DIR_J};
use msgpass::comm::{Communicator, RecvRequest};
use msgpass::thread_backend::{run_threads, LatencyModel};
use msgpass::topology::CartesianGrid;
use std::time::Duration;

// ---- element-wise pack/unpack (the property-test oracle) --------------

/// Element-wise extraction of the outgoing `i`-face (i = bx−1) of step
/// `k` from a `bx × by × nz` block (k fastest).
pub fn face_i_elementwise(block: &[f32], d: &Decomp3D, k: usize) -> Vec<f32> {
    let (k0, k1) = d.krange(k);
    let (bx, by) = (d.bx(), d.by());
    let i = bx - 1;
    let mut out = Vec::with_capacity(by * (k1 - k0));
    for j in 0..by {
        for kz in k0..k1 {
            out.push(block[(i * by + j) * d.nz + kz]);
        }
    }
    out
}

/// Element-wise extraction of the outgoing `j`-face (j = by−1).
pub fn face_j_elementwise(block: &[f32], d: &Decomp3D, k: usize) -> Vec<f32> {
    let (k0, k1) = d.krange(k);
    let (bx, by) = (d.bx(), d.by());
    let j = by - 1;
    let mut out = Vec::with_capacity(bx * (k1 - k0));
    for i in 0..bx {
        for kz in k0..k1 {
            out.push(block[(i * by + j) * d.nz + kz]);
        }
    }
    out
}

/// Element-wise install of a received `i`-face into a `by × nz` halo.
pub fn store_halo_i_elementwise(halo_i: &mut [f32], d: &Decomp3D, k: usize, data: &[f32]) {
    let (k0, k1) = d.krange(k);
    assert_eq!(data.len(), d.by() * (k1 - k0), "i-face size mismatch");
    let nz = d.nz;
    let cells = (0..d.by()).flat_map(|j| (k0..k1).map(move |kz| j * nz + kz));
    for (idx, &v) in cells.zip(data) {
        halo_i[idx] = v;
    }
}

/// Element-wise install of a received `j`-face into a `bx × nz` halo.
pub fn store_halo_j_elementwise(halo_j: &mut [f32], d: &Decomp3D, k: usize, data: &[f32]) {
    let (k0, k1) = d.krange(k);
    assert_eq!(data.len(), d.bx() * (k1 - k0), "j-face size mismatch");
    let nz = d.nz;
    let cells = (0..d.bx()).flat_map(|i| (k0..k1).map(move |kz| i * nz + kz));
    for (idx, &v) in cells.zip(data) {
        halo_j[idx] = v;
    }
}

/// Element-wise extraction of the outgoing 2-D boundary column
/// (j = by−1) rows of tile `k` from an `nx × by` strip (j fastest).
pub fn face_2d_elementwise(strip: &[f32], d: &Decomp2D, k: usize) -> Vec<f32> {
    let (i0, i1) = d.irange(k);
    let by = d.by();
    let j = by - 1;
    (i0..i1).map(|i| strip[i * by + j]).collect()
}

// ---- legacy per-rank state --------------------------------------------

/// Old per-rank 3-D working state: per-cell indexed compute with three
/// boundary branches per cell.
struct LegacyBlock3D {
    d: Decomp3D,
    block: Vec<f32>,
    halo_i: Vec<f32>,
    halo_j: Vec<f32>,
    has_left_i: bool,
    has_left_j: bool,
    gi0: i64,
    gj0: i64,
}

impl LegacyBlock3D {
    fn new(d: Decomp3D, coords: &[usize]) -> Self {
        LegacyBlock3D {
            d,
            block: vec![0.0; d.bx() * d.by() * d.nz],
            halo_i: vec![0.0; d.by() * d.nz],
            halo_j: vec![0.0; d.bx() * d.nz],
            has_left_i: coords[0] > 0,
            has_left_j: coords[1] > 0,
            gi0: (coords[0] * d.bx()) as i64,
            gj0: (coords[1] * d.by()) as i64,
        }
    }

    #[inline]
    fn bidx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.d.by() + j) * self.d.nz + k
    }

    fn compute_tile<K: Kernel3D>(&mut self, kernel: K, k: usize) {
        let (k0, k1) = self.d.krange(k);
        let (bx, by) = (self.d.bx(), self.d.by());
        let nz = self.d.nz;
        let b = self.d.boundary;
        for i in 0..bx {
            for j in 0..by {
                for kz in k0..k1 {
                    let im1 = if i > 0 {
                        self.block[self.bidx(i - 1, j, kz)]
                    } else if self.has_left_i {
                        self.halo_i[j * nz + kz]
                    } else {
                        b
                    };
                    let jm1 = if j > 0 {
                        self.block[self.bidx(i, j - 1, kz)]
                    } else if self.has_left_j {
                        self.halo_j[i * nz + kz]
                    } else {
                        b
                    };
                    let km1 = if kz > 0 {
                        self.block[self.bidx(i, j, kz - 1)]
                    } else {
                        b
                    };
                    let idx = self.bidx(i, j, kz);
                    self.block[idx] = kernel.eval(
                        self.gi0 + i as i64,
                        self.gj0 + j as i64,
                        kz as i64,
                        im1,
                        jm1,
                        km1,
                    );
                }
            }
        }
    }
}

/// Old per-rank 2-D working state.
struct LegacyStrip2D {
    d: Decomp2D,
    strip: Vec<f32>,
    halo: Vec<f32>,
    has_left: bool,
    gj0: i64,
}

impl LegacyStrip2D {
    fn new(d: Decomp2D, rank: usize) -> Self {
        LegacyStrip2D {
            d,
            strip: vec![0.0; d.nx * d.by()],
            halo: vec![0.0; d.nx],
            has_left: rank > 0,
            gj0: (rank * d.by()) as i64,
        }
    }

    #[inline]
    fn sidx(&self, i: usize, j: usize) -> usize {
        i * self.d.by() + j
    }

    fn compute_tile<K: Kernel2D>(&mut self, kernel: K, k: usize) {
        let (i0, i1) = self.d.irange(k);
        let by = self.d.by();
        let b = self.d.boundary;
        for i in i0..i1 {
            for j in 0..by {
                let diag = if i == 0 {
                    b
                } else if j > 0 {
                    self.strip[self.sidx(i - 1, j - 1)]
                } else if self.has_left {
                    self.halo[i - 1]
                } else {
                    b
                };
                let im1 = if i == 0 {
                    b
                } else {
                    self.strip[self.sidx(i - 1, j)]
                };
                let jm1 = if j > 0 {
                    self.strip[self.sidx(i, j - 1)]
                } else if self.has_left {
                    self.halo[i]
                } else {
                    b
                };
                let idx = self.sidx(i, j);
                self.strip[idx] = kernel.eval(i as i64, self.gj0 + j as i64, diag, im1, jm1);
            }
        }
    }

    fn store_halo(&mut self, k: usize, data: &[f32]) {
        let (i0, i1) = self.d.irange(k);
        assert_eq!(data.len(), i1 - i0, "halo column size mismatch");
        self.halo[i0..i1].copy_from_slice(data);
    }
}

// ---- legacy executors --------------------------------------------------

/// Old blocking 3-D rank loop (owning-`Vec` sends, element-wise halos).
pub fn rank_blocking_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = LegacyBlock3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    for k in 0..d.steps() {
        if let Some(src) = up_i {
            let data = comm.recv(src, tag(k, DIR_I));
            store_halo_i_elementwise(&mut blk.halo_i, &d, k, &data);
        }
        if let Some(src) = up_j {
            let data = comm.recv(src, tag(k, DIR_J));
            store_halo_j_elementwise(&mut blk.halo_j, &d, k, &data);
        }
        blk.compute_tile(kernel, k);
        if let Some(dst) = dn_i {
            comm.send(dst, tag(k, DIR_I), face_i_elementwise(&blk.block, &d, k));
        }
        if let Some(dst) = dn_j {
            comm.send(dst, tag(k, DIR_J), face_j_elementwise(&blk.block, &d, k));
        }
    }
    blk.block
}

/// Old overlapping 3-D rank loop (per-step request `Vec`s, allocating
/// face extraction).
pub fn rank_overlap_3d<C: Communicator<f32>, K: Kernel3D>(
    comm: &mut C,
    kernel: K,
    d: Decomp3D,
) -> Vec<f32> {
    let grid = CartesianGrid::new(vec![d.pi, d.pj]);
    let coords = grid.coords_of(comm.rank());
    let mut blk = LegacyBlock3D::new(d, &coords);
    let up_i = grid.neighbor(comm.rank(), &[-1, 0]);
    let up_j = grid.neighbor(comm.rank(), &[0, -1]);
    let dn_i = grid.neighbor(comm.rank(), &[1, 0]);
    let dn_j = grid.neighbor(comm.rank(), &[0, 1]);
    let steps = d.steps();

    let post_recvs = |comm: &mut C, k: usize| -> Vec<(u64, RecvRequest)> {
        let mut reqs = Vec::new();
        if let Some(src) = up_i {
            reqs.push((DIR_I, comm.irecv(src, tag(k, DIR_I))));
        }
        if let Some(src) = up_j {
            reqs.push((DIR_J, comm.irecv(src, tag(k, DIR_J))));
        }
        reqs
    };

    let mut cur_recvs = post_recvs(comm, 0);
    for k in 0..steps {
        let next_recvs = if k + 1 < steps {
            post_recvs(comm, k + 1)
        } else {
            Vec::new()
        };
        let mut send_reqs = Vec::new();
        if k >= 1 {
            if let Some(dst) = dn_i {
                send_reqs.push(comm.isend(
                    dst,
                    tag(k - 1, DIR_I),
                    face_i_elementwise(&blk.block, &d, k - 1),
                ));
            }
            if let Some(dst) = dn_j {
                send_reqs.push(comm.isend(
                    dst,
                    tag(k - 1, DIR_J),
                    face_j_elementwise(&blk.block, &d, k - 1),
                ));
            }
        }
        for (dir, req) in cur_recvs.drain(..) {
            let data = comm.wait_recv(req);
            if dir == DIR_I {
                store_halo_i_elementwise(&mut blk.halo_i, &d, k, &data);
            } else {
                store_halo_j_elementwise(&mut blk.halo_j, &d, k, &data);
            }
        }
        blk.compute_tile(kernel, k);
        for req in send_reqs {
            comm.wait_send(req);
        }
        cur_recvs = next_recvs;
    }
    let mut send_reqs = Vec::new();
    if let Some(dst) = dn_i {
        send_reqs.push(comm.isend(
            dst,
            tag(steps - 1, DIR_I),
            face_i_elementwise(&blk.block, &d, steps - 1),
        ));
    }
    if let Some(dst) = dn_j {
        send_reqs.push(comm.isend(
            dst,
            tag(steps - 1, DIR_J),
            face_j_elementwise(&blk.block, &d, steps - 1),
        ));
    }
    for req in send_reqs {
        comm.wait_send(req);
    }
    blk.block
}

/// Old blocking 2-D rank loop.
pub fn rank_blocking_2d<C: Communicator<f32>, K: Kernel2D>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
) -> Vec<f32> {
    let rank = comm.rank();
    let mut s = LegacyStrip2D::new(d, rank);
    for k in 0..d.steps() {
        if rank > 0 {
            let data = comm.recv(rank - 1, tag(k, DIR_J));
            s.store_halo(k, &data);
        }
        s.compute_tile(kernel, k);
        if rank + 1 < d.ranks {
            comm.send(
                rank + 1,
                tag(k, DIR_J),
                face_2d_elementwise(&s.strip, &d, k),
            );
        }
    }
    s.strip
}

/// Old overlapping 2-D rank loop.
pub fn rank_overlap_2d<C: Communicator<f32>, K: Kernel2D>(
    comm: &mut C,
    kernel: K,
    d: Decomp2D,
) -> Vec<f32> {
    let rank = comm.rank();
    let steps = d.steps();
    let mut s = LegacyStrip2D::new(d, rank);
    let mut cur_recv = (rank > 0).then(|| comm.irecv(rank - 1, tag(0, DIR_J)));
    for k in 0..steps {
        let next_recv =
            (rank > 0 && k + 1 < steps).then(|| comm.irecv(rank - 1, tag(k + 1, DIR_J)));
        let send_req = (k >= 1 && rank + 1 < d.ranks).then(|| {
            comm.isend(
                rank + 1,
                tag(k - 1, DIR_J),
                face_2d_elementwise(&s.strip, &d, k - 1),
            )
        });
        if let Some(req) = cur_recv.take() {
            let data = comm.wait_recv(req);
            s.store_halo(k, &data);
        }
        s.compute_tile(kernel, k);
        if let Some(req) = send_req {
            comm.wait_send(req);
        }
        cur_recv = next_recv;
    }
    if rank + 1 < d.ranks {
        let req = comm.isend(
            rank + 1,
            tag(steps - 1, DIR_J),
            face_2d_elementwise(&s.strip, &d, steps - 1),
        );
        comm.wait_send(req);
    }
    s.strip
}

// ---- legacy drivers ----------------------------------------------------

/// Old 3-D driver: runs the legacy rank loops on the threaded backend
/// and gathers with per-cell `Grid3D::set` calls.
pub fn run_dist3d<K: Kernel3D>(
    kernel: K,
    d: Decomp3D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid3D, Duration), DecompError> {
    d.validate()?;
    let ranks = d.pi * d.pj;
    let (blocks, elapsed) =
        run_threads::<f32, Vec<f32>, _>(ranks, latency, |mut comm| match mode {
            ExecMode::Blocking => rank_blocking_3d(&mut comm, kernel, d),
            ExecMode::Overlapping => rank_overlap_3d(&mut comm, kernel, d),
        });
    let grid_topo = CartesianGrid::new(vec![d.pi, d.pj]);
    let mut out = Grid3D::new(d.nx, d.ny, d.nz, 0.0, d.boundary);
    let (bx, by) = (d.bx(), d.by());
    for (rank, block) in blocks.iter().enumerate() {
        let c = grid_topo.coords_of(rank);
        for i in 0..bx {
            for j in 0..by {
                for k in 0..d.nz {
                    out.set(
                        c[0] * bx + i,
                        c[1] * by + j,
                        k,
                        block[(i * by + j) * d.nz + k],
                    );
                }
            }
        }
    }
    Ok((out, elapsed))
}

/// Old 2-D driver with per-cell gather.
pub fn run_dist2d<K: Kernel2D>(
    kernel: K,
    d: Decomp2D,
    latency: LatencyModel,
    mode: ExecMode,
) -> Result<(Grid2D, Duration), DecompError> {
    d.validate()?;
    let (strips, elapsed) =
        run_threads::<f32, Vec<f32>, _>(d.ranks, latency, |mut comm| match mode {
            ExecMode::Blocking => rank_blocking_2d(&mut comm, kernel, d),
            ExecMode::Overlapping => rank_overlap_2d(&mut comm, kernel, d),
        });
    let by = d.by();
    let mut out = Grid2D::new(d.nx, d.ny, 0.0, d.boundary);
    for (rank, strip) in strips.iter().enumerate() {
        for i in 0..d.nx {
            for j in 0..by {
                out.set(i, rank * by + j, strip[i * by + j]);
            }
        }
    }
    Ok((out, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Example1, Paper3D};
    use crate::seq::{run_example1_seq, run_paper3d_seq};

    #[test]
    fn legacy_3d_still_matches_sequential() {
        let d = Decomp3D {
            nx: 4,
            ny: 4,
            nz: 17,
            pi: 2,
            pj: 2,
            v: 4,
            boundary: 1.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (dist, _) = run_dist3d(Paper3D, d, LatencyModel::zero(), mode).expect("valid");
            let seq = run_paper3d_seq(d.nx, d.ny, d.nz, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "{mode:?}");
        }
    }

    #[test]
    fn legacy_2d_still_matches_sequential() {
        let d = Decomp2D {
            nx: 23,
            ny: 6,
            ranks: 2,
            v: 5,
            boundary: 2.0,
        };
        for mode in [ExecMode::Blocking, ExecMode::Overlapping] {
            let (dist, _) = run_dist2d(Example1, d, LatencyModel::zero(), mode).expect("valid");
            let seq = run_example1_seq(d.nx, d.ny, d.boundary);
            assert_eq!(dist.max_abs_diff(&seq), 0.0, "{mode:?}");
        }
    }
}
