//! Ignored-by-default microbenchmarks of the wave kernel paths, run
//! manually with
//! `cargo test -p stencil --release --test wave_micro -- --ignored --nocapture`
//! when tuning. Not part of CI timing gates (those live in `paper perf`).

use std::time::Instant;
use stencil::kernel::{Kernel3D, Paper3D, Wave, MAX_WAVE};

fn bench(label: &str, m: usize, len: usize, reps: usize, wave_mode: bool) {
    let src: Vec<Vec<f32>> = (0..m)
        .map(|n| {
            (0..len)
                .map(|z| 1.0 + ((n * 7 + z) % 13) as f32 * 0.1)
                .collect()
        })
        .collect();
    let mut rows: Vec<Vec<f32>> = vec![vec![0.0; len]; m];
    let k = Paper3D;
    let t0 = Instant::now();
    for _ in 0..reps {
        if wave_mode {
            let mut wave = Wave::new();
            let mut rest: &mut [Vec<f32>] = &mut rows;
            for n in 0..m {
                let (row, r) = rest.split_first_mut().unwrap();
                rest = r;
                wave.push(1 + n as i64, 1, 1, &src[n], &src[(n + 1) % m], 1.5, row);
            }
            k.eval_wave(&mut wave);
        } else {
            for n in 0..m {
                k.eval_pencil(
                    1 + n as i64,
                    1,
                    1,
                    &src[n],
                    &src[(n + 1) % m],
                    1.5,
                    &mut rows[n],
                );
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let cells = (m * len * reps) as f64;
    println!(
        "{label:28} m={m:2} len={len:4}: {:6.2} ns/cell",
        secs * 1e9 / cells
    );
    assert!(rows[0][len / 2].is_finite());
}

#[test]
#[ignore]
fn single_rank_tile_micro() {
    use msgpass::thread_backend::{LatencyModel, WorldConfig};
    use stencil::dist3d::{run_dist3d_with, Decomp3D, ExecMode};
    for &(nx, nz) in &[
        (4usize, 4096usize),
        (4, 4096 + 64),
        (4, 4096 + 16),
        (8, 4096),
        (8, 4096 + 16),
    ] {
        let d = Decomp3D {
            nx,
            ny: nx,
            nz,
            pi: 1,
            pj: 1,
            v: 256,
            boundary: 1.0,
        };
        let cfg = WorldConfig::new(LatencyModel::zero()).without_preflight();
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            let (g, _, _) = run_dist3d_with(Paper3D, d, &cfg, ExecMode::Overlapping).unwrap();
            let secs = t0.elapsed().as_secs_f64();
            assert!(g.data()[1].is_finite());
            best = best.min(secs);
        }
        let cells = (nx * nx * nz) as f64;
        println!(
            "single-rank {nx}x{nx}x{nz}: {:6.2} ns/cell (best of 5)",
            best * 1e9 / cells
        );
    }
}

#[test]
#[ignore]
fn wave_vs_pencil_micro() {
    let reps = 40_000;
    for &m in &[1usize, 2, 4, 6, 8, 12, MAX_WAVE] {
        bench("paper3d eval_wave", m, 64, reps, true);
    }
    for &m in &[1usize, 4, 8] {
        bench("paper3d eval_pencil loop", m, 64, reps, false);
    }
    for &len in &[32usize, 128, 256] {
        bench("paper3d eval_wave", 8, len, reps / (len / 32), true);
    }
}
