//! Dynamic partial-order reduction: persistent/backtrack sets plus
//! sleep sets over declared step footprints.
//!
//! [`check`] explores the schedule tree of a [`Model`] depth-first,
//! but — unlike [`crate::explore`]'s raw enumeration — it only revisits
//! an ordering decision when the two sides actually *conflict* (their
//! [`Footprint`]s touch a common location with a write or sync on at
//! least one side). The machinery is the classic Flanagan–Godefroid
//! combination:
//!
//! * **backtrack (persistent) sets** — at every node, each pending
//!   thread's next step is raced against the last conflicting,
//!   happens-before-unordered event of the current prefix; the racing
//!   thread is queued for exploration at the choice point *before*
//!   that event, so both orders of every real conflict get covered;
//! * **sleep sets** — a thread already fully explored from a node is
//!   put to sleep for its siblings and stays asleep down their
//!   subtrees until a conflicting step runs, killing the redundant
//!   re-interleavings of independent steps.
//!
//! Exploration replays the model single-threadedly from a fresh
//! [`Model::init`] per node, so step/invariant violations surface with
//! the shortest prefix the search meets. Complete schedules are
//! additionally run through the vector-clock race detector
//! ([`crate::vclock`]). Blocked steps ([`Model::enabled`]) simply are
//! not scheduled; a state with pending but no enabled threads is
//! reported as a typed [`ExploreError::Deadlock`].
//!
//! The walk is bounded by [`CheckOptions::budget`] — exceeding it
//! yields a typed [`ExploreError::BudgetExceeded`] instead of an
//! open-ended burn.

use crate::footprint::Footprint;
use crate::vclock::{detect_races, RaceReport};
use crate::{Model, Report, Violation};
use std::fmt;

/// Most total script steps [`check`] accepts: the happens-before
/// bitsets are fixed 128-bit words, and anything larger is far past
/// any sensible budget anyway.
pub const MAX_TOTAL_STEPS: usize = 128;

/// Knobs for [`check`].
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Most complete schedules to replay before giving up with
    /// [`ExploreError::BudgetExceeded`]. `None` removes the guard.
    pub budget: Option<u64>,
    /// Run the vector-clock race detector on every complete schedule.
    pub detect_races: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            budget: Some(1_000_000),
            detect_races: true,
        }
    }
}

impl CheckOptions {
    /// Default options with the given schedule budget.
    pub fn budgeted(budget: u64) -> Self {
        CheckOptions {
            budget: Some(budget),
            ..CheckOptions::default()
        }
    }
}

/// Why [`check`] (or [`crate::schedule_count`]) stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// A schedule broke a step, invariant, or finalize check.
    Violation(Violation),
    /// Two accesses with no happens-before edge conflicted.
    Race(RaceReport),
    /// A reachable state has pending threads but none enabled: every
    /// remaining script step is blocked forever.
    Deadlock {
        /// The schedule prefix reaching the stuck state.
        schedule: Vec<usize>,
        /// The threads with remaining, permanently blocked steps.
        blocked: Vec<usize>,
    },
    /// The exploration hit its schedule budget with work remaining.
    BudgetExceeded {
        /// The configured limit.
        budget: u64,
        /// Complete schedules replayed before giving up.
        explored: u64,
    },
    /// The unreduced interleaving count does not fit in `u64`.
    CountOverflow {
        /// The per-thread script lengths whose multinomial overflowed.
        lens: Vec<usize>,
    },
    /// The scripts exceed [`MAX_TOTAL_STEPS`] combined steps.
    ScriptTooLong {
        /// Combined step count of all scripts.
        steps: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Violation(v) => write!(f, "{v}"),
            ExploreError::Race(r) => write!(f, "{r}"),
            ExploreError::Deadlock { schedule, blocked } => write!(
                f,
                "deadlock: threads {blocked:?} blocked forever after schedule {schedule:?}"
            ),
            ExploreError::BudgetExceeded { budget, explored } => write!(
                f,
                "schedule budget exceeded: {explored} schedules replayed, budget {budget}"
            ),
            ExploreError::CountOverflow { lens } => write!(
                f,
                "interleaving count overflows u64 for script lengths {lens:?}"
            ),
            ExploreError::ScriptTooLong { steps, max } => {
                write!(f, "scripts total {steps} steps, the checker supports {max}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<Violation> for ExploreError {
    fn from(v: Violation) -> Self {
        ExploreError::Violation(v)
    }
}

impl From<RaceReport> for ExploreError {
    fn from(r: RaceReport) -> Self {
        ExploreError::Race(r)
    }
}

/// Explore `model` under dynamic partial-order reduction. Returns the
/// exploration totals (with the unreduced multinomial for comparison),
/// or the first typed failure found.
pub fn check<M: Model>(model: &M, opts: &CheckOptions) -> Result<Report, ExploreError> {
    let threads = model.threads();
    assert!(threads <= 64, "the checker supports at most 64 threads");
    let lens: Vec<usize> = (0..threads).map(|t| model.steps(t)).collect();
    let total: usize = lens.iter().sum();
    if total > MAX_TOTAL_STEPS {
        return Err(ExploreError::ScriptTooLong {
            steps: total,
            max: MAX_TOTAL_STEPS,
        });
    }
    let fps: Vec<Vec<Footprint>> = (0..threads)
        .map(|t| (0..lens[t]).map(|i| model.footprint(t, i)).collect())
        .collect();
    let mut dfs = Dfs {
        model,
        lens,
        fps,
        opts: *opts,
        prefix: Vec::with_capacity(total),
        enabled_at: Vec::with_capacity(total),
        backtrack: Vec::with_capacity(total),
        report: Report {
            schedules: 0,
            steps: 0,
            unreduced: crate::schedule_count(
                &(0..threads).map(|t| model.steps(t)).collect::<Vec<_>>(),
            )
            .ok(),
        },
    };
    dfs.visit(0)?;
    Ok(dfs.report)
}

struct Dfs<'m, M: Model> {
    model: &'m M,
    lens: Vec<usize>,
    fps: Vec<Vec<Footprint>>,
    opts: CheckOptions,
    /// Thread ids of the current prefix (the DFS path).
    prefix: Vec<usize>,
    /// Enabled-thread mask at each prefix depth.
    enabled_at: Vec<u64>,
    /// Backtrack (persistent) set at each prefix depth — descendants
    /// add race partners here and the choice loop drains it.
    backtrack: Vec<u64>,
    report: Report,
}

/// Iterate the set bits of a mask.
fn bits(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(b)
        }
    })
}

impl<M: Model> Dfs<'_, M> {
    fn conflicts(&self, t1: usize, i1: usize, t2: usize, i2: usize) -> bool {
        self.fps[t1][i1].conflicts(&self.fps[t2][i2])
    }

    /// Visit the node at the end of `self.prefix` with the given sleep
    /// set, replaying the prefix from a fresh state.
    fn visit(&mut self, sleep: u64) -> Result<(), ExploreError> {
        let n = self.lens.len();
        let depth = self.prefix.len();
        let mut state = self.model.init();
        let mut progress = vec![0usize; n];
        // Per-event (tid, idx) and happens-before closure bitsets of
        // the replayed prefix (program order + conflict order).
        let mut evs: Vec<(usize, usize)> = Vec::with_capacity(depth);
        let mut hb: Vec<u128> = Vec::with_capacity(depth);
        let mut last_of: Vec<Option<usize>> = vec![None; n];
        for pos in 0..depth {
            let t = self.prefix[pos];
            let idx = progress[t];
            self.report.steps += 1;
            let clip = &self.prefix[..=pos];
            self.model
                .step(&mut state, t, idx)
                .map_err(|message| Violation {
                    schedule: clip.to_vec(),
                    message,
                })?;
            self.model.invariant(&state).map_err(|message| Violation {
                schedule: clip.to_vec(),
                message,
            })?;
            let mut h: u128 = 1 << pos;
            for j in 0..pos {
                let (tj, ij) = evs[j];
                if tj == t || self.conflicts(tj, ij, t, idx) {
                    h |= hb[j];
                }
            }
            evs.push((t, idx));
            hb.push(h);
            last_of[t] = Some(pos);
            progress[t] += 1;
        }

        let mut pending = 0u64;
        let mut enabled = 0u64;
        for (t, &done) in progress.iter().enumerate().take(n) {
            if done < self.lens[t] {
                pending |= 1 << t;
                if self.model.enabled(&state, t, done) {
                    enabled |= 1 << t;
                }
            }
        }

        if pending == 0 {
            // A complete schedule: count it against the budget, then
            // finalize and race-check it.
            if let Some(budget) = self.opts.budget {
                if self.report.schedules >= budget {
                    return Err(ExploreError::BudgetExceeded {
                        budget,
                        explored: self.report.schedules,
                    });
                }
            }
            self.report.schedules += 1;
            let clip = self.prefix.clone();
            self.model
                .finalize(&mut state)
                .and_then(|()| self.model.invariant(&state))
                .map_err(|message| Violation {
                    schedule: clip,
                    message,
                })?;
            if self.opts.detect_races {
                detect_races(&self.fps, &evs)?;
            }
            return Ok(());
        }
        if enabled == 0 {
            return Err(ExploreError::Deadlock {
                schedule: self.prefix.clone(),
                blocked: bits(pending).collect(),
            });
        }

        // Race the next step of every pending thread against the last
        // conflicting, HB-unordered event of the prefix, and queue the
        // thread at the choice point before that event.
        for p in bits(pending) {
            let pi = progress[p];
            for i in (0..depth).rev() {
                let (ti, ii) = evs[i];
                if ti == p || !self.conflicts(ti, ii, p, pi) {
                    continue;
                }
                let ordered = last_of[p].is_some_and(|lp| hb[lp] >> i & 1 == 1);
                if ordered {
                    continue;
                }
                if self.enabled_at[i] >> p & 1 == 1 {
                    self.backtrack[i] |= 1 << p;
                } else {
                    // The racer was blocked at that point: schedule
                    // everything that could run there instead.
                    self.backtrack[i] |= self.enabled_at[i];
                }
                break;
            }
        }

        self.enabled_at.push(enabled);
        self.backtrack.push(0);
        let avail = enabled & !sleep;
        let result = if avail == 0 {
            // Everything runnable is asleep: each of these schedules
            // is equivalent to one explored from an earlier sibling.
            Ok(())
        } else {
            self.backtrack[depth] |= avail & avail.wrapping_neg();
            self.choice_loop(depth, sleep, &progress)
        };
        self.enabled_at.pop();
        self.backtrack.pop();
        result
    }

    /// Drain the backtrack set at `depth`, exploring each chosen
    /// thread and then putting it to sleep for its later siblings.
    fn choice_loop(
        &mut self,
        depth: usize,
        sleep: u64,
        progress: &[usize],
    ) -> Result<(), ExploreError> {
        let mut sleeping = sleep;
        loop {
            let cand = self.backtrack[depth] & !sleeping;
            if cand == 0 {
                return Ok(());
            }
            let q = cand.trailing_zeros() as usize;
            let qi = progress[q];
            // The child keeps only the sleepers whose next step is
            // independent of q's: a conflicting step wakes them.
            let mut child_sleep = 0u64;
            for r in bits(sleeping) {
                if !self.conflicts(r, progress[r], q, qi) {
                    child_sleep |= 1 << r;
                }
            }
            self.prefix.push(q);
            let res = self.visit(child_sleep);
            self.prefix.pop();
            res?;
            sleeping |= 1 << q;
        }
    }
}
