//! Per-step access footprints: what a model step reads and writes.
//!
//! Dynamic partial-order reduction and the vector-clock race detector
//! both consume the same declaration: each scripted step names the
//! *modeled shared locations* it touches, and how. Two steps of
//! different threads are **independent** exactly when no location they
//! share is written (or synchronized) by either — independent steps
//! commute, so the explorer only needs one order of the pair.
//!
//! Three access kinds cover the protocols this workspace models:
//!
//! * [`Access::Read`] — a plain load of a data location.
//! * [`Access::Write`] — a plain store to a data location.
//! * [`Access::Sync`] — an acquire+release operation on a
//!   synchronization location (a mutex-guarded section, an atomic RMW,
//!   a condvar publish, a channel endpoint). A `Sync` orders the step
//!   after every earlier `Sync` on the same location, which is what
//!   gives the race detector its happens-before edges.
//!
//! A step's footprint must also cover the locations its
//! [`Model::enabled`] guard reads: the explorer wakes a blocked thread
//! only when a *dependent* step runs, so an undeclared guard input
//! could hide the wakeup from the search.
//!
//! [`Model::enabled`]: crate::Model::enabled

/// Identifier of one modeled shared location. Models pick small dense
/// values; [`Footprint::serial`] reserves [`GLOBAL`].
pub type Loc = usize;

/// The location [`Footprint::serial`] synchronizes on: every step using
/// it conflicts with every other, reproducing v1's full enumeration.
pub const GLOBAL: Loc = usize::MAX;

/// One declared access of a step. See the module docs for the kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Plain read of a data location.
    Read(Loc),
    /// Plain write to a data location.
    Write(Loc),
    /// Acquire+release on a synchronization location.
    Sync(Loc),
}

impl Access {
    /// The location this access touches.
    pub fn loc(self) -> Loc {
        match self {
            Access::Read(l) | Access::Write(l) | Access::Sync(l) => l,
        }
    }

    /// Whether two accesses to the *same* location conflict. Only a
    /// pair of plain reads commutes; everything else orders.
    fn clashes(self, other: Access) -> bool {
        matches!(
            (self, other),
            (Access::Write(_) | Access::Sync(_), _) | (_, Access::Write(_) | Access::Sync(_))
        )
    }
}

/// The declared accesses of one scripted step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    accesses: Vec<Access>,
}

impl Footprint {
    /// A step touching nothing shared: independent of every other step.
    pub fn empty() -> Self {
        Footprint::default()
    }

    /// The conservative default: one [`Sync`] on the [`GLOBAL`]
    /// location, making the step dependent with every other serial
    /// step. Models that do not declare footprints get v1's exhaustive
    /// exploration and no race reports.
    ///
    /// [`Sync`]: Access::Sync
    pub fn serial() -> Self {
        Footprint::empty().sync(GLOBAL)
    }

    /// Add a plain read of `loc`.
    #[must_use]
    pub fn read(mut self, loc: Loc) -> Self {
        self.accesses.push(Access::Read(loc));
        self
    }

    /// Add a plain write of `loc`.
    #[must_use]
    pub fn write(mut self, loc: Loc) -> Self {
        self.accesses.push(Access::Write(loc));
        self
    }

    /// Add an acquire+release synchronization on `loc`.
    #[must_use]
    pub fn sync(mut self, loc: Loc) -> Self {
        self.accesses.push(Access::Sync(loc));
        self
    }

    /// The declared accesses, in declaration order (the race detector
    /// replays them in this order within the step).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Whether steps with these footprints are *dependent*: some
    /// location appears in both and at least one side writes or
    /// synchronizes it. Dependent steps do not commute, so the
    /// explorer must cover both orders.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.accesses.iter().any(|a| {
            other
                .accesses
                .iter()
                .any(|b| a.loc() == b.loc() && a.clashes(*b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_commute_writes_do_not() {
        let r = Footprint::empty().read(3);
        let w = Footprint::empty().write(3);
        let s = Footprint::empty().sync(3);
        assert!(!r.conflicts(&r));
        assert!(r.conflicts(&w));
        assert!(w.conflicts(&w));
        assert!(r.conflicts(&s));
        assert!(s.conflicts(&s));
    }

    #[test]
    fn distinct_locations_are_independent() {
        let a = Footprint::empty().write(0).read(1);
        let b = Footprint::empty().write(2).sync(3);
        assert!(!a.conflicts(&b));
        assert!(a.conflicts(&Footprint::empty().read(0)));
    }

    #[test]
    fn serial_conflicts_with_serial_but_not_with_local() {
        assert!(Footprint::serial().conflicts(&Footprint::serial()));
        assert!(!Footprint::serial().conflicts(&Footprint::empty().write(7)));
        assert!(!Footprint::empty().conflicts(&Footprint::empty()));
    }
}
