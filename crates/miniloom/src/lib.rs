//! # miniloom — offline exhaustive interleaving explorer
//!
//! A dependency-free stand-in for the role [`loom`] plays in crates
//! that model-check their lock-free code. The build environment has no
//! network access to a crates registry, so — like `miniprop` for
//! `proptest` and `microbench` for `criterion` — this crate implements
//! the subset of the idea the workspace needs: *exhaustively* explore
//! every interleaving of a small number of scripted threads over a
//! shared protocol state, checking invariants after every step.
//!
//! The granularity is one **operation** per step (a ring push, a pool
//! claim, a lease drop), not one memory access: a [`Model`] provides a
//! fresh state per execution, a fixed script of steps per thread, and
//! an invariant; [`explore`] replays the scripts under every possible
//! merge order of the threads' steps. For an SPSC protocol whose
//! operations are linearizable this covers exactly the reorderings two
//! real threads can produce at operation granularity; the memory-order
//! correctness of the individual atomics is covered separately (`miri`
//! in `ci.sh`, plus the cross-thread stress tests).
//!
//! The number of schedules explored is the multinomial coefficient of
//! the per-thread step counts — e.g. two threads of 6 steps each are
//! `C(12,6) = 924` executions — so exhaustiveness is cheap for the
//! protocol sizes worth proving things about.
//!
//! [`loom`]: https://docs.rs/loom

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// A checkable protocol: per-execution state, a fixed script of steps
/// per thread, and invariants.
pub trait Model {
    /// The shared state one execution runs over.
    type State;

    /// A fresh state for one execution (one schedule).
    fn init(&self) -> Self::State;

    /// Number of scripted threads.
    fn threads(&self) -> usize;

    /// Number of steps in thread `tid`'s script.
    fn steps(&self, tid: usize) -> usize;

    /// Execute step `idx` of thread `tid`. Return `Err` with a message
    /// to report a violation at this step.
    fn step(&self, state: &mut Self::State, tid: usize, idx: usize) -> Result<(), String>;

    /// Invariant checked after every step of every schedule.
    fn invariant(&self, state: &Self::State) -> Result<(), String> {
        let _ = state;
        Ok(())
    }

    /// Run after a schedule's last step (drain queues, release holds)
    /// and before the final [`Model::invariant`] check.
    fn finalize(&self, state: &mut Self::State) -> Result<(), String> {
        let _ = state;
        Ok(())
    }
}

/// Outcome of a full exploration with no violations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules (interleavings) executed.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

/// A schedule on which the model broke an invariant or failed a step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The thread ids in execution order up to and including the
    /// failing step — enough to replay the schedule by hand.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule {:?}: {}", self.schedule, self.message)
    }
}

impl std::error::Error for Violation {}

/// Exhaustively run `model` under every interleaving of its threads'
/// scripts. Returns the exploration totals, or the first violating
/// schedule.
pub fn explore<M: Model>(model: &M) -> Result<Report, Violation> {
    let lens: Vec<usize> = (0..model.threads()).map(|t| model.steps(t)).collect();
    let mut report = Report {
        schedules: 0,
        steps: 0,
    };
    let mut prefix = Vec::with_capacity(lens.iter().sum());
    explore_rec(model, &lens, &mut vec![0; lens.len()], &mut prefix, &mut report)?;
    Ok(report)
}

/// Depth-first enumeration of merge orders. `done[t]` counts thread
/// `t`'s already-scheduled steps; `prefix` is the schedule so far.
///
/// Each full schedule replays the scripts from a fresh state. Replays
/// share prefixes, so the exploration is `O(schedules × total_steps)`;
/// for the protocol sizes this crate targets that is far cheaper than
/// maintaining a state-snapshot trie.
fn explore_rec<M: Model>(
    model: &M,
    lens: &[usize],
    done: &mut Vec<usize>,
    prefix: &mut Vec<usize>,
    report: &mut Report,
) -> Result<(), Violation> {
    if done.iter().zip(lens).all(|(d, l)| d == l) {
        report.schedules += 1;
        report.steps += prefix.len() as u64;
        return run_schedule(model, prefix);
    }
    for t in 0..lens.len() {
        if done[t] < lens[t] {
            done[t] += 1;
            prefix.push(t);
            explore_rec(model, lens, done, prefix, report)?;
            prefix.pop();
            done[t] -= 1;
        }
    }
    Ok(())
}

/// Replay one complete schedule from a fresh state, checking the
/// invariant after every step and after finalization.
fn run_schedule<M: Model>(model: &M, schedule: &[usize]) -> Result<(), Violation> {
    let mut state = model.init();
    let mut idx = vec![0usize; model.threads()];
    for (at, &t) in schedule.iter().enumerate() {
        let fail = |message: String| Violation {
            schedule: schedule[..=at].to_vec(),
            message,
        };
        model.step(&mut state, t, idx[t]).map_err(fail)?;
        idx[t] += 1;
        model.invariant(&state).map_err(fail)?;
    }
    let fail = |message: String| Violation {
        schedule: schedule.to_vec(),
        message,
    };
    model.finalize(&mut state).map_err(fail)?;
    model.invariant(&state).map_err(fail)
}

/// Number of interleavings of threads with the given step counts (the
/// multinomial coefficient) — what [`explore`] will execute.
pub fn schedule_count(lens: &[usize]) -> u64 {
    let mut total = 0u64;
    let mut acc = 1u64;
    for &l in lens {
        for k in 1..=l as u64 {
            total += 1;
            acc = acc * total / k; // binomial prefix products stay exact
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter protocol where each thread adds its id+1 twice; the
    /// invariant bounds the counter, and the final check demands the
    /// exact total regardless of order.
    struct Adders;

    impl Model for Adders {
        type State = u32;

        fn init(&self) -> u32 {
            0
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut u32, tid: usize, _idx: usize) -> Result<(), String> {
            *state += tid as u32 + 1;
            Ok(())
        }

        fn invariant(&self, state: &u32) -> Result<(), String> {
            if *state <= 6 {
                Ok(())
            } else {
                Err(format!("counter overshot: {state}"))
            }
        }

        fn finalize(&self, state: &mut u32) -> Result<(), String> {
            if *state == 6 {
                Ok(())
            } else {
                Err(format!("expected 6, got {state}"))
            }
        }
    }

    #[test]
    fn explores_every_interleaving() {
        let report = explore(&Adders).expect("no violations");
        // C(4,2) = 6 interleavings of 2+2 steps, 4 steps each.
        assert_eq!(report.schedules, 6);
        assert_eq!(report.steps, 24);
        assert_eq!(schedule_count(&[2, 2]), 6);
    }

    #[test]
    fn schedule_counts_match_known_multinomials() {
        assert_eq!(schedule_count(&[6, 6]), 924);
        assert_eq!(schedule_count(&[1, 1, 1]), 6);
        assert_eq!(schedule_count(&[0, 3]), 1);
    }

    /// A model whose invariant breaks only in one specific order —
    /// exhaustiveness must find it.
    struct OrderSensitive;

    impl Model for OrderSensitive {
        type State = Vec<usize>;

        fn init(&self) -> Vec<usize> {
            Vec::new()
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut Vec<usize>, tid: usize, _idx: usize) -> Result<(), String> {
            state.push(tid);
            Ok(())
        }

        fn invariant(&self, state: &Vec<usize>) -> Result<(), String> {
            if state == &[1, 0, 1, 0] {
                Err("the needle interleaving".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn finds_the_single_bad_interleaving() {
        let v = explore(&OrderSensitive).expect_err("must find the needle");
        assert_eq!(v.schedule, vec![1, 0, 1, 0]);
        assert!(v.message.contains("needle"));
    }
}
