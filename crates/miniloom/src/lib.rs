//! # miniloom — offline stateless model checker
//!
//! A dependency-free stand-in for the role [`loom`] plays in crates
//! that model-check their lock-free code. The build environment has no
//! network access to a crates registry, so — like `miniprop` for
//! `proptest` and `microbench` for `criterion` — this crate implements
//! the subset of the idea the workspace needs: explore the
//! interleavings of a small number of scripted threads over a shared
//! protocol state, checking invariants after every step.
//!
//! The granularity is one **operation** per step (a ring push, a pool
//! claim, a lease drop), not one memory access: a [`Model`] provides a
//! fresh state per execution, a fixed script of steps per thread, and
//! an invariant. Two explorers consume it:
//!
//! * [`explore`] — v1's raw enumeration: every merge order of the
//!   threads' scripts, the multinomial coefficient of the step counts
//!   (e.g. two threads of 6 steps each are `C(12,6) = 924`
//!   executions). Exhaustive and simple, but it saturates fast: three
//!   threads of 4–5 steps are already six-digit schedule counts.
//! * [`check`] — v2's dynamic partial-order reduction. Each step
//!   declares a [`Footprint`] of shared locations it touches;
//!   independent steps commute, so only one order per Mazurkiewicz
//!   trace is replayed (persistent + sleep sets, see [`dpor`]).
//!   Blocked steps are modeled with [`Model::enabled`]; complete
//!   schedules additionally pass through a vector-clock
//!   happens-before race detector ([`vclock`]); budgets, deadlocks,
//!   and races surface as typed [`ExploreError`]s.
//!
//! For an SPSC protocol whose operations are linearizable this covers
//! exactly the reorderings real threads can produce at operation
//! granularity; the memory-order correctness of the individual atomics
//! is covered separately (`miri` in `ci.sh`, plus the cross-thread
//! stress tests).
//!
//! [`loom`]: https://docs.rs/loom

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dpor;
pub mod footprint;
pub mod vclock;

pub use dpor::{check, CheckOptions, ExploreError, MAX_TOTAL_STEPS};
pub use footprint::{Access, Footprint, Loc, GLOBAL};
pub use vclock::{RaceReport, Site, VectorClock};

use std::fmt;

/// A checkable protocol: per-execution state, a fixed script of steps
/// per thread, and invariants.
pub trait Model {
    /// The shared state one execution runs over.
    type State;

    /// A fresh state for one execution (one schedule).
    fn init(&self) -> Self::State;

    /// Number of scripted threads.
    fn threads(&self) -> usize;

    /// Number of steps in thread `tid`'s script.
    fn steps(&self, tid: usize) -> usize;

    /// Execute step `idx` of thread `tid`. Return `Err` with a message
    /// to report a violation at this step.
    fn step(&self, state: &mut Self::State, tid: usize, idx: usize) -> Result<(), String>;

    /// The shared locations step `idx` of thread `tid` touches, used by
    /// [`check`] for partial-order reduction and race detection. The
    /// default — [`Footprint::serial`] — makes every step conflict
    /// with every other: v1-compatible full enumeration, no race
    /// reports, no reduction.
    ///
    /// A footprint must also cover the locations the step's
    /// [`Model::enabled`] guard reads; see [`footprint`]'s module docs.
    fn footprint(&self, tid: usize, idx: usize) -> Footprint {
        let _ = (tid, idx);
        Footprint::serial()
    }

    /// Whether step `idx` of thread `tid` can run in `state`. [`check`]
    /// never schedules a disabled step, and reports a typed
    /// [`ExploreError::Deadlock`] when pending threads remain but none
    /// is enabled. The default is always-enabled.
    ///
    /// [`explore`] ignores this hook (it predates it and replays
    /// whole schedules blind); models with blocking steps must use
    /// [`check`].
    fn enabled(&self, state: &Self::State, tid: usize, idx: usize) -> bool {
        let _ = (state, tid, idx);
        true
    }

    /// Invariant checked after every step of every schedule.
    fn invariant(&self, state: &Self::State) -> Result<(), String> {
        let _ = state;
        Ok(())
    }

    /// Run after a schedule's last step (drain queues, release holds)
    /// and before the final [`Model::invariant`] check.
    fn finalize(&self, state: &mut Self::State) -> Result<(), String> {
        let _ = state;
        Ok(())
    }
}

/// Outcome of a full exploration with no violations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules (interleavings) executed.
    pub schedules: u64,
    /// Total steps executed across all schedules (under [`check`] this
    /// includes prefix replays, the explorer's real cost).
    pub steps: u64,
    /// The unreduced interleaving count ([`schedule_count`]) for
    /// comparison with `schedules`; `None` if it overflows `u64`.
    pub unreduced: Option<u64>,
}

impl Report {
    /// Unreduced interleavings per explored schedule — the
    /// partial-order reduction factor. `None` when the unreduced count
    /// overflowed or nothing was explored.
    pub fn reduction_ratio(&self) -> Option<f64> {
        match (self.unreduced, self.schedules) {
            (Some(u), s) if s > 0 => Some(u as f64 / s as f64),
            _ => None,
        }
    }
}

/// A schedule on which the model broke an invariant or failed a step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The thread ids in execution order up to and including the
    /// failing step — enough to replay the schedule by hand.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule {:?}: {}", self.schedule, self.message)
    }
}

impl std::error::Error for Violation {}

/// Exhaustively run `model` under every interleaving of its threads'
/// scripts. Returns the exploration totals, or the first violating
/// schedule.
///
/// This is the v1 entry point: no reduction, no race detection, no
/// [`Model::enabled`] support. New models should prefer [`check`].
pub fn explore<M: Model>(model: &M) -> Result<Report, Violation> {
    let lens: Vec<usize> = (0..model.threads()).map(|t| model.steps(t)).collect();
    let mut report = Report {
        schedules: 0,
        steps: 0,
        unreduced: schedule_count(&lens).ok(),
    };
    let mut prefix = Vec::with_capacity(lens.iter().sum());
    explore_rec(
        model,
        &lens,
        &mut vec![0; lens.len()],
        &mut prefix,
        &mut report,
    )?;
    Ok(report)
}

/// Depth-first enumeration of merge orders. `done[t]` counts thread
/// `t`'s already-scheduled steps; `prefix` is the schedule so far.
///
/// Each full schedule replays the scripts from a fresh state. Replays
/// share prefixes, so the exploration is `O(schedules × total_steps)`;
/// for the protocol sizes this crate targets that is far cheaper than
/// maintaining a state-snapshot trie.
fn explore_rec<M: Model>(
    model: &M,
    lens: &[usize],
    done: &mut Vec<usize>,
    prefix: &mut Vec<usize>,
    report: &mut Report,
) -> Result<(), Violation> {
    if done.iter().zip(lens).all(|(d, l)| d == l) {
        report.schedules += 1;
        report.steps += prefix.len() as u64;
        return run_schedule(model, prefix);
    }
    for t in 0..lens.len() {
        if done[t] < lens[t] {
            done[t] += 1;
            prefix.push(t);
            explore_rec(model, lens, done, prefix, report)?;
            prefix.pop();
            done[t] -= 1;
        }
    }
    Ok(())
}

/// Replay one complete schedule from a fresh state, checking the
/// invariant after every step and after finalization.
fn run_schedule<M: Model>(model: &M, schedule: &[usize]) -> Result<(), Violation> {
    let mut state = model.init();
    let mut idx = vec![0usize; model.threads()];
    for (at, &t) in schedule.iter().enumerate() {
        let fail = |message: String| Violation {
            schedule: schedule[..=at].to_vec(),
            message,
        };
        model.step(&mut state, t, idx[t]).map_err(fail)?;
        idx[t] += 1;
        model.invariant(&state).map_err(fail)?;
    }
    let fail = |message: String| Violation {
        schedule: schedule.to_vec(),
        message,
    };
    model.finalize(&mut state).map_err(fail)?;
    model.invariant(&state).map_err(fail)
}

/// Number of interleavings of threads with the given step counts (the
/// multinomial coefficient) — what [`explore`] will execute and what
/// [`check`] reduces from. Computed as a product of binomials, whose
/// prefix products stay exact; a product that leaves `u64` yields
/// [`ExploreError::CountOverflow`] instead of wrapping.
pub fn schedule_count(lens: &[usize]) -> Result<u64, ExploreError> {
    let mut total = 0u64;
    let mut acc = 1u64;
    let overflow = || ExploreError::CountOverflow {
        lens: lens.to_vec(),
    };
    for &l in lens {
        for k in 1..=l as u64 {
            total = total.checked_add(1).ok_or_else(overflow)?;
            // acc = C(total-1, partial) before, so acc * total is at
            // most C(total, partial) * k — the check catches anything
            // within a factor of `total` of u64::MAX, conservatively
            // erring on the side of reporting overflow.
            acc = acc.checked_mul(total).ok_or_else(overflow)? / k;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter protocol where each thread adds its id+1 twice; the
    /// invariant bounds the counter, and the final check demands the
    /// exact total regardless of order.
    struct Adders;

    impl Model for Adders {
        type State = u32;

        fn init(&self) -> u32 {
            0
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut u32, tid: usize, _idx: usize) -> Result<(), String> {
            *state += tid as u32 + 1;
            Ok(())
        }

        fn invariant(&self, state: &u32) -> Result<(), String> {
            if *state <= 6 {
                Ok(())
            } else {
                Err(format!("counter overshot: {state}"))
            }
        }

        fn finalize(&self, state: &mut u32) -> Result<(), String> {
            if *state == 6 {
                Ok(())
            } else {
                Err(format!("expected 6, got {state}"))
            }
        }
    }

    #[test]
    fn explores_every_interleaving() {
        let report = explore(&Adders).expect("no violations");
        // C(4,2) = 6 interleavings of 2+2 steps, 4 steps each.
        assert_eq!(report.schedules, 6);
        assert_eq!(report.steps, 24);
        assert_eq!(report.unreduced, Some(6));
        assert_eq!(schedule_count(&[2, 2]), Ok(6));
    }

    #[test]
    fn serial_footprints_reproduce_full_enumeration() {
        // Adders declares no footprints, so every step is Sync(GLOBAL):
        // check() must fall back to exactly v1's schedule count.
        let report = check(&Adders, &CheckOptions::default()).expect("no violations");
        assert_eq!(report.schedules, 6);
        assert_eq!(report.unreduced, Some(6));
        assert_eq!(report.reduction_ratio(), Some(1.0));
    }

    #[test]
    fn schedule_counts_match_known_multinomials() {
        assert_eq!(schedule_count(&[6, 6]), Ok(924));
        assert_eq!(schedule_count(&[1, 1, 1]), Ok(6));
        assert_eq!(schedule_count(&[0, 3]), Ok(1));
    }

    #[test]
    fn schedule_count_overflow_is_typed_not_wrapped() {
        let lens = [30, 30, 30];
        match schedule_count(&lens) {
            Err(ExploreError::CountOverflow { lens: l }) => assert_eq!(l, lens.to_vec()),
            other => panic!("expected CountOverflow, got {other:?}"),
        }
    }

    /// A model whose invariant breaks only in one specific order —
    /// exhaustiveness must find it.
    struct OrderSensitive;

    impl Model for OrderSensitive {
        type State = Vec<usize>;

        fn init(&self) -> Vec<usize> {
            Vec::new()
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut Vec<usize>, tid: usize, _idx: usize) -> Result<(), String> {
            state.push(tid);
            Ok(())
        }

        fn invariant(&self, state: &Vec<usize>) -> Result<(), String> {
            if state == &[1, 0, 1, 0] {
                Err("the needle interleaving".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn finds_the_single_bad_interleaving() {
        let v = explore(&OrderSensitive).expect_err("must find the needle");
        assert_eq!(v.schedule, vec![1, 0, 1, 0]);
        assert!(v.message.contains("needle"));
    }

    #[test]
    fn dpor_finds_the_needle_under_serial_footprints() {
        let err = check(&OrderSensitive, &CheckOptions::default()).expect_err("must find it");
        match err {
            ExploreError::Violation(v) => {
                assert_eq!(v.schedule, vec![1, 0, 1, 0]);
                assert!(v.message.contains("needle"));
            }
            other => panic!("expected Violation, got {other:?}"),
        }
    }

    /// Two threads, each two writes to thread-private locations: fully
    /// independent, so DPOR should collapse all 6 interleavings to 1.
    struct Disjoint;

    impl Model for Disjoint {
        type State = [u32; 2];

        fn init(&self) -> [u32; 2] {
            [0, 0]
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut [u32; 2], tid: usize, _idx: usize) -> Result<(), String> {
            state[tid] += 1;
            Ok(())
        }

        fn footprint(&self, tid: usize, _idx: usize) -> Footprint {
            Footprint::empty().write(tid)
        }

        fn finalize(&self, state: &mut [u32; 2]) -> Result<(), String> {
            if *state == [2, 2] {
                Ok(())
            } else {
                Err(format!("lost updates: {state:?}"))
            }
        }
    }

    #[test]
    fn dpor_collapses_independent_threads_to_one_schedule() {
        let report = check(&Disjoint, &CheckOptions::default()).expect("no violations");
        assert_eq!(report.schedules, 1);
        assert_eq!(report.unreduced, Some(6));
        assert!(report.reduction_ratio().unwrap() > 1.0);
    }

    /// Two threads doing a private write then a mutexed update of a
    /// shared location: only the shared steps conflict.
    struct HalfShared;

    impl Model for HalfShared {
        type State = u32;

        fn init(&self) -> u32 {
            0
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut u32, _tid: usize, idx: usize) -> Result<(), String> {
            if idx == 1 {
                *state += 1;
            }
            Ok(())
        }

        fn footprint(&self, tid: usize, idx: usize) -> Footprint {
            if idx == 0 {
                Footprint::empty().write(10 + tid)
            } else {
                Footprint::empty().sync(0).write(0)
            }
        }

        fn finalize(&self, state: &mut u32) -> Result<(), String> {
            if *state == 2 {
                Ok(())
            } else {
                Err(format!("expected 2, got {state}"))
            }
        }
    }

    #[test]
    fn dpor_explores_only_the_conflicting_orders() {
        let report = check(&HalfShared, &CheckOptions::default()).expect("no violations");
        // Only the two orders of the mutexed updates matter.
        assert!(report.schedules >= 2, "both shared orders: {report:?}");
        assert!(
            report.schedules < report.unreduced.unwrap(),
            "must reduce below the multinomial: {report:?}"
        );
    }

    /// Unsynchronized writes to one location: the race detector must
    /// flag them even though no invariant breaks.
    struct Racy;

    impl Model for Racy {
        type State = u32;

        fn init(&self) -> u32 {
            0
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            1
        }

        fn step(&self, state: &mut u32, _tid: usize, _idx: usize) -> Result<(), String> {
            *state = 7;
            Ok(())
        }

        fn footprint(&self, _tid: usize, _idx: usize) -> Footprint {
            Footprint::empty().write(0)
        }
    }

    #[test]
    fn vector_clocks_catch_the_unsynchronized_write_pair() {
        let err = check(&Racy, &CheckOptions::default()).expect_err("must race");
        match err {
            ExploreError::Race(r) => {
                assert_eq!(r.loc, 0);
                assert_eq!(r.prefix.len(), 2);
            }
            other => panic!("expected Race, got {other:?}"),
        }
        // With detection off the same model passes (no invariant broken).
        let opts = CheckOptions {
            detect_races: false,
            ..CheckOptions::default()
        };
        check(&Racy, &opts).expect("no violation without the detector");
    }

    /// A producer incrementing a counter and a consumer that may only
    /// step when the counter is positive: exercises enabledness.
    struct Guarded;

    impl Model for Guarded {
        type State = i32;

        fn init(&self) -> i32 {
            0
        }

        fn threads(&self) -> usize {
            2
        }

        fn steps(&self, _tid: usize) -> usize {
            2
        }

        fn step(&self, state: &mut i32, tid: usize, _idx: usize) -> Result<(), String> {
            *state += if tid == 0 { 1 } else { -1 };
            if *state < 0 {
                return Err(format!("consumed below zero: {state}"));
            }
            Ok(())
        }

        fn enabled(&self, state: &i32, tid: usize, _idx: usize) -> bool {
            tid == 0 || *state > 0
        }

        fn footprint(&self, _tid: usize, _idx: usize) -> Footprint {
            // The counter is both the data and the consumer's guard.
            Footprint::empty().sync(0)
        }
    }

    #[test]
    fn enabledness_prunes_to_the_legal_interleavings() {
        let report = check(&Guarded, &CheckOptions::default()).expect("guards keep it legal");
        // Of C(4,2)=6 merge orders only the ballot sequences survive:
        // ++--, +-+- (every prefix has at least as many + as -).
        assert_eq!(report.schedules, 2);
        assert_eq!(report.unreduced, Some(6));
    }

    /// One thread whose single step is never enabled.
    struct Stuck;

    impl Model for Stuck {
        type State = ();

        fn init(&self) {}

        fn threads(&self) -> usize {
            1
        }

        fn steps(&self, _tid: usize) -> usize {
            1
        }

        fn step(&self, _state: &mut (), _tid: usize, _idx: usize) -> Result<(), String> {
            Err("unreachable".into())
        }

        fn enabled(&self, _state: &(), _tid: usize, _idx: usize) -> bool {
            false
        }
    }

    #[test]
    fn all_blocked_pending_threads_report_deadlock() {
        let err = check(&Stuck, &CheckOptions::default()).expect_err("must deadlock");
        match err {
            ExploreError::Deadlock { schedule, blocked } => {
                assert!(schedule.is_empty());
                assert_eq!(blocked, vec![0]);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budget_reports_typed_exhaustion() {
        let err = check(&Adders, &CheckOptions::budgeted(3)).expect_err("6 schedules > 3");
        match err {
            ExploreError::BudgetExceeded { budget, explored } => {
                assert_eq!(budget, 3);
                assert_eq!(explored, 3);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn oversized_scripts_are_rejected_up_front() {
        struct Long;
        impl Model for Long {
            type State = ();
            fn init(&self) {}
            fn threads(&self) -> usize {
                2
            }
            fn steps(&self, _tid: usize) -> usize {
                100
            }
            fn step(&self, _s: &mut (), _t: usize, _i: usize) -> Result<(), String> {
                Ok(())
            }
        }
        match check(&Long, &CheckOptions::default()) {
            Err(ExploreError::ScriptTooLong { steps, max }) => {
                assert_eq!(steps, 200);
                assert_eq!(max, MAX_TOTAL_STEPS);
            }
            other => panic!("expected ScriptTooLong, got {other:?}"),
        }
    }
}
