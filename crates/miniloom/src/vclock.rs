//! Vector-clock happens-before race detection over declared footprints.
//!
//! Run on every complete schedule the explorer replays: each thread
//! carries a vector clock, every [`Access::Sync`] location carries the
//! clock its last releaser published, and every data location
//! remembers its last write plus the reads since. Two conflicting data
//! accesses with no happens-before edge between them — no chain of
//! program order and synchronization order — are a **race**: the
//! schedule merely picked one of two unordered outcomes, and the model
//! has no right to rely on it.
//!
//! Races are a property of the happens-before *partial order*, not of
//! one interleaving, so checking the representative schedules DPOR
//! explores covers every schedule in their equivalence classes.

use crate::footprint::{Access, Footprint, Loc};
use std::collections::HashMap;
use std::fmt;

/// A per-thread logical clock: `clock[t]` counts the steps of thread
/// `t` this thread has synchronized with (its own included).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock over `threads` components.
    pub fn new(threads: usize) -> Self {
        VectorClock(vec![0; threads])
    }

    /// Component `t`.
    pub fn get(&self, t: usize) -> u64 {
        self.0[t]
    }

    /// Advance this thread's own component.
    pub fn tick(&mut self, t: usize) {
        self.0[t] += 1;
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

/// One access site in a schedule: which scripted step touched the
/// location, and where in the schedule it ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Site {
    /// The accessing thread.
    pub tid: usize,
    /// The index of the step in that thread's script.
    pub step: usize,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by thread {} step {}",
            if self.write { "write" } else { "read" },
            self.tid,
            self.step
        )
    }
}

/// Two conflicting, happens-before-unordered accesses to one modeled
/// location, plus the shortest schedule prefix that exposes them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// The raced location.
    pub loc: Loc,
    /// The earlier access (in the witnessing schedule).
    pub first: Site,
    /// The later access — the step at which the race was detected.
    pub second: Site,
    /// Thread ids of the witnessing schedule, truncated at the step
    /// performing [`RaceReport::second`]: replaying exactly this
    /// prefix reproduces the unordered pair.
    pub prefix: Vec<usize>,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on location {}: {} and {} have no happens-before edge \
             (witness prefix {:?})",
            self.loc, self.first, self.second, self.prefix
        )
    }
}

impl std::error::Error for RaceReport {}

/// Last-write and subsequent-read history of one data location.
#[derive(Default)]
struct LocHistory {
    last_write: Option<(Site, VectorClock)>,
    reads: Vec<(Site, VectorClock)>,
}

/// Check one complete schedule (`events` are `(tid, idx)` in execution
/// order) for happens-before races over the static `footprints`.
pub(crate) fn detect_races(
    footprints: &[Vec<Footprint>],
    events: &[(usize, usize)],
) -> Result<(), RaceReport> {
    let threads = footprints.len();
    let mut clocks: Vec<VectorClock> = (0..threads).map(|_| VectorClock::new(threads)).collect();
    let mut sync_clocks: HashMap<Loc, VectorClock> = HashMap::new();
    let mut data: HashMap<Loc, LocHistory> = HashMap::new();
    let prefix = |upto: usize| events[..=upto].iter().map(|&(t, _)| t).collect::<Vec<_>>();

    for (pos, &(tid, idx)) in events.iter().enumerate() {
        clocks[tid].tick(tid);
        let fp = &footprints[tid][idx];
        // Acquire phase: join every sync location's published clock
        // before judging the step's data accesses.
        for a in fp.accesses() {
            if let Access::Sync(l) = a {
                if let Some(s) = sync_clocks.get(l) {
                    clocks[tid].join(s);
                }
            }
        }
        let me = clocks[tid].clone();
        let ordered = |past: &(Site, VectorClock)| past.1.get(past.0.tid) <= me.get(past.0.tid);
        for a in fp.accesses() {
            let site = |write| Site {
                tid,
                step: idx,
                write,
            };
            match *a {
                Access::Read(l) => {
                    let h = data.entry(l).or_default();
                    if let Some(w) = &h.last_write {
                        if !ordered(w) {
                            return Err(RaceReport {
                                loc: l,
                                first: w.0,
                                second: site(false),
                                prefix: prefix(pos),
                            });
                        }
                    }
                    h.reads.push((site(false), me.clone()));
                }
                Access::Write(l) => {
                    let h = data.entry(l).or_default();
                    if let Some(w) = &h.last_write {
                        if !ordered(w) {
                            return Err(RaceReport {
                                loc: l,
                                first: w.0,
                                second: site(true),
                                prefix: prefix(pos),
                            });
                        }
                    }
                    if let Some(r) = h.reads.iter().find(|r| !ordered(r)) {
                        return Err(RaceReport {
                            loc: l,
                            first: r.0,
                            second: site(true),
                            prefix: prefix(pos),
                        });
                    }
                    h.last_write = Some((site(true), me.clone()));
                    h.reads.clear();
                }
                Access::Sync(_) => {}
            }
        }
        // Release phase: publish this step's clock to its sync
        // locations so later acquirers order after it.
        for a in fp.accesses() {
            if let Access::Sync(l) = a {
                sync_clocks.insert(*l, me.clone());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl FnOnce(Footprint) -> Footprint) -> Vec<Footprint> {
        vec![build(Footprint::empty())]
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let fps = [fp(|f| f.write(0)), fp(|f| f.write(0))];
        let err = detect_races(&fps, &[(0, 0), (1, 0)]).expect_err("must race");
        assert_eq!(err.loc, 0);
        assert_eq!((err.first.tid, err.second.tid), (0, 1));
        assert!(err.first.write && err.second.write);
        assert_eq!(err.prefix, vec![0, 1]);
    }

    #[test]
    fn read_after_unordered_write_is_a_race() {
        let fps = [fp(|f| f.write(4)), fp(|f| f.read(4))];
        let err = detect_races(&fps, &[(0, 0), (1, 0)]).expect_err("must race");
        assert!(err.first.write && !err.second.write);
        assert_eq!(err.loc, 4);
    }

    #[test]
    fn sync_on_a_shared_location_orders_the_accesses() {
        // Thread 0: lock, write, unlock is modeled as one step carrying
        // both the Sync and the Write; thread 1 likewise. The Sync's
        // release/acquire chain orders the writes in either schedule.
        let fps = [fp(|f| f.sync(9).write(1)), fp(|f| f.sync(9).write(1))];
        detect_races(&fps, &[(0, 0), (1, 0)]).expect("mutexed writes do not race");
        detect_races(&fps, &[(1, 0), (0, 0)]).expect("order must not matter");
    }

    #[test]
    fn program_order_alone_orders_same_thread_accesses() {
        let fps = [vec![
            Footprint::empty().write(2),
            Footprint::empty().read(2),
        ]];
        detect_races(&fps, &[(0, 0), (0, 1)]).expect("sequential accesses never race");
    }

    #[test]
    fn transitive_sync_chain_suppresses_the_race() {
        // t0 writes then releases L; t1 acquires L then writes: the
        // chain write → release → acquire → write orders the pair.
        let fps = [
            vec![Footprint::empty().write(0), Footprint::empty().sync(7)],
            vec![Footprint::empty().sync(7), Footprint::empty().write(0)],
        ];
        detect_races(&fps, &[(0, 0), (0, 1), (1, 0), (1, 1)]).expect("chained, no race");
        // Without the release in between, the same writes race.
        let unfenced = [fp(|f| f.write(0)), fp(|f| f.write(0))];
        detect_races(&unfenced, &[(0, 0), (1, 0)]).expect_err("unfenced pair races");
    }

    #[test]
    fn unordered_reads_do_not_race() {
        let fps = [fp(|f| f.read(5)), fp(|f| f.read(5))];
        detect_races(&fps, &[(0, 0), (1, 0)]).expect("reads commute");
    }
}
