//! Property tests for the measured piecewise transfer-cost curve.
//!
//! The sweep installs these curves in place of the affine `bytes · t_t`
//! wire model, so the simulator's timing sanity rests on three
//! invariants: monotone knots give a monotone curve, interpolation is
//! continuous at every breakpoint, and extrapolation continues the last
//! segment without going negative.

use proptest::prelude::*;
use tiling_core::machine::{CostCurveError, PiecewiseCost, MAX_COST_KNOTS};

/// Build strictly-increasing byte coordinates and non-decreasing costs
/// from positive increments, so every generated curve is valid and
/// monotone by construction.
fn curve_from_increments(db: &[f64], dus: &[f64]) -> PiecewiseCost {
    let mut knots = Vec::with_capacity(db.len());
    let mut b = 0.0;
    let mut us = 1.0;
    for (&stride, &rise) in db.iter().zip(dus) {
        b += stride;
        us += rise;
        knots.push((b, us));
    }
    PiecewiseCost::from_knots(&knots).expect("increments build a valid curve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotone knots ⇒ monotone eval at arbitrary query points.
    #[test]
    fn monotone_knots_give_monotone_eval(
        db in prop::collection::vec(1.0f64..500.0, 2..=8),
        dus in prop::collection::vec(0.0f64..100.0, 8..=8),
        q1 in 0.0f64..5000.0,
        q2 in 0.0f64..5000.0,
    ) {
        let curve = curve_from_increments(&db, &dus[..db.len()]);
        prop_assert!(curve.is_monotone());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            curve.eval(lo) <= curve.eval(hi) + 1e-9,
            "eval({lo}) = {} > eval({hi}) = {}",
            curve.eval(lo),
            curve.eval(hi)
        );
    }

    /// The curve is continuous at every breakpoint: approaching a knot
    /// from either side converges to the knot's value.
    #[test]
    fn continuous_at_breakpoints(
        db in prop::collection::vec(1.0f64..500.0, 2..=8),
        dus in prop::collection::vec(0.0f64..100.0, 8..=8),
    ) {
        let curve = curve_from_increments(&db, &dus[..db.len()]);
        for &(b, us) in curve.knots() {
            prop_assert!((curve.eval(b) - us).abs() < 1e-9);
            let eps = 1e-6;
            let below = curve.eval(b - eps);
            let above = curve.eval(b + eps);
            // Slopes are bounded by max rise / min stride = 100 µs/B;
            // an eps-step moves the value by at most slope · eps.
            prop_assert!((below - us).abs() < 1e-3, "left limit at {b}: {below} vs {us}");
            prop_assert!((above - us).abs() < 1e-3, "right limit at {b}: {above} vs {us}");
        }
    }

    /// Below the first knot the curve is flat at the first knot's cost
    /// (a small-message floor, like real eager-protocol measurements).
    #[test]
    fn flat_below_first_knot(
        first_b in 10.0f64..1000.0,
        first_us in 0.0f64..500.0,
        q in 0.0f64..1.0,
    ) {
        let curve = PiecewiseCost::from_knots(&[(first_b, first_us), (first_b * 2.0, first_us + 1.0)])
            .expect("two valid knots");
        let query = q * first_b;
        prop_assert_eq!(curve.eval(query), first_us);
    }

    /// Past the last knot the curve continues the last segment's slope
    /// exactly (and never goes negative).
    #[test]
    fn extrapolates_last_segment_slope(
        db in prop::collection::vec(1.0f64..500.0, 2..=8),
        dus in prop::collection::vec(0.0f64..100.0, 8..=8),
        beyond in 1.0f64..1000.0,
    ) {
        let curve = curve_from_increments(&db, &dus[..db.len()]);
        let k = curve.knots();
        let (ba, ua) = k[k.len() - 2];
        let (bb, ub) = k[k.len() - 1];
        let slope = (ub - ua) / (bb - ba);
        let q = bb + beyond;
        let expect = (ub + slope * beyond).max(0.0);
        prop_assert!((curve.eval(q) - expect).abs() < 1e-6 * expect.max(1.0));
        prop_assert!(curve.eval(q) >= 0.0);
    }

    /// Scaling the curve scales every evaluation.
    #[test]
    fn scaled_curve_scales_eval(
        db in prop::collection::vec(1.0f64..500.0, 2..=8),
        dus in prop::collection::vec(0.0f64..100.0, 8..=8),
        factor in 0.1f64..4.0,
        q in 0.0f64..5000.0,
    ) {
        let curve = curve_from_increments(&db, &dus[..db.len()]);
        let scaled = curve.scaled(factor);
        let expect = curve.eval(q) * factor;
        prop_assert!((scaled.eval(q) - expect).abs() < 1e-9 * expect.max(1.0));
    }
}

#[test]
fn rejects_malformed_knot_lists() {
    assert_eq!(PiecewiseCost::from_knots(&[]), Err(CostCurveError::Empty));
    let too_many: Vec<(f64, f64)> = (0..=MAX_COST_KNOTS).map(|i| (i as f64, i as f64)).collect();
    assert_eq!(
        PiecewiseCost::from_knots(&too_many),
        Err(CostCurveError::TooManyKnots(MAX_COST_KNOTS + 1))
    );
    assert_eq!(
        PiecewiseCost::from_knots(&[(0.0, f64::NAN)]),
        Err(CostCurveError::NonFinite(0))
    );
    assert_eq!(
        PiecewiseCost::from_knots(&[(0.0, 1.0), (0.0, 2.0)]),
        Err(CostCurveError::NonIncreasingBytes(1))
    );
    assert_eq!(
        PiecewiseCost::from_knots(&[(-1.0, 1.0)]),
        Err(CostCurveError::Negative(0))
    );
}
