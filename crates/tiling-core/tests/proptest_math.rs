//! Property-based tests of the exact arithmetic layer: rational field
//! laws, matrix algebra identities, and unimodular-transformation
//! invariants. These underpin every legality and cost computation in
//! the library, so they get their own adversarial suite.

use proptest::prelude::*;
use tiling_core::matrix::IntMatrix;
use tiling_core::prelude::*;

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i128..=1000, 1i128..=1000).prop_map(|(n, d)| Rational::new(n, d))
}

fn nonzero_rational() -> impl Strategy<Value = Rational> {
    rational().prop_filter("non-zero", |r| !r.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rational_field_laws(a in rational(), b in rational(), c in rational()) {
        // Commutativity.
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity.
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity.
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Identities and inverses.
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a + (-a), Rational::ZERO);
    }

    #[test]
    fn rational_division_inverts_multiplication(a in rational(), b in nonzero_rational()) {
        prop_assert_eq!((a / b) * b, a);
        prop_assert_eq!(b * b.recip(), Rational::ONE);
    }

    #[test]
    fn rational_floor_ceil_sandwich(a in rational()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rational::from_int(f) <= a);
        prop_assert!(a <= Rational::from_int(c));
        prop_assert!(c - f <= 1);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(c - f, 1);
        }
    }

    #[test]
    fn rational_ordering_total_and_compatible(a in rational(), b in rational(), c in rational()) {
        // Trichotomy via Ord; addition preserves order.
        if a < b {
            prop_assert!(a + c < b + c);
        }
        // Multiplication by positive preserves order.
        if a < b && c.is_positive() {
            prop_assert!(a * c < b * c);
        }
    }
}

fn small_matrix(n: usize) -> impl Strategy<Value = IntMatrix> {
    prop::collection::vec(-5i64..=5, n * n).prop_map(move |v| {
        let rows: Vec<&[i64]> = v.chunks(n).collect();
        IntMatrix::from_rows(&rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// det(AB) = det(A)·det(B) for 3×3.
    #[test]
    fn det_is_multiplicative(a in small_matrix(3), b in small_matrix(3)) {
        prop_assert_eq!(a.mul(&b).det(), a.det() * b.det());
    }

    /// det(Aᵀ) = det(A).
    #[test]
    fn det_transpose_invariant(a in small_matrix(3)) {
        prop_assert_eq!(a.transpose().det(), a.det());
    }

    /// adj(A)·A = det(A)·I.
    #[test]
    fn adjugate_identity(a in small_matrix(3)) {
        let d = a.det();
        let prod = a.adjugate().mul(&a);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert_eq!(prod[(i, j)], if i == j { d } else { 0 });
            }
        }
    }

    /// A⁻¹·A = I exactly (rational) for non-singular A.
    #[test]
    fn inverse_roundtrip(a in small_matrix(3)) {
        prop_assume!(a.det() != 0);
        let inv = a.inverse();
        prop_assert_eq!(inv.mul_int(&a), tiling_core::matrix::RatMatrix::identity(3));
    }

    /// Mat-vec distributes over vector addition.
    #[test]
    fn mul_vec_linear(a in small_matrix(3),
                      x in prop::collection::vec(-9i64..=9, 3),
                      y in prop::collection::vec(-9i64..=9, 3)) {
        let sum: Vec<i64> = x.iter().zip(&y).map(|(&p, &q)| p + q).collect();
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        let asum = a.mul_vec(&sum);
        for i in 0..3 {
            prop_assert_eq!(asum[i], ax[i] + ay[i]);
        }
    }
}

fn unimodular() -> impl Strategy<Value = Unimodular> {
    // Compose random elementary unimodular operations.
    let op = prop_oneof![
        (0usize..3, 0usize..3, -3i64..=3).prop_filter_map("skew dims distinct", |(d, s, f)| {
            (d != s).then(|| Unimodular::skew(3, d, s, f))
        }),
        Just(Unimodular::permutation(&[1, 0, 2])),
        Just(Unimodular::permutation(&[0, 2, 1])),
        (0usize..3).prop_map(|d| Unimodular::reversal(3, d)),
    ];
    prop::collection::vec(op, 0..5).prop_map(|ops| {
        ops.iter()
            .fold(Unimodular::identity(3), |acc, o| o.compose(&acc))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unimodular transforms are bijections on Z³.
    #[test]
    fn unimodular_bijective(t in unimodular(), j in prop::collection::vec(-20i64..=20, 3)) {
        prop_assert_eq!(t.matrix().det().abs(), 1);
        let inv = t.inverse();
        prop_assert_eq!(inv.apply_point(&t.apply_point(&j)), j.clone());
        prop_assert_eq!(t.apply_point(&inv.apply_point(&j)), j);
    }

    /// Transforming dependences commutes with point translation:
    /// T(j + d) = T(j) + T(d).
    #[test]
    fn unimodular_linear_on_dependences(
        t in unimodular(),
        j in prop::collection::vec(-10i64..=10, 3),
        d in prop::collection::vec(-3i64..=3, 3),
    ) {
        let jd: Vec<i64> = j.iter().zip(&d).map(|(&a, &b)| a + b).collect();
        let lhs = t.apply_point(&jd);
        let tj = t.apply_point(&j);
        let td = t.apply_point(&d);
        let rhs: Vec<i64> = tj.iter().zip(&td).map(|(&a, &b)| a + b).collect();
        prop_assert_eq!(lhs, rhs);
    }

    /// The legalizing skew always produces non-negative dependences and
    /// preserves lexicographic positivity, for random lex-positive sets.
    #[test]
    fn legalizing_skew_works(
        raw in prop::collection::vec(prop::collection::vec(-3i64..=3, 3), 1..4)
    ) {
        let mut set = DependenceSet::new(3);
        for mut v in raw {
            // Force lexicographic positivity: make the first non-zero
            // positive, or set the leading component.
            if let Some(pos) = v.iter().position(|&x| x != 0) {
                if v[pos] < 0 {
                    for x in v.iter_mut() {
                        *x = -*x;
                    }
                }
            } else {
                v[0] = 1;
            }
            set.push(Dependence::new(v));
        }
        prop_assume!(set.all_lex_positive());
        let t = legalizing_skew(&set).expect("lex-positive set must be legalizable");
        let skewed = t.apply_deps(&set);
        prop_assert!(skewed.iter().all(|d| d.components().iter().all(|&c| c >= 0)),
            "skewed = {:?}", skewed);
        prop_assert!(skewed.all_lex_positive());
    }

    /// Schedule validity is invariant under legalizing skews with the
    /// matching transformed Π: if Π·d > 0 then (Π·T⁻¹)·(T·d) > 0.
    #[test]
    fn skew_preserves_schedule_feasibility(
        d in prop::collection::vec(-3i64..=3, 3),
    ) {
        prop_assume!(Dependence::new(d.clone()).is_lex_positive());
        let mut set = DependenceSet::new(3);
        set.push(Dependence::new(d));
        let t = legalizing_skew(&set).unwrap();
        let skewed = t.apply_deps(&set);
        // The all-ones schedule is valid for any non-negative, non-zero
        // dependence set.
        let ones = LinearSchedule::ones(3);
        prop_assert!(ones.is_valid(&skewed));
    }
}
