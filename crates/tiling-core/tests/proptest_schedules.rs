//! Crate-level property tests of the schedule layer: brute-force
//! point-order oracles for linear schedules, overlap-schedule validity
//! on randomized tiled spaces, and optimal-schedule search soundness.

use proptest::prelude::*;
use tiling_core::prelude::*;
use tiling_core::schedule::optimal_linear_schedule;
use tiling_core::tile_graph::TileGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `optimal_linear_schedule` returns a valid schedule whose makespan
    /// no enumerated candidate beats (soundness of the search), checked
    /// against an independent re-enumeration.
    #[test]
    fn optimal_search_is_sound(
        extents in prop::collection::vec(2i64..=5, 2..=2),
        dep_choice in 0usize..3,
    ) {
        let deps = match dep_choice {
            0 => DependenceSet::units(2),
            1 => DependenceSet::example_1(),
            _ => DependenceSet::from_vectors(2, vec![vec![1, -1], vec![0, 1]]),
        };
        let space = IterationSpace::from_extents(&extents);
        let Some(best) = optimal_linear_schedule(&space, &deps, 2) else {
            // Nothing valid in range — acceptable only for the skewed set.
            prop_assert_eq!(dep_choice, 2);
            return Ok(());
        };
        prop_assert!(best.is_valid(&deps));
        let best_ms = best.makespan(&space, &deps);
        // Independent scan of the same candidate set.
        for a in -2i64..=2 {
            for b in -2i64..=2 {
                if a == 0 && b == 0 {
                    continue;
                }
                let cand = LinearSchedule::new(vec![a, b]);
                if cand.is_valid(&deps) {
                    prop_assert!(cand.makespan(&space, &deps) >= best_ms);
                }
            }
        }
    }

    /// Every valid linear schedule orders dependent points, verified by
    /// full enumeration.
    #[test]
    fn valid_schedules_order_points(
        pi in prop::collection::vec(-2i64..=3, 2..=2),
        extents in prop::collection::vec(2i64..=5, 2..=2),
    ) {
        prop_assume!(pi.iter().any(|&c| c != 0));
        let sched = LinearSchedule::new(pi);
        let deps = DependenceSet::example_1();
        prop_assume!(sched.is_valid(&deps));
        let space = IterationSpace::from_extents(&extents);
        for j in space.points() {
            for d in deps.iter() {
                let succ: Vec<i64> =
                    j.iter().zip(d.components()).map(|(&a, &b)| a + b).collect();
                if space.contains(&succ) {
                    prop_assert!(
                        sched.time_of(&succ, &space, &deps)
                            > sched.time_of(&j, &space, &deps)
                    );
                }
            }
        }
    }

    /// The overlap schedule is valid (per the tile graph's lag rules)
    /// for every tiled space derived from random rectangular tilings of
    /// random spaces with diagonal-ish dependence sets.
    #[test]
    fn overlap_valid_on_random_tiled_spaces(
        sides in prop::collection::vec(2i64..=4, 3..=3),
        mults in prop::collection::vec(1i64..=3, 3..=3),
    ) {
        let tiling = Tiling::rectangular(&sides);
        let deps = DependenceSet::from_vectors(
            3,
            vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1], vec![1, 1, 0]],
        );
        prop_assume!(tiling.contains_dependences(&deps));
        let extents: Vec<i64> = sides.iter().zip(&mults).map(|(&s, &m)| s * m).collect();
        let space = IterationSpace::from_extents(&extents);
        let ts = tiling.tiled_space(&space);
        let tile_deps = tiling.tile_dependences(&deps);
        let sched = OverlapSchedule::new(&ts);
        prop_assert!(sched.is_valid_for(&tile_deps));
        let g = TileGraph::build(&ts, &tile_deps);
        let lag = TileGraph::overlap_lag(sched.mapping());
        g.validate_times(|t| sched.time_of(t, &ts), lag)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Closed-form predictions are positive, finite and U-shaped around
    /// V* for random affine machines.
    #[test]
    fn closed_form_well_behaved(
        base in 5.0f64..500.0,
        slope in 0.001f64..0.2,
        t_c in 0.05f64..5.0,
    ) {
        use tiling_core::machine::AffineCost;
        let machine = MachineParams {
            t_c_us: t_c,
            t_s_us: base * 1.5,
            t_t_us_per_byte: 0.05,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost { base_us: base, per_byte_us: slope },
            fill_kernel_buffer: AffineCost { base_us: base / 2.0, per_byte_us: slope / 2.0 },
            transfer_curve: None,
        };
        let space = IterationSpace::from_extents(&[16, 16, 8192]);
        let deps = DependenceSet::paper_3d();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        prop_assert!(cf.v_star.is_finite() && cf.v_star > 0.0);
        let at = |v: f64| cf.predict_us(v);
        let v = cf.v_star;
        prop_assert!(at(v) <= at(v * 4.0) + 1e-6);
        prop_assert!(at(v) <= at((v / 4.0).max(0.25)) + 1e-6);
        // And the non-overlap optimum exists too.
        let nf = nonoverlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        prop_assert!(nf.v_star.is_finite() && nf.v_star > 0.0);
    }
}
