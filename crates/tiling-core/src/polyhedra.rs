//! Rational polyhedra and Fourier–Motzkin elimination.
//!
//! After a unimodular transformation (skewing, §`transform`), the
//! iteration domain is no longer a rectangle but a parallelepiped
//! `{ x | A·x + b ≥ 0 }`. Generating loops that scan exactly that set —
//! the Ancourt–Irigoin problem, which both Irigoin–Triolet's supernode
//! paper and Xue's tiling codegen rely on — requires, for each loop
//! level `d`, bounds on `x_d` as affine functions of the outer
//! variables. Fourier–Motzkin elimination of the inner variables
//! produces exactly those bounds.
//!
//! Everything is exact rational arithmetic; the generated integer loop
//! bounds are ceilings/floors of the rational affine bounds, which is
//! lossless for integer points.

use crate::rational::Rational;
use crate::space::IterationSpace;
use crate::transform::Unimodular;
use std::fmt;

/// An affine form `Σ coeffs[i]·x_i + constant` over `dims` variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Affine {
    /// Per-variable coefficients.
    pub coeffs: Vec<Rational>,
    /// Constant term.
    pub constant: Rational,
}

impl Affine {
    /// The constant form `c`.
    pub fn constant(dims: usize, c: Rational) -> Self {
        Affine {
            coeffs: vec![Rational::ZERO; dims],
            constant: c,
        }
    }

    /// Evaluate at an integer point (arity may exceed the form's — extra
    /// trailing coordinates are ignored; missing ones must have zero
    /// coefficients).
    pub fn eval(&self, x: &[i64]) -> Rational {
        let mut acc = self.constant;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let xi = *x
                .get(i)
                .unwrap_or_else(|| panic!("affine form needs coordinate {i}"));
            acc += c * Rational::from_int(xi as i128);
        }
        acc
    }

    /// Highest variable index with a non-zero coefficient, if any.
    pub fn last_var(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|c| !c.is_zero())
    }

    /// Render with the given variable names.
    pub fn render(&self, names: &[&str]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if c == Rational::ONE {
                parts.push(names[i].to_string());
            } else if c == -Rational::ONE {
                parts.push(format!("-{}", names[i]));
            } else {
                parts.push(format!("{}·{}", c, names[i]));
            }
        }
        if !self.constant.is_zero() || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut out = String::new();
        for (k, p) in parts.iter().enumerate() {
            if k == 0 {
                out.push_str(p);
            } else if let Some(stripped) = p.strip_prefix('-') {
                out.push_str(" - ");
                out.push_str(stripped);
            } else {
                out.push_str(" + ");
                out.push_str(p);
            }
        }
        out
    }
}

/// The inequality `form ≥ 0`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ineq(pub Affine);

/// A convex rational polyhedron `{ x ∈ Q^dims | every ineq ≥ 0 }`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Polyhedron {
    dims: usize,
    ineqs: Vec<Ineq>,
}

impl Polyhedron {
    /// The polyhedron of a rectangular iteration space:
    /// `l_d ≤ x_d ≤ u_d` for every dimension.
    pub fn from_space(space: &IterationSpace) -> Self {
        let n = space.dims();
        let mut ineqs = Vec::with_capacity(2 * n);
        for d in 0..n {
            // x_d − l_d ≥ 0.
            let mut lo = Affine::constant(n, Rational::from_int(-(space.lower()[d] as i128)));
            lo.coeffs[d] = Rational::ONE;
            ineqs.push(Ineq(lo));
            // u_d − x_d ≥ 0.
            let mut hi = Affine::constant(n, Rational::from_int(space.upper()[d] as i128));
            hi.coeffs[d] = -Rational::ONE;
            ineqs.push(Ineq(hi));
        }
        Polyhedron { dims: n, ineqs }
    }

    /// The image of a space under a unimodular transformation: the set
    /// `{ y = T·x | x ∈ space }`, i.e. constraints `A·T⁻¹·y + b ≥ 0`.
    pub fn transformed_space(space: &IterationSpace, t: &Unimodular) -> Self {
        let base = Polyhedron::from_space(space);
        let inv = t.inverse();
        let m = inv.matrix();
        let n = base.dims;
        let ineqs = base
            .ineqs
            .iter()
            .map(|Ineq(a)| {
                // New coefficient row: aᵀ·T⁻¹.
                let mut coeffs = vec![Rational::ZERO; n];
                for (j, cj) in coeffs.iter_mut().enumerate() {
                    let mut acc = Rational::ZERO;
                    for i in 0..n {
                        acc += a.coeffs[i] * Rational::from_int(m[(i, j)] as i128);
                    }
                    *cj = acc;
                }
                Ineq(Affine {
                    coeffs,
                    constant: a.constant,
                })
            })
            .collect();
        Polyhedron { dims: n, ineqs }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The inequalities.
    pub fn ineqs(&self) -> &[Ineq] {
        &self.ineqs
    }

    /// Membership test for an integer point.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.ineqs.iter().all(|Ineq(a)| !a.eval(x).is_negative())
    }

    /// Fourier–Motzkin elimination of variable `dim`: the projection of
    /// the polyhedron onto the remaining variables (the variable keeps
    /// its slot with zero coefficients, so indices stay stable).
    pub fn eliminate(&self, dim: usize) -> Polyhedron {
        assert!(dim < self.dims, "variable out of range");
        let mut lowers = Vec::new(); // x_dim ≥ expr  (coeff > 0)
        let mut uppers = Vec::new(); // x_dim ≤ expr  (coeff < 0)
        let mut rest = Vec::new();
        for Ineq(a) in &self.ineqs {
            let c = a.coeffs[dim];
            if c.is_zero() {
                rest.push(Ineq(a.clone()));
            } else if c.is_positive() {
                lowers.push(a.clone());
            } else {
                uppers.push(a.clone());
            }
        }
        // Pair every lower with every upper:
        // from cL·x + aL ≥ 0 (cL>0) and cU·x + aU ≥ 0 (cU<0):
        //   x ≥ −aL/cL  and  x ≤ −aU/cU  ⇒  −aL/cL ≤ −aU/cU
        //   ⇔ cU·aL − cL·aU ≤ 0… multiply out signs carefully:
        // combine as cL·(aU without x) + (−cU)·(aL without x) ≥ 0.
        for lo in &lowers {
            for up in &uppers {
                let cl = lo.coeffs[dim];
                let cu = up.coeffs[dim]; // negative
                let mut coeffs = vec![Rational::ZERO; self.dims];
                for (j, cj) in coeffs.iter_mut().enumerate() {
                    if j == dim {
                        continue;
                    }
                    *cj = cl * up.coeffs[j] + (-cu) * lo.coeffs[j];
                }
                let constant = cl * up.constant + (-cu) * lo.constant;
                rest.push(Ineq(Affine { coeffs, constant }));
            }
        }
        Polyhedron {
            dims: self.dims,
            ineqs: rest,
        }
    }

    /// Loop bounds for variable `dim` in terms of variables `< dim`,
    /// valid when variables `> dim` have been eliminated first: returns
    /// `(lower bounds, upper bounds)` — the loop runs from the max of
    /// the (ceiled) lowers to the min of the (floored) uppers.
    pub fn bounds_of(&self, dim: usize) -> (Vec<Affine>, Vec<Affine>) {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for Ineq(a) in &self.ineqs {
            let c = a.coeffs[dim];
            if c.is_zero() {
                continue;
            }
            debug_assert!(
                a.last_var() == Some(dim),
                "inner variables must be eliminated before taking bounds"
            );
            // c·x_dim + rest ≥ 0 ⇒ x_dim ≥ −rest/c (c>0) or ≤ −rest/c (c<0).
            let mut coeffs = vec![Rational::ZERO; self.dims];
            for (j, cj) in coeffs.iter_mut().enumerate() {
                if j != dim {
                    *cj = -(a.coeffs[j] / c);
                }
            }
            let bound = Affine {
                coeffs,
                constant: -(a.constant / c),
            };
            if c.is_positive() {
                lowers.push(bound);
            } else {
                uppers.push(bound);
            }
        }
        (lowers, uppers)
    }

    /// Enumerate the integer points of a *bounded* polyhedron by
    /// recursive bounds computation (test oracle; exponential-ish in
    /// constraints, fine for small domains).
    pub fn enumerate(&self) -> Vec<Vec<i64>> {
        // proj_for_level[d] = this polyhedron with dims > d eliminated.
        let mut proj_for_level: Vec<Polyhedron> = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let mut p = self.clone();
            for e in ((d + 1)..self.dims).rev() {
                p = p.eliminate(e);
            }
            proj_for_level.push(p);
        }
        let mut out = Vec::new();
        let mut point = vec![0i64; self.dims];
        self.enum_rec(&proj_for_level, 0, &mut point, &mut out);
        out
    }

    fn enum_rec(
        &self,
        projs: &[Polyhedron],
        d: usize,
        point: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        let (lowers, uppers) = projs[d].bounds_of(d);
        assert!(
            !lowers.is_empty() && !uppers.is_empty(),
            "unbounded polyhedron"
        );
        let lo = lowers
            .iter()
            .map(|a| a.eval(point).ceil())
            .max()
            .expect("non-empty");
        let hi = uppers
            .iter()
            .map(|a| a.eval(point).floor())
            .min()
            .expect("non-empty");
        for v in lo..=hi {
            point[d] = i64::try_from(v).expect("bound fits i64");
            if d + 1 == self.dims {
                if self.contains(point) {
                    out.push(point.clone());
                }
            } else {
                self.enum_rec(projs, d + 1, point, out);
            }
        }
        point[d] = 0;
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dims).map(|d| format!("x{d}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        for Ineq(a) in &self.ineqs {
            writeln!(f, "{} >= 0", a.render(&refs))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_membership() {
        let p = Polyhedron::from_space(&IterationSpace::from_extents(&[3, 4]));
        assert!(p.contains(&[0, 0]));
        assert!(p.contains(&[2, 3]));
        assert!(!p.contains(&[3, 0]));
        assert!(!p.contains(&[0, -1]));
    }

    #[test]
    fn box_enumeration_matches_space() {
        let space = IterationSpace::new(vec![-1, 2], vec![1, 4]);
        let p = Polyhedron::from_space(&space);
        let pts = p.enumerate();
        assert_eq!(pts.len() as u64, space.volume());
        for j in space.points() {
            assert!(pts.contains(&j));
        }
    }

    #[test]
    fn elimination_projects_box() {
        let p = Polyhedron::from_space(&IterationSpace::from_extents(&[3, 5]));
        let proj = p.eliminate(1);
        // x0 range unchanged; x1 unconstrained now.
        assert!(proj.contains(&[0, 999]));
        assert!(proj.contains(&[2, -999]));
        assert!(!proj.contains(&[3, 0]));
    }

    #[test]
    fn skewed_domain_enumeration_matches_transform() {
        // y = T·x with T = skew(2, 1, 0, 1) over a 4×3 box.
        let space = IterationSpace::from_extents(&[4, 3]);
        let t = Unimodular::skew(2, 1, 0, 1);
        let poly = Polyhedron::transformed_space(&space, &t);
        let mut expected: Vec<Vec<i64>> = space.points().map(|x| t.apply_point(&x)).collect();
        let mut got = poly.enumerate();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn composed_transform_domain() {
        let space = IterationSpace::from_extents(&[3, 3, 2]);
        let t = Unimodular::skew(3, 2, 0, 2)
            .compose(&Unimodular::permutation(&[1, 0, 2]))
            .compose(&Unimodular::skew(3, 1, 0, 1));
        let poly = Polyhedron::transformed_space(&space, &t);
        let mut expected: Vec<Vec<i64>> = space.points().map(|x| t.apply_point(&x)).collect();
        let mut got = poly.enumerate();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn bounds_of_outer_variable_are_constants() {
        let space = IterationSpace::from_extents(&[4, 3]);
        let t = Unimodular::skew(2, 1, 0, 1);
        let poly = Polyhedron::transformed_space(&space, &t);
        let outer = poly.eliminate(1);
        let (lo, hi) = outer.bounds_of(0);
        let lo_v = lo.iter().map(|a| a.eval(&[0, 0]).ceil()).max().unwrap();
        let hi_v = hi.iter().map(|a| a.eval(&[0, 0]).floor()).min().unwrap();
        assert_eq!((lo_v, hi_v), (0, 3)); // x0 = original dim 0
    }

    #[test]
    fn inner_bounds_depend_on_outer() {
        // After skew y1 = x1 + x0 over 4×3: for fixed y0, y1 ∈ [y0, y0+2].
        let space = IterationSpace::from_extents(&[4, 3]);
        let t = Unimodular::skew(2, 1, 0, 1);
        let poly = Polyhedron::transformed_space(&space, &t);
        let (lo, hi) = poly.bounds_of(1);
        for y0 in 0..4i64 {
            let l = lo.iter().map(|a| a.eval(&[y0, 0]).ceil()).max().unwrap();
            let h = hi.iter().map(|a| a.eval(&[y0, 0]).floor()).min().unwrap();
            assert_eq!((l, h), (y0 as i128, (y0 + 2) as i128), "y0 = {y0}");
        }
    }

    #[test]
    fn affine_render() {
        let a = Affine {
            coeffs: vec![Rational::ONE, Rational::new(-1, 2)],
            constant: Rational::from_int(3),
        };
        assert_eq!(a.render(&["i", "j"]), "i - 1/2·j + 3");
        let z = Affine::constant(2, Rational::ZERO);
        assert_eq!(z.render(&["i", "j"]), "0");
    }

    #[test]
    fn display_renders() {
        let p = Polyhedron::from_space(&IterationSpace::from_extents(&[2, 2]));
        let text = p.to_string();
        assert!(text.contains(">= 0"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn reversal_domain() {
        let space = IterationSpace::from_extents(&[3, 2]);
        let t = Unimodular::reversal(2, 0);
        let poly = Polyhedron::transformed_space(&space, &t);
        assert!(poly.contains(&[-2, 1]));
        assert!(poly.contains(&[0, 0]));
        assert!(!poly.contains(&[1, 0]));
        assert_eq!(poly.enumerate().len() as u64, space.volume());
    }
}
