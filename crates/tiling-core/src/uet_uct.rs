//! Optimal schedules for UET / UET-UCT grid task graphs.
//!
//! Reference \[1\] of the paper (Andronikos, Koziris, Papakonstantinou,
//! Tsanakas, *JPDC* 1999) proves two results the overlapping schedule
//! rests on, for `n`-dimensional grid graphs (iteration spaces with unit
//! dependence vectors):
//!
//! * **UET** (unit execution, zero communication): the schedule
//!   `t(j) = Σ j_k` is time-optimal — this is the non-overlapping
//!   hyperplane `Π = [1 … 1]`.
//! * **UET-UCT** (unit execution, unit communication): with
//!   communication between different processors costing one time unit
//!   (overlappable with execution), the schedule
//!   `t(j) = 2·Σ_{k≠i} j_k + j_i` is optimal, and the optimal space
//!   schedule maps all points along the **maximal** dimension `i` to the
//!   same processor.
//!
//! The paper's insight (§4) is that adjusting the tile grain `g` so that
//! per-step communication equals per-step computation puts the tiled
//! program exactly in the UET-UCT regime.
//!
//! This module provides the two schedules in their grid-graph form plus
//! brute-force makespan oracles used to *verify optimality by exhaustion*
//! on small grids in the test-suite.

use crate::space::IterationSpace;

/// Makespan of the UET schedule `Σ j_k` on a grid of the given extents:
/// `Σ (e_k − 1) + 1`.
pub fn uet_makespan(extents: &[i64]) -> i64 {
    extents.iter().map(|&e| e - 1).sum::<i64>() + 1
}

/// Makespan of the UET-UCT schedule `2·Σ_{k≠i} j_k + j_i` with mapping
/// dimension `i`: `2·Σ_{k≠i}(e_k − 1) + (e_i − 1) + 1`.
pub fn uet_uct_makespan(extents: &[i64], mapping_dim: usize) -> i64 {
    assert!(mapping_dim < extents.len(), "mapping dim out of range");
    let mut total = 0;
    for (k, &e) in extents.iter().enumerate() {
        total += if k == mapping_dim { e - 1 } else { 2 * (e - 1) };
    }
    total + 1
}

/// The best mapping dimension for UET-UCT: the one with the largest
/// extent (minimizes [`uet_uct_makespan`]).
pub fn optimal_mapping_dimension(extents: &[i64]) -> usize {
    let mut best = 0;
    for (k, &e) in extents.iter().enumerate() {
        if e > extents[best] {
            best = k;
        }
    }
    best
}

/// Brute-force earliest-start makespan for a UET-UCT grid: list
/// scheduling where an edge costs 1 extra unit iff its endpoints live on
/// different processors under "map along `mapping_dim`". Exponential in
/// nothing — linear in grid size — but only meant for small grids.
///
/// Returns the length of the critical path, which a greedy processor
/// assignment along the mapping dimension achieves (each processor owns
/// a line of the grid, so no resource conflicts arise).
pub fn uet_uct_bruteforce_makespan(extents: &[i64], mapping_dim: usize) -> i64 {
    let space = IterationSpace::from_extents(extents);
    let n = extents.len();
    let mut best_finish = 0i64;
    // dist[j] = earliest start of j. Process in lexicographic order
    // (which is topological for unit deps).
    let mut dist = std::collections::HashMap::new();
    for j in space.points() {
        let mut start = 0i64;
        for k in 0..n {
            if j[k] == 0 {
                continue;
            }
            let mut pred = j.clone();
            pred[k] -= 1;
            let lag = if k == mapping_dim { 1 } else { 2 };
            let cand = dist[&pred] + lag;
            start = start.max(cand);
        }
        best_finish = best_finish.max(start);
        dist.insert(j, start);
    }
    best_finish + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uet_makespan_formula() {
        assert_eq!(uet_makespan(&[4, 4]), 7);
        assert_eq!(uet_makespan(&[1000, 100]), 1099);
        assert_eq!(uet_makespan(&[1]), 1);
    }

    #[test]
    fn uet_uct_formula_matches_bruteforce() {
        for extents in [vec![3i64, 4], vec![2, 2, 3], vec![5, 1], vec![4, 4, 4]] {
            for d in 0..extents.len() {
                assert_eq!(
                    uet_uct_makespan(&extents, d),
                    uet_uct_bruteforce_makespan(&extents, d),
                    "extents {extents:?} dim {d}"
                );
            }
        }
    }

    #[test]
    fn longest_dimension_is_optimal_mapping() {
        for extents in [vec![3i64, 8], vec![2, 5, 3], vec![7, 7, 2]] {
            let opt = optimal_mapping_dimension(&extents);
            let best = (0..extents.len())
                .map(|d| uet_uct_makespan(&extents, d))
                .min()
                .unwrap();
            assert_eq!(uet_uct_makespan(&extents, opt), best, "extents {extents:?}");
        }
    }

    #[test]
    fn uet_uct_costs_more_planes_than_uet() {
        // The overlap schedule spends more hyperplanes… (but each is
        // cheaper — that's the whole point of §4).
        let e = vec![4i64, 4, 37];
        assert!(uet_uct_makespan(&e, 2) > uet_makespan(&e));
    }

    #[test]
    fn single_line_grid_equal() {
        // With only the mapping dimension extended, UET-UCT = UET:
        // everything on one processor, no communication.
        let e = vec![1i64, 1, 50];
        assert_eq!(uet_uct_makespan(&e, 2), uet_makespan(&e));
    }

    #[test]
    fn paper_experiment_plane_counts() {
        // Experiment i: tiled space 4×4×37 mapped along k.
        assert_eq!(uet_uct_makespan(&[4, 4, 37], 2), 49);
        assert_eq!(uet_makespan(&[4, 4, 37]), 43);
    }
}
