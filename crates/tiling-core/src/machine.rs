//! Machine parameters of the target architecture (§2.6).
//!
//! All time quantities are in microseconds, the unit the paper reports.
//! Two kinds of parameters exist:
//!
//! * the classical three-parameter communication model — per-iteration
//!   compute time `t_c`, message startup `t_s`, per-byte transmission
//!   `t_t` — which drives the *non-overlapping* analysis (§3), and
//! * the buffer-fill decomposition of §4 — CPU-side MPI buffer fills
//!   (`A₁`, `A₃`) and kernel-side copies (`B₂`, `B₃`) — which drives the
//!   *overlapping* analysis. Those are affine functions of the message
//!   size; the paper measured them (no analytical formula exists, §6),
//!   so we carry an affine model calibrated to the paper's measurements.

/// Numerical tier of the compute kernels on this machine.
///
/// The paper's verification story depends on the distributed schedule
/// producing *exactly* the sequential result, so the default tier pins
/// every kernel to the sequential per-cell operation order bit for bit.
/// `Fast` relaxes that: kernels may reassociate the carry-free terms
/// and substitute cheaper equivalents on the recurrence's reachable
/// domain (e.g. `abs` for `max(·, 0)` on non-negative carries), trading
/// bitwise reproducibility for a shorter dependency chain. Fast-tier
/// output is epsilon-verified against the pinned tier, never assumed
/// identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelTier {
    /// Bitwise-pinned: identical to the sequential reference walk.
    #[default]
    Bitwise,
    /// Fast math: reassociation allowed, ULP-bounded vs `Bitwise`.
    Fast,
}

/// An affine time model `base + per_byte · bytes`, in microseconds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AffineCost {
    /// Fixed cost in µs.
    pub base_us: f64,
    /// Marginal cost per payload byte in µs.
    pub per_byte_us: f64,
}

impl AffineCost {
    /// A constant cost (no per-byte term).
    pub const fn constant(base_us: f64) -> Self {
        AffineCost {
            base_us,
            per_byte_us: 0.0,
        }
    }

    /// Evaluate the model for a message of `bytes` bytes.
    pub fn eval(&self, bytes: f64) -> f64 {
        self.base_us + self.per_byte_us * bytes
    }
}

/// Maximum number of knots in a [`PiecewiseCost`] curve.
///
/// Fixed so the curve stays `Copy` (and `MachineParams` with it):
/// measured transfer curves have a handful of protocol regimes (eager,
/// rendezvous, fragmentation), not dozens.
pub const MAX_COST_KNOTS: usize = 8;

/// Why a knot list cannot become a [`PiecewiseCost`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostCurveError {
    /// The curve needs at least one knot.
    Empty,
    /// More than [`MAX_COST_KNOTS`] knots.
    TooManyKnots(usize),
    /// A knot coordinate is NaN or infinite.
    NonFinite(usize),
    /// A byte coordinate or cost is negative.
    Negative(usize),
    /// Byte coordinates must be strictly increasing.
    NonIncreasingBytes(usize),
}

impl core::fmt::Display for CostCurveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CostCurveError::Empty => write!(f, "cost curve needs at least one knot"),
            CostCurveError::TooManyKnots(n) => {
                write!(f, "cost curve has {n} knots, max {MAX_COST_KNOTS}")
            }
            CostCurveError::NonFinite(i) => write!(f, "knot {i} is not finite"),
            CostCurveError::Negative(i) => write!(f, "knot {i} is negative"),
            CostCurveError::NonIncreasingBytes(i) => {
                write!(f, "knot {i} does not increase the byte coordinate")
            }
        }
    }
}

impl std::error::Error for CostCurveError {}

/// A measured-style piecewise-linear cost curve `bytes → µs`.
///
/// Kumar et al. ("Performance Models for Data Transfers") observe that
/// real transfer costs are not affine in the message size: protocol
/// switches (eager → rendezvous), fragmentation thresholds and cache
/// effects put kinks in the measured curve. This type carries up to
/// [`MAX_COST_KNOTS`] measured `(bytes, µs)` knots and interpolates:
///
/// * below the first knot the cost is the first knot's value,
/// * between knots it interpolates linearly (continuous at breakpoints
///   by construction),
/// * past the last knot it extrapolates with the last segment's slope.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PiecewiseCost {
    knots: [(f64, f64); MAX_COST_KNOTS],
    len: usize,
}

impl PiecewiseCost {
    /// Build a curve from measured `(bytes, µs)` knots.
    ///
    /// Bytes must be strictly increasing, everything finite and
    /// non-negative; at most [`MAX_COST_KNOTS`] knots.
    pub fn from_knots(knots: &[(f64, f64)]) -> Result<Self, CostCurveError> {
        if knots.is_empty() {
            return Err(CostCurveError::Empty);
        }
        if knots.len() > MAX_COST_KNOTS {
            return Err(CostCurveError::TooManyKnots(knots.len()));
        }
        let mut stored = [(0.0, 0.0); MAX_COST_KNOTS];
        for (i, &(b, us)) in knots.iter().enumerate() {
            if !b.is_finite() || !us.is_finite() {
                return Err(CostCurveError::NonFinite(i));
            }
            if b < 0.0 || us < 0.0 {
                return Err(CostCurveError::Negative(i));
            }
            if i > 0 && b <= stored[i - 1].0 {
                return Err(CostCurveError::NonIncreasingBytes(i));
            }
            stored[i] = (b, us);
        }
        Ok(PiecewiseCost {
            knots: stored,
            len: knots.len(),
        })
    }

    /// The measured knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots[..self.len]
    }

    /// Interpolated cost of a `bytes`-byte transfer, µs.
    pub fn eval(&self, bytes: f64) -> f64 {
        let k = self.knots();
        let (b0, us0) = k[0];
        if bytes <= b0 || k.len() == 1 {
            return us0;
        }
        for w in k.windows(2) {
            let (ba, ua) = w[0];
            let (bb, ub) = w[1];
            if bytes <= bb {
                return ua + (ub - ua) * (bytes - ba) / (bb - ba);
            }
        }
        // Past the last knot: continue the last segment's slope.
        let (ba, ua) = k[k.len() - 2];
        let (bb, ub) = k[k.len() - 1];
        let slope = (ub - ua) / (bb - ba);
        (ub + slope * (bytes - bb)).max(0.0)
    }

    /// Whether the curve never decreases as the message grows (true of
    /// any physically sensible transfer-cost measurement).
    pub fn is_monotone(&self) -> bool {
        self.knots().windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// The curve with every cost scaled by `factor` (bytes unchanged).
    pub fn scaled(&self, factor: f64) -> PiecewiseCost {
        let mut out = *self;
        for knot in out.knots[..out.len].iter_mut() {
            knot.1 *= factor;
        }
        out
    }
}

/// Why per-node speed factors are invalid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedError {
    /// A factor is NaN or infinite.
    NonFinite {
        /// The offending rank.
        rank: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A factor is zero or negative.
    NonPositive {
        /// The offending rank.
        rank: usize,
        /// The offending factor.
        factor: f64,
    },
}

impl core::fmt::Display for SpeedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpeedError::NonFinite { rank, factor } => {
                write!(f, "rank {rank} speed factor {factor} is not finite")
            }
            SpeedError::NonPositive { rank, factor } => {
                write!(f, "rank {rank} speed factor {factor} is not positive")
            }
        }
    }
}

impl std::error::Error for SpeedError {}

/// Per-node relative compute speeds for a heterogeneous cluster.
///
/// The paper's testbed is 16 identical Pentium-IIIs; real clusters age
/// into mixed generations. A factor of `s` means the node computes `s`
/// times as fast as the [`MachineParams`] baseline — a tile that takes
/// `g·t_c` µs on the baseline takes `g·t_c / s` on that node. Ranks
/// beyond the recorded factors run at the baseline speed (factor 1).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpeeds {
    factors: Vec<f64>,
}

impl NodeSpeeds {
    /// All `n` nodes at the baseline speed.
    pub fn uniform(n: usize) -> Self {
        NodeSpeeds {
            factors: vec![1.0; n],
        }
    }

    /// Validated explicit factors (finite, strictly positive).
    pub fn from_factors(factors: Vec<f64>) -> Result<Self, SpeedError> {
        for (rank, &factor) in factors.iter().enumerate() {
            if !factor.is_finite() {
                return Err(SpeedError::NonFinite { rank, factor });
            }
            if factor <= 0.0 {
                return Err(SpeedError::NonPositive { rank, factor });
            }
        }
        Ok(NodeSpeeds { factors })
    }

    /// Deterministic pseudo-random speeds in `[1-spread, 1+spread]`.
    ///
    /// Same `(n, seed, spread)` always yields the same fleet — the
    /// sweep's reproducibility depends on it. `spread` is clamped to
    /// `[0, 0.9]` so factors stay strictly positive.
    pub fn seeded(n: usize, seed: u64, spread: f64) -> Self {
        let spread = spread.clamp(0.0, 0.9);
        let mut state = seed;
        let factors = (0..n)
            .map(|_| {
                // SplitMix64: the standard 64-bit mixer, good enough for
                // jittered speed factors and dependency-free.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                1.0 - spread + 2.0 * spread * unit
            })
            .collect();
        NodeSpeeds { factors }
    }

    /// The speed factor of `rank` (baseline 1.0 beyond the fleet).
    pub fn factor(&self, rank: usize) -> f64 {
        self.factors.get(rank).copied().unwrap_or(1.0)
    }

    /// Number of nodes with recorded factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether no factors are recorded.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Whether every recorded node runs at the baseline speed.
    pub fn is_uniform(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
    }
}

/// Parameters of the message-passing architecture.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MachineParams {
    /// Time for a single iteration-point computation, µs (`t_c`).
    pub t_c_us: f64,
    /// Communication startup latency, µs (`t_s`, a.k.a. `t_startup`).
    pub t_s_us: f64,
    /// Transmission time per byte, µs (`t_t`).
    pub t_t_us_per_byte: f64,
    /// Bytes per array element (`b`), e.g. 4 for `f32`.
    pub bytes_per_elem: u32,
    /// `T_fill_MPI_buffer` — CPU time to post a non-blocking send or
    /// receive (the `A₁`/`A₃` phases of §4).
    pub fill_mpi_buffer: AffineCost,
    /// `T_fill_kernel_buffer` — kernel-side copy between MPI buffer and
    /// kernel socket buffer (the `B₂`/`B₃` phases). Runs on the DMA/NIC
    /// lane, overlappable with computation.
    pub fill_kernel_buffer: AffineCost,
    /// Optional measured wire-transfer curve. When present it replaces
    /// the affine `bytes · t_t` wire model in [`MachineParams::transmit_us`]
    /// (the closed-form analysis keeps using `t_t`; the gap between the
    /// two is exactly what the sweep's predicted-vs-simulated error
    /// column measures).
    pub transfer_curve: Option<PiecewiseCost>,
}

impl MachineParams {
    /// Compute time of a tile of `g` iteration points: `T_comp = g·t_c`.
    pub fn tile_compute_us(&self, g: i64) -> f64 {
        g as f64 * self.t_c_us
    }

    /// Startup cost of one *blocking* send or receive of `bytes` bytes.
    ///
    /// The paper's §4/Example 3 assumption is
    /// `T_fill_MPI_buffer + T_fill_kernel_buffer = T_startup`: a blocking
    /// operation walks the whole user→kernel copy path on the CPU, so its
    /// startup is the sum of both fills (byte-dependent), of which `t_s`
    /// is the zero-byte base.
    pub fn startup_us(&self, bytes: f64) -> f64 {
        self.fill_mpi_buffer.eval(bytes) + self.fill_kernel_buffer.eval(bytes)
    }

    /// Wire transmission time of a `bytes`-byte message: the measured
    /// [`PiecewiseCost`] curve when one is installed, `bytes · t_t`
    /// otherwise.
    pub fn transmit_us(&self, bytes: f64) -> f64 {
        match &self.transfer_curve {
            Some(curve) => curve.eval(bytes),
            None => bytes * self.t_t_us_per_byte,
        }
    }

    /// This machine with a measured wire-transfer curve installed.
    pub fn with_transfer_curve(mut self, curve: PiecewiseCost) -> Self {
        self.transfer_curve = Some(curve);
        self
    }

    /// The architecture of Example 1 (§3): `t_c ≈ 1 µs`, `t_s = 100·t_c`,
    /// `t_t = 0.8·t_c` per byte (10 Mbps Ethernet), 4-byte floats.
    /// The §4 Example 3 assumption `T_fill_MPI = ½·t_s` and
    /// `T_fill_MPI + T_fill_kernel = T_startup` fixes the fill models.
    pub fn example_1() -> Self {
        let t_c = 1.0;
        let t_s = 100.0 * t_c;
        MachineParams {
            t_c_us: t_c,
            t_s_us: t_s,
            t_t_us_per_byte: 0.8 * t_c,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost::constant(0.5 * t_s),
            fill_kernel_buffer: AffineCost::constant(0.5 * t_s),
            transfer_curve: None,
        }
    }

    /// The paper's experimental cluster (§5): 16 Pentium-III 500 MHz
    /// nodes, Linux 2.2.14, MPICH over FastEthernet.
    ///
    /// * `t_c = 0.441 µs` — measured by the authors (1000 iterations of
    ///   the √-kernel on one node).
    /// * `t_t = 0.08 µs/byte` — 100 Mbps FastEthernet.
    /// * `t_s ≈ 104 µs` — the zero-byte base of the fill models below,
    ///   consistent with the §4 identity `t_s = fill_MPI + fill_kernel`
    ///   and with typical MPICH/P4 TCP startup on this hardware.
    /// * The MPI-buffer fill model is an affine fit through the paper's
    ///   two 4×4-cross-section measurements:
    ///   `T_fill(7104 B) = 627 µs`, `T_fill(8608 B) = 745 µs`
    ///   ⇒ `base = 69.6 µs`, `slope = 0.078457 µs/B`. The 8×8 experiment
    ///   iii measurement (370 µs @ 5248 B) deviates ~30% from this fit —
    ///   documented in EXPERIMENTS.md.
    /// * Kernel-buffer copies modeled at half the MPI-buffer slope
    ///   (single memcpy vs. user/kernel crossing).
    pub fn paper_cluster() -> Self {
        let slope = (745.0 - 627.0) / (8608.0 - 7104.0);
        let base = 627.0 - slope * 7104.0;
        MachineParams {
            t_c_us: 0.441,
            t_s_us: base * 1.5,
            t_t_us_per_byte: 0.08,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost {
                base_us: base,
                per_byte_us: slope,
            },
            fill_kernel_buffer: AffineCost {
                base_us: base / 2.0,
                per_byte_us: slope / 2.0,
            },
            transfer_curve: None,
        }
    }

    /// A paper-cluster-CPU machine on a gigabit-class switched network:
    /// ~10× the FastEthernet bandwidth, ~4× cheaper per-message software
    /// overhead (era-appropriate lighter TCP stacks / larger MTU).
    /// Synthetic, for sensitivity studies.
    pub fn gigabit_cluster() -> Self {
        let base = MachineParams::paper_cluster();
        MachineParams {
            t_t_us_per_byte: 0.008,
            t_s_us: base.t_s_us / 4.0,
            fill_mpi_buffer: AffineCost {
                base_us: base.fill_mpi_buffer.base_us / 4.0,
                per_byte_us: base.fill_mpi_buffer.per_byte_us / 4.0,
            },
            fill_kernel_buffer: AffineCost {
                base_us: base.fill_kernel_buffer.base_us / 4.0,
                per_byte_us: base.fill_kernel_buffer.per_byte_us / 4.0,
            },
            ..base
        }
    }

    /// A paper-cluster-CPU machine on an OS-bypass interconnect
    /// (Myrinet/SCI-class, the hardware the paper's §6 future work
    /// anticipates): microsecond-scale startup, no kernel buffer copies
    /// (true zero-copy DMA), ~1 Gbit/s. Synthetic, for sensitivity
    /// studies.
    pub fn os_bypass_cluster() -> Self {
        let base = MachineParams::paper_cluster();
        MachineParams {
            t_s_us: 8.0,
            t_t_us_per_byte: 0.008,
            fill_mpi_buffer: AffineCost {
                base_us: 5.0,
                per_byte_us: 0.002,
            },
            fill_kernel_buffer: AffineCost {
                base_us: 3.0,
                per_byte_us: 0.0,
            },
            ..base
        }
    }

    /// A copy of this machine with every communication cost (startup,
    /// per-byte transmission, both buffer-fill models) scaled by
    /// `factor`, computation unchanged. Used for sensitivity studies of
    /// the communication-to-computation ratio.
    pub fn scale_communication(&self, factor: f64) -> MachineParams {
        assert!(factor >= 0.0 && factor.is_finite(), "bad scale factor");
        let scale = |c: AffineCost| AffineCost {
            base_us: c.base_us * factor,
            per_byte_us: c.per_byte_us * factor,
        };
        MachineParams {
            t_c_us: self.t_c_us,
            t_s_us: self.t_s_us * factor,
            t_t_us_per_byte: self.t_t_us_per_byte * factor,
            bytes_per_elem: self.bytes_per_elem,
            fill_mpi_buffer: scale(self.fill_mpi_buffer),
            fill_kernel_buffer: scale(self.fill_kernel_buffer),
            transfer_curve: self.transfer_curve.map(|c| c.scaled(factor)),
        }
    }

    /// A machine with free communication — useful as a degenerate case in
    /// tests (overlap and non-overlap should then differ only through the
    /// schedule length).
    pub fn free_communication(t_c_us: f64) -> Self {
        MachineParams {
            t_c_us,
            t_s_us: 0.0,
            t_t_us_per_byte: 0.0,
            bytes_per_elem: 4,
            fill_mpi_buffer: AffineCost::constant(0.0),
            fill_kernel_buffer: AffineCost::constant(0.0),
            transfer_curve: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval() {
        let c = AffineCost {
            base_us: 10.0,
            per_byte_us: 0.5,
        };
        assert_eq!(c.eval(0.0), 10.0);
        assert_eq!(c.eval(100.0), 60.0);
        assert_eq!(AffineCost::constant(7.0).eval(1e6), 7.0);
    }

    #[test]
    fn example_1_parameters() {
        let m = MachineParams::example_1();
        assert_eq!(m.t_s_us, 100.0);
        assert_eq!(m.fill_mpi_buffer.eval(1000.0), 50.0);
        // Fill MPI + fill kernel = startup (Example 3 assumption).
        assert_eq!(
            m.fill_mpi_buffer.eval(0.0) + m.fill_kernel_buffer.eval(0.0),
            m.t_s_us
        );
    }

    #[test]
    fn paper_cluster_reproduces_measured_fill_times() {
        let m = MachineParams::paper_cluster();
        assert!((m.fill_mpi_buffer.eval(7104.0) - 627.0).abs() < 0.5);
        assert!((m.fill_mpi_buffer.eval(8608.0) - 745.0).abs() < 0.5);
        assert!((m.t_c_us - 0.441).abs() < 1e-9);
    }

    #[test]
    fn tile_compute_scales_linearly() {
        let m = MachineParams::paper_cluster();
        assert!((m.tile_compute_us(7104) - 7104.0 * 0.441).abs() < 1e-9);
    }

    #[test]
    fn transmit_fastethernet() {
        let m = MachineParams::paper_cluster();
        // 7104 bytes at 0.08 µs/B ≈ 568 µs.
        assert!((m.transmit_us(7104.0) - 568.32).abs() < 1e-9);
    }

    #[test]
    fn scale_communication_scales_everything_but_compute() {
        let m = MachineParams::paper_cluster();
        let s = m.scale_communication(0.5);
        assert_eq!(s.t_c_us, m.t_c_us);
        assert_eq!(s.t_s_us, m.t_s_us * 0.5);
        assert_eq!(s.t_t_us_per_byte, m.t_t_us_per_byte * 0.5);
        assert_eq!(
            s.fill_mpi_buffer.eval(1000.0),
            m.fill_mpi_buffer.eval(1000.0) * 0.5
        );
        // Zero factor = free communication.
        let z = m.scale_communication(0.0);
        assert_eq!(z.startup_us(1e6), 0.0);
    }

    #[test]
    fn network_presets_order_sensibly() {
        let paper = MachineParams::paper_cluster();
        let gig = MachineParams::gigabit_cluster();
        let byp = MachineParams::os_bypass_cluster();
        // Same CPU, progressively cheaper communication.
        assert_eq!(gig.t_c_us, paper.t_c_us);
        assert_eq!(byp.t_c_us, paper.t_c_us);
        let msg = 7104.0;
        assert!(gig.startup_us(msg) < paper.startup_us(msg));
        assert!(byp.startup_us(msg) < gig.startup_us(msg));
        assert!(gig.transmit_us(msg) < paper.transmit_us(msg));
    }

    #[test]
    fn free_communication_is_free() {
        let m = MachineParams::free_communication(1.0);
        assert_eq!(m.transmit_us(1e9), 0.0);
        assert_eq!(m.fill_mpi_buffer.eval(1e9), 0.0);
        assert_eq!(m.t_s_us, 0.0);
    }
}
