//! Unimodular loop transformations (skewing, permutation, reversal).
//!
//! The paper's model (§2.1) requires lexicographically positive uniform
//! dependences, and its tilings require `HD ≥ 0`. Many real loop nests
//! (Jacobi-style stencils with negative dependence components, wavefront
//! recurrences) satisfy neither *as written* — the classical remedy is a
//! **unimodular transformation** `T` (|det T| = 1) applied first:
//! iteration `j` becomes `T·j`, dependence `d` becomes `T·d`, and the
//! transformed nest is tiled instead. Skewing in particular
//! (`T = I + f·e_i·e_kᵀ`) makes negative components non-negative without
//! changing the iteration count.
//!
//! This module implements unimodular matrices over `i64`, their action
//! on dependence sets and (rectangular) iteration spaces, and an
//! automatic skew search that legalizes a dependence set for
//! axis-aligned rectangular tiling (all components ≥ 0).

use crate::dependence::{Dependence, DependenceSet};
use crate::matrix::IntMatrix;
use crate::space::{IterationSpace, Point};
use std::fmt;

/// A unimodular (integer, |det| = 1) loop transformation.
#[derive(Clone, PartialEq, Eq)]
pub struct Unimodular {
    t: IntMatrix,
}

/// Errors constructing a unimodular transformation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// The matrix is not square.
    NotSquare,
    /// |det T| ≠ 1.
    NotUnimodular {
        /// The offending determinant.
        det: i64,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotSquare => write!(f, "transformation matrix must be square"),
            TransformError::NotUnimodular { det } => {
                write!(f, "matrix has |det| = {} ≠ 1", det.abs())
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl Unimodular {
    /// Wrap a matrix, verifying unimodularity.
    pub fn new(t: IntMatrix) -> Result<Self, TransformError> {
        if !t.is_square() {
            return Err(TransformError::NotSquare);
        }
        let det = t.det();
        if det.abs() != 1 {
            return Err(TransformError::NotUnimodular { det });
        }
        Ok(Unimodular { t })
    }

    /// The identity transformation.
    pub fn identity(n: usize) -> Self {
        Unimodular {
            t: IntMatrix::identity(n),
        }
    }

    /// Skewing: add `factor ×` dimension `src` to dimension `dst`
    /// (`dst ≠ src`), i.e. `j'_dst = j_dst + factor·j_src`.
    pub fn skew(n: usize, dst: usize, src: usize, factor: i64) -> Self {
        assert!(dst < n && src < n && dst != src, "bad skew dimensions");
        let mut t = IntMatrix::identity(n);
        t[(dst, src)] = factor;
        Unimodular { t }
    }

    /// Loop interchange / permutation: dimension `i` of the result reads
    /// dimension `perm[i]` of the original.
    pub fn permutation(perm: &[usize]) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        let mut t = IntMatrix::zeros(n, n);
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
            t[(i, p)] = 1;
        }
        Unimodular { t }
    }

    /// Loop reversal of dimension `dim`.
    pub fn reversal(n: usize, dim: usize) -> Self {
        assert!(dim < n, "dimension out of range");
        let mut t = IntMatrix::identity(n);
        t[(dim, dim)] = -1;
        Unimodular { t }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &IntMatrix {
        &self.t
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.t.rows()
    }

    /// Compose: `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Unimodular) -> Unimodular {
        Unimodular {
            t: self.t.mul(&other.t),
        }
    }

    /// The inverse transformation (also unimodular, exactly integral).
    pub fn inverse(&self) -> Unimodular {
        let det = self.t.det(); // ±1
        let adj = self.t.adjugate();
        let n = self.dims();
        let mut inv = IntMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                inv[(i, j)] = det * adj[(i, j)]; // adj/det with det = ±1
            }
        }
        Unimodular { t: inv }
    }

    /// Transform a point.
    pub fn apply_point(&self, j: &[i64]) -> Point {
        self.t.mul_vec(j)
    }

    /// Transform a dependence set: `d ↦ T·d`.
    pub fn apply_deps(&self, deps: &DependenceSet) -> DependenceSet {
        let mut out = DependenceSet::new(self.dims());
        for d in deps.iter() {
            out.push(Dependence::new(self.t.mul_vec(d.components())));
        }
        out
    }

    /// Bounding box of the transformed iteration space. Unimodular
    /// transformations of rectangles are parallelepipeds; this returns
    /// the enclosing rectangle (exact corner images), which is what the
    /// paper-style rectangular machinery needs. The transformed set has
    /// the same cardinality but may not fill the box.
    pub fn apply_space_bounds(&self, space: &IterationSpace) -> IterationSpace {
        assert_eq!(space.dims(), self.dims(), "arity mismatch");
        let n = self.dims();
        let mut lo = vec![i64::MAX; n];
        let mut hi = vec![i64::MIN; n];
        for corner in space.corners() {
            let c = self.apply_point(&corner);
            for d in 0..n {
                lo[d] = lo[d].min(c[d]);
                hi[d] = hi[d].max(c[d]);
            }
        }
        IterationSpace::new(lo, hi)
    }
}

impl fmt::Debug for Unimodular {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Unimodular({:?})", self.t)
    }
}

/// Find a composition of skews that makes every dependence component
/// non-negative (so axis-aligned rectangular tiling is legal), assuming
/// the set is lexicographically positive. Returns `None` if the set is
/// not lexicographically positive.
///
/// Strategy (classical wavefront skewing): process dimensions left to
/// right; dimension `k` is skewed by enough multiples of the earlier
/// dimensions to lift its most negative component, using for each
/// dependence the first earlier dimension with a positive component.
pub fn legalizing_skew(deps: &DependenceSet) -> Option<Unimodular> {
    if !deps.all_lex_positive() {
        return None;
    }
    let n = deps.dims();
    let mut t = Unimodular::identity(n);
    let mut current: Vec<Vec<i64>> = deps.iter().map(|d| d.components().to_vec()).collect();
    for k in 1..n {
        // Compute, over all dependences with current[k] < 0, the factor
        // needed against their first positive earlier dimension.
        let mut factors = vec![0i64; k];
        for d in current.iter() {
            if d[k] >= 0 {
                continue;
            }
            // First earlier dimension with a positive component (exists:
            // lexicographic positivity is preserved by these skews).
            let src = (0..k).find(|&s| d[s] > 0)?;
            let need = (-d[k] + d[src] - 1) / d[src]; // ⌈−d_k / d_src⌉
            factors[src] = factors[src].max(need);
        }
        for (src, &f) in factors.iter().enumerate() {
            if f > 0 {
                let s = Unimodular::skew(n, k, src, f);
                // Update running dependences and composition.
                for d in current.iter_mut() {
                    d[k] += f * d[src];
                }
                t = s.compose(&t);
            }
        }
        // The per-source maxima may still leave a negative component
        // when a dependence's first positive dimension differs from the
        // one another dependence forced; iterate until fixed.
        let mut guard = 0;
        while current.iter().any(|d| d[k] < 0) {
            guard += 1;
            if guard > 64 {
                return None; // should not happen for lex-positive sets
            }
            let mut more = vec![0i64; k];
            for d in current.iter() {
                if d[k] >= 0 {
                    continue;
                }
                let src = (0..k).find(|&s| d[s] > 0)?;
                let need = (-d[k] + d[src] - 1) / d[src];
                more[src] = more[src].max(need);
            }
            for (src, &f) in more.iter().enumerate() {
                if f > 0 {
                    let s = Unimodular::skew(n, k, src, f);
                    for d in current.iter_mut() {
                        d[k] += f * d[src];
                    }
                    t = s.compose(&t);
                }
            }
        }
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_compose() {
        let id = Unimodular::identity(3);
        let s = Unimodular::skew(3, 1, 0, 2);
        assert_eq!(id.compose(&s), s);
        assert_eq!(s.compose(&id), s);
    }

    #[test]
    fn skew_action() {
        let s = Unimodular::skew(2, 1, 0, 1);
        assert_eq!(s.apply_point(&[3, 4]), vec![3, 7]);
        // Jacobi-style dependence (1, −1) becomes (1, 0).
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -1], vec![1, 0], vec![1, 1]]);
        let skewed = s.apply_deps(&deps);
        let vecs: Vec<_> = skewed.iter().map(|d| d.components().to_vec()).collect();
        assert_eq!(vecs, vec![vec![1, 0], vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn permutation_action() {
        let p = Unimodular::permutation(&[2, 0, 1]);
        assert_eq!(p.apply_point(&[10, 20, 30]), vec![30, 10, 20]);
        assert_eq!(p.matrix().det().abs(), 1);
    }

    #[test]
    fn reversal_action() {
        let r = Unimodular::reversal(2, 1);
        assert_eq!(r.apply_point(&[5, 7]), vec![5, -7]);
    }

    #[test]
    fn inverse_roundtrip() {
        let t = Unimodular::skew(3, 2, 0, 3)
            .compose(&Unimodular::permutation(&[1, 0, 2]))
            .compose(&Unimodular::skew(3, 1, 0, 1));
        let inv = t.inverse();
        let prod = t.compose(&inv);
        assert_eq!(prod, Unimodular::identity(3));
        for j in [[1i64, 2, 3], [0, -5, 7], [100, 0, -3]] {
            assert_eq!(inv.apply_point(&t.apply_point(&j)), j.to_vec());
        }
    }

    #[test]
    fn non_unimodular_rejected() {
        let m = IntMatrix::from_rows(&[&[2, 0], &[0, 1]]);
        assert_eq!(
            Unimodular::new(m).unwrap_err(),
            TransformError::NotUnimodular { det: 2 }
        );
    }

    #[test]
    fn not_square_rejected() {
        let m = IntMatrix::from_rows(&[&[1, 0, 0], &[0, 1, 0]]);
        assert_eq!(Unimodular::new(m).unwrap_err(), TransformError::NotSquare);
    }

    #[test]
    fn legalizing_skew_jacobi_1d() {
        // Time-stepped 1-D Jacobi after naïve modeling:
        // D = {(1,-1), (1,0), (1,1)}: components negative in dim 1.
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -1], vec![1, 0], vec![1, 1]]);
        let t = legalizing_skew(&deps).expect("lex-positive");
        let skewed = t.apply_deps(&deps);
        assert!(skewed
            .iter()
            .all(|d| d.components().iter().all(|&c| c >= 0)));
        // And rectangular tiling becomes legal.
        let tiling = crate::tiling::Tiling::rectangular(&[4, 4]);
        assert!(tiling.is_legal(&skewed));
    }

    #[test]
    fn legalizing_skew_3d() {
        let deps = DependenceSet::from_vectors(
            3,
            vec![
                vec![1, -2, 0],
                vec![1, 0, -1],
                vec![0, 1, -1],
                vec![1, 1, 1],
            ],
        );
        let t = legalizing_skew(&deps).expect("lex-positive");
        let skewed = t.apply_deps(&deps);
        assert!(
            skewed
                .iter()
                .all(|d| d.components().iter().all(|&c| c >= 0)),
            "{skewed:?}"
        );
    }

    #[test]
    fn legalizing_skew_identity_when_already_nonnegative() {
        let deps = DependenceSet::paper_3d();
        let t = legalizing_skew(&deps).unwrap();
        assert_eq!(t, Unimodular::identity(3));
    }

    #[test]
    fn legalizing_skew_rejects_non_lex_positive() {
        let deps = DependenceSet::from_vectors(2, vec![vec![-1, 1]]);
        assert!(legalizing_skew(&deps).is_none());
    }

    #[test]
    fn space_bounds_after_skew() {
        let s = Unimodular::skew(2, 1, 0, 1);
        let space = IterationSpace::from_extents(&[4, 4]);
        let b = s.apply_space_bounds(&space);
        // j'_1 ∈ 0..=6 (max at corner (3,3) → 6).
        assert_eq!(b.lower(), &[0, 0]);
        assert_eq!(b.upper(), &[3, 6]);
        // Cardinality preserved: every transformed point is distinct and
        // inside the bounds.
        let mut seen = std::collections::BTreeSet::new();
        for j in space.points() {
            let p = s.apply_point(&j);
            assert!(b.contains(&p));
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len() as u64, space.volume());
    }

    #[test]
    fn skewed_dependences_stay_lex_positive() {
        let deps = DependenceSet::from_vectors(2, vec![vec![1, -3], vec![2, 1]]);
        let t = legalizing_skew(&deps).unwrap();
        let skewed = t.apply_deps(&deps);
        assert!(skewed.all_lex_positive());
    }
}
