//! Computation and communication cost of a tile (§2.4).
//!
//! * `V_comp = det(P)` — iteration points per tile.
//! * Formula (1): total communication of a tile over **all** boundary
//!   surfaces,
//!   `V_comm(H) = (1/|det H|) · Σ_i Σ_k Σ_j h_{i,k} d_{k,j}`,
//!   i.e. `det(P)` times the sum of all entries of `H·D`. Each term
//!   `det(P)·(h_i · d_j)` counts the iteration points from which
//!   dependence `d_j` crosses the tile boundary family `i`.
//! * Formula (2): the same sum with the row of `H` normal to the
//!   processor-mapping dimension removed — tiles along that dimension run
//!   on the same processor, so those crossings are free.

use crate::dependence::DependenceSet;
use crate::rational::Rational;
use crate::tiling::Tiling;

/// `V_comp = |det P|`: the computation volume (iteration points) of one tile.
pub fn v_comp(tiling: &Tiling) -> i64 {
    tiling.volume()
}

/// Communication volume of dependence `d` through boundary family `i`:
/// `det(P) · (h_i · d)`, exact.
pub fn v_comm_surface(tiling: &Tiling, dep: &[i64], surface: usize) -> Rational {
    let h = tiling.h();
    assert!(surface < h.rows(), "surface index out of range");
    assert_eq!(dep.len(), h.cols(), "dependence arity mismatch");
    let dot = h
        .row(surface)
        .iter()
        .zip(dep)
        .fold(Rational::ZERO, |acc, (&hk, &dk)| {
            acc + hk * Rational::from_int(dk as i128)
        });
    dot * Rational::from_int(tiling.volume() as i128)
}

/// Formula (1): total communication volume of a tile, all surfaces.
pub fn v_comm_total(tiling: &Tiling, deps: &DependenceSet) -> Rational {
    let mut sum = Rational::ZERO;
    for d in deps.iter() {
        for i in 0..tiling.dims() {
            sum += v_comm_surface(tiling, d.components(), i);
        }
    }
    sum
}

/// Formula (2): communication volume when tiles along `mapping_dim` are
/// mapped to the same processor — that dimension's surface is excluded.
pub fn v_comm_mapped(tiling: &Tiling, deps: &DependenceSet, mapping_dim: usize) -> Rational {
    assert!(
        mapping_dim < tiling.dims(),
        "mapping dimension out of range"
    );
    let mut sum = Rational::ZERO;
    for d in deps.iter() {
        for i in 0..tiling.dims() {
            if i == mapping_dim {
                continue;
            }
            sum += v_comm_surface(tiling, d.components(), i);
        }
    }
    sum
}

/// Communication volume through a *single* boundary family `i`, summed
/// over all dependences: the number of iteration points whose results
/// must be shipped to the neighbor tile in direction `i` (one message).
pub fn v_comm_per_dimension(tiling: &Tiling, deps: &DependenceSet, dim: usize) -> Rational {
    let mut sum = Rational::ZERO;
    for d in deps.iter() {
        sum += v_comm_surface(tiling, d.components(), dim);
    }
    sum
}

/// Message payload in bytes for the neighbor in direction `dim`, at `b`
/// bytes per array element.
pub fn message_bytes(
    tiling: &Tiling,
    deps: &DependenceSet,
    dim: usize,
    bytes_per_elem: u32,
) -> f64 {
    v_comm_per_dimension(tiling, deps, dim).to_f64() * f64::from(bytes_per_elem)
}

/// Brute-force oracle for formula (1): for each dependence `d` and each
/// boundary family `i`, count the points `j0` of the origin tile for which
/// `j0 + d` lands in a tile with `⌊H(j0+d)⌋_i ≥ 1`. Exact under the
/// containment assumption; used to validate the closed formulas in tests.
pub fn v_comm_total_bruteforce(tiling: &Tiling, deps: &DependenceSet) -> i64 {
    let domain = tiling.fundamental_domain();
    let mut count = 0i64;
    for d in deps.iter() {
        for j0 in &domain {
            let shifted: Vec<i64> = j0
                .iter()
                .zip(d.components())
                .map(|(&a, &b)| a + b)
                .collect();
            let t = tiling.tile_of(&shifted);
            count += t.iter().filter(|&&c| c >= 1).count() as i64;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_paper_values() {
        // §3 Example 1: square 10×10 tiles, D = {(1,1),(1,0),(0,1)}.
        let t = Tiling::rectangular(&[10, 10]);
        let d = DependenceSet::example_1();
        assert_eq!(v_comp(&t), 100);
        // Formula (1): total = 40; formula (2) with mapping along i1: 20.
        assert_eq!(v_comm_total(&t, &d), Rational::from_int(40));
        assert_eq!(v_comm_mapped(&t, &d, 0), Rational::from_int(20));
    }

    #[test]
    fn paper_3d_packet_sizes() {
        // §5 experiment i: tile 4×4×444, b = 4 bytes.
        // Face perpendicular to i (or j) carries 4·444 = 1776 elements
        // = 7104 bytes, the paper's measured packet size.
        let t = Tiling::rectangular(&[4, 4, 444]);
        let d = DependenceSet::paper_3d();
        assert_eq!(v_comm_per_dimension(&t, &d, 0), Rational::from_int(1776));
        assert_eq!(v_comm_per_dimension(&t, &d, 1), Rational::from_int(1776));
        assert_eq!(message_bytes(&t, &d, 0, 4), 7104.0);
        // Mapping along k (dim 2): only i and j faces communicate.
        assert_eq!(v_comm_mapped(&t, &d, 2), Rational::from_int(2 * 1776));
    }

    #[test]
    fn experiment_ii_and_iii_packets() {
        let d = DependenceSet::paper_3d();
        let t2 = Tiling::rectangular(&[4, 4, 538]);
        assert_eq!(message_bytes(&t2, &d, 0, 4), 8608.0);
        let t3 = Tiling::rectangular(&[8, 8, 164]);
        assert_eq!(message_bytes(&t3, &d, 0, 4), 5248.0);
    }

    #[test]
    fn formula_matches_bruteforce_rectangular() {
        let t = Tiling::rectangular(&[10, 10]);
        let d = DependenceSet::example_1();
        let brute = v_comm_total_bruteforce(&t, &d);
        assert_eq!(v_comm_total(&t, &d), Rational::from_int(brute as i128));
    }

    #[test]
    fn formula_matches_bruteforce_various_shapes() {
        let cases = [
            (vec![4i64, 4], vec![vec![1, 0], vec![0, 1]]),
            (vec![5, 3], vec![vec![1, 1], vec![1, 0]]),
            (vec![2, 2, 3], vec![vec![1, 0, 0], vec![0, 1, 1]]),
            (vec![6, 2], vec![vec![1, 1], vec![0, 1], vec![1, 0]]),
        ];
        for (sides, deps) in cases {
            let t = Tiling::rectangular(&sides);
            let d = DependenceSet::from_vectors(sides.len(), deps);
            let brute = v_comm_total_bruteforce(&t, &d);
            assert_eq!(
                v_comm_total(&t, &d),
                Rational::from_int(brute as i128),
                "sides {sides:?}"
            );
        }
    }

    #[test]
    fn mapped_volume_excludes_one_dimension() {
        let t = Tiling::rectangular(&[4, 4, 100]);
        let d = DependenceSet::paper_3d();
        let total = v_comm_total(&t, &d);
        let mapped = v_comm_mapped(&t, &d, 2);
        let k_surface = v_comm_per_dimension(&t, &d, 2);
        assert_eq!(total, mapped + k_surface);
    }

    #[test]
    fn surface_volume_scales_with_face_area() {
        // Doubling the tile height doubles the i-face volume.
        let d = DependenceSet::paper_3d();
        let a = v_comm_per_dimension(&Tiling::rectangular(&[4, 4, 100]), &d, 0);
        let b = v_comm_per_dimension(&Tiling::rectangular(&[4, 4, 200]), &d, 0);
        assert_eq!(b, a * Rational::from_int(2));
    }

    #[test]
    fn skewed_tiling_volume() {
        // P = [[2,1],[0,2]], d = (1,1): Hd = (1/4, 1/2).
        // Surface 0: det·1/4 = 1, surface 1: det·1/2 = 2; total 3.
        let t = Tiling::from_side_matrix(crate::matrix::IntMatrix::from_rows(&[&[2, 1], &[0, 2]]))
            .unwrap();
        let d = DependenceSet::from_vectors(2, vec![vec![1, 1]]);
        assert_eq!(v_comm_total(&t, &d), Rational::from_int(3));
        assert_eq!(v_comm_total_bruteforce(&t, &d), 3);
    }

    #[test]
    fn zero_dep_component_no_surface_cost() {
        let t = Tiling::rectangular(&[8, 8]);
        let d = vec![0i64, 3];
        assert_eq!(v_comm_surface(&t, &d, 0), Rational::ZERO);
        assert_eq!(v_comm_surface(&t, &d, 1), Rational::from_int(24));
    }
}
