//! Closed-form optimal tile height — the paper's §6 open problem.
//!
//! The paper tunes `g` experimentally and notes: *"What remains open is
//! an analytical expression for `A_i(g)` and `B_i(g)` so that we can
//! calculate `g_optimal` from the parallel architecture's internal
//! characteristics (`t_c`, `t_t`) and MPI internal communication
//! latencies."* With the affine buffer-fill model
//! (`T_fill(bytes) = base + slope·bytes`) that this library calibrates
//! from the paper's measurements, the expression exists:
//!
//! For a paper-style layout (fixed tile cross-section, height `V` along
//! the mapping dimension, messages affine in `V`), both schedules' total
//! time has the form
//!
//! ```text
//! T(V) = (γ + K/V) · (α + β·V)
//!      = γα + Kβ + γβ·V + Kα/V,
//! ```
//!
//! where `γ` is the cross-section contribution to the number of
//! hyperplanes, `K/V` the pipeline depth, `α` the V-independent per-step
//! cost (startup/posting bases) and `β` the per-V-unit per-step cost
//! (computation plus per-byte copies). Setting `T′(V) = 0`:
//!
//! ```text
//! V* = √( K·α / (γ·β) ).
//! ```
//!
//! [`overlap_optimal_v`] and [`nonoverlap_optimal_v`] extract
//! `(γ, K, α, β)` for the two schedules and return `V*` together with
//! the model prediction, so `g_optimal = cross_section · V*` is computed
//! purely from machine parameters — no sweep.

use crate::dependence::DependenceSet;
use crate::machine::MachineParams;
use crate::mapping::{neighbor_messages, ProcessorMapping};
use crate::space::IterationSpace;
use crate::tiling::Tiling;

/// The fitted per-step cost model `α + β·V` plus the plane model
/// `γ + K/V`, and the resulting optimum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosedForm {
    /// V-independent per-step cost (µs).
    pub alpha: f64,
    /// Per-V-unit per-step cost (µs).
    pub beta: f64,
    /// Cross-section plane contribution (hyperplanes).
    pub gamma: f64,
    /// Extent along the mapping dimension (pipeline volume).
    pub k_extent: f64,
    /// The real-valued optimal tile height `V* = √(K·α/(γ·β))`.
    pub v_star: f64,
}

impl ClosedForm {
    /// Predicted total time at height `v` (µs): `(γ + K/v)(α + β·v)`.
    pub fn predict_us(&self, v: f64) -> f64 {
        assert!(v > 0.0, "tile height must be positive");
        (self.gamma + self.k_extent / v) * (self.alpha + self.beta * v)
    }

    /// Predicted total time at the optimum (µs).
    pub fn optimum_us(&self) -> f64 {
        self.predict_us(self.v_star.max(1.0))
    }

    /// The best *integer* height among `⌊V*⌋` and `⌈V*⌉` (clamped ≥ 1).
    pub fn v_star_integer(&self) -> i64 {
        let lo = (self.v_star.floor().max(1.0)) as i64;
        let hi = lo + 1;
        if self.predict_us(lo as f64) <= self.predict_us(hi as f64) {
            lo
        } else {
            hi
        }
    }

    /// The integer optimum clamped to a legal height `[1, extent]` —
    /// what a plan can actually run with.
    pub fn v_star_clamped(&self, extent: usize) -> usize {
        let v = self.v_star_integer().max(1) as usize;
        v.min(extent.max(1))
    }

    /// Predicted total time at *integer* height `v` with the discrete
    /// step count `⌈K/v⌉` (µs). The continuous model smooths the
    /// staircase away; at small step counts the partial last tile makes
    /// the two disagree, which is exactly where a measured-feedback
    /// tuner can beat `V*`.
    pub fn predict_us_discrete(&self, v: usize) -> f64 {
        assert!(v > 0, "tile height must be positive");
        let steps = (self.k_extent / v as f64).ceil();
        (self.gamma + steps) * (self.alpha + self.beta * v as f64)
    }

    /// Candidate tile heights around the optimum: a geometric ladder
    /// `V*/4 … 4·V*` plus, for each step count the ladder reaches, the
    /// smallest height achieving it (`⌈K/s⌉`). The step-aligned heights
    /// eliminate the partial last tile the continuous formula ignores.
    /// All heights are clamped to `[1, extent]`, sorted, deduplicated.
    pub fn v_ladder(&self, extent: usize) -> Vec<usize> {
        let extent = extent.max(1);
        let vs = self.v_star_integer().max(1) as f64;
        let mut out: Vec<usize> = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0]
            .iter()
            .map(|f| ((vs * f).round().max(1.0) as usize).min(extent))
            .collect();
        let k = (self.k_extent.max(1.0)) as usize;
        for v in out.clone() {
            let s = k.div_ceil(v);
            for s in [s.saturating_sub(1).max(1), s, s + 1] {
                out.push(k.div_ceil(s).clamp(1, extent));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Fit the affine per-step message cost at two sample heights: returns
/// the per-neighbor-message byte model summed over messages,
/// `(bytes₀, bytes_per_v)` with `bytes(V) = bytes₀ + bytes_per_v·V`
/// per message list.
fn message_byte_model(
    deps: &DependenceSet,
    machine: &MachineParams,
    cross_section: &[i64],
    mapping_dim: usize,
) -> Vec<(f64, f64)> {
    let dims = cross_section.len() + 1;
    let build = |v: i64| {
        let mut sides = Vec::with_capacity(dims);
        let mut ci = 0;
        for d in 0..dims {
            if d == mapping_dim {
                sides.push(v);
            } else {
                sides.push(cross_section[ci]);
                ci += 1;
            }
        }
        Tiling::rectangular(&sides)
    };
    let mapping = ProcessorMapping::along(dims, mapping_dim);
    // Sample heights large enough to contain any dependence component.
    let v1 = 64;
    let v2 = 128;
    let m1 = neighbor_messages(&build(v1), deps, &mapping);
    let m2 = neighbor_messages(&build(v2), deps, &mapping);
    assert_eq!(
        m1.len(),
        m2.len(),
        "message structure must not change with V"
    );
    let b = f64::from(machine.bytes_per_elem);
    m1.iter()
        .zip(&m2)
        .map(|(a, c)| {
            assert_eq!(a.processor_offset, c.processor_offset);
            let slope = (c.volume_points - a.volume_points) as f64 / (v2 - v1) as f64;
            let base = a.volume_points as f64 - slope * v1 as f64;
            (base * b, slope * b)
        })
        .collect()
}

/// Plane-model constants `(γ, K)` for a schedule whose cross-section
/// hyperplane coefficient is `coeff` (1 for `Π = [1…1]`, 2 for the
/// overlap schedule) on a paper-style layout.
fn plane_model(
    space: &IterationSpace,
    cross_section: &[i64],
    mapping_dim: usize,
    coeff: f64,
) -> (f64, f64) {
    let mut gamma = 1.0; // the +1 of the makespan
    let mut ci = 0;
    for d in 0..space.dims() {
        if d == mapping_dim {
            continue;
        }
        let tiles = (space.extent(d) as f64 / cross_section[ci] as f64).ceil();
        gamma += coeff * (tiles - 1.0);
        ci += 1;
    }
    // ceil(K/V) ≈ K/V (continuous model); the −1 +1 of the mapping
    // dimension cancels into K/V.
    (gamma, space.extent(mapping_dim) as f64)
}

/// Closed-form optimum for the overlapping schedule (eq. 5, case 1 —
/// the CPU lane paces the pipeline, which is the paper's measured
/// regime). `cross_section` are the tile sides in the non-mapping
/// dimensions (one tile column per processor).
pub fn overlap_optimal_v(
    space: &IterationSpace,
    deps: &DependenceSet,
    machine: &MachineParams,
    cross_section: &[i64],
    mapping_dim: usize,
) -> ClosedForm {
    let msgs = message_byte_model(deps, machine, cross_section, mapping_dim);
    // A-lane: one Isend + one Irecv posting per message (A₁ + A₃), plus
    // the computation c·t_c·V with c the cross-section point count.
    let mut alpha = 0.0;
    let mut beta = 0.0;
    for &(b0, b1) in &msgs {
        alpha += 2.0 * (machine.fill_mpi_buffer.base_us + machine.fill_mpi_buffer.per_byte_us * b0);
        beta += 2.0 * machine.fill_mpi_buffer.per_byte_us * b1;
    }
    let cross_points: i64 = cross_section.iter().product();
    beta += cross_points as f64 * machine.t_c_us;
    let (gamma, k_extent) = plane_model(space, cross_section, mapping_dim, 2.0);
    let v_star = (k_extent * alpha / (gamma * beta)).sqrt();
    ClosedForm {
        alpha,
        beta,
        gamma,
        k_extent,
        v_star,
    }
}

/// Closed-form optimum for the non-overlapping schedule (eq. 3): per
/// step, `T_comp + 2·T_startup + T_transmit` per message, with the
/// byte-dependent startup `T_fill_MPI + T_fill_kernel`.
pub fn nonoverlap_optimal_v(
    space: &IterationSpace,
    deps: &DependenceSet,
    machine: &MachineParams,
    cross_section: &[i64],
    mapping_dim: usize,
) -> ClosedForm {
    let msgs = message_byte_model(deps, machine, cross_section, mapping_dim);
    let startup_base = machine.fill_mpi_buffer.base_us + machine.fill_kernel_buffer.base_us;
    let startup_slope =
        machine.fill_mpi_buffer.per_byte_us + machine.fill_kernel_buffer.per_byte_us;
    let mut alpha = 0.0;
    let mut beta = 0.0;
    for &(b0, b1) in &msgs {
        alpha += 2.0 * (startup_base + startup_slope * b0) + machine.t_t_us_per_byte * b0;
        beta += 2.0 * startup_slope * b1 + machine.t_t_us_per_byte * b1;
    }
    let cross_points: i64 = cross_section.iter().product();
    beta += cross_points as f64 * machine.t_c_us;
    let (gamma, k_extent) = plane_model(space, cross_section, mapping_dim, 1.0);
    let v_star = (k_extent * alpha / (gamma * beta)).sqrt();
    ClosedForm {
        alpha,
        beta,
        gamma,
        k_extent,
        v_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{best_nonoverlap, best_overlap, sweep_tile_height};
    use crate::schedule::OverlapMode;

    fn paper_setup() -> (IterationSpace, DependenceSet, MachineParams) {
        (
            IterationSpace::from_extents(&[16, 16, 16384]),
            DependenceSet::paper_3d(),
            MachineParams::paper_cluster(),
        )
    }

    #[test]
    fn overlap_closed_form_matches_sweep_minimum() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        // Dense sweep around the prediction.
        let heights: Vec<i64> = (1..=60).map(|i| i * 10).collect();
        let pts = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &heights,
            OverlapMode::Serialized,
        );
        let best = best_overlap(&pts).unwrap();
        // The valley is flat around the optimum and the sweep model
        // carries a ⌈K/V⌉ staircase the continuous formula smooths over,
        // so compare *times*, not heights: running at the closed-form V
        // must be within a couple percent of the sweep's best.
        let at_cf = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &[cf.v_star_integer()],
            OverlapMode::Serialized,
        )[0]
        .overlap_us;
        assert!(
            (at_cf - best.overlap_us) / best.overlap_us < 0.03,
            "time at closed-form V {} vs sweep best {}",
            at_cf,
            best.overlap_us
        );
        // The height itself lands in the right neighborhood.
        assert!(
            (cf.v_star - best.v as f64).abs() / best.v as f64 <= 0.35,
            "closed form {} vs sweep {}",
            cf.v_star,
            best.v
        );
        // And the continuous prediction is close to the analytic model.
        assert!(
            (cf.optimum_us() - best.overlap_us).abs() / best.overlap_us < 0.05,
            "{} vs {}",
            cf.optimum_us(),
            best.overlap_us
        );
    }

    #[test]
    fn nonoverlap_closed_form_matches_sweep_minimum() {
        let (space, deps, machine) = paper_setup();
        let cf = nonoverlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        let heights: Vec<i64> = (1..=80).map(|i| i * 10).collect();
        let pts = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &heights,
            OverlapMode::Serialized,
        );
        let best = best_nonoverlap(&pts).unwrap();
        let at_cf = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &[cf.v_star_integer()],
            OverlapMode::Serialized,
        )[0]
        .nonoverlap_us;
        assert!(
            (at_cf - best.nonoverlap_us) / best.nonoverlap_us < 0.03,
            "time at closed-form V {} vs sweep best {}",
            at_cf,
            best.nonoverlap_us
        );
        assert!(
            (cf.v_star - best.v as f64).abs() / best.v as f64 <= 0.35,
            "closed form {} vs sweep {}",
            cf.v_star,
            best.v
        );
    }

    #[test]
    fn v_star_integer_brackets_continuous() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        let vi = cf.v_star_integer();
        assert!((vi as f64 - cf.v_star).abs() <= 1.0);
        // Integer choice is no worse than its neighbors.
        assert!(cf.predict_us(vi as f64) <= cf.predict_us((vi + 1) as f64));
        if vi > 1 {
            assert!(cf.predict_us(vi as f64) <= cf.predict_us((vi - 1) as f64));
        }
    }

    #[test]
    fn predict_is_u_shaped() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        let at = |v: f64| cf.predict_us(v);
        assert!(at(cf.v_star) < at(cf.v_star / 8.0));
        assert!(at(cf.v_star) < at(cf.v_star * 8.0));
    }

    #[test]
    fn overlap_optimum_below_nonoverlap_optimum() {
        // The §6 goal realized: both optima from machine constants only,
        // and the overlap one wins (the paper's thesis).
        let (space, deps, machine) = paper_setup();
        let ov = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        let no = nonoverlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        assert!(ov.optimum_us() < no.optimum_us());
    }

    #[test]
    fn free_communication_pushes_v_to_minimum() {
        // With α = 0 the formula gives V* = 0: the finest grain (most
        // parallelism) is optimal when startup is free.
        let space = IterationSpace::from_extents(&[16, 16, 1024]);
        let deps = DependenceSet::paper_3d();
        let machine = MachineParams::free_communication(1.0);
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        assert_eq!(cf.v_star, 0.0);
        assert_eq!(cf.v_star_integer(), 1);
    }

    #[test]
    fn v_star_clamped_stays_in_range() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        // V* for the paper setup is a few hundred; a shallow pipeline
        // must clamp it down to the extent, never above.
        assert!(cf.v_star_integer() > 8);
        assert_eq!(cf.v_star_clamped(8), 8);
        assert_eq!(cf.v_star_clamped(1), 1);
        // Free communication drives V* to 0; the clamp floors it at 1.
        let free = MachineParams::free_communication(1.0);
        let cf0 = overlap_optimal_v(&space, &deps, &free, &[4, 4], 2);
        assert_eq!(cf0.v_star_clamped(16384), 1);
        // Degenerate extent 0 still yields a legal height.
        assert_eq!(cf.v_star_clamped(0), 1);
    }

    #[test]
    fn discrete_prediction_tracks_partial_tile_remainder() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        // Where V divides K the staircase and the smooth model agree.
        let v_even = 128;
        assert_eq!(16384 % v_even, 0);
        let smooth = cf.predict_us(v_even as f64);
        let stair = cf.predict_us_discrete(v_even);
        assert!((smooth - stair).abs() / smooth < 1e-12);
        // A height just above an even divisor pays a whole extra step
        // for a sliver of work: the discrete model is strictly above the
        // smooth one there.
        let v_odd = 129;
        assert!(cf.predict_us_discrete(v_odd) > cf.predict_us(v_odd as f64));
        // And the discrete model sees the penalty the smooth one hides:
        // at few steps, rounding V up to the step-aligned height wins.
        let k = 16384usize;
        let s = k.div_ceil(v_odd); // 127 steps, last one nearly empty
        let aligned = k.div_ceil(s);
        assert!(cf.predict_us_discrete(aligned) < cf.predict_us_discrete(v_odd));
    }

    #[test]
    fn degenerate_single_rank_grid_is_finite() {
        // A 1×1 processor grid (cross-section = whole plane) has no
        // neighbors to pay for; the closed form must stay finite and
        // the ladder legal.
        let space = IterationSpace::from_extents(&[16, 16, 1024]);
        let deps = DependenceSet::paper_3d();
        let machine = MachineParams::paper_cluster();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[16, 16], 2);
        assert!(cf.gamma >= 1.0);
        assert!(cf.beta > 0.0);
        assert!(cf.v_star.is_finite());
        let v = cf.v_star_clamped(1024);
        assert!((1..=1024).contains(&v));
        assert!(cf.predict_us_discrete(v).is_finite());
        for v in cf.v_ladder(1024) {
            assert!((1..=1024).contains(&v));
        }
    }

    #[test]
    fn ladder_brackets_the_optimum_and_dedups() {
        let (space, deps, machine) = paper_setup();
        let cf = overlap_optimal_v(&space, &deps, &machine, &[4, 4], 2);
        let ladder = cf.v_ladder(16384);
        let vi = cf.v_star_integer() as usize;
        assert!(ladder.contains(&vi));
        assert!(ladder.iter().any(|&v| v < vi));
        assert!(ladder.iter().any(|&v| v > vi));
        let mut sorted = ladder.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ladder, sorted, "ladder must be sorted and unique");
        // A tight extent clamps every rung.
        assert!(cf.v_ladder(4).iter().all(|&v| (1..=4).contains(&v)));
    }

    #[test]
    fn experiment_iii_smaller_v_than_i() {
        // Larger cross-sections shift the optimum to smaller V (the
        // 444 → 164 pattern between experiments i and iii).
        let deps = DependenceSet::paper_3d();
        let machine = MachineParams::paper_cluster();
        let cf_i = overlap_optimal_v(
            &IterationSpace::from_extents(&[16, 16, 16384]),
            &deps,
            &machine,
            &[4, 4],
            2,
        );
        let cf_iii = overlap_optimal_v(
            &IterationSpace::from_extents(&[32, 32, 4096]),
            &deps,
            &machine,
            &[8, 8],
            2,
        );
        assert!(cf_iii.v_star < cf_i.v_star);
    }
}
