//! Tile-size and tile-shape optimization.
//!
//! The paper tunes the grain `g` experimentally (§5): for a fixed tile
//! cross-section it sweeps the *tile height* `V` (the size along the
//! processor-mapping dimension) and picks the `V` minimizing completion
//! time, separately for the overlapping and non-overlapping schedules.
//! This module provides that sweep over the *analytical* cost models
//! (the simulator-driven sweep lives in the bench harness) plus a
//! communication-minimal rectangular shape search for a given volume
//! (the Boulet et al. / Xue result specialized to rectangular tiles).

use crate::dependence::DependenceSet;
use crate::machine::MachineParams;
use crate::schedule::{NonOverlapSchedule, OverlapMode, OverlapSchedule};
use crate::space::IterationSpace;
use crate::tiling::Tiling;

/// One row of a tile-height sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Tile height `V` along the mapping dimension.
    pub v: i64,
    /// Tile volume `g`.
    pub g: i64,
    /// Predicted non-overlapping completion time (µs).
    pub nonoverlap_us: f64,
    /// Predicted overlapping completion time (µs).
    pub overlap_us: f64,
}

/// Sweep the tile height `V` for a paper-style rectangular tiling: the
/// cross-section sides are fixed (one tile column per processor) and `V`
/// ranges over `heights`. Returns one [`SweepPoint`] per height.
///
/// `mapping_dim` is the dimension `V` extends along (the paper's `k`).
pub fn sweep_tile_height(
    space: &IterationSpace,
    deps: &DependenceSet,
    machine: &MachineParams,
    cross_section: &[i64],
    mapping_dim: usize,
    heights: &[i64],
    mode: OverlapMode,
) -> Vec<SweepPoint> {
    assert_eq!(cross_section.len() + 1, space.dims(), "cross-section arity");
    let mut out = Vec::with_capacity(heights.len());
    for &v in heights {
        assert!(v > 0, "tile height must be positive");
        let mut sides = Vec::with_capacity(space.dims());
        let mut ci = 0;
        for d in 0..space.dims() {
            if d == mapping_dim {
                sides.push(v);
            } else {
                sides.push(cross_section[ci]);
                ci += 1;
            }
        }
        let tiling = Tiling::rectangular(&sides);
        let no = NonOverlapSchedule::with_mapping(space.dims(), mapping_dim)
            .analyze(&tiling, deps, space, machine);
        let ov = OverlapSchedule::with_mapping(space.dims(), mapping_dim)
            .analyze(&tiling, deps, space, machine, mode);
        out.push(SweepPoint {
            v,
            g: tiling.volume(),
            nonoverlap_us: no.total_us,
            overlap_us: ov.total_us,
        });
    }
    out
}

/// The sweep point with the minimum overlapping time.
pub fn best_overlap(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .min_by(|a, b| a.overlap_us.total_cmp(&b.overlap_us))
}

/// The sweep point with the minimum non-overlapping time.
pub fn best_nonoverlap(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .min_by(|a, b| a.nonoverlap_us.total_cmp(&b.nonoverlap_us))
}

/// Divisor-based candidate heights for a sweep: all divisors of
/// `extent / min_tiles` style ranges are overkill; the paper sweeps V
/// from `lo` to `extent / procs`. This helper returns a geometric-ish
/// ladder of heights in `[lo, hi]`, always including both endpoints.
pub fn height_ladder(lo: i64, hi: i64, steps: usize) -> Vec<i64> {
    assert!(lo >= 1 && hi >= lo && steps >= 2, "bad ladder parameters");
    let mut out = Vec::with_capacity(steps);
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (steps - 1) as f64);
    let mut prev = 0;
    for i in 0..steps {
        let v = ((lo as f64) * ratio.powi(i as i32)).round() as i64;
        let v = v.clamp(lo, hi);
        if v != prev {
            out.push(v);
            prev = v;
        }
    }
    if *out.last().unwrap() != hi {
        out.push(hi);
    }
    out
}

/// Enumerate all ordered factorizations of `volume` into `dims` positive
/// factors (rectangular tile shapes of a given volume).
pub fn rectangular_shapes(volume: i64, dims: usize) -> Vec<Vec<i64>> {
    assert!(volume > 0 && dims > 0);
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(dims);
    fn rec(rem: i64, dims_left: usize, cur: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if dims_left == 1 {
            cur.push(rem);
            out.push(cur.clone());
            cur.pop();
            return;
        }
        let mut f = 1;
        while f <= rem {
            if rem % f == 0 {
                cur.push(f);
                rec(rem / f, dims_left - 1, cur, out);
                cur.pop();
            }
            f += 1;
        }
    }
    rec(volume, dims, &mut cur, &mut out);
    out
}

/// Find the rectangular tile shape of exactly `volume` points minimizing
/// the mapped communication volume (formula (2)) for the given
/// dependences and mapping dimension. Ties break towards the shape with
/// the largest extent along the mapping dimension (fewer messages).
pub fn min_comm_rectangular_shape(
    volume: i64,
    deps: &DependenceSet,
    mapping_dim: usize,
) -> Option<(Vec<i64>, f64)> {
    let dims = deps.dims();
    let mut best: Option<(Vec<i64>, f64)> = None;
    for shape in rectangular_shapes(volume, dims) {
        let tiling = Tiling::rectangular(&shape);
        if !tiling.is_legal(deps) {
            continue;
        }
        let comm = crate::cost::v_comm_mapped(&tiling, deps, mapping_dim).to_f64();
        let better = match &best {
            None => true,
            Some((bs, bc)) => {
                comm < *bc - 1e-9
                    || ((comm - *bc).abs() <= 1e-9 && shape[mapping_dim] > bs[mapping_dim])
            }
        };
        if better {
            best = Some((shape, comm));
        }
    }
    best
}

/// A tiling recommendation produced by [`best_rectangular_plan`].
#[derive(Clone, Debug)]
pub struct TilingPlan {
    /// The chosen tile sides.
    pub sides: Vec<i64>,
    /// Predicted non-overlapping completion time (µs).
    pub nonoverlap_us: f64,
    /// Predicted overlapping completion time (µs).
    pub overlap_us: f64,
}

/// The Hodzic–Shang planning step (§3): given a tile *volume* `g`
/// (e.g. from `g = c·t_s/t_c`), choose the rectangular tile *shape*
/// minimizing the predicted **total completion time** — not the per-tile
/// communication alone, which would degenerate to needle-shaped tiles
/// that explode the hyperplane count. Shapes that cannot contain the
/// dependences are skipped. Returns `None` if no shape of volume `g`
/// is feasible.
///
/// The paper's Example 1 chooses square 10×10 tiles at `g = 100`; this
/// procedure recovers that choice from the cost model.
pub fn best_rectangular_plan(
    space: &IterationSpace,
    deps: &DependenceSet,
    machine: &MachineParams,
    g: i64,
    mapping_dim: usize,
    mode: OverlapMode,
) -> Option<TilingPlan> {
    let mut best: Option<TilingPlan> = None;
    for sides in rectangular_shapes(g, space.dims()) {
        if sides
            .iter()
            .zip(space.extents().iter())
            .any(|(&s, &e)| s > e)
        {
            continue;
        }
        let tiling = Tiling::rectangular(&sides);
        if !tiling.contains_dependences(deps) {
            continue;
        }
        let no = NonOverlapSchedule::with_mapping(space.dims(), mapping_dim)
            .analyze(&tiling, deps, space, machine);
        let ov = OverlapSchedule::with_mapping(space.dims(), mapping_dim)
            .analyze(&tiling, deps, space, machine, mode);
        if best.as_ref().is_none_or(|b| no.total_us < b.nonoverlap_us) {
            best = Some(TilingPlan {
                sides,
                nonoverlap_us: no.total_us,
                overlap_us: ov.total_us,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (IterationSpace, DependenceSet, MachineParams) {
        (
            IterationSpace::from_extents(&[16, 16, 16384]),
            DependenceSet::paper_3d(),
            MachineParams::paper_cluster(),
        )
    }

    #[test]
    fn sweep_runs_and_is_u_shaped_for_overlap() {
        let (space, deps, machine) = paper_setup();
        let heights: Vec<i64> = vec![4, 16, 64, 256, 1024, 4096];
        let pts = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &heights,
            OverlapMode::Serialized,
        );
        assert_eq!(pts.len(), heights.len());
        // Extremes are worse than the middle (U shape).
        let best = best_overlap(&pts).unwrap();
        assert!(best.v > 4 && best.v < 4096, "best at V={}", best.v);
        assert!(pts[0].overlap_us > best.overlap_us);
        assert!(pts.last().unwrap().overlap_us > best.overlap_us);
    }

    #[test]
    fn overlap_beats_nonoverlap_at_their_respective_optima() {
        let (space, deps, machine) = paper_setup();
        let heights = height_ladder(4, 4096, 40);
        let pts = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &heights,
            OverlapMode::Serialized,
        );
        let bo = best_overlap(&pts).unwrap();
        let bn = best_nonoverlap(&pts).unwrap();
        assert!(
            bo.overlap_us < bn.nonoverlap_us,
            "overlap {} vs nonoverlap {}",
            bo.overlap_us,
            bn.nonoverlap_us
        );
    }

    #[test]
    fn height_ladder_endpoints_and_monotonic() {
        let l = height_ladder(4, 4096, 12);
        assert_eq!(*l.first().unwrap(), 4);
        assert_eq!(*l.last().unwrap(), 4096);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn height_ladder_degenerate_range() {
        let l = height_ladder(5, 5, 4);
        assert_eq!(l, vec![5]);
    }

    #[test]
    fn rectangular_shapes_cover_all_factorizations() {
        let shapes = rectangular_shapes(12, 2);
        assert_eq!(shapes.len(), 6); // (1,12),(2,6),(3,4),(4,3),(6,2),(12,1)
        assert!(shapes.contains(&vec![3, 4]));
        for s in &shapes {
            assert_eq!(s.iter().product::<i64>(), 12);
        }
    }

    #[test]
    fn min_comm_shape_prefers_square_for_symmetric_deps() {
        // For D = {e1, e2} and mapping along 0, comm = volume/side_1 ·
        // (dep across dim 1)… minimizing means maximizing side 1:
        // shape (1, 100) has zero crossings of dim-1? No: comm along
        // dim 1 = det·h_2·e2 = side_0 · 1. Minimizing side_0 ⇒ (1,100).
        let deps = DependenceSet::units(2);
        let (shape, comm) = min_comm_rectangular_shape(100, &deps, 0).unwrap();
        assert_eq!(shape, vec![1, 100]);
        assert_eq!(comm, 1.0);
    }

    #[test]
    fn min_comm_shape_square_when_both_dims_cost() {
        // Mapping along dim 0 but deps {e2} only: any shape has comm =
        // side_0; best is side_0 = 1. With deps {e1,e2} and *no* mapping
        // exclusion we'd want square — emulate by measuring total comm.
        let deps = DependenceSet::units(2);
        let mut best: Option<(Vec<i64>, f64)> = None;
        for shape in rectangular_shapes(36, 2) {
            let t = Tiling::rectangular(&shape);
            let c = crate::cost::v_comm_total(&t, &deps).to_f64();
            if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((shape, c));
            }
        }
        // Total (unmapped) comm of shape (a,b): a + b; minimized at 6×6.
        assert_eq!(best.unwrap().0, vec![6, 6]);
    }

    #[test]
    fn plan_example_1_beats_paper_square_tiles() {
        // Example 1: g = c·t_s/t_c = 100. The paper "optimally" chooses
        // square 10×10 tiles (0.4 s), but exhaustive shape search under
        // its own cost model (eq. 3) finds 25×4 at ~0.30 s: the flatter
        // tile trades a little communication volume for 450 fewer
        // hyperplanes. The square heuristic from [4] optimizes relative
        // sides against dependences, not the boundary-aware total time.
        let machine = MachineParams::example_1();
        let deps = DependenceSet::example_1();
        let space = IterationSpace::from_extents(&[10_000, 1_000]);
        let g = crate::schedule::nonoverlap::optimal_g_hodzic_shang(&machine, 1) as i64;
        assert_eq!(g, 100);
        let plan = best_rectangular_plan(&space, &deps, &machine, g, 0, OverlapMode::DuplexDma)
            .expect("feasible shapes exist");
        // Strictly better than the paper's square choice…
        assert!(plan.nonoverlap_us < 400_036.0, "{plan:?}");
        // …and needle shapes were correctly rejected by total time.
        assert!(plan.sides.iter().all(|&s| s >= 2), "{plan:?}");
        // The square itself evaluates to exactly the paper's number.
        let square = Tiling::rectangular(&[10, 10]);
        let sq = NonOverlapSchedule::with_mapping(2, 0).analyze(&square, &deps, &space, &machine);
        assert!((sq.total_us - 400_036.0).abs() < 1.0);
    }

    #[test]
    fn plan_skips_shapes_that_cannot_contain_deps() {
        // Volume 4 with deps (1,1): 1×4 and 4×1 can't contain the
        // diagonal; only 2×2 qualifies.
        let machine = MachineParams::example_1();
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1]]);
        let space = IterationSpace::from_extents(&[16, 16]);
        let plan = best_rectangular_plan(&space, &deps, &machine, 4, 0, OverlapMode::Serialized)
            .expect("2×2 feasible");
        assert_eq!(plan.sides, vec![2, 2]);
    }

    #[test]
    fn plan_none_when_infeasible() {
        // Volume 2 cannot contain (1,1) in any orientation.
        let machine = MachineParams::example_1();
        let deps = DependenceSet::from_vectors(2, vec![vec![1, 1]]);
        let space = IterationSpace::from_extents(&[16, 16]);
        assert!(
            best_rectangular_plan(&space, &deps, &machine, 2, 0, OverlapMode::Serialized).is_none()
        );
    }

    #[test]
    fn sweep_g_scales_with_v() {
        let (space, deps, machine) = paper_setup();
        let pts = sweep_tile_height(
            &space,
            &deps,
            &machine,
            &[4, 4],
            2,
            &[10, 20],
            OverlapMode::Serialized,
        );
        assert_eq!(pts[0].g, 160);
        assert_eq!(pts[1].g, 320);
    }
}
