//! Time schedules for tiled iteration spaces.
//!
//! * [`linear`] — generic linear (hyperplane) schedules `Π` (§2.5).
//! * [`nonoverlap`] — the Hodzic–Shang schedule of §3: `Π = [1 … 1]`,
//!   every step a serialized *receive → compute → send* triplet.
//! * [`overlap`] — the paper's contribution (§4): the pipelined schedule
//!   `2·Σ_{k≠i} j_k + j_i` that overlaps each step's communication with
//!   the computation of an independent tile.
//! * [`plan`] — the executable projection of a schedule onto one
//!   processor ([`plan::StepPlan`]), consumed by the distributed
//!   executors.

pub mod linear;
pub mod nonoverlap;
pub mod overlap;
pub mod plan;

pub use linear::{optimal_linear_schedule, LinearSchedule};
pub use nonoverlap::{NonOverlapReport, NonOverlapSchedule};
pub use overlap::{OverlapMode, OverlapReport, OverlapSchedule};
pub use plan::{StepPlan, StepStrategy};
